// Routing of border traffic onto cluster shards.
//
// A multi-border deployment runs one StreamEngine per vantage point; the
// router is the single authority on which shard owns which local DNS server.
// It is a *total, static* map: every global server id belongs to exactly one
// shard, fixed for the lifetime of the cluster, so a (server, epoch) bucket
// accumulates on exactly one engine and the merged landscape is the disjoint
// union of per-shard landscapes — the property that makes an N-shard cluster
// byte-identical to a single engine over the union trace.
//
// Two construction modes:
//   - by_range: contiguous, balanced server ranges (shard 0 gets the first
//     ceil(n/s) servers, ...) — the default for homogeneous networks;
//   - explicit_assignment: an arbitrary server→shard vector, for deployments
//     whose vantage points see hand-picked server sets (e.g. one shard per
//     branch office concentrator).
//
// Within a shard, servers are addressed by their *local index* — the rank of
// the global id among the shard's servers in ascending order. Shard engines
// are sized to their owned-server count and never see a global id, which
// keeps per-shard state dense; the merger maps local cells back to global
// report slots through the same router.
//
// The router serializes into the cluster checkpoint envelope
// (botmeter.cluster_checkpoint.v1) and must round-trip exactly: a restored
// cluster with a different routing would scatter resumed traffic onto the
// wrong engines, so restore compares the stored router against the
// configured one and rejects mismatches loudly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.hpp"

namespace botmeter::cluster {

class ShardRouter {
 public:
  /// An empty router (no shards, no servers) — a placeholder for config
  /// structs; every query on it throws. Build real routers via the
  /// factories.
  ShardRouter() = default;

  /// Balanced contiguous ranges: the first `server_count % shard_count`
  /// shards own one extra server. Throws ConfigError when either count is
  /// zero or there are more shards than servers (an empty shard would own an
  /// engine with nothing to estimate).
  [[nodiscard]] static ShardRouter by_range(std::size_t server_count,
                                            std::size_t shard_count);

  /// Explicit map: `shard_of_server[s]` names the shard owning global server
  /// s. Every shard in [0, shard_count) must own at least one server.
  [[nodiscard]] static ShardRouter explicit_assignment(
      std::vector<std::uint32_t> shard_of_server, std::size_t shard_count);

  [[nodiscard]] std::size_t shard_count() const { return servers_of_.size(); }
  [[nodiscard]] std::size_t server_count() const {
    return shard_of_server_.size();
  }

  /// The shard owning global server `server`; throws ConfigError when the id
  /// is outside the routed width (a trace naming more servers than the
  /// cluster was configured for is a loud error, never a silent misroute).
  [[nodiscard]] std::size_t shard_of(std::uint32_t server) const;

  /// Rank of `server` among its shard's servers, ascending — the dense index
  /// the shard's engine addresses it by.
  [[nodiscard]] std::uint32_t local_index(std::uint32_t server) const;

  /// Global ids owned by `shard`, ascending (the inverse of local_index).
  [[nodiscard]] const std::vector<std::uint32_t>& servers_of(
      std::size_t shard) const;

  friend bool operator==(const ShardRouter&, const ShardRouter&) = default;

  // --- checkpoint envelope serialisation -----------------------------------
  /// Range routers serialize compactly ({"mode":"range",...}); explicit ones
  /// carry the full assignment vector. from_json(to_json(r)) == r.
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static ShardRouter from_json(const json::Value& value);

 private:
  void build_inverse(std::size_t shard_count);

  bool range_mode_ = false;
  std::vector<std::uint32_t> shard_of_server_;  // size == server_count
  std::vector<std::uint32_t> local_index_;      // size == server_count
  std::vector<std::vector<std::uint32_t>> servers_of_;  // size == shard_count
};

}  // namespace botmeter::cluster
