#include "cluster/landscape_merger.hpp"

#include <utility>

#include "common/error.hpp"

namespace botmeter::cluster {

LandscapeMerger::LandscapeMerger(const ShardRouter& router,
                                 std::int64_t first_epoch,
                                 std::int64_t epoch_count)
    : router_(router), first_epoch_(first_epoch), epoch_count_(epoch_count) {
  if (epoch_count <= 0) {
    throw ConfigError("LandscapeMerger: epoch_count must be > 0");
  }
  rows_.resize(static_cast<std::size_t>(epoch_count));
  arrived_.assign(static_cast<std::size_t>(epoch_count), 0);
  shard_progress_.assign(router.shard_count(), 0);
}

void LandscapeMerger::on_merge(MergeCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  on_merge_ = std::move(callback);
}

void LandscapeMerger::offer(std::size_t shard, std::int64_t epoch,
                            std::vector<estimators::EpochCell> local_cells) {
  const std::vector<std::uint32_t>& owned = router_.servers_of(shard);
  if (local_cells.size() != owned.size()) {
    throw ConfigError("LandscapeMerger: shard " + std::to_string(shard) +
                      " offered " + std::to_string(local_cells.size()) +
                      " cells for its " + std::to_string(owned.size()) +
                      " servers");
  }
  const std::int64_t row = epoch - first_epoch_;
  if (row < 0 || row >= epoch_count_) {
    throw ConfigError("LandscapeMerger: epoch " + std::to_string(epoch) +
                      " outside the horizon");
  }
  const auto i = static_cast<std::size_t>(row);

  std::lock_guard<std::mutex> lock(mu_);
  if (shard_progress_[shard] != i) {
    throw ConfigError("LandscapeMerger: shard " + std::to_string(shard) +
                      " offered epoch " + std::to_string(epoch) +
                      " out of order");
  }
  shard_progress_[shard] = i + 1;

  std::vector<estimators::EpochCell>& global_row = rows_[i];
  if (global_row.empty()) global_row.resize(router_.server_count());
  for (std::size_t k = 0; k < owned.size(); ++k) {
    global_row[owned[k]] = local_cells[k];
  }
  ++arrived_[i];

  // Publish every epoch the new arrival completed, ascending. A row is only
  // emitted once all earlier rows went out — a fast shard completing epoch 5
  // while epoch 4 still waits on a laggard publishes nothing.
  while (merged_ < rows_.size() &&
         arrived_[merged_] == router_.shard_count()) {
    if (on_merge_) {
      MergedEpoch merged;
      merged.epoch = first_epoch_ + static_cast<std::int64_t>(merged_);
      merged.cells = rows_[merged_];
      on_merge_(merged);
    }
    ++merged_;
  }
}

std::int64_t LandscapeMerger::merge_frontier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_epoch_ + static_cast<std::int64_t>(merged_);
}

std::size_t LandscapeMerger::merged_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

std::int64_t LandscapeMerger::max_shard_progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t max_progress = 0;
  for (const std::size_t progress : shard_progress_) {
    max_progress = std::max(max_progress, progress);
  }
  return first_epoch_ + static_cast<std::int64_t>(max_progress);
}

MergedEpoch LandscapeMerger::merged_epoch(std::int64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t row = epoch - first_epoch_;
  if (row < 0 || static_cast<std::size_t>(row) >= merged_) {
    throw ConfigError("LandscapeMerger: epoch " + std::to_string(epoch) +
                      " not merged yet");
  }
  MergedEpoch result;
  result.epoch = epoch;
  result.cells = rows_[static_cast<std::size_t>(row)];
  return result;
}

core::LandscapeReport LandscapeMerger::assemble(
    std::string estimator_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (merged_ != rows_.size()) {
    throw ConfigError("LandscapeMerger: assemble() before every epoch merged (" +
                      std::to_string(merged_) + " of " +
                      std::to_string(rows_.size()) + ")");
  }
  core::LandscapeReport report;
  report.estimator_name = std::move(estimator_name);
  report.servers.reserve(router_.server_count());
  std::vector<estimators::EpochCell> column(rows_.size());
  for (std::uint32_t s = 0; s < router_.server_count(); ++s) {
    for (std::size_t i = 0; i < rows_.size(); ++i) column[i] = rows_[i][s];
    core::ServerEstimate estimate;
    estimate.server = dns::ServerId{s};
    for (const estimators::EpochCell& cell : column) {
      estimate.per_epoch.emplace_back(cell.epoch, cell.estimate.value);
    }
    const estimators::WindowAggregate aggregate =
        estimators::aggregate_cells(column);
    estimate.population = aggregate.population;
    estimate.interval90 = aggregate.interval;
    estimate.matched_lookups = aggregate.matched;
    estimate.approximate = aggregate.approximate;
    estimate.sketch_rse = aggregate.sketch_rse;
    report.servers.push_back(std::move(estimate));
  }
  return report;
}

}  // namespace botmeter::cluster
