#include "cluster/cluster_runtime.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/event_journal.hpp"
#include "obs/lag_tracker.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::cluster {

namespace {

constexpr const char* kCheckpointSchema = "botmeter.cluster_checkpoint.v1";
constexpr const char* kHealthSchema = "botmeter.cluster_health.v1";
constexpr std::uint32_t kNoRemap = 0xffffffffu;

template <typename T>
json::Value number(T v) {
  return json::Value(static_cast<double>(v));
}

}  // namespace

void ClusterConfig::validate() const {
  meter.validate();
  if (epoch_count <= 0) {
    throw ConfigError("ClusterConfig: epoch_count must be > 0");
  }
  if (router.shard_count() == 0) {
    throw ConfigError("ClusterConfig: router is empty — build one via "
                      "ShardRouter::by_range or explicit_assignment");
  }
  if (queue_capacity == 0) {
    throw ConfigError("ClusterConfig: queue_capacity must be > 0");
  }
  if (flush_tuples == 0) {
    throw ConfigError("ClusterConfig: flush_tuples must be > 0");
  }
  if (degraded_frontier_lag < 1 ||
      unhealthy_frontier_lag < degraded_frontier_lag) {
    throw ConfigError(
        "ClusterConfig: need 1 <= degraded_frontier_lag <= "
        "unhealthy_frontier_lag");
  }
  if (health) health->validate();
  if (lag != nullptr && lag->shard_count() != router.shard_count()) {
    throw ConfigError("ClusterConfig: lag tracker was built for " +
                      std::to_string(lag->shard_count()) +
                      " shards, router has " +
                      std::to_string(router.shard_count()));
  }
}

// --- ShardFeed (thin forwarding handles) ------------------------------------

void ShardFeed::ingest(const dns::ForwardedLookup& lookup) {
  runtime_->feed_ingest(shard_, lookup);
}

void ShardFeed::ingest(std::span<const dns::ForwardedLookup> batch) {
  for (const dns::ForwardedLookup& lookup : batch) {
    runtime_->feed_ingest(shard_, lookup);
  }
}

void ShardFeed::ingest_block(const dns::LookupColumns& block,
                             std::span<const std::string_view> domains) {
  runtime_->feed_ingest_block(shard_, block, domains);
}

void ShardFeed::ingest_block(const dns::LookupColumns& block,
                             std::span<const std::string> domains) {
  std::vector<std::string_view> views(domains.begin(), domains.end());
  runtime_->feed_ingest_block(shard_, block,
                              std::span<const std::string_view>(views));
}

void ShardFeed::advance(TimePoint watermark) {
  runtime_->feed_advance(shard_, watermark);
}

void ShardFeed::flush() { runtime_->flush_shard(shard_); }

// --- construction -----------------------------------------------------------

ClusterRuntime::ClusterRuntime(ClusterConfig config)
    : config_((config.validate(), std::move(config))),
      merger_(config_.router, config_.first_epoch, config_.epoch_count),
      instr_(config_.lag != nullptr || config_.journal != nullptr ||
             config_.meter.trace != nullptr),
      origin_(std::chrono::steady_clock::now()) {
  merger_.on_merge([this](const MergedEpoch& merged) { handle_merge(merged); });

  const std::size_t n = config_.router.shard_count();
  shards_.reserve(n);
  prev_shard_state_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;

    stream::StreamEngineConfig ec;
    ec.meter = config_.meter;
    // Shard engines publish nothing themselves: their stream.* series would
    // collide across shards and their per-shard histories would not be the
    // merged landscape. The runtime publishes cluster.* series and records
    // merged rows instead.
    ec.meter.metrics = nullptr;
    ec.meter.trace = nullptr;
    ec.meter.history = nullptr;
    ec.first_epoch = config_.first_epoch;
    ec.epoch_count = config_.epoch_count;
    ec.server_count = config_.router.servers_of(i).size();
    ec.worker_threads = config_.shard_worker_threads;
    ec.allowed_lateness = config_.allowed_lateness;
    ec.compact_state = config_.compact_state;
    ec.compact_spill_threshold = config_.compact_spill_threshold;
    ec.compact = config_.compact;
    shard->engine = std::make_unique<stream::StreamEngine>(std::move(ec));
    shard->engine->on_epoch_close(
        [this, i](const stream::EpochReport& report) {
          handle_close(i, report.epoch);
        });
    shard->monitor = std::make_unique<stream::StreamHealthMonitor>(
        config_.health.value_or(stream::StreamHealthConfig{}));
    shard->next_epoch.store(config_.first_epoch, std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
  estimator_name_ =
      std::string(shards_.front()->engine->meter().active_estimator().name());
}

ClusterRuntime::~ClusterRuntime() { stop_threads(); }

// --- merge / close plumbing -------------------------------------------------

double ClusterRuntime::obs_now_ms() const {
  if (config_.meter.trace != nullptr) return config_.meter.trace->now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void ClusterRuntime::drain_close_latencies(Shard& shard) {
  if (config_.lag == nullptr) return;
  const std::span<const double> latencies = shard.engine->close_latencies_ms();
  while (shard.close_latency_cursor < latencies.size()) {
    config_.lag->record(shard.index, obs::LagStage::kEpochClose,
                        latencies[shard.close_latency_cursor++]);
  }
}

void ClusterRuntime::handle_close(std::size_t shard, std::int64_t epoch) {
  // Runs on the shard's thread (or the control thread during finish()),
  // immediately after the engine appended the epoch's cell row.
  const auto rows = shards_[shard]->engine->closed_rows();
  if (instr_ && !replaying_) {
    const double now = obs_now_ms();
    const std::span<const double> latencies =
        shards_[shard]->engine->close_latencies_ms();
    const double close_ms = latencies.empty() ? 0.0 : latencies.back();
    if (config_.journal != nullptr) {
      config_.journal->log(obs::EventKind::kEpochClose,
                           static_cast<std::int32_t>(shard), epoch, close_ms);
    }
    if (config_.lag != nullptr) {
      config_.lag->note_shard_close(epoch, shard, now);
    }
    if (config_.meter.trace != nullptr) {
      // Mint the close->merge flow id BEFORE offering: when this is the
      // last-arriving close, offer() merges the epoch synchronously on this
      // thread and handle_merge must find the id already stored. Earlier
      // closes of the same epoch are overwritten — the triggering (last)
      // writer is the one the merge span links from.
      const std::uint64_t flow = obs::TraceSession::next_flow_id();
      {
        std::lock_guard<std::mutex> lock(flow_mu_);
        close_flow_[epoch] = flow;
      }
      config_.meter.trace->record_flow_span("cluster.epoch_close",
                                            now - close_ms, close_ms,
                                            this_thread_ordinal(), 0, flow);
    }
  }
  merger_.offer(shard, epoch,
                std::vector<estimators::EpochCell>(rows.back().begin(),
                                                   rows.back().end()));
}

void ClusterRuntime::handle_merge(const MergedEpoch& merged) {
  // Under the merger mutex, on whichever shard thread completed the epoch.
  // Keep this short and never call back into the merger.
  if (instr_ && !replaying_) {
    const double now = obs_now_ms();
    if (config_.lag != nullptr) config_.lag->note_merge(merged.epoch, now);
    if (config_.journal != nullptr) {
      // No merger accessors here — we are under its mutex.
      config_.journal->log(obs::EventKind::kMergePublish, -1, merged.epoch,
                           static_cast<double>(merged.cells.size()));
    }
    if (config_.meter.trace != nullptr) {
      std::uint64_t flow = 0;
      {
        std::lock_guard<std::mutex> lock(flow_mu_);
        const auto it = close_flow_.find(merged.epoch);
        if (it != close_flow_.end()) {
          flow = it->second;
          close_flow_.erase(it);
        }
      }
      config_.meter.trace->record_flow_span("cluster.merge_publish", now,
                                            obs_now_ms() - now,
                                            this_thread_ordinal(), flow, 0);
    }
  }
  if (replaying_ || config_.history == nullptr) return;
  obs::LandscapeEpochRecord row;
  row.epoch = merged.epoch;
  row.family = config_.meter.dga.name;
  row.estimator = estimator_name_;
  row.servers.reserve(merged.cells.size());
  for (const estimators::EpochCell& cell : merged.cells) {
    obs::LandscapeCell snapshot;
    snapshot.population = cell.estimate.value;
    snapshot.interval90 = cell.estimate.interval;
    snapshot.matched = cell.matched;
    snapshot.approximate = cell.estimate.approximate;
    snapshot.sketch_rse = cell.estimate.sketch_rse;
    row.servers.push_back(std::move(snapshot));
  }
  if (config_.health) {
    row.health = std::string(stream::health_state_name(cluster_state()));
  }
  config_.history->record(row);
}

// --- shard threads ----------------------------------------------------------

void ClusterRuntime::ensure_started() {
  if (finished_.load(std::memory_order_acquire)) {
    throw ConfigError("ClusterRuntime: ingest after finish()");
  }
  if (started_.load(std::memory_order_acquire)) return;
  // Per-shard feeds may race here from different producer threads; exactly
  // one spawns the shard threads.
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { shard_main(i); });
  }
  started_.store(true, std::memory_order_release);
}

void ClusterRuntime::shard_main(std::size_t index) {
  set_this_thread_label("cluster.shard_" + std::to_string(index));
  Shard& shard = *shards_[index];
  for (;;) {
    ShardBatch batch;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      for (;;) {
        if (!shard.queue.empty()) break;  // drain before stop or pause
        if (shard.stop) return;
        if (shard.pause) {
          shard.idle = true;
          shard.cv_idle.notify_all();
          shard.cv_pop.wait(lock, [&shard] {
            return !shard.pause || shard.stop || !shard.queue.empty();
          });
          shard.idle = false;
          continue;
        }
        shard.cv_pop.wait(lock);
      }
      batch = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.cv_push.notify_one();
    }
    apply_batch(shard, batch);
  }
}

void ClusterRuntime::apply_batch(Shard& shard, ShardBatch& batch) {
  const bool tracked = instr_ && !batch.t_ms.empty();
  double dequeued_ms = 0.0;
  if (tracked) {
    dequeued_ms = obs_now_ms();
    if (config_.lag != nullptr) {
      config_.lag->record(shard.index, obs::LagStage::kQueueWait,
                          dequeued_ms - batch.enqueued_ms);
    }
  }

  // New table entries first: ids in the batch's columns were assigned
  // against the table including them.
  for (std::string& s : batch.new_strings) {
    shard.storage.push_back(std::move(s));
    shard.table.emplace_back(shard.storage.back());
  }
  if (!batch.t_ms.empty()) {
    dns::LookupColumns columns;
    columns.t_ms = batch.t_ms;
    columns.server = batch.server;
    columns.domain = batch.domain;
    shard.engine->ingest_block(columns,
                               std::span<const std::string_view>(shard.table));
  }
  if (batch.advance) {
    shard.engine->advance(*batch.advance);
    if (config_.journal != nullptr) {
      config_.journal->log(obs::EventKind::kWatermarkAdvance,
                           static_cast<std::int32_t>(shard.index),
                           obs::JournalEvent::kNoEpoch,
                           static_cast<double>(batch.advance->millis()));
    }
  }
  if (batch.sample_now_ms) {
    shard.monitor->sample(*shard.engine, *batch.sample_now_ms);
  }

  if (tracked) {
    const double done_ms = obs_now_ms();
    if (config_.lag != nullptr) {
      config_.lag->record(shard.index, obs::LagStage::kShardIngest,
                          done_ms - dequeued_ms);
    }
    if (config_.meter.trace != nullptr) {
      config_.meter.trace->record_flow_span("cluster.shard_ingest",
                                            dequeued_ms, done_ms - dequeued_ms,
                                            this_thread_ordinal(),
                                            batch.flow_id, 0);
    }
  }
  // Epoch closes happen inside ingest_block/advance; attribute their wall
  // time (already measured by the engine) to the epoch_close stage.
  drain_close_latencies(shard);

  mirror_counters(shard);
}

void ClusterRuntime::mirror_counters(Shard& shard) {
  shard.ingested.store(shard.engine->ingested(), std::memory_order_relaxed);
  shard.matched.store(shard.engine->matched(), std::memory_order_relaxed);
  shard.unmatched.store(shard.engine->unmatched(), std::memory_order_relaxed);
  shard.late_dropped.store(shard.engine->late_dropped(),
                           std::memory_order_relaxed);
  shard.next_epoch.store(shard.engine->next_epoch_to_close(),
                         std::memory_order_relaxed);
  shard.open_bytes.store(shard.engine->open_buffer_bytes(),
                         std::memory_order_relaxed);
  shard.peak_open_bytes.store(shard.engine->peak_open_buffer_bytes(),
                              std::memory_order_relaxed);
  shard.compact_spills.store(shard.engine->compact_spills(),
                             std::memory_order_relaxed);
}

void ClusterRuntime::enqueue(std::size_t shard, ShardBatch batch) {
  ensure_started();
  const bool tracked = instr_ && !batch.t_ms.empty();
  if (tracked) {
    const double now = obs_now_ms();
    if (config_.lag != nullptr) {
      config_.lag->record(shard, obs::LagStage::kProducerBatch,
                          now - batch.formed_ms);
    }
    if (config_.meter.trace != nullptr) {
      batch.flow_id = obs::TraceSession::next_flow_id();
      config_.meter.trace->record_flow_span("cluster.producer_batch",
                                            batch.formed_ms,
                                            now - batch.formed_ms,
                                            this_thread_ordinal(), 0,
                                            batch.flow_id);
    }
  }
  Shard& s = *shards_[shard];
  std::unique_lock<std::mutex> lock(s.mu);
  if (config_.journal != nullptr &&
      s.queue.size() >= config_.queue_capacity) {
    // The producer is about to block on a full queue — backpressure worth a
    // flight-recorder entry (the journal mutex is a leaf; safe under s.mu).
    config_.journal->log(obs::EventKind::kQueueSaturation,
                         static_cast<std::int32_t>(shard),
                         obs::JournalEvent::kNoEpoch,
                         static_cast<double>(s.queue.size()));
  }
  s.cv_push.wait(lock,
                 [&s, this] { return s.queue.size() < config_.queue_capacity; });
  // Stamp after the capacity wait: time blocked on backpressure belongs to
  // the producer, not to the batch's queue_wait stage.
  if (tracked) batch.enqueued_ms = obs_now_ms();
  s.queue.push_back(std::move(batch));
  s.cv_pop.notify_one();
}

void ClusterRuntime::pause_threads() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pause = true;
    shard->cv_pop.notify_all();
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_idle.wait(lock, [&shard] {
      return shard->idle && shard->queue.empty();
    });
  }
}

void ClusterRuntime::resume_threads() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pause = false;
    shard->cv_pop.notify_all();
  }
}

void ClusterRuntime::stop_threads() {
  if (!started_) return;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stop = true;
    shard->cv_pop.notify_all();
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  started_ = false;
}

// --- producer-side scatter --------------------------------------------------

std::uint32_t ClusterRuntime::intern_domain(ShardScatter& scatter,
                                            std::string_view domain) {
  const auto it = scatter.intern.find(domain);
  if (it != scatter.intern.end()) return it->second;
  const std::uint32_t id = scatter.next_id++;
  scatter.intern.emplace(std::string(domain), id);
  scatter.pending.new_strings.emplace_back(domain);
  return id;
}

void ClusterRuntime::scatter_tuple(std::size_t shard, std::int64_t t_ms,
                                   std::uint32_t local_server,
                                   std::uint32_t local_domain) {
  ShardScatter& scatter = shards_[shard]->scatter;
  // One predictable branch per tuple when instrumentation is off; the clock
  // is read once per *batch* (first tuple) when it is on.
  if (instr_ && scatter.pending.t_ms.empty()) {
    scatter.pending.formed_ms = obs_now_ms();
  }
  scatter.pending.t_ms.push_back(t_ms);
  scatter.pending.server.push_back(local_server);
  scatter.pending.domain.push_back(local_domain);
  if (scatter.pending.t_ms.size() >= config_.flush_tuples) flush_shard(shard);
}

void ClusterRuntime::ingest(const dns::ForwardedLookup& lookup) {
  const std::uint32_t server = lookup.forwarder.value();
  const std::size_t shard = config_.router.shard_of(server);
  ShardScatter& scatter = shards_[shard]->scatter;
  scatter_tuple(shard, lookup.timestamp.millis(),
                config_.router.local_index(server),
                intern_domain(scatter, lookup.domain));
}

void ClusterRuntime::ingest(std::span<const dns::ForwardedLookup> batch) {
  for (const dns::ForwardedLookup& lookup : batch) ingest(lookup);
}

void ClusterRuntime::ingest_block(const dns::LookupColumns& block,
                                  std::span<const std::string> domains) {
  std::vector<std::string_view> views(domains.begin(), domains.end());
  ingest_block(block, std::span<const std::string_view>(views));
}

void ClusterRuntime::ingest_block(const dns::LookupColumns& block,
                                  std::span<const std::string_view> domains) {
  if (block.server.size() != block.size() ||
      block.domain.size() != block.size()) {
    throw DataError("ClusterRuntime::ingest_block: ragged columns");
  }
  const std::size_t n = block.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t server = block.server[i];
    const std::size_t shard = config_.router.shard_of(server);
    ShardScatter& scatter = shards_[shard]->scatter;
    const std::uint32_t pid = block.domain[i];
    if (pid >= domains.size()) {
      throw DataError("ClusterRuntime::ingest_block: domain id " +
                      std::to_string(pid) + " outside the table");
    }
    if (scatter.remap.size() < domains.size()) {
      scatter.remap.resize(domains.size(), kNoRemap);
    }
    std::uint32_t& local = scatter.remap[pid];
    if (local == kNoRemap) local = intern_domain(scatter, domains[pid]);
    scatter_tuple(shard, block.t_ms[i], config_.router.local_index(server),
                  local);
  }
}

void ClusterRuntime::flush_shard(std::size_t shard) {
  ShardScatter& scatter = shards_[shard]->scatter;
  if (scatter.pending.empty()) return;
  ShardBatch batch = std::move(scatter.pending);
  scatter.pending = ShardBatch{};
  enqueue(shard, std::move(batch));
}

void ClusterRuntime::flush() {
  for (std::size_t i = 0; i < shards_.size(); ++i) flush_shard(i);
}

void ClusterRuntime::advance(TimePoint watermark) {
  for (std::size_t i = 0; i < shards_.size(); ++i) feed_advance(i, watermark);
}

ShardFeed ClusterRuntime::shard_feed(std::size_t shard) {
  if (shard >= shards_.size()) {
    throw ConfigError("ClusterRuntime: shard " + std::to_string(shard) +
                      " outside the shard count " +
                      std::to_string(shards_.size()));
  }
  return ShardFeed(this, shard);
}

void ClusterRuntime::feed_ingest(std::size_t shard,
                                 const dns::ForwardedLookup& lookup) {
  const std::uint32_t server = lookup.forwarder.value();
  if (config_.router.shard_of(server) != shard) {
    throw ConfigError("ShardFeed: server " + std::to_string(server) +
                      " is not owned by shard " + std::to_string(shard));
  }
  ShardScatter& scatter = shards_[shard]->scatter;
  scatter_tuple(shard, lookup.timestamp.millis(),
                config_.router.local_index(server),
                intern_domain(scatter, lookup.domain));
}

void ClusterRuntime::feed_ingest_block(
    std::size_t shard, const dns::LookupColumns& block,
    std::span<const std::string_view> domains) {
  if (block.server.size() != block.size() ||
      block.domain.size() != block.size()) {
    throw DataError("ShardFeed::ingest_block: ragged columns");
  }
  ShardScatter& scatter = shards_[shard]->scatter;
  if (scatter.remap.size() < domains.size()) {
    scatter.remap.resize(domains.size(), kNoRemap);
  }
  const std::size_t n = block.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t server = block.server[i];
    if (config_.router.shard_of(server) != shard) {
      throw ConfigError("ShardFeed: server " + std::to_string(server) +
                        " is not owned by shard " + std::to_string(shard));
    }
    const std::uint32_t pid = block.domain[i];
    if (pid >= domains.size()) {
      throw DataError("ShardFeed::ingest_block: domain id " +
                      std::to_string(pid) + " outside the table");
    }
    std::uint32_t& local = scatter.remap[pid];
    if (local == kNoRemap) local = intern_domain(scatter, domains[pid]);
    scatter_tuple(shard, block.t_ms[i], config_.router.local_index(server),
                  local);
  }
}

void ClusterRuntime::feed_advance(std::size_t shard, TimePoint watermark) {
  ShardScatter& scatter = shards_[shard]->scatter;
  if (!scatter.pending.advance || watermark > *scatter.pending.advance) {
    scatter.pending.advance = watermark;
  }
  flush_shard(shard);
}

// --- finish -----------------------------------------------------------------

core::LandscapeReport ClusterRuntime::finish() {
  if (finished_) throw ConfigError("ClusterRuntime: finish() called twice");
  flush();
  stop_threads();
  finished_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    // Closes every remaining epoch; each close offers its row to the merger
    // through the on_epoch_close wiring. The per-shard report is the merged
    // report's restriction to the shard's servers — nothing to keep.
    (void)shard.engine->finish();
    drain_close_latencies(shard);
    mirror_counters(shard);
  }
  core::LandscapeReport report = merger_.assemble(estimator_name_);
  if (config_.meter.metrics != nullptr) {
    config_.meter.metrics->gauge("cluster.population.total")
        .set(report.total_population());
  }
  return report;
}

// --- introspection / health -------------------------------------------------

ShardStats ClusterRuntime::shard_stats(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw ConfigError("ClusterRuntime: shard " + std::to_string(shard) +
                      " outside the shard count " +
                      std::to_string(shards_.size()));
  }
  const Shard& s = *shards_[shard];
  ShardStats stats;
  stats.ingested = s.ingested.load(std::memory_order_relaxed);
  stats.matched = s.matched.load(std::memory_order_relaxed);
  stats.unmatched = s.unmatched.load(std::memory_order_relaxed);
  stats.late_dropped = s.late_dropped.load(std::memory_order_relaxed);
  stats.next_epoch_to_close = s.next_epoch.load(std::memory_order_relaxed);
  stats.open_buffer_bytes = s.open_bytes.load(std::memory_order_relaxed);
  stats.peak_open_buffer_bytes =
      s.peak_open_bytes.load(std::memory_order_relaxed);
  stats.compact_spills = s.compact_spills.load(std::memory_order_relaxed);
  return stats;
}

stream::HealthState ClusterRuntime::sample_health(double now_ms) {
  if (started_ && !finished_) {
    // Monitors must sample on the thread that owns the engine; queue one
    // sample item per shard. The fold below therefore reads the *previous*
    // round's samples — health is an operational signal, one round of
    // latency is immaterial.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ShardBatch batch;
      batch.sample_now_ms = now_ms;
      enqueue(i, std::move(batch));
    }
  } else {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      shard->monitor->sample(*shard->engine, now_ms);
    }
  }

  stream::HealthState worst = stream::HealthState::kOk;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    worst = std::max(worst, shard->monitor->state());
  }
  const std::int64_t frontier = merger_.merge_frontier();
  const std::int64_t lag = merger_.max_shard_progress() - frontier;
  if (lag >= config_.unhealthy_frontier_lag) {
    worst = std::max(worst, stream::HealthState::kUnhealthy);
  } else if (lag >= config_.degraded_frontier_lag) {
    worst = std::max(worst, stream::HealthState::kDegraded);
  }
  cluster_state_.store(static_cast<int>(worst), std::memory_order_relaxed);

  if (config_.journal != nullptr) {
    // Journal every state change since the previous sample (shard-level and
    // cluster-level), and flush the black box the moment the cluster goes
    // unhealthy — by then the interesting history is already in the ring.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const int state = static_cast<int>(shards_[i]->monitor->state());
      if (state != prev_shard_state_[i]) {
        config_.journal->log(
            obs::EventKind::kHealthTransition, static_cast<std::int32_t>(i),
            obs::JournalEvent::kNoEpoch, static_cast<double>(state),
            std::string(stream::health_state_name(
                static_cast<stream::HealthState>(prev_shard_state_[i]))) +
                "->" +
                std::string(stream::health_state_name(
                    static_cast<stream::HealthState>(state))));
        prev_shard_state_[i] = state;
        if (state == static_cast<int>(stream::HealthState::kUnhealthy)) {
          (void)config_.journal->auto_dump();
        }
      }
    }
    const int cluster_now = static_cast<int>(worst);
    if (cluster_now != prev_cluster_state_) {
      config_.journal->log(
          obs::EventKind::kHealthTransition, -1, obs::JournalEvent::kNoEpoch,
          static_cast<double>(cluster_now),
          std::string(stream::health_state_name(
              static_cast<stream::HealthState>(prev_cluster_state_))) +
              "->" + std::string(stream::health_state_name(worst)));
      const bool went_unhealthy =
          worst == stream::HealthState::kUnhealthy &&
          prev_cluster_state_ != static_cast<int>(stream::HealthState::kUnhealthy);
      prev_cluster_state_ = cluster_now;
      if (went_unhealthy) (void)config_.journal->auto_dump();
    }
  }

  obs::MetricsRegistry* const metrics = config_.meter.metrics;
  if (metrics != nullptr) {
    metrics->gauge("cluster.health.state").set(static_cast<double>(worst));
    metrics->gauge("cluster.merge_frontier")
        .set(static_cast<double>(frontier));
    metrics->gauge("cluster.frontier_lag").set(static_cast<double>(lag));
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string label = "shard_" + std::to_string(i);
      const ShardStats stats = shard_stats(i);
      metrics->gauge("cluster.shard.health_state", label)
          .set(static_cast<double>(shards_[i]->monitor->state()));
      metrics->gauge("cluster.shard.ingested", label)
          .set(static_cast<double>(stats.ingested));
      metrics->gauge("cluster.shard.matched", label)
          .set(static_cast<double>(stats.matched));
      metrics->gauge("cluster.shard.late_dropped", label)
          .set(static_cast<double>(stats.late_dropped));
      metrics->gauge("cluster.shard.next_epoch", label)
          .set(static_cast<double>(stats.next_epoch_to_close));
      metrics->gauge("cluster.shard.open_buffer_bytes", label)
          .set(static_cast<double>(stats.open_buffer_bytes));
      metrics->gauge("cluster.shard.open_buffer_bytes.peak", label)
          .set(static_cast<double>(stats.peak_open_buffer_bytes));
      if (config_.compact_state) {
        metrics->gauge("cluster.shard.compact_spills", label)
            .set(static_cast<double>(stats.compact_spills));
      }
    }
  }
  return worst;
}

json::Value ClusterRuntime::health_json() const {
  const std::int64_t frontier = merger_.merge_frontier();
  const std::int64_t progress = merger_.max_shard_progress();

  json::Array shards;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const stream::StreamHealthSignals signals =
        shards_[i]->monitor->last_signals();
    json::Object entry;
    entry.emplace("shard", number(static_cast<std::int64_t>(i)));
    entry.emplace("state",
                  json::Value(std::string(stream::health_state_name(
                      shards_[i]->monitor->state()))));
    entry.emplace("watermark_lag_ms", number(signals.watermark_lag_ms));
    entry.emplace("late_rate", number(signals.late_rate));
    entry.emplace("open_buffer_bytes", number(signals.open_buffer_bytes));
    entry.emplace("peak_open_buffer_bytes",
                  number(shards_[i]->peak_open_bytes.load(
                      std::memory_order_relaxed)));
    entry.emplace("ingested", number(signals.ingested));
    entry.emplace("matched", number(signals.matched));
    entry.emplace("late_dropped", number(signals.late_dropped));
    entry.emplace("epochs_closed", number(signals.epochs_closed));
    shards.emplace_back(std::move(entry));
  }

  json::Object root;
  root.emplace("schema", json::Value(std::string(kHealthSchema)));
  root.emplace("state", json::Value(std::string(stream::health_state_name(
                            cluster_state()))));
  root.emplace("merge_frontier", number(frontier));
  root.emplace("max_shard_progress", number(progress));
  root.emplace("frontier_lag", number(progress - frontier));
  root.emplace("shards", json::Value(std::move(shards)));
  if (config_.lag != nullptr) {
    // A "degraded" verdict names its suspect: the slowest pipeline stage and
    // the shard that accumulated the most wall time.
    root.emplace("lag", config_.lag->attribution_json());
  }
  return json::Value(std::move(root));
}

// --- checkpointing ----------------------------------------------------------

json::Value ClusterRuntime::checkpoint() {
  // Pending producer-side batches are part of the state being snapshotted:
  // flush them first (this starts the shard threads if nothing had ever
  // filled a batch — small traces live entirely in pending batches).
  if (!finished_.load(std::memory_order_acquire)) flush();
  const bool pause = started_ && !finished_;
  if (pause) pause_threads();

  json::Array shards;
  shards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shards.emplace_back(shard->engine->checkpoint());
  }
  json::Object root;
  root.emplace("schema", json::Value(std::string(kCheckpointSchema)));
  root.emplace("router", config_.router.to_json());
  root.emplace("merge_frontier", number(merger_.merge_frontier()));
  root.emplace("shards", json::Value(std::move(shards)));

  if (pause) resume_threads();
  if (config_.journal != nullptr) {
    config_.journal->log(obs::EventKind::kCheckpoint, -1,
                         obs::JournalEvent::kNoEpoch,
                         static_cast<double>(merger_.merge_frontier()));
  }
  return json::Value(std::move(root));
}

void ClusterRuntime::restore(const json::Value& checkpoint) {
  if (started_ || finished_) {
    throw ConfigError("ClusterRuntime::restore: runtime already used");
  }
  if (merger_.merged_count() != 0) {
    throw ConfigError("ClusterRuntime::restore: merger already populated");
  }
  if (checkpoint.at("schema").as_string() != kCheckpointSchema) {
    throw DataError("ClusterRuntime::restore: unknown schema '" +
                    checkpoint.at("schema").as_string() + "'");
  }
  const ShardRouter stored = ShardRouter::from_json(checkpoint.at("router"));
  if (!(stored == config_.router)) {
    throw DataError(
        "ClusterRuntime::restore: checkpoint was taken under a different "
        "routing — resumed traffic would land on the wrong shards");
  }
  const json::Array& shards = checkpoint.at("shards").as_array();
  if (shards.size() != shards_.size()) {
    throw DataError("ClusterRuntime::restore: checkpoint holds " +
                    std::to_string(shards.size()) + " shards, runtime has " +
                    std::to_string(shards_.size()));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->engine->restore(shards[i]);
  }

  // Rebuild the merger from the restored engines' closed rows. The replay is
  // silent — history records only post-restore merges, exactly as a restored
  // single engine records only post-restore closes.
  replaying_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto rows = shards_[i]->engine->closed_rows();
    for (std::size_t j = 0; j < rows.size(); ++j) {
      merger_.offer(i, config_.first_epoch + static_cast<std::int64_t>(j),
                    std::vector<estimators::EpochCell>(rows[j].begin(),
                                                       rows[j].end()));
    }
  }
  replaying_ = false;

  const std::int64_t stored_frontier =
      checkpoint.at("merge_frontier").as_int();
  if (stored_frontier != merger_.merge_frontier()) {
    throw DataError("ClusterRuntime::restore: stored merge frontier " +
                    std::to_string(stored_frontier) +
                    " does not match the replayed frontier " +
                    std::to_string(merger_.merge_frontier()));
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    mirror_counters(*shards_[i]);
  }
  if (config_.journal != nullptr) {
    config_.journal->log(obs::EventKind::kRestore, -1,
                         obs::JournalEvent::kNoEpoch,
                         static_cast<double>(merger_.merge_frontier()));
  }
}

}  // namespace botmeter::cluster
