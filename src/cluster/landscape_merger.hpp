// Watermark-aligned merge of per-shard epoch closes into the global
// landscape.
//
// Every shard engine closes its epochs independently, driven by its own
// watermark; the cluster's global statement about epoch e is only final once
// *every* shard has closed e. The merger is the synchronisation point: shard
// threads offer their closed rows as they happen (any arrival order across
// shards, ascending epochs within one shard), cells are scattered into the
// global (epoch × server) grid through the router, and once an epoch's row
// is complete *and* every earlier epoch has been emitted, the merged row is
// published — so merged epochs always come out in ascending order, exactly
// the order a single engine would close them.
//
// The *merge frontier* is the first epoch not yet fully merged: the min over
// shards of their close progress. A lagging shard (stalled feed, slow
// worker) holds the frontier back — later epochs pile up as partial rows and
// the global report simply stays silent about them — rather than ever
// publishing a row some shard could still contribute to. Frontier lag
// (max shard progress − frontier) is the cluster health monitor's signal for
// that condition.
//
// Byte-identity: a (server, epoch) cell is a pure function of the server's
// matched bucket for that epoch, and the router gives every server exactly
// one owner, so the scattered cells are the very cells a single engine's
// closes would produce. assemble() then aggregates the grid with the same
// estimators::aggregate_cells walk, in the same epoch order, as
// StreamEngine::finish — hence the merged LandscapeReport is bit-identical
// to the single-engine report over the union trace.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/shard_router.hpp"
#include "core/botmeter.hpp"
#include "estimators/estimator.hpp"

namespace botmeter::cluster {

/// One fully merged epoch: the global per-server cell row, final.
struct MergedEpoch {
  std::int64_t epoch = 0;
  std::vector<estimators::EpochCell> cells;  // width == router server_count
};

class LandscapeMerger {
 public:
  /// Invoked for every merged epoch, ascending. Runs on whichever shard
  /// thread completed the epoch, under the merger's mutex — keep it short
  /// and never call back into the merger from it.
  using MergeCallback = std::function<void(const MergedEpoch&)>;

  LandscapeMerger(const ShardRouter& router, std::int64_t first_epoch,
                  std::int64_t epoch_count);

  LandscapeMerger(const LandscapeMerger&) = delete;
  LandscapeMerger& operator=(const LandscapeMerger&) = delete;

  void on_merge(MergeCallback callback);

  /// Offer shard `shard`'s closed row for `epoch`: `local_cells[i]` is the
  /// cell of the shard's i-th owned server (the engine's local order). Each
  /// shard must offer each epoch exactly once, ascending. Thread-safe
  /// against concurrent offers and queries.
  void offer(std::size_t shard, std::int64_t epoch,
             std::vector<estimators::EpochCell> local_cells);

  // --- queries (thread-safe) ----------------------------------------------
  /// First epoch not yet fully merged (first_epoch + merged_count; one past
  /// the horizon once everything merged).
  [[nodiscard]] std::int64_t merge_frontier() const;
  [[nodiscard]] std::size_t merged_count() const;
  /// Close progress of the most advanced shard (its next epoch to close) —
  /// frontier lag = max_shard_progress() - merge_frontier().
  [[nodiscard]] std::int64_t max_shard_progress() const;
  /// Copy of one merged row; throws ConfigError when `epoch` is not merged.
  [[nodiscard]] MergedEpoch merged_epoch(std::int64_t epoch) const;

  /// Assemble the global LandscapeReport from the merged grid — requires
  /// every epoch merged (ConfigError otherwise). Same per-server
  /// aggregate_cells walk as StreamEngine::finish, hence bit-identical.
  [[nodiscard]] core::LandscapeReport assemble(
      std::string estimator_name) const;

 private:
  const ShardRouter& router_;
  const std::int64_t first_epoch_;
  const std::int64_t epoch_count_;
  MergeCallback on_merge_;

  mutable std::mutex mu_;
  /// The global cell grid, [epoch index][global server]. Rows fill as shards
  /// offer; `arrived_[i]` counts contributing shards; rows below `merged_`
  /// are final.
  std::vector<std::vector<estimators::EpochCell>> rows_;
  std::vector<std::size_t> arrived_;
  std::size_t merged_ = 0;
  /// Per-shard close progress (epochs offered so far).
  std::vector<std::size_t> shard_progress_;
};

}  // namespace botmeter::cluster
