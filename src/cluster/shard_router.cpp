#include "cluster/shard_router.hpp"

#include <string>

#include "common/error.hpp"

namespace botmeter::cluster {

namespace {

constexpr const char* kModeRange = "range";
constexpr const char* kModeExplicit = "explicit";

}  // namespace

ShardRouter ShardRouter::by_range(std::size_t server_count,
                                  std::size_t shard_count) {
  if (server_count == 0 || shard_count == 0) {
    throw ConfigError("ShardRouter: server_count and shard_count must be > 0");
  }
  if (shard_count > server_count) {
    throw ConfigError("ShardRouter: " + std::to_string(shard_count) +
                      " shards over " + std::to_string(server_count) +
                      " servers would leave a shard empty");
  }
  ShardRouter router;
  router.range_mode_ = true;
  router.shard_of_server_.resize(server_count);
  const std::size_t base = server_count / shard_count;
  const std::size_t extra = server_count % shard_count;
  std::size_t server = 0;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::size_t width = base + (shard < extra ? 1 : 0);
    for (std::size_t i = 0; i < width; ++i) {
      router.shard_of_server_[server++] = static_cast<std::uint32_t>(shard);
    }
  }
  router.build_inverse(shard_count);
  return router;
}

ShardRouter ShardRouter::explicit_assignment(
    std::vector<std::uint32_t> shard_of_server, std::size_t shard_count) {
  if (shard_of_server.empty() || shard_count == 0) {
    throw ConfigError("ShardRouter: assignment and shard_count must be non-empty");
  }
  for (std::size_t s = 0; s < shard_of_server.size(); ++s) {
    if (shard_of_server[s] >= shard_count) {
      throw ConfigError("ShardRouter: server " + std::to_string(s) +
                        " assigned to shard " +
                        std::to_string(shard_of_server[s]) + " of only " +
                        std::to_string(shard_count));
    }
  }
  ShardRouter router;
  router.range_mode_ = false;
  router.shard_of_server_ = std::move(shard_of_server);
  router.build_inverse(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    if (router.servers_of_[shard].empty()) {
      throw ConfigError("ShardRouter: shard " + std::to_string(shard) +
                        " owns no servers");
    }
  }
  return router;
}

void ShardRouter::build_inverse(std::size_t shard_count) {
  servers_of_.assign(shard_count, {});
  local_index_.resize(shard_of_server_.size());
  for (std::uint32_t server = 0; server < shard_of_server_.size(); ++server) {
    std::vector<std::uint32_t>& owned = servers_of_[shard_of_server_[server]];
    local_index_[server] = static_cast<std::uint32_t>(owned.size());
    owned.push_back(server);  // ascending: servers visited in id order
  }
}

std::size_t ShardRouter::shard_of(std::uint32_t server) const {
  if (server >= shard_of_server_.size()) {
    throw ConfigError("ShardRouter: server id " + std::to_string(server) +
                      " outside the routed width " +
                      std::to_string(shard_of_server_.size()));
  }
  return shard_of_server_[server];
}

std::uint32_t ShardRouter::local_index(std::uint32_t server) const {
  if (server >= local_index_.size()) {
    throw ConfigError("ShardRouter: server id " + std::to_string(server) +
                      " outside the routed width " +
                      std::to_string(local_index_.size()));
  }
  return local_index_[server];
}

const std::vector<std::uint32_t>& ShardRouter::servers_of(
    std::size_t shard) const {
  if (shard >= servers_of_.size()) {
    throw ConfigError("ShardRouter: shard " + std::to_string(shard) +
                      " outside the shard count " +
                      std::to_string(servers_of_.size()));
  }
  return servers_of_[shard];
}

json::Value ShardRouter::to_json() const {
  json::Object o;
  o.emplace("server_count",
            json::Value(static_cast<double>(shard_of_server_.size())));
  o.emplace("shard_count", json::Value(static_cast<double>(servers_of_.size())));
  if (range_mode_) {
    o.emplace("mode", json::Value(std::string(kModeRange)));
  } else {
    o.emplace("mode", json::Value(std::string(kModeExplicit)));
    json::Array assignment;
    assignment.reserve(shard_of_server_.size());
    for (const std::uint32_t shard : shard_of_server_) {
      assignment.push_back(json::Value(static_cast<double>(shard)));
    }
    o.emplace("assignment", json::Value(std::move(assignment)));
  }
  return json::Value(std::move(o));
}

ShardRouter ShardRouter::from_json(const json::Value& value) {
  const std::string mode = value.at("mode").as_string();
  const auto server_count =
      static_cast<std::size_t>(value.at("server_count").as_int());
  const auto shard_count =
      static_cast<std::size_t>(value.at("shard_count").as_int());
  if (mode == kModeRange) {
    return by_range(server_count, shard_count);
  }
  if (mode != kModeExplicit) {
    throw DataError("ShardRouter: unknown router mode '" + mode + "'");
  }
  const json::Array& assignment = value.at("assignment").as_array();
  if (assignment.size() != server_count) {
    throw DataError("ShardRouter: assignment length " +
                    std::to_string(assignment.size()) +
                    " does not match server_count " +
                    std::to_string(server_count));
  }
  std::vector<std::uint32_t> shard_of_server;
  shard_of_server.reserve(assignment.size());
  for (const json::Value& entry : assignment) {
    const std::int64_t shard = entry.as_int();
    if (shard < 0) throw DataError("ShardRouter: negative shard id");
    shard_of_server.push_back(static_cast<std::uint32_t>(shard));
  }
  try {
    return explicit_assignment(std::move(shard_of_server), shard_count);
  } catch (const ConfigError& e) {
    // A structurally invalid stored router is corrupt data, not a caller
    // configuration mistake.
    throw DataError(std::string("ShardRouter: invalid stored router: ") +
                    e.what());
  }
}

}  // namespace botmeter::cluster
