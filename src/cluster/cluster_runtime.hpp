// The multi-border cluster runtime: N sharded stream engines behind one
// global landscape.
//
// A large network taps several border vantage points at once (§II, Fig. 2:
// one collector per border resolver). One StreamEngine cannot ingest every
// border's feed — it is single-threaded by contract — so the cluster runtime
// owns one engine per shard, each on its own worker thread behind a bounded
// ingest queue, routes traffic by server ownership (ShardRouter), and merges
// per-shard epoch closes into the global landscape through a
// watermark-aligned LandscapeMerger. The merged LandscapeReport, the
// recorded landscape_series.v1 history, and the canonical landscape JSON are
// all **byte-identical** to a single engine analyzing the union trace — for
// every shard count, every per-shard worker count, and both codec paths —
// because a (server, epoch) cell is a pure function of the server's matched
// bucket and every server is owned by exactly one shard.
//
// Data path. Producers hand the runtime tuples (per-tuple or columnar
// blocks); the runtime scatters them by router onto per-shard pending
// batches, re-interning domains into each shard's own string table (shard
// engines never share producer tables — each shard thread owns its table,
// so no cross-thread view ever dangles). Batches flush to the shard queue
// when full, on advance()/flush(), and at checkpoint/finish barriers; a full
// queue blocks the producer — backpressure, never loss. Inside a shard
// everything is columnar: the engine's ingest_block path is tuple-for-tuple
// identical to per-tuple ingest, which is what lets the cluster batch at
// the boundary without changing a single bit of the result.
//
// Pre-split feeds. When the feed is already divided by border (one capture
// per vantage), shard_feed(i) returns a direct handle bound to shard i with
// its own scatter state — one producer thread per shard, no global
// fan-out bottleneck. Feed handles and the cluster-level ingest calls share
// per-shard scatter state and must not run concurrently with each other.
//
// Lateness caveat (same as the engine's stream≡batch equivalence): each
// shard's watermark advances on *its* traffic only, so shards are more
// lenient about late tuples than a single engine over the interleaved union
// would be. Byte-identity therefore holds whenever nothing is dropped late
// on either side; a run that drops differs exactly by the dropped evidence.
//
// Checkpointing generalizes the engine envelope: botmeter.cluster_checkpoint.v1
// = router + merge frontier + one botmeter.stream_checkpoint.v1 per shard.
// checkpoint() drains the queues, pauses every shard thread at an item
// boundary, snapshots, and resumes; restore() loads each shard engine,
// replays their closed rows into a fresh merger (silently — history only
// records post-restore merges, mirroring StreamEngine::restore), and
// cross-checks the stored frontier.
//
// Health. Each shard carries a StreamHealthMonitor sampled on its own
// thread (engine accessors are not synchronized); the cluster folds the
// worst shard state with the merge-frontier lag — a lagging shard both
// degrades the cluster state and holds the global landscape back, by
// construction — into one state /healthz keys on.
//
// See DESIGN.md §11 for the full architecture and equivalence argument.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/landscape_merger.hpp"
#include "cluster/shard_router.hpp"
#include "common/json.hpp"
#include "common/time.hpp"
#include "core/botmeter.hpp"
#include "dns/vantage.hpp"
#include "stream/health_monitor.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::obs {
class EventJournal;
class LagTracker;
class LandscapeHistory;
}  // namespace botmeter::obs

namespace botmeter::cluster {

struct ClusterConfig {
  /// The analysis configuration every shard engine runs under. The obs
  /// pointers (metrics/trace/history) are *cluster-level*: shard engines get
  /// them nulled (their series would collide across shards) and the runtime
  /// publishes `cluster.*` series and merged history rows itself.
  core::BotMeterConfig meter;

  /// Epoch horizon, as for StreamEngine.
  std::int64_t first_epoch = 0;
  std::int64_t epoch_count = 1;

  /// Server ownership map; also fixes shard count and global report width.
  ShardRouter router;

  /// Estimation worker threads per shard engine (close-time parallelism;
  /// bit-identical for every value).
  std::size_t shard_worker_threads = 1;

  /// Passed through to every shard engine.
  std::optional<Duration> allowed_lateness;

  /// Bounded-memory mode, passed through to every shard engine (see
  /// stream::StreamEngineConfig): open buckets past the spill threshold fold
  /// into sketch-backed compact cells, and spilled cells' estimates surface
  /// in merged landscapes/history flagged approximate with the sketch error
  /// propagated. Off ⇒ cluster output is byte-identical to the exact path.
  bool compact_state = false;
  std::size_t compact_spill_threshold = 8192;
  estimators::CompactObservationConfig compact;

  /// Bounded ingest queue depth per shard, in batches. A full queue blocks
  /// the producer (backpressure, never loss).
  std::size_t queue_capacity = 64;

  /// Producer-side batching: pending tuples per shard before a batch is
  /// enqueued. Purely a throughput knob — results are bit-identical for any
  /// value because the engine's block path equals its per-tuple path.
  std::size_t flush_tuples = 8192;

  /// Per-shard health thresholds. When set, the runtime samples every shard
  /// monitor on sample_health(), folds states into the cluster state, and
  /// stamps that state onto merged history rows (when unset, rows carry no
  /// health — the batch/single-engine-compatible mode determinism tests use).
  std::optional<stream::StreamHealthConfig> health;

  /// Merge-frontier lag (epochs the fastest shard is ahead of the slowest)
  /// at which the *cluster* degrades even if every shard is individually ok:
  /// the global landscape is being held back.
  std::int64_t degraded_frontier_lag = 2;
  std::int64_t unhealthy_frontier_lag = 8;

  /// Optional merged-landscape time-series sink: one row per *merged* epoch,
  /// byte-identical to the rows a single engine over the union trace would
  /// record (when neither stamps health). Observational only.
  obs::LandscapeHistory* history = nullptr;

  /// Optional lag attribution sink (must be built for exactly this shard
  /// count): per-(shard, stage) wall-time histograms plus the per-epoch
  /// straggler table. Observational only — a null tracker means no clock
  /// reads on the ingest path, and results are byte-identical either way.
  obs::LagTracker* lag = nullptr;

  /// Optional flight recorder: health transitions, epoch closes, watermark
  /// advances, checkpoint/restore, queue saturation, and merge publishes
  /// each append one structured event (shard-level events carry the shard
  /// index, cluster-level events -1). sample_health() auto-dumps the journal
  /// the moment the cluster turns unhealthy when a dump path is configured.
  /// Observational only, same null contract as `lag`.
  obs::EventJournal* journal = nullptr;

  void validate() const;
};

/// Point-in-time per-shard counters, readable from any thread.
struct ShardStats {
  std::uint64_t ingested = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t late_dropped = 0;
  /// Next epoch the shard will close (first_epoch + its closes so far).
  std::int64_t next_epoch_to_close = 0;
  /// Bytes held by the shard engine's open-epoch buffers (exact vector
  /// capacities plus compact-cell footprints), and the run's high-water
  /// mark — the memory the compact observation path bounds.
  std::uint64_t open_buffer_bytes = 0;
  std::uint64_t peak_open_buffer_bytes = 0;
  /// Exact buffers folded into sketch cells so far (0 when compact_state
  /// is off).
  std::uint64_t compact_spills = 0;
};

class ClusterRuntime;

/// Direct ingest handle bound to one shard, for feeds already split by
/// border vantage. Obtain via ClusterRuntime::shard_feed(). One producer
/// thread per feed; a feed shares its shard's scatter state with the
/// cluster-level ingest calls, so the two must not run concurrently.
class ShardFeed {
 public:
  /// `lookup.forwarder` must be a *global* server id owned by this feed's
  /// shard (ConfigError otherwise — a misrouted tuple is a wiring bug, never
  /// silently re-routed).
  void ingest(const dns::ForwardedLookup& lookup);
  void ingest(std::span<const dns::ForwardedLookup> batch);

  /// Columnar ingest; `domains` is this feed's producer table (one interning
  /// lineage per feed, as for StreamEngine::ingest_block). Server column
  /// holds global ids owned by this shard.
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string_view> domains);
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string> domains);

  /// Advance this shard's watermark without data.
  void advance(TimePoint watermark);

  /// Enqueue any pending partial batch.
  void flush();

  [[nodiscard]] std::size_t shard() const { return shard_; }

 private:
  friend class ClusterRuntime;
  ShardFeed(ClusterRuntime* runtime, std::size_t shard)
      : runtime_(runtime), shard_(shard) {}

  ClusterRuntime* runtime_;
  std::size_t shard_;
};

class ClusterRuntime {
 public:
  explicit ClusterRuntime(ClusterConfig config);
  ~ClusterRuntime();

  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  // --- ingest (single producer thread; scatters across all shards) ---------
  void ingest(const dns::ForwardedLookup& lookup);
  void ingest(std::span<const dns::ForwardedLookup> batch);

  /// Columnar ingest of one producer-lineage block (server column holds
  /// global ids); domains re-intern per shard, one hash per distinct
  /// producer id per shard, ever.
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string_view> domains);
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string> domains);

  /// Advance every shard's watermark (a quiet border still makes time pass).
  /// Flushes pending batches first so closes happen in ingest order.
  void advance(TimePoint watermark);

  /// Enqueue all pending partial batches.
  void flush();

  /// Per-shard direct handle (see ShardFeed). Valid for the runtime's
  /// lifetime.
  [[nodiscard]] ShardFeed shard_feed(std::size_t shard);

  /// Drain queues, stop the shard threads, close every remaining epoch, and
  /// return the merged global landscape — byte-identical to a single
  /// engine's finish() over the union trace (late-drop caveat above). The
  /// runtime is sealed afterwards.
  [[nodiscard]] core::LandscapeReport finish();

  // --- introspection (any thread) ------------------------------------------
  [[nodiscard]] std::size_t shard_count() const {
    return config_.router.shard_count();
  }
  [[nodiscard]] const ShardRouter& router() const { return config_.router; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] ShardStats shard_stats(std::size_t shard) const;
  /// First epoch not yet merged across every shard.
  [[nodiscard]] std::int64_t merge_frontier() const {
    return merger_.merge_frontier();
  }
  /// Close progress of the fastest shard; the gap to merge_frontier() is the
  /// frontier lag a laggard causes.
  [[nodiscard]] std::int64_t max_shard_progress() const {
    return merger_.max_shard_progress();
  }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const LandscapeMerger& merger() const { return merger_; }

  // --- health --------------------------------------------------------------
  /// Queue a health sample on every shard thread (monitors must sample on
  /// the thread that owns the engine), then fold the *previous* samples plus
  /// the current frontier lag into the cluster state. Call periodically from
  /// the control/scrape thread with monotonic wall milliseconds; also
  /// publishes cluster.* gauges when a metrics registry is attached.
  stream::HealthState sample_health(double now_ms);
  [[nodiscard]] stream::HealthState cluster_state() const {
    return static_cast<stream::HealthState>(
        cluster_state_.load(std::memory_order_relaxed));
  }
  /// Canonical cluster health document (schema botmeter.cluster_health.v1):
  /// cluster state + frontier, plus one entry per shard with its state and
  /// signal vector. Any thread.
  [[nodiscard]] json::Value health_json() const;

  // --- checkpointing -------------------------------------------------------
  /// Serialize the whole cluster (schema botmeter.cluster_checkpoint.v1):
  /// router, merge frontier, and one per-shard stream checkpoint. Drains the
  /// shard queues and pauses every shard thread at an item boundary for the
  /// snapshot, so the envelope is a consistent cut; producers must not
  /// ingest concurrently with checkpoint().
  [[nodiscard]] json::Value checkpoint();

  /// Load a cluster checkpoint into a freshly constructed runtime (nothing
  /// ingested, threads not yet started). The stored router must equal the
  /// configured one — a different routing would scatter resumed traffic onto
  /// the wrong engines — and the stored frontier must match the replayed
  /// merger's. Throws DataError on any mismatch; on failure the runtime may
  /// not be used further.
  void restore(const json::Value& checkpoint);

 private:
  friend class ShardFeed;

  /// One unit of shard-thread work. Columns are shard-local: `server` holds
  /// local dense indices, `domain` holds shard-table ids, `new_strings` are
  /// the table entries this batch introduces (appended by the shard thread
  /// before ingesting, preserving id order).
  struct ShardBatch {
    std::vector<std::int64_t> t_ms;
    std::vector<std::uint32_t> server;
    std::vector<std::uint32_t> domain;
    std::vector<std::string> new_strings;
    std::optional<TimePoint> advance;
    std::optional<double> sample_now_ms;

    // Lag/flow metadata, stamped only when instrumentation is attached
    // (obs_now_ms is never read otherwise). Not data: empty() ignores it.
    /// When the batch's first tuple entered the pending scatter state.
    double formed_ms = 0.0;
    /// When the batch landed on the shard queue.
    double enqueued_ms = 0.0;
    /// Perfetto flow id linking the producer span to the shard-ingest span.
    std::uint64_t flow_id = 0;

    [[nodiscard]] bool empty() const {
      return t_ms.empty() && new_strings.empty() && !advance && !sample_now_ms;
    }
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Producer-side scatter state for one shard: the pending batch plus the
  /// interning maps that translate producer domains to shard-table ids.
  /// Owned by whichever single producer currently feeds the shard.
  struct ShardScatter {
    ShardBatch pending;
    /// domain string -> shard-table id (covers both ingest paths).
    std::unordered_map<std::string, std::uint32_t, StringHash,
                       std::equal_to<>>
        intern;
    /// producer block-table id -> shard-table id (kNoRemap = not yet seen).
    std::vector<std::uint32_t> remap;
    /// Shard-table size after every enqueued batch + pending.new_strings.
    std::uint32_t next_id = 0;
  };

  /// Shard-thread-side state: the bounded queue and the engine's string
  /// table. `storage` is a deque so the string_view table never dangles on
  /// growth; both are touched only by the shard thread once started.
  struct Shard {
    std::size_t index = 0;
    std::unique_ptr<stream::StreamEngine> engine;
    std::unique_ptr<stream::StreamHealthMonitor> monitor;
    ShardScatter scatter;
    /// How many of the engine's close_latencies_ms() entries were already
    /// drained into the lag tracker's epoch_close stage. Touched only by
    /// whichever thread currently drives the engine (shard thread, or the
    /// control thread during finish()).
    std::size_t close_latency_cursor = 0;

    std::mutex mu;
    std::condition_variable cv_push;   // producer waits: queue full
    std::condition_variable cv_pop;    // thread waits: queue empty
    std::condition_variable cv_idle;   // checkpoint waits: thread paused
    std::deque<ShardBatch> queue;
    bool stop = false;
    bool pause = false;
    bool idle = false;

    std::deque<std::string> storage;
    std::vector<std::string_view> table;

    // Point-in-time counters mirrored by the shard thread after each batch.
    std::atomic<std::uint64_t> ingested{0};
    std::atomic<std::uint64_t> matched{0};
    std::atomic<std::uint64_t> unmatched{0};
    std::atomic<std::uint64_t> late_dropped{0};
    std::atomic<std::int64_t> next_epoch{0};
    std::atomic<std::uint64_t> open_bytes{0};
    std::atomic<std::uint64_t> peak_open_bytes{0};
    std::atomic<std::uint64_t> compact_spills{0};

    std::thread thread;
  };

  void ensure_started();
  void shard_main(std::size_t index);
  void apply_batch(Shard& shard, ShardBatch& batch);
  /// Copy the engine's counters into the shard's atomic mirrors. Must run on
  /// the thread that currently owns the engine.
  static void mirror_counters(Shard& shard);
  void enqueue(std::size_t shard, ShardBatch batch);
  void flush_shard(std::size_t shard);
  [[nodiscard]] std::uint32_t intern_domain(ShardScatter& scatter,
                                            std::string_view domain);
  void scatter_tuple(std::size_t shard, std::int64_t t_ms,
                     std::uint32_t local_server, std::uint32_t local_domain);
  void feed_ingest(std::size_t shard, const dns::ForwardedLookup& lookup);
  void feed_ingest_block(std::size_t shard, const dns::LookupColumns& block,
                         std::span<const std::string_view> domains);
  void feed_advance(std::size_t shard, TimePoint watermark);
  void handle_close(std::size_t shard, std::int64_t epoch);
  void handle_merge(const MergedEpoch& merged);
  void stop_threads();
  void pause_threads();
  void resume_threads();
  /// Instrumentation clock: the attached trace session's timeline when there
  /// is one (so lag spans align with its spans), else milliseconds since
  /// construction. Only called when instr_ is set.
  [[nodiscard]] double obs_now_ms() const;
  /// Push any engine close latencies past the shard's cursor into the lag
  /// tracker's epoch_close stage.
  void drain_close_latencies(Shard& shard);

  ClusterConfig config_;
  std::string estimator_name_;
  LandscapeMerger merger_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// True when any of lag/journal/trace is attached — the single gate every
  /// instrumentation point tests before touching a clock.
  bool instr_ = false;
  std::chrono::steady_clock::time_point origin_;
  /// Epoch -> flow id minted at the triggering close, consumed by the merge
  /// publish span (the offer that completes an epoch merges it on the same
  /// thread, so the last writer is the one handle_merge reads).
  std::mutex flow_mu_;
  std::unordered_map<std::int64_t, std::uint64_t> close_flow_;
  /// Previous health states (control thread only): journal transitions.
  std::vector<int> prev_shard_state_;
  int prev_cluster_state_ = 0;
  /// Guards the one-time thread spawn: feeds for different shards may ingest
  /// concurrently, and whichever enqueues first starts the threads.
  std::mutex start_mu_;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  /// Suppresses history recording while restore() replays closed rows.
  bool replaying_ = false;
  std::atomic<int> cluster_state_{0};
};

}  // namespace botmeter::cluster
