#include "viz/landscape.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "viz/ascii.hpp"

namespace botmeter::viz {

std::string render_landscape(const core::LandscapeReport& report,
                             std::span<const double> actual) {
  if (!actual.empty() && actual.size() != report.servers.size()) {
    throw ConfigError("render_landscape: actual size must match server count");
  }

  // Order servers by estimated population, descending: the remediation
  // priority of §I.
  std::vector<std::size_t> order(report.servers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.servers[a].population > report.servers[b].population;
  });

  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(order.size());
  bool any_approximate = false;
  for (std::size_t i : order) {
    const core::ServerEstimate& s = report.servers[i];
    std::string label = "server-" + std::to_string(s.server.value());
    // "~" marks a sketch-approximate estimate (compact observation path).
    if (s.approximate) {
      label += "~";
      any_approximate = true;
    }
    if (!actual.empty()) {
      char note[32];
      std::snprintf(note, sizeof(note), " (actual %.0f)", actual[i]);
      label += note;
    }
    rows.emplace_back(std::move(label), s.population);
  }

  std::ostringstream os;
  os << "botnet landscape (" << report.estimator_name
     << " estimator), remediation order:\n";
  os << bar_chart(rows);
  if (any_approximate) {
    os << "~ = sketch-approximate estimate (compact state; CI widened by the "
          "sketch error)\n";
  }
  char total[64];
  std::snprintf(total, sizeof(total), "total estimated population: %.1f\n",
                report.total_population());
  os << total;
  return os.str();
}

std::string render_series(std::span<const Series> series) {
  std::size_t label_width = 0;
  for (const Series& s : series) {
    label_width = std::max(label_width, s.label.size());
  }
  std::ostringstream os;
  for (const Series& s : series) {
    double lo = 0.0, hi = 0.0, last = 0.0;
    if (!s.values.empty()) {
      lo = *std::min_element(s.values.begin(), s.values.end());
      hi = *std::max_element(s.values.begin(), s.values.end());
      last = s.values.back();
    }
    os << s.label << std::string(label_width - s.label.size(), ' ') << " |"
       << sparkline(s.values) << "|";
    char annotation[64];
    std::snprintf(annotation, sizeof(annotation),
                  " min %.1f last %.1f max %.1f", lo, last, hi);
    os << annotation << '\n';
  }
  return os.str();
}

std::string render_threat_grid(const std::vector<std::string>& server_labels,
                               const std::vector<std::string>& family_labels,
                               const std::vector<std::vector<double>>& populations) {
  std::ostringstream os;
  os << "threat grid (rows: servers, cols: families; darker = more bots)\n";
  os << heatmap(server_labels, family_labels, populations);
  return os.str();
}

namespace {

/// Columns a sparkline row spends on everything that is not the sparkline:
/// the " |"/"|" frame plus the widest " min X last Y max Z" annotation the
/// %.1f format produces for plausible populations.
constexpr std::size_t kRowOverhead = 3 + 34;

}  // namespace

std::string render_top(const TopFrame& frame) {
  if (frame.server_labels.size() != frame.populations.size()) {
    throw ConfigError("render_top: one population row per server label");
  }
  for (const std::vector<double>& row : frame.populations) {
    if (row.size() != frame.epochs.size()) {
      throw ConfigError("render_top: every row must cover the epoch window");
    }
  }

  std::vector<double> totals(frame.epochs.size(), 0.0);
  for (const std::vector<double>& row : frame.populations) {
    for (std::size_t e = 0; e < row.size(); ++e) totals[e] += row[e];
  }

  std::ostringstream os;
  os << "botmeter_top - " << frame.family << " landscape ("
     << frame.estimator << " estimator)";
  if (frame.health) os << " [health: " << *frame.health << "]";
  if (!frame.epochs.empty()) {
    os << "  epochs " << frame.epochs.front() << ".." << frame.epochs.back();
    char latest[48];
    std::snprintf(latest, sizeof(latest), "  total %.1f",
                  totals.empty() ? 0.0 : totals.back());
    os << latest;
  }
  os << '\n';

  // Not-yet-populated history: one honest placeholder, never empty
  // sparkline rows annotated with fabricated zeros.
  if (frame.epochs.empty()) {
    os << "(no epochs recorded yet)\n";
    return os.str();
  }

  // Clamp to the terminal budget by showing only the most recent epochs
  // that fit beside the labels and annotations. Always at least one column.
  std::size_t first = 0;
  if (frame.max_width > 0) {
    std::size_t label_width = 5;  // "total"
    for (const std::string& label : frame.server_labels) {
      label_width = std::max(label_width, label.size());
    }
    const std::size_t overhead = label_width + kRowOverhead;
    const std::size_t cols =
        std::clamp<std::size_t>(
            frame.max_width > overhead ? frame.max_width - overhead : 1, 1,
            frame.epochs.size());
    first = frame.epochs.size() - cols;
  }

  std::vector<Series> series;
  series.reserve(frame.server_labels.size() + 1);
  series.push_back(Series{
      "total", std::vector<double>(totals.begin() +
                                       static_cast<std::ptrdiff_t>(first),
                                   totals.end())});
  for (std::size_t s = 0; s < frame.server_labels.size(); ++s) {
    const std::vector<double>& row = frame.populations[s];
    series.push_back(Series{
        frame.server_labels[s],
        std::vector<double>(row.begin() + static_cast<std::ptrdiff_t>(first),
                            row.end())});
  }
  os << render_series(series);
  return os.str();
}

}  // namespace botmeter::viz
