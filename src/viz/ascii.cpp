#include "viz/ascii.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace botmeter::viz {

namespace {

constexpr char kLevels[] = " .:-=+*#%@";
constexpr std::size_t kLevelCount = sizeof(kLevels) - 1;  // 10 levels

/// Map value in [0, max] to an intensity character; max <= 0 maps all to ' '.
char intensity(double value, double max) {
  if (max <= 0.0 || value <= 0.0) return kLevels[0];
  const double unit = std::min(value / max, 1.0);
  auto level = static_cast<std::size_t>(unit * (kLevelCount - 1) + 0.5);
  return kLevels[std::min(level, kLevelCount - 1)];
}

std::string format_value(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", v);
  return buffer;
}

}  // namespace

std::string bar_chart(std::span<const std::pair<std::string, double>> rows,
                      const BarChartOptions& options) {
  if (options.max_bar_width == 0) {
    throw ConfigError("bar_chart: max_bar_width must be positive");
  }
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& [label, value] : rows) {
    if (value < 0.0) throw ConfigError("bar_chart: negative value");
    label_width = std::max(label_width, label.size());
    max_value = std::max(max_value, value);
  }

  std::ostringstream os;
  for (const auto& [label, value] : rows) {
    os << label << std::string(label_width - label.size(), ' ') << " |";
    const std::size_t width =
        max_value > 0.0
            ? static_cast<std::size_t>(value / max_value *
                                           static_cast<double>(options.max_bar_width) +
                                       0.5)
            : 0;
    os << std::string(width, options.fill);
    if (options.show_values) {
      os << ' ' << format_value(value);
    }
    os << '\n';
  }
  return os.str();
}

std::string sparkline(std::span<const double> values) {
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string line;
  line.reserve(values.size());
  const double range = hi - lo;
  for (double v : values) {
    if (range <= 0.0) {
      // Constant series: lowest visible level (blank would read as "no data").
      line.push_back(kLevels[1]);
      continue;
    }
    const double unit = (v - lo) / range;
    auto level = static_cast<std::size_t>(unit * (kLevelCount - 2) + 0.5) + 1;
    line.push_back(kLevels[std::min(level, kLevelCount - 1)]);
  }
  return line;
}

std::string heatmap(const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels,
                    const std::vector<std::vector<double>>& cells) {
  if (cells.size() != row_labels.size()) {
    throw ConfigError("heatmap: row label / cell count mismatch");
  }
  double max_value = 0.0;
  for (const auto& row : cells) {
    if (row.size() != col_labels.size()) {
      throw ConfigError("heatmap: ragged cell rows");
    }
    for (double v : row) {
      if (v < 0.0) throw ConfigError("heatmap: negative cell");
      max_value = std::max(max_value, v);
    }
  }
  std::size_t label_width = 0;
  for (const auto& label : row_labels) {
    label_width = std::max(label_width, label.size());
  }
  std::size_t col_width = 1;
  for (const auto& label : col_labels) {
    col_width = std::max(col_width, label.size());
  }

  std::ostringstream os;
  os << std::string(label_width, ' ');
  for (const auto& label : col_labels) {
    os << ' ' << std::string(col_width - label.size(), ' ') << label;
  }
  os << '\n';
  for (std::size_t r = 0; r < cells.size(); ++r) {
    os << row_labels[r] << std::string(label_width - row_labels[r].size(), ' ');
    for (double v : cells[r]) {
      os << ' ' << std::string(col_width - 1, ' ') << intensity(v, max_value);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace botmeter::viz
