// Visual-analytics views over BotMeter outputs (paper future-work #2).
//
// Three views cover the analyst workflow the paper motivates:
//  - render_landscape: per-server population bars with a remediation
//    ordering ("prioritize the remediation efforts", §I);
//  - render_series: daily estimate sparklines per family (the Fig. 7 view);
//  - render_threat_grid: server x family heatmap for multi-family sweeps.
// ...and render_top: the live terminal-dashboard frame botmeter_top redraws
// from a landscape time-series (total-population sparkline plus per-server
// heat rows over the displayed epoch window).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/botmeter.hpp"

namespace botmeter::viz {

/// Bar-chart view of a landscape report, servers ordered by estimated
/// population (the remediation priority). If `actual` is non-empty it must
/// hold one ground-truth value per server and is annotated for evaluation
/// runs.
[[nodiscard]] std::string render_landscape(const core::LandscapeReport& report,
                                           std::span<const double> actual = {});

/// One named time series (e.g. a family's daily population estimates).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Sparkline panel: one row per series with min/last/max annotations.
[[nodiscard]] std::string render_series(std::span<const Series> series);

/// Server x family threat grid: `populations[s][f]` is the estimated
/// population of family `f` behind server `s`.
[[nodiscard]] std::string render_threat_grid(
    const std::vector<std::string>& server_labels,
    const std::vector<std::string>& family_labels,
    const std::vector<std::vector<double>>& populations);

/// One frame of the botmeter_top dashboard: a family's landscape series
/// over the displayed epoch window, as reconstructed from a
/// botmeter.landscape_series.v1 document (live endpoint or history file).
struct TopFrame {
  std::string family;
  std::string estimator;
  /// Stream health state word at the latest snapshot, when recorded.
  std::optional<std::string> health;
  std::vector<std::int64_t> epochs;        // ascending, the visible window
  std::vector<std::string> server_labels;  // one per server row
  /// populations[s][e]: estimate for server s at epochs[e]; every row must
  /// be epochs.size() wide (render_top throws ConfigError otherwise).
  std::vector<std::vector<double>> populations;
  /// Terminal width budget in columns; 0 = unlimited. When the frame is
  /// wider than the budget, the sparklines are clamped by showing only the
  /// most recent epochs that fit next to the labels and annotations (the
  /// header still names the full window).
  std::size_t max_width = 0;
};

/// Render one dashboard frame: a header line (family, estimator, health,
/// epoch window, latest total), the total-population sparkline, then one
/// sparkline heat row per server with min/last/max annotations. Pure 7-bit
/// ASCII — the caller owns screen clearing / cursor control. A frame with
/// no epochs renders the header plus a single placeholder line instead of
/// empty sparkline rows.
[[nodiscard]] std::string render_top(const TopFrame& frame);

}  // namespace botmeter::viz
