// Visual-analytics views over BotMeter outputs (paper future-work #2).
//
// Three views cover the analyst workflow the paper motivates:
//  - render_landscape: per-server population bars with a remediation
//    ordering ("prioritize the remediation efforts", §I);
//  - render_series: daily estimate sparklines per family (the Fig. 7 view);
//  - render_threat_grid: server x family heatmap for multi-family sweeps.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/botmeter.hpp"

namespace botmeter::viz {

/// Bar-chart view of a landscape report, servers ordered by estimated
/// population (the remediation priority). If `actual` is non-empty it must
/// hold one ground-truth value per server and is annotated for evaluation
/// runs.
[[nodiscard]] std::string render_landscape(const core::LandscapeReport& report,
                                           std::span<const double> actual = {});

/// One named time series (e.g. a family's daily population estimates).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Sparkline panel: one row per series with min/last/max annotations.
[[nodiscard]] std::string render_series(std::span<const Series> series);

/// Server x family threat grid: `populations[s][f]` is the estimated
/// population of family `f` behind server `s`.
[[nodiscard]] std::string render_threat_grid(
    const std::vector<std::string>& server_labels,
    const std::vector<std::string>& family_labels,
    const std::vector<std::vector<double>>& populations);

}  // namespace botmeter::viz
