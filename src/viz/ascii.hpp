// Plain-ASCII chart primitives for terminal dashboards.
//
// The paper's future-work list (§VII, item 2) calls for "visual analytical
// components to fully exploit BotMeter's potential". This module provides
// the rendering primitives — horizontal bar charts, sparklines, and
// intensity heatmaps — used by viz::landscape to chart estimates. Output is
// pure 7-bit ASCII so it renders in any terminal or log file.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace botmeter::viz {

struct BarChartOptions {
  std::size_t max_bar_width = 50;  // widest bar, in characters
  bool show_values = true;         // append the numeric value after each bar
  char fill = '#';
};

/// Horizontal bar chart, one row per (label, value). Values must be
/// non-negative; bars are scaled so the maximum value fills max_bar_width.
/// All-zero input renders empty bars.
[[nodiscard]] std::string bar_chart(
    std::span<const std::pair<std::string, double>> rows,
    const BarChartOptions& options = {});

/// One-line sparkline: each value maps to one of ten ASCII intensity levels
/// (" .:-=+*#%@"), scaled to [min, max] of the series. Empty input yields an
/// empty string; a constant series renders at the lowest non-blank level.
[[nodiscard]] std::string sparkline(std::span<const double> values);

/// Intensity heatmap with row and column labels. `cells[r][c]` must be
/// non-negative and every row must have col_labels.size() entries. Intensity
/// is scaled to the global maximum.
[[nodiscard]] std::string heatmap(const std::vector<std::string>& row_labels,
                                  const std::vector<std::string>& col_labels,
                                  const std::vector<std::vector<double>>& cells);

}  // namespace botmeter::viz
