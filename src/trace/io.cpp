#include "trace/io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>
#include <type_traits>

#include "common/error.hpp"

namespace botmeter::trace {

namespace {

[[noreturn]] void malformed(std::size_t line_no, std::string_view reason,
                            std::string_view line) {
  throw DataError("trace parse error at line " + std::to_string(line_no) +
                  ": " + std::string(reason) + " in '" + std::string(line) +
                  "'");
}

/// Split `line` into exactly `fields.size()` tab-separated fields; throws a
/// located DataError naming the actual count on mismatch (truncated or
/// over-long collector lines).
void split_tabs(std::string_view line, std::span<std::string_view> fields,
                std::size_t line_no) {
  std::size_t i = 0;
  std::string_view rest = line;
  while (true) {
    const std::size_t tab = rest.find('\t');
    if (i == fields.size()) {
      malformed(line_no, "too many fields (expected " +
                             std::to_string(fields.size()) + ")", line);
    }
    if (tab == std::string_view::npos) {
      fields[i++] = rest;
      break;
    }
    fields[i++] = rest.substr(0, tab);
    rest.remove_prefix(tab + 1);
  }
  if (i != fields.size()) {
    malformed(line_no, "truncated record (" + std::to_string(i) + " of " +
                           std::to_string(fields.size()) + " fields)", line);
  }
}

/// Parse a full-width integer field; distinguishes junk from overflow so the
/// error names the real problem (a 2^40 "server id" is out of range, not
/// merely non-numeric).
///
/// The accepted grammar is exactly digits-with-optional-minus — no leading
/// '+', whitespace, or hex. write_* never emits anything else, and the
/// text↔binary convert round trip is only injective if read_* accepts
/// nothing else; the guard makes the contract explicit (and keeps it if the
/// parser underneath ever changes).
template <typename T>
void parse_int_field(std::string_view s, T& out, std::string_view what,
                     std::size_t line_no, std::string_view line) {
  if (!s.empty() && s.front() == '+') {
    malformed(line_no, "non-numeric " + std::string(what) + " '" +
                           std::string(s) + "'", line);
  }
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, out);
  const bool negative_into_unsigned =
      std::is_unsigned_v<T> && !s.empty() && s.front() == '-';
  if (ec == std::errc::result_out_of_range || negative_into_unsigned) {
    malformed(line_no, "out-of-range " + std::string(what) + " '" +
                           std::string(s) + "'", line);
  }
  if (ec != std::errc{} || ptr != end) {
    malformed(line_no, "non-numeric " + std::string(what) + " '" +
                           std::string(s) + "'", line);
  }
}

/// Per-line front end shared by the readers: strip one trailing CR (CRLF
/// traces), skip blank lines. Returns false when the line carries no record.
bool normalize_line(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return !line.empty();
}

/// A failed std::getline is either clean EOF (eofbit) or a mid-record I/O
/// error (badbit — the stream lost data). The latter must never read as a
/// shorter-but-valid trace: throw a located DataError instead.
void check_read_stream(const std::istream& is, std::size_t line_no) {
  if (is.bad()) {
    throw DataError("trace read error after line " + std::to_string(line_no) +
                    ": stream I/O failure (not EOF) — trace is truncated");
  }
}

/// write_* never observes individual insertions; a full disk or closed pipe
/// only shows up in the stream state. Flush and check once per call so a
/// truncated output file is a loud error, never a silent one.
void check_write_stream(std::ostream& os, std::string_view what) {
  os.flush();
  if (!os) {
    throw DataError("trace write failed (" + std::string(what) +
                    "): disk full or closed stream");
  }
}

dns::ForwardedLookup parse_observable_line(std::string_view line,
                                           std::size_t line_no) {
  std::string_view fields[3];
  split_tabs(line, fields, line_no);
  std::int64_t t_ms = 0;
  std::uint32_t server = 0;
  parse_int_field(fields[0], t_ms, "timestamp", line_no, line);
  parse_int_field(fields[1], server, "server id", line_no, line);
  if (fields[2].empty()) malformed(line_no, "empty domain", line);
  return dns::ForwardedLookup{TimePoint{t_ms}, dns::ServerId{server},
                              std::string(fields[2])};
}

}  // namespace

void write_raw(std::ostream& os, std::span<const botnet::RawRecord> records) {
  for (const botnet::RawRecord& r : records) {
    os << r.t.millis() << '\t' << r.client.value() << '\t' << r.domain << '\t'
       << (r.rcode == dns::Rcode::kAddress ? "A" : "NX") << '\n';
  }
  check_write_stream(os, "raw trace");
}

void write_observable(std::ostream& os,
                      std::span<const dns::ForwardedLookup> lookups) {
  for (const dns::ForwardedLookup& l : lookups) {
    os << l.timestamp.millis() << '\t' << l.forwarder.value() << '\t'
       << l.domain << '\n';
  }
  check_write_stream(os, "observable trace");
}

std::vector<botnet::RawRecord> read_raw(std::istream& is) {
  std::vector<botnet::RawRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!normalize_line(line)) continue;
    std::string_view fields[4];
    split_tabs(line, fields, line_no);
    std::int64_t t_ms = 0;
    std::uint32_t client = 0;
    parse_int_field(fields[0], t_ms, "timestamp", line_no, line);
    parse_int_field(fields[1], client, "client id", line_no, line);
    if (fields[2].empty()) malformed(line_no, "empty domain", line);
    dns::Rcode rcode;
    if (fields[3] == "A") {
      rcode = dns::Rcode::kAddress;
    } else if (fields[3] == "NX") {
      rcode = dns::Rcode::kNxDomain;
    } else {
      malformed(line_no, "unknown rcode '" + std::string(fields[3]) + "'",
                line);
    }
    records.push_back(botnet::RawRecord{TimePoint{t_ms}, dns::ClientId{client},
                                        std::string(fields[2]), rcode});
  }
  check_read_stream(is, line_no);
  return records;
}

std::vector<dns::ForwardedLookup> read_observable(std::istream& is) {
  std::vector<dns::ForwardedLookup> lookups;
  for_each_observable(is, [&lookups](const dns::ForwardedLookup& l) {
    lookups.push_back(l);
  });
  return lookups;
}

std::size_t for_each_observable(
    std::istream& is,
    const std::function<void(const dns::ForwardedLookup&)>& sink) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t delivered = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!normalize_line(line)) continue;
    sink(parse_observable_line(line, line_no));
    ++delivered;
  }
  check_read_stream(is, line_no);
  return delivered;
}

}  // namespace botmeter::trace
