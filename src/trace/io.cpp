#include "trace/io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>

#include "common/error.hpp"

namespace botmeter::trace {

namespace {

[[noreturn]] void malformed(std::size_t line_no, const std::string& line) {
  throw DataError("trace parse error at line " + std::to_string(line_no) +
                  ": '" + line + "'");
}

/// Split `line` into exactly `n` tab-separated fields; returns false on a
/// field-count mismatch.
bool split_tabs(std::string_view line, std::span<std::string_view> fields) {
  std::size_t i = 0;
  while (!line.empty() || i < fields.size()) {
    if (i == fields.size()) return false;  // too many fields
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      fields[i++] = line;
      line = {};
      break;
    }
    fields[i++] = line.substr(0, tab);
    line.remove_prefix(tab + 1);
  }
  return i == fields.size();
}

template <typename T>
bool parse_int(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

void write_raw(std::ostream& os, std::span<const botnet::RawRecord> records) {
  for (const botnet::RawRecord& r : records) {
    os << r.t.millis() << '\t' << r.client.value() << '\t' << r.domain << '\t'
       << (r.rcode == dns::Rcode::kAddress ? "A" : "NX") << '\n';
  }
}

void write_observable(std::ostream& os,
                      std::span<const dns::ForwardedLookup> lookups) {
  for (const dns::ForwardedLookup& l : lookups) {
    os << l.timestamp.millis() << '\t' << l.forwarder.value() << '\t'
       << l.domain << '\n';
  }
}

std::vector<botnet::RawRecord> read_raw(std::istream& is) {
  std::vector<botnet::RawRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string_view fields[4];
    if (!split_tabs(line, fields)) malformed(line_no, line);
    std::int64_t t_ms = 0;
    std::uint32_t client = 0;
    if (!parse_int(fields[0], t_ms) || !parse_int(fields[1], client) ||
        fields[2].empty()) {
      malformed(line_no, line);
    }
    dns::Rcode rcode;
    if (fields[3] == "A") {
      rcode = dns::Rcode::kAddress;
    } else if (fields[3] == "NX") {
      rcode = dns::Rcode::kNxDomain;
    } else {
      malformed(line_no, line);
    }
    records.push_back(botnet::RawRecord{TimePoint{t_ms}, dns::ClientId{client},
                                        std::string(fields[2]), rcode});
  }
  return records;
}

std::vector<dns::ForwardedLookup> read_observable(std::istream& is) {
  std::vector<dns::ForwardedLookup> lookups;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string_view fields[3];
    if (!split_tabs(line, fields)) malformed(line_no, line);
    std::int64_t t_ms = 0;
    std::uint32_t server = 0;
    if (!parse_int(fields[0], t_ms) || !parse_int(fields[1], server) ||
        fields[2].empty()) {
      malformed(line_no, line);
    }
    lookups.push_back(dns::ForwardedLookup{TimePoint{t_ms}, dns::ServerId{server},
                                           std::string(fields[2])});
  }
  return lookups;
}

}  // namespace botmeter::trace
