#include "trace/split.hpp"

#include <memory>
#include <ostream>
#include <string>

#include "common/error.hpp"
#include "trace/io.hpp"

namespace botmeter::trace {

namespace {

std::size_t route_checked(const SplitRoute& route, std::uint32_t server,
                          std::size_t out_count) {
  const std::size_t out = route(server);
  if (out >= out_count) {
    throw DataError("trace split: server " + std::to_string(server) +
                    " routed to output " + std::to_string(out) + " of only " +
                    std::to_string(out_count));
  }
  return out;
}

}  // namespace

std::uint64_t SplitCounts::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : tuples) sum += n;
  return sum;
}

SplitCounts split_observable_text(std::istream& is,
                                  std::span<std::ostream* const> outs,
                                  const SplitRoute& route) {
  if (outs.empty()) throw ConfigError("split_observable_text: no outputs");
  SplitCounts counts;
  counts.tuples.assign(outs.size(), 0);
  for_each_observable(is, [&](const dns::ForwardedLookup& lookup) {
    const std::size_t out =
        route_checked(route, lookup.forwarder.value(), outs.size());
    // Same line format as write_observable, so each output equals
    // write_observable of the routed subset byte for byte.
    *outs[out] << lookup.timestamp.millis() << '\t'
               << lookup.forwarder.value() << '\t' << lookup.domain << '\n';
    ++counts.tuples[out];
  });
  for (std::size_t i = 0; i < outs.size(); ++i) {
    outs[i]->flush();
    if (!*outs[i]) {
      throw DataError("split_observable_text: write to output " +
                      std::to_string(i) + " failed");
    }
  }
  return counts;
}

SplitCounts split_blocks(std::istream& is,
                         std::span<std::ostream* const> outs,
                         const SplitRoute& route,
                         std::size_t block_tuples) {
  if (outs.empty()) throw ConfigError("split_blocks: no outputs");
  SplitCounts counts;
  counts.tuples.assign(outs.size(), 0);
  std::vector<std::unique_ptr<BlockWriter>> writers;
  writers.reserve(outs.size());
  for (std::ostream* out : outs) {
    writers.push_back(std::make_unique<BlockWriter>(*out, block_tuples));
  }
  for_each_block(is, [&](const dns::LookupColumns& columns,
                         std::span<const std::string_view> table) {
    const std::size_t n = columns.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t out =
          route_checked(route, columns.server[i], outs.size());
      // Each writer re-interns against its own table: ids in a sub-stream
      // are dense in that sub-stream, as a per-border collector would have
      // assigned them.
      writers[out]->append(TimePoint{columns.t_ms[i]},
                           dns::ServerId{columns.server[i]},
                           table[columns.domain[i]]);
      ++counts.tuples[out];
    }
  });
  for (const std::unique_ptr<BlockWriter>& writer : writers) {
    writer->finish();
  }
  return counts;
}

}  // namespace botmeter::trace
