// Binary columnar trace codec — schema `botmeter.trace_block.v1`.
//
// The text format of trace/io.hpp is the interchange codec: trivially
// greppable, collector-friendly, and slow — at millions of users the parser,
// the per-tuple std::string domain allocation, and the per-tuple matcher hash
// dominate the whole pipeline. This codec is the hot-path representation:
// fixed-capacity framed blocks holding column arrays of
// (t_ms, server_id, domain_id) plus a per-file interned domain string table,
// so a consumer touches three flat arrays per block and resolves each
// distinct domain string exactly once per file.
//
// File layout (all integers little-endian, all offsets 8-byte aligned):
//
//   file header (16 bytes)
//     magic     u8[8]  "BMTBLK1\n"
//     version   u32    1
//     reserved  u32    0
//   block*  (zero or more, until clean EOF)
//     block header (32 bytes)
//       block_magic      u32   0xB07B10C5
//       tuple_count      u32   tuples in this block (may be 0 only for a
//                              final flush of new strings; writers avoid it)
//       new_domain_count u32   domain strings first interned in this block
//       string_bytes     u32   unpadded byte length of the string section
//       first_domain_id  u32   id of the first new string == table size so
//                              far (redundant; validates table continuity)
//       payload_bytes    u32   total payload length after this header,
//                              including padding (lets readers skip blocks)
//       header_checksum  u64   FNV-1a over the 24 preceding header bytes —
//                              a bit-flipped header is always a loud,
//                              located DataError, never a crash or a
//                              silently wrong decode
//     payload (payload_bytes, 8-aligned sections in this order)
//       strings  new_domain_count × (u16 length + bytes), padded to 8.
//                Ids are assigned in order of first appearance, file-global:
//                block k's tuples may reference any id < first_domain_id +
//                new_domain_count.
//       t_ms     i64 × tuple_count
//       server   u32 × tuple_count, padded to 8
//       domain   u32 × tuple_count, padded to 8
//
// Versioning rules: the magic pins the major format; `version` bumps on any
// layout change (readers reject unknown versions loudly). Appending new
// trailing sections to the payload is NOT backward compatible by design —
// payload_bytes is validated against the counts, so old readers fail fast
// instead of misdecoding.
//
// Reading is zero-copy batched: BlockReader reads one whole payload into a
// reusable 8-byte-aligned buffer and hands out spans over it — no per-tuple
// work, no per-block allocation after the first. The accumulated domain
// table is a vector of string_views into per-block arena copies of the
// string sections (one bulk copy per block, not one heap allocation per
// distinct domain); views stay valid for the reader's lifetime. Everything
// is validated before a view escapes: header checksum, section arithmetic,
// string-table continuity, and every domain id < table size, so downstream
// consumers may index the table unchecked.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/vantage.hpp"

namespace botmeter::trace {

inline constexpr std::string_view kBlockSchema = "botmeter.trace_block.v1";

/// Default block capacity: 64k tuples ≈ 1 MiB of columns — large enough to
/// amortise framing, small enough to stay cache- and latency-friendly.
inline constexpr std::size_t kDefaultBlockTuples = std::size_t{1} << 16;

/// Streaming writer. Appended tuples accumulate into columns and are framed
/// out every `block_tuples`; finish() flushes the tail and verifies the
/// ostream, throwing DataError on any write failure (a full disk is a loud
/// error, never a silently truncated file). The destructor flushes
/// best-effort but swallows errors — call finish() to observe them.
class BlockWriter {
 public:
  explicit BlockWriter(std::ostream& os,
                       std::size_t block_tuples = kDefaultBlockTuples);
  ~BlockWriter();

  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;

  void append(TimePoint t, dns::ServerId server, std::string_view domain);
  void append(const dns::ForwardedLookup& lookup) {
    append(lookup.timestamp, lookup.forwarder, lookup.domain);
  }

  /// Frame out buffered tuples (writers normally let capacity trigger this).
  void flush_block();
  /// Flush the tail block and the ostream; throws DataError if any byte
  /// failed to land. Idempotent; append() afterwards throws.
  void finish();

  [[nodiscard]] std::uint64_t tuples_written() const { return tuples_written_; }
  [[nodiscard]] std::uint64_t blocks_written() const { return blocks_written_; }
  /// Distinct domains interned so far (the string-table size).
  [[nodiscard]] std::size_t domain_count() const { return table_size_; }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint32_t intern(std::string_view domain);

  std::ostream* os_;
  std::size_t block_tuples_;
  bool finished_ = false;

  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      intern_;
  std::uint32_t table_size_ = 0;

  // Pending block state.
  std::vector<std::int64_t> t_ms_;
  std::vector<std::uint32_t> server_;
  std::vector<std::uint32_t> domain_;
  std::string new_strings_;  // encoded (u16 len + bytes) section
  std::uint32_t new_domain_count_ = 0;
  std::uint32_t pending_first_id_ = 0;

  std::uint64_t tuples_written_ = 0;
  std::uint64_t blocks_written_ = 0;
};

/// Streaming reader. next() decodes one block into an internal reusable
/// aligned buffer and returns a columnar view valid until the next call
/// (clean EOF → nullopt; any corruption or truncation → DataError naming the
/// block and byte offset). domains() is the accumulated per-file string
/// table the `domain` column indexes; it only grows, ids are stable, and the
/// views stay valid for the reader's lifetime (they point into arena copies
/// of the blocks' string sections).
class BlockReader {
 public:
  explicit BlockReader(std::istream& is);

  [[nodiscard]] std::optional<dns::LookupColumns> next();

  [[nodiscard]] std::span<const std::string_view> domains() const {
    return domains_;
  }
  [[nodiscard]] std::uint64_t tuples_read() const { return tuples_read_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_read_; }

 private:
  std::istream* is_;
  std::vector<std::string_view> domains_;
  /// One decoded string section per block with new domains. The table's
  /// views point into these entries, so their character buffers must never
  /// move: a deque keeps element addresses stable under push_back, where a
  /// vector reallocation would move SSO-sized sections (a block interning a
  /// single short domain) and dangle every earlier view.
  std::deque<std::string> string_arena_;
  /// Payload buffer; u64-backed so the decoded i64/u32 columns are aligned.
  std::vector<std::uint64_t> payload_;
  std::uint64_t tuples_read_ = 0;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t byte_offset_ = 0;
};

/// Whole-trace helpers (the interchange-style entry points).
void write_blocks(std::ostream& os,
                  std::span<const dns::ForwardedLookup> lookups,
                  std::size_t block_tuples = kDefaultBlockTuples);
[[nodiscard]] std::vector<dns::ForwardedLookup> read_blocks(std::istream& is);

/// Stream every block through `sink(columns, table)` without materialising
/// tuples; `table` is the reader's full accumulated string table. Returns
/// the number of tuples delivered.
std::size_t for_each_block(
    std::istream& is,
    const std::function<void(const dns::LookupColumns&,
                             std::span<const std::string_view>)>& sink);

/// True when `is` starts with the trace_block file magic. Requires a
/// seekable stream (regular file); the read position is restored. On
/// non-seekable streams (pipes) returns false — callers must say --binary.
[[nodiscard]] bool sniff_block_file(std::istream& is);

}  // namespace botmeter::trace
