// Dataset containers mirroring §V-B.
//
// The *raw dataset* is the local server's full view — (timestamp, client,
// domain) — and exists only to extract ground truth. The *observable
// dataset* is what the border sees: (timestamp, domain) per forwarding
// server, i.e. the cache-filtered stream BotMeter actually analyzes. The
// *pool dataset* is the set of DGA domains per family per day (DGArchive's
// role, played by our family generators).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "dga/pool.hpp"
#include "dns/vantage.hpp"

namespace botmeter::trace {

/// Per-day distinct-client ground truth for one DGA family, computed the way
/// the paper does: correlate the raw dataset with the pool dataset and count
/// distinct client IPs per day (§V-B).
[[nodiscard]] std::vector<std::uint32_t> ground_truth_from_raw(
    std::span<const botnet::RawRecord> raw, dga::QueryPoolModel& pool_model,
    std::int64_t first_epoch, std::int64_t epoch_count);

/// Distinct active clients per day regardless of family (the "active IP
/// addresses per day" statistic of §V-B).
[[nodiscard]] std::vector<std::uint32_t> active_clients_per_day(
    std::span<const botnet::RawRecord> raw, Duration epoch_length,
    std::int64_t first_epoch, std::int64_t epoch_count);

}  // namespace botmeter::trace
