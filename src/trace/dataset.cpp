#include "trace/dataset.hpp"

#include <cstdlib>
#include <unordered_set>

#include "common/error.hpp"

namespace botmeter::trace {

namespace {

std::int64_t epoch_of(TimePoint t, Duration epoch_length) {
  const std::int64_t ms = t.millis();
  const std::int64_t len = epoch_length.millis();
  if (ms >= 0) return ms / len;
  return (ms - len + 1) / len;
}

}  // namespace

std::vector<std::uint32_t> ground_truth_from_raw(
    std::span<const botnet::RawRecord> raw, dga::QueryPoolModel& pool_model,
    std::int64_t first_epoch, std::int64_t epoch_count) {
  if (epoch_count <= 0) throw ConfigError("ground_truth_from_raw: epoch_count > 0");
  const Duration epoch_length = pool_model.config().epoch;

  // Pool dataset: domain -> generation epochs, over the requested window.
  // Sliding-window pools list the same domain under several epochs; records
  // are attributed to the epoch closest to their timestamp, matching the
  // DomainMatcher's policy.
  std::unordered_map<std::string, std::vector<std::int64_t>> pool_index;
  for (std::int64_t e = first_epoch; e < first_epoch + epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    for (const std::string& d : pool.domains) pool_index[d].push_back(e);
  }

  std::vector<std::unordered_set<std::uint32_t>> clients(
      static_cast<std::size_t>(epoch_count));
  for (const botnet::RawRecord& record : raw) {
    auto it = pool_index.find(record.domain);
    if (it == pool_index.end()) continue;
    const std::int64_t nominal = epoch_of(record.t, epoch_length);
    std::int64_t best = it->second.front();
    for (std::int64_t e : it->second) {
      if (std::abs(e - nominal) < std::abs(best - nominal)) best = e;
    }
    if (best < first_epoch || best >= first_epoch + epoch_count) continue;
    clients[static_cast<std::size_t>(best - first_epoch)].insert(
        record.client.value());
  }

  std::vector<std::uint32_t> truth;
  truth.reserve(clients.size());
  for (const auto& set : clients) {
    truth.push_back(static_cast<std::uint32_t>(set.size()));
  }
  return truth;
}

std::vector<std::uint32_t> active_clients_per_day(
    std::span<const botnet::RawRecord> raw, Duration epoch_length,
    std::int64_t first_epoch, std::int64_t epoch_count) {
  if (epoch_count <= 0) throw ConfigError("active_clients_per_day: epoch_count > 0");
  std::vector<std::unordered_set<std::uint32_t>> clients(
      static_cast<std::size_t>(epoch_count));
  for (const botnet::RawRecord& record : raw) {
    const std::int64_t e = epoch_of(record.t, epoch_length);
    if (e < first_epoch || e >= first_epoch + epoch_count) continue;
    clients[static_cast<std::size_t>(e - first_epoch)].insert(
        record.client.value());
  }
  std::vector<std::uint32_t> counts;
  counts.reserve(clients.size());
  for (const auto& set : clients) {
    counts.push_back(static_cast<std::uint32_t>(set.size()));
  }
  return counts;
}

}  // namespace botmeter::trace
