// Splitting one border trace into per-vantage sub-streams.
//
// A multi-border cluster (src/cluster/) routes servers onto shards; its
// natural feed is one capture per vantage point, each holding exactly the
// tuples of the servers that border sees. Real archives are usually the
// other way around — one union trace — so these helpers cut a union trace
// into per-vantage files by server id, in both codecs:
//
//   - split_observable_text: text observable lines are routed verbatim (the
//     emitted bytes per output equal write_observable of the routed subset);
//   - split_blocks: binary block traces are re-framed per output with a
//     fresh interning lineage each (ids in a sub-stream are dense in that
//     sub-stream, exactly as a collector at that border would have written
//     them).
//
// Tuple order within each output is the input order restricted to that
// output — precisely the per-shard sequence the cluster's router would have
// produced from the union feed, which is what makes these splits valid
// byte-identity fixtures for the cluster determinism tests and the
// bench_cluster_throughput input setup.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <vector>

#include "trace/block.hpp"

namespace botmeter::trace {

/// Maps a server id to the index of the output it belongs to. Must return
/// an index < the output count for every server the trace names (DataError
/// otherwise — an unrouted server is a corrupt trace or a misconfigured
/// router, never a silent drop). ShardRouter::shard_of is the intended
/// implementation.
using SplitRoute = std::function<std::size_t(std::uint32_t server)>;

/// Tuples delivered to each output.
struct SplitCounts {
  std::vector<std::uint64_t> tuples;

  [[nodiscard]] std::uint64_t total() const;
};

/// Split a text observable trace across `outs` by routed server id.
/// Streaming (bounded memory); every output is flushed and checked on
/// completion. Throws DataError on malformed input, an out-of-range route,
/// or a failed write.
SplitCounts split_observable_text(std::istream& is,
                                  std::span<std::ostream* const> outs,
                                  const SplitRoute& route);

/// Split a binary block trace across `outs`, re-framing each output as an
/// independent botmeter.trace_block.v1 file with its own interned string
/// table. Same routing and error contract as split_observable_text.
SplitCounts split_blocks(std::istream& is,
                         std::span<std::ostream* const> outs,
                         const SplitRoute& route,
                         std::size_t block_tuples = kDefaultBlockTuples);

}  // namespace botmeter::trace
