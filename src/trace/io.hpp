// Text (de)serialisation of the raw and observable datasets.
//
// One record per line, tab-separated, millisecond timestamps:
//   raw:        <t_ms> \t <client> \t <domain> \t <A|NX>
//   observable: <t_ms> \t <server> \t <domain>
// The format is deliberately trivial — it exists so traces can be produced
// once, archived, and re-analyzed, and so external collectors can feed
// BotMeter.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "dns/vantage.hpp"

namespace botmeter::trace {

void write_raw(std::ostream& os, std::span<const botnet::RawRecord> records);
void write_observable(std::ostream& os,
                      std::span<const dns::ForwardedLookup> lookups);

/// Parse; throws DataError with the offending line number on malformed input.
[[nodiscard]] std::vector<botnet::RawRecord> read_raw(std::istream& is);
[[nodiscard]] std::vector<dns::ForwardedLookup> read_observable(std::istream& is);

}  // namespace botmeter::trace
