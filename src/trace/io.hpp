// Text (de)serialisation of the raw and observable datasets.
//
// One record per line, tab-separated, millisecond timestamps:
//   raw:        <t_ms> \t <client> \t <domain> \t <A|NX>
//   observable: <t_ms> \t <server> \t <domain>
// The format is deliberately trivial — it exists so traces can be produced
// once, archived, and re-analyzed, and so external collectors can feed
// BotMeter.
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "dns/vantage.hpp"

namespace botmeter::trace {

/// Serialise; flushes and throws DataError if the stream failed (a full
/// disk or closed pipe is a loud error, never a silently truncated file).
void write_raw(std::ostream& os, std::span<const botnet::RawRecord> records);
void write_observable(std::ostream& os,
                      std::span<const dns::ForwardedLookup> lookups);

/// Parse; throws DataError on malformed input. Errors carry the 1-based line
/// number and name the offending field ("non-numeric timestamp",
/// "out-of-range server id", ...) — a truncated or corrupted collector line
/// is always a loud, located failure, never a silent skip. A mid-read I/O
/// failure (stream badbit) likewise throws instead of masquerading as EOF.
/// Numeric fields accept exactly digits-with-optional-minus (no '+', no
/// whitespace), so read ∘ write is the identity on the emitted bytes.
/// Blank lines are skipped; a trailing CR (CRLF collectors) is tolerated.
[[nodiscard]] std::vector<botnet::RawRecord> read_raw(std::istream& is);
[[nodiscard]] std::vector<dns::ForwardedLookup> read_observable(std::istream& is);

/// Streaming variant of read_observable: invoke `sink` on each parsed lookup
/// without materialising the whole trace — the bounded-memory path
/// botmeter_stream uses to replay arbitrarily long border feeds. Same
/// validation and error reporting as read_observable. Returns the number of
/// lookups delivered.
std::size_t for_each_observable(
    std::istream& is, const std::function<void(const dns::ForwardedLookup&)>& sink);

}  // namespace botmeter::trace
