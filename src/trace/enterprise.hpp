// Synthetic enterprise DNS trace (substitute for the paper's proprietary
// one-year dataset, §V-B; see DESIGN.md "Substitutions").
//
// One local DNS server serves a population of benign clients plus several
// DGA-infected sub-populations. Each infected device stays infected across
// the whole horizon but is only *active* on a given day with a
// slowly-varying probability (a mean-reverting random walk), reproducing the
// bursty daily-population series of Fig. 7. Timestamps are quantised to the
// paper's one-second collection granularity. The generator runs day by day
// so year-long horizons stream in O(day) memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/rng.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"
#include "dns/topology.hpp"

namespace botmeter::trace {

struct InfectedPopulation {
  dga::DgaConfig dga;
  std::uint32_t infected_devices = 40;  // stable infected set size
  double mean_activity = 0.5;           // long-run P(device active on a day)
  double activity_volatility = 0.25;    // day-to-day random-walk step (logit)
};

struct EnterpriseConfig {
  std::vector<InfectedPopulation> populations;
  std::uint32_t benign_clients = 200;
  std::uint32_t benign_queries_per_client_per_day = 20;
  dns::TtlPolicy ttl;                                // defaults per §II-B
  Duration timestamp_granularity = seconds(1);       // §V-B
  std::uint64_t seed = 2014;

  // --- real-trace artifacts (default off; the Fig. 7 bench enables them) --
  // Raced duplicate forwards: a stub-resolver retransmission or a concurrent
  // same-domain query from another device can reach the local server before
  // the first answer is cached, so the border occasionally sees the same
  // lookup twice. Probability applies per forwarded DGA lookup. Duplicates
  // split the Timing estimator's entries (heuristic #1) but are invisible to
  // the burst/coverage statistics of M_P / M_B.
  double duplicate_query_rate = 0.0;
  // Collision cases (§II-B): a small share of pool NXDs coincides with
  // names benign software also queries. Expected collision domains per
  // family per day = rate * pool size; each is queried a few times by
  // benign clients over the day.
  double collision_rate_per_pool_domain = 0.0;

  void validate() const;
};

/// Everything one simulated day produced.
struct EnterpriseDay {
  std::int64_t day = 0;
  std::vector<botnet::RawRecord> raw;
  std::vector<dns::ForwardedLookup> observable;
  std::vector<std::uint32_t> active_bots;  // per population, ground truth
};

class EnterpriseSimulator {
 public:
  explicit EnterpriseSimulator(EnterpriseConfig config);

  EnterpriseSimulator(const EnterpriseSimulator&) = delete;
  EnterpriseSimulator& operator=(const EnterpriseSimulator&) = delete;

  /// Simulate the next day and return its artefacts.
  [[nodiscard]] EnterpriseDay step();

  [[nodiscard]] std::int64_t next_day() const { return day_; }
  [[nodiscard]] const EnterpriseConfig& config() const { return config_; }

  /// The shared pool model for population `index` (the same object the
  /// analysis side should use so pool contents agree).
  [[nodiscard]] dga::QueryPoolModel& pool_model(std::size_t index);

  /// The client-id block assigned to population `index`'s devices (benign
  /// clients live above all blocks).
  [[nodiscard]] std::uint32_t client_base(std::size_t index) const;

 private:
  EnterpriseConfig config_;
  dns::Network network_;
  std::vector<std::unique_ptr<dga::QueryPoolModel>> pools_;
  std::vector<double> activity_logit_;  // per population, random-walk state
  Rng rng_;
  std::int64_t day_ = 0;
};

}  // namespace botmeter::trace
