#include "trace/block.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace botmeter::trace {

// The codec writes integers in their native representation and documents the
// format as little-endian; every deployment target of this system is LE.
static_assert(std::endian::native == std::endian::little,
              "trace_block codec assumes a little-endian host");

namespace {

constexpr char kFileMagic[8] = {'B', 'M', 'T', 'B', 'L', 'K', '1', '\n'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kBlockMagic = 0xB07B10C5;
constexpr std::size_t kFileHeaderBytes = 16;
constexpr std::size_t kBlockHeaderBytes = 32;
/// Checksummed prefix of the block header (everything before the checksum).
constexpr std::size_t kChecksummedBytes = 24;
/// Upper bound on one block's payload — far above any writer-produced block
/// (64k tuples ≈ 1 MiB); a "consistent" corrupt header cannot demand a
/// multi-gigabyte allocation.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;
/// Writer-side cap on tuples per block: the fixed columns alone cost 16
/// bytes per tuple, so anything above this could never frame a payload a
/// reader accepts (and would overflow the u32 header fields well before).
constexpr std::size_t kMaxBlockTuples = kMaxPayloadBytes / 16;

constexpr std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void pad_to_8(std::string& out) { out.append(align8(out.size()) - out.size(), '\0'); }

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[noreturn]] void corrupt(std::uint64_t block_no, std::uint64_t byte_offset,
                          const std::string& reason) {
  throw DataError("trace block error at block " + std::to_string(block_no) +
                  " (byte offset " + std::to_string(byte_offset) + "): " +
                  reason);
}

}  // namespace

// --- writer ----------------------------------------------------------------

BlockWriter::BlockWriter(std::ostream& os, std::size_t block_tuples)
    : os_(&os), block_tuples_(block_tuples) {
  if (block_tuples_ == 0) {
    throw ConfigError("BlockWriter: block_tuples must be > 0");
  }
  if (block_tuples_ > kMaxBlockTuples) {
    throw ConfigError("BlockWriter: block_tuples " +
                      std::to_string(block_tuples_) + " exceeds the maximum " +
                      std::to_string(kMaxBlockTuples) +
                      " (one block's payload must stay under " +
                      std::to_string(kMaxPayloadBytes) + " bytes)");
  }
  std::string header;
  header.append(kFileMagic, sizeof(kFileMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, 0);  // reserved
  os_->write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!*os_) throw DataError("trace block write failed: file header");
  t_ms_.reserve(block_tuples_);
  server_.reserve(block_tuples_);
  domain_.reserve(block_tuples_);
}

BlockWriter::~BlockWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers who care about write failures
    // (every tool does) call finish() explicitly.
  }
}

std::uint32_t BlockWriter::intern(std::string_view domain) {
  if (domain.empty()) throw DataError("BlockWriter: empty domain");
  if (domain.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw DataError("BlockWriter: domain longer than 65535 bytes");
  }
  const auto it = intern_.find(domain);
  if (it != intern_.end()) return it->second;
  if (table_size_ == std::numeric_limits<std::uint32_t>::max()) {
    throw DataError("BlockWriter: domain table overflow");
  }
  const std::uint32_t id = table_size_++;
  intern_.emplace(std::string(domain), id);
  const auto len = static_cast<std::uint16_t>(domain.size());
  new_strings_.append(reinterpret_cast<const char*>(&len), sizeof(len));
  new_strings_.append(domain.data(), domain.size());
  ++new_domain_count_;
  return id;
}

void BlockWriter::append(TimePoint t, dns::ServerId server,
                         std::string_view domain) {
  if (finished_) throw DataError("BlockWriter: append after finish()");
  t_ms_.push_back(t.millis());
  server_.push_back(server.value());
  domain_.push_back(intern(domain));
  ++tuples_written_;
  if (t_ms_.size() >= block_tuples_) flush_block();
}

void BlockWriter::flush_block() {
  const std::size_t count = t_ms_.size();
  if (count == 0) return;
  const std::size_t string_bytes = new_strings_.size();
  const std::size_t payload = align8(string_bytes) + std::size_t{8} * count +
                              2 * align8(std::size_t{4} * count);
  // Readers reject any payload above kMaxPayloadBytes as corrupt, and the
  // header's size fields are u32 — a block that cannot be framed faithfully
  // must fail loudly at write time, never truncate into a "corrupt" file.
  if (payload > kMaxPayloadBytes) {
    throw DataError("trace block payload too large at block " +
                    std::to_string(blocks_written_) + " (" +
                    std::to_string(payload) + " bytes; limit " +
                    std::to_string(kMaxPayloadBytes) +
                    " — lower block_tuples)");
  }
  const auto n = static_cast<std::uint32_t>(count);

  std::string frame;
  frame.reserve(kBlockHeaderBytes + payload);
  put_u32(frame, kBlockMagic);
  put_u32(frame, n);
  put_u32(frame, new_domain_count_);
  put_u32(frame, static_cast<std::uint32_t>(string_bytes));
  put_u32(frame, pending_first_id_);
  put_u32(frame, static_cast<std::uint32_t>(payload));
  put_u64(frame, fnv1a(frame.data(), kChecksummedBytes));

  frame.append(new_strings_);
  pad_to_8(frame);
  frame.append(reinterpret_cast<const char*>(t_ms_.data()),
               sizeof(std::int64_t) * n);
  frame.append(reinterpret_cast<const char*>(server_.data()),
               sizeof(std::uint32_t) * n);
  pad_to_8(frame);
  frame.append(reinterpret_cast<const char*>(domain_.data()),
               sizeof(std::uint32_t) * n);
  pad_to_8(frame);

  os_->write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!*os_) {
    throw DataError("trace block write failed at block " +
                    std::to_string(blocks_written_) +
                    " (disk full or closed stream)");
  }
  ++blocks_written_;
  t_ms_.clear();
  server_.clear();
  domain_.clear();
  new_strings_.clear();
  new_domain_count_ = 0;
  pending_first_id_ = table_size_;
}

void BlockWriter::finish() {
  if (finished_) return;
  flush_block();
  os_->flush();
  if (!*os_) throw DataError("trace block write failed: final flush");
  finished_ = true;
}

// --- reader ----------------------------------------------------------------

BlockReader::BlockReader(std::istream& is) : is_(&is) {
  char header[kFileHeaderBytes];
  is_->read(header, sizeof(header));
  if (is_->bad()) throw DataError("I/O error reading trace block file header");
  if (static_cast<std::size_t>(is_->gcount()) != sizeof(header)) {
    throw DataError("truncated trace block file header (" +
                    std::to_string(is_->gcount()) + " of " +
                    std::to_string(sizeof(header)) + " bytes)");
  }
  if (std::memcmp(header, kFileMagic, sizeof(kFileMagic)) != 0) {
    throw DataError("not a trace block file (bad magic)");
  }
  const std::uint32_t version = load_u32(header + sizeof(kFileMagic));
  if (version != kFormatVersion) {
    throw DataError("unsupported trace block version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kFormatVersion) + ")");
  }
  // The reserved word is zero in v1; a future writer setting it would be
  // signalling a feature this reader does not understand, and a corrupted
  // header must never decode silently.
  if (load_u32(header + sizeof(kFileMagic) + 4) != 0) {
    throw DataError("unsupported trace block file (reserved field nonzero)");
  }
  byte_offset_ = kFileHeaderBytes;
}

std::optional<dns::LookupColumns> BlockReader::next() {
  char header[kBlockHeaderBytes];
  is_->read(header, sizeof(header));
  if (is_->bad()) {
    corrupt(blocks_read_, byte_offset_, "I/O error reading block header");
  }
  const auto got = static_cast<std::size_t>(is_->gcount());
  if (got == 0) return std::nullopt;  // clean EOF at a block boundary
  if (got != sizeof(header)) {
    corrupt(blocks_read_, byte_offset_,
            "truncated block header (" + std::to_string(got) + " of " +
                std::to_string(sizeof(header)) + " bytes)");
  }
  if (load_u32(header) != kBlockMagic) {
    corrupt(blocks_read_, byte_offset_, "bad block magic");
  }
  if (load_u64(header + kChecksummedBytes) !=
      fnv1a(header, kChecksummedBytes)) {
    corrupt(blocks_read_, byte_offset_, "block header checksum mismatch");
  }
  const std::uint32_t n = load_u32(header + 4);
  const std::uint32_t new_domains = load_u32(header + 8);
  const std::uint32_t string_bytes = load_u32(header + 12);
  const std::uint32_t first_id = load_u32(header + 16);
  const std::uint32_t payload_bytes = load_u32(header + 20);
  if (payload_bytes > kMaxPayloadBytes) {
    corrupt(blocks_read_, byte_offset_, "implausible payload size");
  }
  const std::size_t expected = align8(string_bytes) + std::size_t{8} * n +
                               2 * align8(std::size_t{4} * n);
  if (payload_bytes != expected) {
    corrupt(blocks_read_, byte_offset_,
            "payload size does not match the block's counts");
  }
  if (first_id != domains_.size()) {
    corrupt(blocks_read_, byte_offset_,
            "string table discontinuity (block starts at id " +
                std::to_string(first_id) + ", table holds " +
                std::to_string(domains_.size()) + ")");
  }

  payload_.resize(payload_bytes / 8);
  char* bytes = reinterpret_cast<char*>(payload_.data());
  is_->read(bytes, static_cast<std::streamsize>(payload_bytes));
  if (is_->bad()) {
    corrupt(blocks_read_, byte_offset_, "I/O error reading block payload");
  }
  if (static_cast<std::size_t>(is_->gcount()) != payload_bytes) {
    corrupt(blocks_read_, byte_offset_,
            "truncated block payload (" + std::to_string(is_->gcount()) +
                " of " + std::to_string(payload_bytes) + " bytes)");
  }

  // Decode the delta string section into the accumulated table: one bulk
  // arena copy per block (the payload buffer is reused next call), then
  // views into it — no per-domain heap allocation.
  std::size_t pos = 0;
  domains_.reserve(domains_.size() + new_domains);
  const char* arena = nullptr;
  if (new_domains > 0) {
    string_arena_.emplace_back(bytes, string_bytes);
    arena = string_arena_.back().data();
  }
  for (std::uint32_t i = 0; i < new_domains; ++i) {
    if (pos + 2 > string_bytes) {
      corrupt(blocks_read_, byte_offset_, "string section overruns its length");
    }
    std::uint16_t len;
    std::memcpy(&len, bytes + pos, sizeof(len));
    pos += 2;
    if (len == 0 || pos + len > string_bytes) {
      corrupt(blocks_read_, byte_offset_,
              len == 0 ? "empty domain string in table"
                       : "string section overruns its length");
    }
    domains_.emplace_back(arena + pos, len);
    pos += len;
  }
  if (pos != string_bytes) {
    corrupt(blocks_read_, byte_offset_,
            "string section length does not match its contents");
  }

  const std::size_t t_off = align8(string_bytes);
  const std::size_t server_off = t_off + std::size_t{8} * n;
  const std::size_t domain_off = server_off + align8(std::size_t{4} * n);
  dns::LookupColumns view{
      std::span<const std::int64_t>(
          reinterpret_cast<const std::int64_t*>(bytes + t_off), n),
      std::span<const std::uint32_t>(
          reinterpret_cast<const std::uint32_t*>(bytes + server_off), n),
      std::span<const std::uint32_t>(
          reinterpret_cast<const std::uint32_t*>(bytes + domain_off), n)};

  // Every id must resolve into the table so downstream consumers can index
  // it unchecked; one branchless max-scan per block.
  std::uint32_t max_id = 0;
  for (const std::uint32_t id : view.domain) max_id = std::max(max_id, id);
  if (n > 0 && max_id >= domains_.size()) {
    corrupt(blocks_read_, byte_offset_,
            "domain id " + std::to_string(max_id) +
                " out of range (table holds " +
                std::to_string(domains_.size()) + ")");
  }

  byte_offset_ += kBlockHeaderBytes + payload_bytes;
  ++blocks_read_;
  tuples_read_ += n;
  return view;
}

// --- whole-trace helpers ---------------------------------------------------

void write_blocks(std::ostream& os,
                  std::span<const dns::ForwardedLookup> lookups,
                  std::size_t block_tuples) {
  BlockWriter writer(os, block_tuples);
  for (const dns::ForwardedLookup& lookup : lookups) writer.append(lookup);
  writer.finish();
}

std::vector<dns::ForwardedLookup> read_blocks(std::istream& is) {
  std::vector<dns::ForwardedLookup> lookups;
  for_each_block(is, [&lookups](const dns::LookupColumns& block,
                                std::span<const std::string_view> table) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      lookups.push_back(dns::ForwardedLookup{
          TimePoint{block.t_ms[i]}, dns::ServerId{block.server[i]},
          std::string(table[block.domain[i]])});
    }
  });
  return lookups;
}

std::size_t for_each_block(
    std::istream& is,
    const std::function<void(const dns::LookupColumns&,
                             std::span<const std::string_view>)>& sink) {
  BlockReader reader(is);
  while (const std::optional<dns::LookupColumns> block = reader.next()) {
    sink(*block, reader.domains());
  }
  return static_cast<std::size_t>(reader.tuples_read());
}

bool sniff_block_file(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return false;
  char magic[sizeof(kFileMagic)];
  is.read(magic, sizeof(magic));
  const bool matched =
      static_cast<std::size_t>(is.gcount()) == sizeof(magic) &&
      std::memcmp(magic, kFileMagic, sizeof(magic)) == 0;
  is.clear();
  is.seekg(pos);
  return matched;
}

}  // namespace botmeter::trace
