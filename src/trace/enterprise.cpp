#include "trace/enterprise.hpp"

#include <algorithm>
#include <cmath>

#include "botnet/bot.hpp"
#include "common/error.hpp"
#include "dga/domain_gen.hpp"

namespace botmeter::trace {

namespace {

constexpr std::uint32_t kBenignDomainUniverse = 2048;

double logit(double p) { return std::log(p / (1.0 - p)); }
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// One pending lookup of the day, before cache filtering.
struct PendingQuery {
  TimePoint t;
  std::uint32_t client = 0;
  std::uint32_t population = 0;  // UINT32_MAX for benign
  std::uint32_t pool_position = 0;
  std::uint32_t benign_index = 0;
};

}  // namespace

void EnterpriseConfig::validate() const {
  if (populations.empty()) {
    throw ConfigError("EnterpriseConfig: at least one infected population");
  }
  for (const InfectedPopulation& p : populations) {
    p.dga.validate();
    if (p.infected_devices == 0) {
      throw ConfigError("EnterpriseConfig: infected_devices must be > 0");
    }
    if (p.mean_activity <= 0.0 || p.mean_activity >= 1.0) {
      throw ConfigError("EnterpriseConfig: mean_activity must be in (0,1)");
    }
    if (p.activity_volatility < 0.0) {
      throw ConfigError("EnterpriseConfig: negative activity_volatility");
    }
    if (p.dga.epoch != days(1)) {
      throw ConfigError("EnterpriseConfig: populations must use one-day epochs");
    }
  }
  if (duplicate_query_rate < 0.0 || duplicate_query_rate > 1.0) {
    throw ConfigError("EnterpriseConfig: duplicate_query_rate must be in [0,1]");
  }
  if (collision_rate_per_pool_domain < 0.0 ||
      collision_rate_per_pool_domain > 1.0) {
    throw ConfigError(
        "EnterpriseConfig: collision_rate_per_pool_domain must be in [0,1]");
  }
  ttl.validate();
}

EnterpriseSimulator::EnterpriseSimulator(EnterpriseConfig config)
    : config_(std::move(config)),
      network_(1, config_.ttl, config_.timestamp_granularity),
      rng_(config_.seed) {
  config_.validate();
  pools_.reserve(config_.populations.size());
  for (const InfectedPopulation& p : config_.populations) {
    pools_.push_back(dga::make_pool_model(p.dga));
    activity_logit_.push_back(logit(p.mean_activity));
  }
  // The benign universe resolves forever.
  for (std::uint32_t j = 0; j < kBenignDomainUniverse; ++j) {
    network_.authority().register_permanent(dga::benign_domain(j));
  }
}

dga::QueryPoolModel& EnterpriseSimulator::pool_model(std::size_t index) {
  if (index >= pools_.size()) throw ConfigError("pool_model: index out of range");
  return *pools_[index];
}

std::uint32_t EnterpriseSimulator::client_base(std::size_t index) const {
  if (index >= config_.populations.size()) {
    throw ConfigError("client_base: index out of range");
  }
  std::uint32_t base = 0;
  for (std::size_t i = 0; i < index; ++i) {
    base += config_.populations[i].infected_devices;
  }
  return base;
}

EnterpriseDay EnterpriseSimulator::step() {
  const std::int64_t day = day_++;
  const TimePoint day_start{day * days(1).millis()};
  const Duration day_len = days(1);

  EnterpriseDay result;
  result.day = day;
  result.active_bots.assign(config_.populations.size(), 0);

  std::vector<PendingQuery> queries;

  // --- DGA traffic ---------------------------------------------------
  for (std::size_t pi = 0; pi < config_.populations.size(); ++pi) {
    const InfectedPopulation& pop = config_.populations[pi];
    const dga::EpochPool& pool = pools_[pi]->epoch_pool(day);

    // Register today's C2 domains (with slack past midnight, as in the
    // epoch simulator).
    for (std::uint32_t pos : pool.valid_positions) {
      network_.authority().register_domain(pool.domains[pos], day_start,
                                           day_start + day_len + hours(1));
    }

    // Mean-reverting random walk on the activity level.
    double& l = activity_logit_[pi];
    const double anchor = logit(pop.mean_activity);
    l += rng_.normal(0.0, pop.activity_volatility) + 0.1 * (anchor - l);
    l = std::clamp(l, anchor - 3.0, anchor + 3.0);
    const double activity = sigmoid(l);

    const std::uint32_t base = client_base(pi);
    for (std::uint32_t device = 0; device < pop.infected_devices; ++device) {
      if (!rng_.bernoulli(activity)) continue;
      ++result.active_bots[pi];
      const TimePoint activation =
          day_start + milliseconds(rng_.uniform_range(0, day_len.millis() - 1));
      Rng bot_rng{mix64(config_.seed ^
                        mix64((static_cast<std::uint64_t>(day) << 24) |
                              (static_cast<std::uint64_t>(pi) << 16) | device))};
      for (const botnet::QueryEvent& ev :
           botnet::activation_queries(pop.dga, pool, activation, bot_rng)) {
        queries.push_back(PendingQuery{ev.t, base + device,
                                       static_cast<std::uint32_t>(pi),
                                       ev.pool_position, 0});
      }
    }
  }

  // --- Collision cases (§II-B) -----------------------------------------
  // A few pool NXDs coincide with names benign software queries anyway.
  const std::uint32_t benign_base_for_collisions =
      client_base(config_.populations.size() - 1) +
      config_.populations.back().infected_devices;
  if (config_.collision_rate_per_pool_domain > 0.0) {
    for (std::size_t pi = 0; pi < config_.populations.size(); ++pi) {
      const dga::EpochPool& pool = pools_[pi]->epoch_pool(day);
      const double expected =
          config_.collision_rate_per_pool_domain * pool.size();
      const std::uint64_t collisions = rng_.poisson(expected);
      for (std::uint64_t c = 0; c < collisions; ++c) {
        const auto pos = static_cast<std::uint32_t>(rng_.uniform(pool.size()));
        const std::uint64_t hits = 2 + rng_.uniform(3);  // 2..4 benign queries
        for (std::uint64_t h = 0; h < hits; ++h) {
          const TimePoint t = day_start + milliseconds(rng_.uniform_range(
                                              0, day_len.millis() - 1));
          const auto benign_client = static_cast<std::uint32_t>(
              benign_base_for_collisions +
              rng_.uniform(std::max(config_.benign_clients, 1u)));
          queries.push_back(PendingQuery{t, benign_client,
                                         static_cast<std::uint32_t>(pi), pos,
                                         0});
        }
      }
    }
  }

  // --- Benign background traffic --------------------------------------
  const std::uint32_t benign_base = client_base(config_.populations.size() - 1) +
                                    config_.populations.back().infected_devices;
  for (std::uint32_t c = 0; c < config_.benign_clients; ++c) {
    for (std::uint32_t q = 0; q < config_.benign_queries_per_client_per_day; ++q) {
      const TimePoint t =
          day_start + milliseconds(rng_.uniform_range(0, day_len.millis() - 1));
      queries.push_back(PendingQuery{
          t, benign_base + c, UINT32_MAX, 0,
          static_cast<std::uint32_t>(rng_.uniform(kBenignDomainUniverse))});
    }
  }

  // --- Cache filtering in global time order ----------------------------
  std::sort(queries.begin(), queries.end(),
            [](const PendingQuery& a, const PendingQuery& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.client < b.client;
            });

  result.raw.reserve(queries.size());
  for (const PendingQuery& q : queries) {
    const std::string& domain =
        q.population == UINT32_MAX
            ? dga::benign_domain(q.benign_index)
            : pools_[q.population]->epoch_pool(day).domains[q.pool_position];
    const std::size_t forwarded_before = network_.vantage().size();
    const dns::Rcode rcode =
        network_.resolve(q.t, dns::ClientId{q.client}, domain);
    result.raw.push_back(
        botnet::RawRecord{q.t, dns::ClientId{q.client}, domain, rcode});
    // Raced duplicate: a retransmission (or a concurrent query from another
    // device) that beat the cache insert also reaches the border.
    const bool was_forwarded = network_.vantage().size() > forwarded_before;
    if (was_forwarded && config_.duplicate_query_rate > 0.0 &&
        rng_.bernoulli(config_.duplicate_query_rate)) {
      const TimePoint dup_time = q.t + milliseconds(rng_.uniform_range(0, 999));
      network_.vantage().record(dup_time, dns::ServerId{0}, domain);
      result.raw.push_back(
          botnet::RawRecord{dup_time, dns::ClientId{q.client}, domain, rcode});
    }
  }

  result.observable = network_.vantage().take();
  network_.evict_expired(day_start + day_len);
  return result;
}

}  // namespace botmeter::trace
