#include "dga/domain_gen.hpp"

#include <array>

#include "common/rng.hpp"

namespace botmeter::dga {

namespace {

constexpr std::array<const char*, 6> kTlds = {".com", ".net",  ".org",
                                              ".biz", ".info", ".ru"};

constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr std::uint64_t kAlphabetSize = sizeof(kAlphabet) - 1;

}  // namespace

std::string domain_name(std::uint64_t seed, std::int64_t day,
                        std::uint32_t index) {
  // Derive a private stream for the triple; two mixing rounds decorrelate
  // neighbouring (day, index) pairs.
  std::uint64_t state =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(day) * 0x9E3779B97F4A7C15ULL) ^
            (static_cast<std::uint64_t>(index) << 32 | index));
  const std::uint64_t len = 8 + splitmix64(state) % 12;  // 8..19 chars
  std::string name;
  name.reserve(len + 5);
  // First character must be a letter so the name is a plausible hostname.
  name.push_back(kAlphabet[splitmix64(state) % 26]);
  for (std::uint64_t i = 1; i < len; ++i) {
    name.push_back(kAlphabet[splitmix64(state) % kAlphabetSize]);
  }
  name += kTlds[splitmix64(state) % kTlds.size()];
  return name;
}

std::string benign_domain(std::uint64_t k) {
  std::uint64_t state = mix64(k ^ 0xBEEF0000BEEFULL);
  const std::uint64_t host = splitmix64(state) % 4096;
  const std::uint64_t site = splitmix64(state) % 64;
  return "host" + std::to_string(host) + ".corp" + std::to_string(site) +
         ".example";
}

}  // namespace botmeter::dga
