#include "dga/taxonomy.hpp"

namespace botmeter::dga {

std::string_view representative_family(const Taxonomy& t) {
  using P = PoolModel;
  using B = BarrelModel;
  // Fig. 3: representative families per cell; "?" cells have not been
  // spotted in the wild.
  if (t.pool == P::kDrainReplenish) {
    switch (t.barrel) {
      case B::kUniform: return "Murofet";  // also Srizbi, Torpig
      case B::kSampling: return "Conficker.C";
      case B::kRandomCut: return "newGoZ";
      case B::kPermutation: return "Necurs";
      default: return "";  // coordinated-cut extension: not spotted in the wild
    }
  }
  if (t.pool == P::kSlidingWindow) {
    switch (t.barrel) {
      case B::kUniform: return "PushDo";  // also Ranbyus
      default: return "";
    }
  }
  if (t.pool == P::kMultipleMixture) {
    switch (t.barrel) {
      case B::kUniform: return "Pykspa";
      default: return "";
    }
  }
  return "";
}

}  // namespace botmeter::dga
