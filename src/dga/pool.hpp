// Query-pool models (§III-A).
//
// A pool model answers one question: which ordered list of domains is "the
// pool" on a given epoch, and which of its positions are registered as C2
// servers. The order is significant — it is the generation order that the
// uniform barrel walks and the circle order that the randomcut barrel cuts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dga/config.hpp"

namespace botmeter::dga {

/// The pool as it stands on one epoch.
struct EpochPool {
  std::int64_t epoch = 0;
  std::vector<std::string> domains;             // canonical (circle) order
  std::vector<std::uint32_t> valid_positions;   // sorted; registered this epoch

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(domains.size());
  }
  [[nodiscard]] bool is_valid_position(std::uint32_t pos) const;
  [[nodiscard]] std::uint32_t nxd_count() const {
    return size() - static_cast<std::uint32_t>(valid_positions.size());
  }
};

/// Interface over the three pool models. Implementations are deterministic
/// functions of (config.seed, epoch); results are memoised because the
/// simulator, matcher and estimators all consult the same pools.
class QueryPoolModel {
 public:
  virtual ~QueryPoolModel() = default;

  QueryPoolModel(const QueryPoolModel&) = delete;
  QueryPoolModel& operator=(const QueryPoolModel&) = delete;

  /// The pool for `epoch` (0-based day number). Reference stays valid for
  /// the lifetime of the model.
  [[nodiscard]] const EpochPool& epoch_pool(std::int64_t epoch);

  [[nodiscard]] const DgaConfig& config() const { return config_; }

 protected:
  explicit QueryPoolModel(DgaConfig config);
  [[nodiscard]] virtual EpochPool build(std::int64_t epoch) const = 0;

  DgaConfig config_;

 private:
  // Small epoch-keyed memo; pools are immutable once built.
  std::vector<std::pair<std::int64_t, std::unique_ptr<EpochPool>>> cache_;
};

/// §III-A "drain-and-replenish": a completely fresh pool of
/// nxd_count + valid_count domains every epoch (Murofet, Conficker, newGoZ,
/// Necurs, GameoverZeus, Srizbi, ...).
class DrainReplenishPool final : public QueryPoolModel {
 public:
  explicit DrainReplenishPool(DgaConfig config);

 private:
  EpochPool build(std::int64_t epoch) const override;
};

/// §III-A "sliding-window": each day contributes fresh_per_day new domains;
/// the pool on day D spans the batches of days
/// [D - window_back_days, D + window_forward_days] (Ranbyus: -30..0 x 40,
/// PushDo: -30..+15 x 30).
class SlidingWindowPool final : public QueryPoolModel {
 public:
  explicit SlidingWindowPool(DgaConfig config);

 private:
  EpochPool build(std::int64_t epoch) const override;
};

/// §III-A "multiple-mixture": the useful pool is interleaved with a decoy
/// pool produced by an identical DGA instance under a different seed
/// (Pykspa: 200 useful + 16K noisy). Valid positions only ever fall on
/// useful domains.
class MultipleMixturePool final : public QueryPoolModel {
 public:
  explicit MultipleMixturePool(DgaConfig config);

 private:
  EpochPool build(std::int64_t epoch) const override;
};

/// Factory dispatching on config.taxonomy.pool. Validates the config.
[[nodiscard]] std::unique_ptr<QueryPoolModel> make_pool_model(const DgaConfig& config);

}  // namespace botmeter::dga
