// JSON (de)serialisation of DGA family configurations.
//
// Lets operators describe a newly reverse-engineered family in a config file
// and run the tools against it without recompiling:
//
//   {
//     "name": "MyDga",
//     "pool_model": "drain-and-replenish",
//     "barrel_model": "randomcut",
//     "nxd_count": 9995,
//     "valid_count": 5,
//     "barrel_size": 500,
//     "query_interval_ms": 1000
//   }
//
// Optional keys: jitter_min_ms / jitter_max_ms (for interval-free families),
// epoch_hours (default 24), stop_on_hit (default true), fresh_per_day /
// window_back_days / window_forward_days (sliding-window pools),
// noise_pool_size (multiple-mixture pools), seed. Unknown keys are an error
// — typos must not silently fall back to defaults.
#pragma once

#include <string_view>

#include "common/json.hpp"
#include "dga/config.hpp"

namespace botmeter::dga {

/// Build a validated DgaConfig from a parsed JSON object.
[[nodiscard]] DgaConfig config_from_json(const json::Value& value);

/// Convenience: parse `text` as JSON, then build the config.
[[nodiscard]] DgaConfig config_from_json_text(std::string_view text);

}  // namespace botmeter::dga
