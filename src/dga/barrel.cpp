#include "dga/barrel.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/error.hpp"

namespace botmeter::dga {

std::vector<std::uint32_t> make_barrel(const DgaConfig& config,
                                       const EpochPool& pool, Rng& bot_rng) {
  const std::uint32_t pool_size = pool.size();
  if (pool_size == 0) throw ConfigError("make_barrel: empty pool");
  const std::uint32_t k = std::min(config.barrel_size, pool_size);

  std::vector<std::uint32_t> barrel;
  barrel.reserve(k);

  switch (config.taxonomy.barrel) {
    case BarrelModel::kUniform: {
      for (std::uint32_t i = 0; i < k; ++i) barrel.push_back(i);
      break;
    }
    case BarrelModel::kSampling: {
      auto picks = bot_rng.sample_without_replacement(pool_size, k);
      for (auto p : picks) barrel.push_back(static_cast<std::uint32_t>(p));
      break;
    }
    case BarrelModel::kRandomCut: {
      const auto start = static_cast<std::uint32_t>(bot_rng.uniform(pool_size));
      for (std::uint32_t i = 0; i < k; ++i) {
        barrel.push_back((start + i) % pool_size);
      }
      break;
    }
    case BarrelModel::kPermutation: {
      std::vector<std::uint32_t> all(pool_size);
      std::iota(all.begin(), all.end(), 0U);
      bot_rng.shuffle(std::span<std::uint32_t>{all});
      all.resize(k);
      barrel = std::move(all);
      break;
    }
    case BarrelModel::kCoordinatedCut: {
      // Evasive extension: the epoch's base start is derived from the shared
      // DGA state (seed + epoch), so every bot lands on (nearly) the same
      // cut; the per-bot jitter keeps a sliver of individual variation
      // without expanding the population's collective footprint.
      const auto base = static_cast<std::uint32_t>(
          mix64(config.seed ^ mix64(static_cast<std::uint64_t>(pool.epoch) +
                                    0xC0DECA71ULL)) %
          pool_size);
      const std::uint32_t jitter_span = std::max(1u, k / 16);
      const auto offset =
          static_cast<std::uint32_t>(bot_rng.uniform(jitter_span));
      for (std::uint32_t i = 0; i < k; ++i) {
        barrel.push_back((base + offset + i) % pool_size);
      }
      break;
    }
  }
  return barrel;
}

std::optional<std::uint32_t> lazy_barrel_start(const DgaConfig& config,
                                               const EpochPool& pool,
                                               Rng& bot_rng) {
  const std::uint32_t pool_size = pool.size();
  if (pool_size == 0) throw ConfigError("make_barrel: empty pool");
  const std::uint32_t k = std::min(config.barrel_size, pool_size);
  switch (config.taxonomy.barrel) {
    case BarrelModel::kUniform:
      return 0;
    case BarrelModel::kRandomCut:
      return static_cast<std::uint32_t>(bot_rng.uniform(pool_size));
    case BarrelModel::kCoordinatedCut: {
      const auto base = static_cast<std::uint32_t>(
          mix64(config.seed ^ mix64(static_cast<std::uint64_t>(pool.epoch) +
                                    0xC0DECA71ULL)) %
          pool_size);
      const std::uint32_t jitter_span = std::max(1u, k / 16);
      const auto offset =
          static_cast<std::uint32_t>(bot_rng.uniform(jitter_span));
      return (base + offset) % pool_size;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace botmeter::dga
