#include "dga/families.hpp"

#include <array>
#include <functional>
#include <string>

#include "common/error.hpp"

namespace botmeter::dga {

DgaConfig murofet_config() {
  DgaConfig c;
  c.name = "Murofet";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  c.nxd_count = 798;
  c.valid_count = 2;
  c.barrel_size = 798;
  c.query_interval = milliseconds(500);
  c.seed = 0x4D55524FULL;  // "MURO"
  return c;
}

DgaConfig conficker_c_config() {
  DgaConfig c;
  c.name = "Conficker.C";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kSampling};
  c.nxd_count = 49995;
  c.valid_count = 5;
  c.barrel_size = 500;
  c.query_interval = seconds(1);
  c.seed = 0x434F4E46ULL;  // "CONF"
  return c;
}

DgaConfig newgoz_config() {
  DgaConfig c;
  c.name = "newGoZ";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kRandomCut};
  c.nxd_count = 9995;
  c.valid_count = 5;
  c.barrel_size = 500;
  c.query_interval = seconds(1);
  c.seed = 0x474F5A32ULL;  // "GOZ2"
  return c;
}

DgaConfig necurs_config() {
  DgaConfig c;
  c.name = "Necurs";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kPermutation};
  c.nxd_count = 2046;
  c.valid_count = 2;
  c.barrel_size = 2046;
  c.query_interval = milliseconds(500);
  c.seed = 0x4E454355ULL;  // "NECU"
  return c;
}

DgaConfig ranbyus_config() {
  DgaConfig c;
  c.name = "Ranbyus";
  c.taxonomy = {PoolModel::kSlidingWindow, BarrelModel::kUniform};
  c.fresh_per_day = 40;
  c.window_back_days = 30;
  c.window_forward_days = 0;
  // Pool of 40 * 31 = 1240 domains (§III-A), a few registered.
  c.valid_count = 2;
  c.nxd_count = 40 * 31 - 2;
  c.barrel_size = 40 * 31;
  c.query_interval = milliseconds(500);
  c.seed = 0x52414E42ULL;  // "RANB"
  return c;
}

DgaConfig pushdo_config() {
  DgaConfig c;
  c.name = "PushDo";
  c.taxonomy = {PoolModel::kSlidingWindow, BarrelModel::kUniform};
  c.fresh_per_day = 30;
  c.window_back_days = 30;
  c.window_forward_days = 15;
  // Pool of 30 * 46 = 1380 domains (§III-A).
  c.valid_count = 2;
  c.nxd_count = 30 * 46 - 2;
  c.barrel_size = 30 * 46;
  c.query_interval = milliseconds(500);
  c.seed = 0x50555348ULL;  // "PUSH"
  return c;
}

DgaConfig pykspa_config() {
  DgaConfig c;
  c.name = "Pykspa";
  c.taxonomy = {PoolModel::kMultipleMixture, BarrelModel::kUniform};
  // 200 useful domains alongside a 16K decoy pool (§III-A).
  c.valid_count = 2;
  c.nxd_count = 198;
  c.noise_pool_size = 16'000;
  c.barrel_size = 200 + 16'000;
  c.query_interval = milliseconds(500);
  c.seed = 0x50594B53ULL;  // "PYKS"
  return c;
}

DgaConfig ramnit_config() {
  DgaConfig c;
  c.name = "Ramnit";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  // Table II: no fixed query interval. Pool size is a representative public
  // value (Ramnit derives ~300 domains per seed round).
  c.nxd_count = 298;
  c.valid_count = 2;
  c.barrel_size = 300;
  c.query_interval = milliseconds(0);  // "none": jittered gaps
  c.seed = 0x52414D4EULL;  // "RAMN"
  return c;
}

DgaConfig qakbot_config() {
  DgaConfig c;
  c.name = "Qakbot";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  // Table II: no fixed query interval. Representative daily slice of
  // Qakbot's 5K-per-cycle pool.
  c.nxd_count = 495;
  c.valid_count = 5;
  c.barrel_size = 500;
  c.query_interval = milliseconds(0);  // "none": jittered gaps
  c.seed = 0x51414B42ULL;  // "QAKB"
  return c;
}

DgaConfig srizbi_config() {
  DgaConfig c;
  c.name = "Srizbi";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  // Representative: Srizbi's generator yields a small daily pool.
  c.nxd_count = 998;
  c.valid_count = 2;
  c.barrel_size = 1000;
  c.query_interval = milliseconds(500);
  c.seed = 0x53525A42ULL;  // "SRZB"
  return c;
}

DgaConfig torpig_config() {
  DgaConfig c;
  c.name = "Torpig";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  // Representative: Torpig's daily domain set is small.
  c.nxd_count = 498;
  c.valid_count = 2;
  c.barrel_size = 500;
  c.query_interval = milliseconds(500);
  c.seed = 0x544F5250ULL;  // "TORP"
  return c;
}

DgaConfig evasive_variant(DgaConfig base) {
  base.taxonomy.barrel = BarrelModel::kCoordinatedCut;
  base.name += "-evasive";
  return base;
}

namespace {
using Factory = DgaConfig (*)();
struct NamedFactory {
  std::string_view name;
  Factory make;
};
constexpr std::array<NamedFactory, 11> kRegistry = {{
    {"Murofet", &murofet_config},
    {"Conficker.C", &conficker_c_config},
    {"newGoZ", &newgoz_config},
    {"Necurs", &necurs_config},
    {"Ranbyus", &ranbyus_config},
    {"PushDo", &pushdo_config},
    {"Pykspa", &pykspa_config},
    {"Ramnit", &ramnit_config},
    {"Qakbot", &qakbot_config},
    {"Srizbi", &srizbi_config},
    {"Torpig", &torpig_config},
}};
}  // namespace

DgaConfig family_config(std::string_view name) {
  for (const auto& entry : kRegistry) {
    if (entry.name == name) return entry.make();
  }
  throw ConfigError("family_config: unknown DGA family '" + std::string(name) + "'");
}

std::vector<std::string_view> family_names() {
  std::vector<std::string_view> names;
  names.reserve(kRegistry.size());
  for (const auto& entry : kRegistry) names.push_back(entry.name);
  return names;
}

}  // namespace botmeter::dga
