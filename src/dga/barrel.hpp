// Query-barrel models (§III-B).
//
// A barrel is the ordered list of pool positions one bot will attempt during
// one activation. The four models trade determinism (easy coordination,
// easy detection) against randomness (detection resilience, lower C2 hit
// rate) — the vertical axis of Fig. 3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"

namespace botmeter::dga {

/// Build the barrel one bot draws for one activation over `pool`.
/// `bot_rng` is the bot's private stream — two bots (or two activations of
/// the same bot where the model says so) draw independently.
///
///  - kUniform:     positions 0..min(theta_q, pool)-1 in pool order; every
///                  bot's barrel is identical (the caching-collision problem
///                  that motivates the Poisson estimator).
///  - kSampling:    theta_q positions sampled without replacement
///                  (Conficker.C: 500 of 50K).
///  - kRandomCut:   a uniformly random start, then theta_q consecutive
///                  positions modulo the pool size (newGoZ: 500 of 10K).
///  - kPermutation: the full pool in a fresh random order, truncated to
///                  theta_q (Necurs).
[[nodiscard]] std::vector<std::uint32_t> make_barrel(const DgaConfig& config,
                                                     const EpochPool& pool,
                                                     Rng& bot_rng);

/// For the cut-style barrels (uniform, random-cut, coordinated-cut) the
/// whole barrel is `(start + i) mod pool` — return that start, drawn with
/// exactly the rng consumption make_barrel would have used, so callers can
/// walk the barrel lazily without materialising it (the simulator's hot
/// path). Returns nullopt for the models whose barrels genuinely need
/// materialising (sampling, permutation).
[[nodiscard]] std::optional<std::uint32_t> lazy_barrel_start(
    const DgaConfig& config, const EpochPool& pool, Rng& bot_rng);

}  // namespace botmeter::dga
