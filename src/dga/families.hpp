// Registry of concrete DGA families.
//
// The four Table I prototypes carry the paper's exact parameters (theta_0,
// theta_E, theta_q, delta_i). The remaining families are parameterised from
// the descriptions in §III and §V-B; where the paper gives no number we use
// a representative public value and say so in DESIGN.md.
#pragma once

#include <string_view>
#include <vector>

#include "dga/config.hpp"

namespace botmeter::dga {

/// Table I prototypes (exact paper parameters).
[[nodiscard]] DgaConfig murofet_config();      // A_U: 798 / 2 / 798, 500 ms
[[nodiscard]] DgaConfig conficker_c_config();  // A_S: 49995 / 5 / 500, 1 s
[[nodiscard]] DgaConfig newgoz_config();       // A_R: 9995 / 5 / 500, 1 s
[[nodiscard]] DgaConfig necurs_config();       // A_P: 2046 / 2 / 2046, 500 ms

/// Sliding-window families (§III-A).
[[nodiscard]] DgaConfig ranbyus_config();  // 40/day, past 30 days => 1240
[[nodiscard]] DgaConfig pushdo_config();   // 30/day, -30..+15 days => 1380

/// Multiple-mixture family (§III-A).
[[nodiscard]] DgaConfig pykspa_config();  // 200 useful + 16K noisy

/// Additional uniform-barrel families used in the real-trace evaluation
/// (§V-B; "none" query interval in Table II) and in Fig. 3.
[[nodiscard]] DgaConfig ramnit_config();
[[nodiscard]] DgaConfig qakbot_config();
[[nodiscard]] DgaConfig srizbi_config();
[[nodiscard]] DgaConfig torpig_config();

/// The coordinated-cut evasive variant of a family (paper future-work #3):
/// same pool, same parameters, but all bots share an epoch-derived cut so
/// the population's collective DNS footprint mimics one bot. The name gains
/// an "-evasive" suffix.
[[nodiscard]] DgaConfig evasive_variant(DgaConfig base);

/// Look up a family by (case-sensitive) name; throws ConfigError for an
/// unknown name.
[[nodiscard]] DgaConfig family_config(std::string_view name);

/// Names of every registered family.
[[nodiscard]] std::vector<std::string_view> family_names();

}  // namespace botmeter::dga
