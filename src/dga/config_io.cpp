#include "dga/config_io.hpp"

#include <set>
#include <string>

#include "common/error.hpp"

namespace botmeter::dga {

namespace {

PoolModel pool_model_from_name(const std::string& name) {
  for (PoolModel m : kAllPoolModels) {
    if (name == to_string(m)) return m;
  }
  throw ConfigError("config: unknown pool_model '" + name +
                    "' (expected drain-and-replenish, sliding-window, or "
                    "multiple-mixture)");
}

BarrelModel barrel_model_from_name(const std::string& name) {
  for (BarrelModel m : kAllBarrelModels) {
    if (name == to_string(m)) return m;
  }
  if (name == to_string(BarrelModel::kCoordinatedCut)) {
    return BarrelModel::kCoordinatedCut;
  }
  throw ConfigError("config: unknown barrel_model '" + name +
                    "' (expected uniform, sampling, randomcut, permutation, "
                    "or coordinatedcut)");
}

std::uint32_t uint_field(const json::Value& object, const std::string& key) {
  const std::int64_t v = object.at(key).as_int();
  if (v < 0 || v > UINT32_MAX) {
    throw ConfigError("config: " + key + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

DgaConfig config_from_json(const json::Value& value) {
  const json::Object& object = value.as_object();

  static const std::set<std::string> kKnownKeys{
      "name",           "pool_model",        "barrel_model",
      "nxd_count",      "valid_count",       "barrel_size",
      "query_interval_ms", "jitter_min_ms",  "jitter_max_ms",
      "epoch_hours",    "stop_on_hit",       "fresh_per_day",
      "window_back_days", "window_forward_days", "noise_pool_size",
      "seed"};
  for (const auto& [key, unused] : object) {
    if (!kKnownKeys.contains(key)) {
      throw ConfigError("config: unknown key '" + key + "'");
    }
  }

  DgaConfig config;
  config.name = value.at("name").as_string();
  config.taxonomy.pool =
      pool_model_from_name(value.at("pool_model").as_string());
  config.taxonomy.barrel =
      barrel_model_from_name(value.at("barrel_model").as_string());
  config.nxd_count = uint_field(value, "nxd_count");
  config.valid_count = uint_field(value, "valid_count");
  config.barrel_size = uint_field(value, "barrel_size");
  config.query_interval =
      milliseconds(value.at("query_interval_ms").as_int());

  if (const json::Value* v = value.find("jitter_min_ms")) {
    config.jitter_min = milliseconds(v->as_int());
  }
  if (const json::Value* v = value.find("jitter_max_ms")) {
    config.jitter_max = milliseconds(v->as_int());
  }
  if (const json::Value* v = value.find("epoch_hours")) {
    config.epoch = hours(v->as_int());
  }
  if (const json::Value* v = value.find("stop_on_hit")) {
    config.stop_on_hit = v->as_bool();
  }
  if (const json::Value* v = value.find("fresh_per_day")) {
    config.fresh_per_day = static_cast<std::uint32_t>(v->as_int());
  }
  if (const json::Value* v = value.find("window_back_days")) {
    config.window_back_days = static_cast<std::uint32_t>(v->as_int());
  }
  if (const json::Value* v = value.find("window_forward_days")) {
    config.window_forward_days = static_cast<std::uint32_t>(v->as_int());
  }
  if (const json::Value* v = value.find("noise_pool_size")) {
    config.noise_pool_size = static_cast<std::uint32_t>(v->as_int());
  }
  if (const json::Value* v = value.find("seed")) {
    config.seed = static_cast<std::uint64_t>(v->as_int());
  }

  config.validate();
  return config;
}

DgaConfig config_from_json_text(std::string_view text) {
  return config_from_json(json::parse(text));
}

}  // namespace botmeter::dga
