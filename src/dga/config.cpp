#include "dga/config.hpp"

#include "common/error.hpp"

namespace botmeter::dga {

void DgaConfig::validate() const {
  if (name.empty()) throw ConfigError("DgaConfig: name must be set");
  if (pool_size() == 0) throw ConfigError("DgaConfig: empty query pool");
  if (valid_count == 0) {
    throw ConfigError("DgaConfig: at least one registered domain required");
  }
  if (barrel_size == 0) throw ConfigError("DgaConfig: barrel_size must be > 0");
  if (barrel_size > pool_size() &&
      taxonomy.pool == PoolModel::kDrainReplenish) {
    throw ConfigError("DgaConfig: barrel larger than pool");
  }
  if (query_interval.millis() < 0) {
    throw ConfigError("DgaConfig: negative query interval");
  }
  if (query_interval.millis() == 0 &&
      (jitter_min.millis() <= 0 || jitter_max < jitter_min)) {
    throw ConfigError("DgaConfig: invalid jitter range for interval-free family");
  }
  if (epoch.millis() <= 0) throw ConfigError("DgaConfig: epoch must be positive");
  if (taxonomy.pool == PoolModel::kSlidingWindow && fresh_per_day == 0) {
    throw ConfigError("DgaConfig: sliding-window pool needs fresh_per_day > 0");
  }
  if (taxonomy.pool == PoolModel::kMultipleMixture && noise_pool_size == 0) {
    throw ConfigError("DgaConfig: multiple-mixture pool needs noise_pool_size > 0");
  }
}

}  // namespace botmeter::dga
