// The paper's DGA taxonomy (§III, Fig. 3).
//
// A DGA family is classified by how its daily *query pool* is maintained and
// how each bot draws its *query barrel* from that pool. The twelve
// (pool x barrel) cells partition the DGA universe; the estimator library is
// keyed on the barrel axis because that is what determines the observable
// DNS dynamics.
#pragma once

#include <array>
#include <iosfwd>
#include <ostream>
#include <string_view>

namespace botmeter::dga {

/// How the query pool evolves over time (§III-A).
enum class PoolModel {
  kDrainReplenish,   // entire pool replaced each epoch (Murofet, Conficker, ...)
  kSlidingWindow,    // daily batches, window of past/future days (Ranbyus, PushDo)
  kMultipleMixture,  // useful pool interleaved with decoy pools (Pykspa)
};

/// How each bot selects the domains it will query (§III-B).
enum class BarrelModel {
  kUniform,      // whole pool, generation order (A_U)
  kSampling,     // random subset of the pool (A_S, Conficker.C)
  kRandomCut,    // theta_q consecutive domains from a random start (A_R, newGoZ)
  kPermutation,  // whole pool in a random order (A_P, Necurs)

  // Extension (paper future-work #3, not part of the Fig. 3 grid): an
  // adversarial barrel designed to defeat population estimation. All bots
  // derive a *shared* cut start from the DGA seed and epoch (they already
  // share both), then jitter it slightly per bot. To a randomcut-style
  // coverage model the whole population looks like one or two bots; to the
  // Timing estimator the near-identical trains are cache-masked like A_U.
  kCoordinatedCut,
};

struct Taxonomy {
  PoolModel pool = PoolModel::kDrainReplenish;
  BarrelModel barrel = BarrelModel::kUniform;

  friend bool operator==(const Taxonomy&, const Taxonomy&) = default;
};

[[nodiscard]] constexpr std::string_view to_string(PoolModel m) {
  switch (m) {
    case PoolModel::kDrainReplenish: return "drain-and-replenish";
    case PoolModel::kSlidingWindow: return "sliding-window";
    case PoolModel::kMultipleMixture: return "multiple-mixture";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(BarrelModel m) {
  switch (m) {
    case BarrelModel::kUniform: return "uniform";
    case BarrelModel::kSampling: return "sampling";
    case BarrelModel::kRandomCut: return "randomcut";
    case BarrelModel::kPermutation: return "permutation";
    case BarrelModel::kCoordinatedCut: return "coordinatedcut";
  }
  return "?";
}

/// Short labels used in the paper: A_U, A_S, A_R, A_P (barrel axis under the
/// drain-and-replenish pool).
[[nodiscard]] constexpr std::string_view short_label(BarrelModel m) {
  switch (m) {
    case BarrelModel::kUniform: return "A_U";
    case BarrelModel::kSampling: return "A_S";
    case BarrelModel::kRandomCut: return "A_R";
    case BarrelModel::kPermutation: return "A_P";
    case BarrelModel::kCoordinatedCut: return "A_C";  // extension
  }
  return "?";
}

inline constexpr std::array<PoolModel, 3> kAllPoolModels = {
    PoolModel::kDrainReplenish, PoolModel::kSlidingWindow,
    PoolModel::kMultipleMixture};

/// The paper's Fig. 3 barrel axis (the coordinated-cut extension is
/// deliberately excluded: the taxonomy grid reproduces the paper).
inline constexpr std::array<BarrelModel, 4> kAllBarrelModels = {
    BarrelModel::kUniform, BarrelModel::kSampling, BarrelModel::kRandomCut,
    BarrelModel::kPermutation};

/// The representative family spotted in the wild for a taxonomy cell, or ""
/// for the cells marked "?" in Fig. 3.
[[nodiscard]] std::string_view representative_family(const Taxonomy& t);

inline std::ostream& operator<<(std::ostream& os, PoolModel m) {
  return os << to_string(m);
}
inline std::ostream& operator<<(std::ostream& os, BarrelModel m) {
  return os << to_string(m);
}
inline std::ostream& operator<<(std::ostream& os, const Taxonomy& t) {
  return os << to_string(t.pool) << '/' << to_string(t.barrel);
}

}  // namespace botmeter::dga
