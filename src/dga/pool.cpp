#include "dga/pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dga/domain_gen.hpp"

namespace botmeter::dga {

namespace {

/// Deterministic per-epoch RNG for the botmaster's choices (which positions
/// to register). Shared-seed property of §III: bots could recompute this.
Rng epoch_rng(const DgaConfig& config, std::int64_t epoch) {
  return Rng{mix64(config.seed ^ mix64(static_cast<std::uint64_t>(epoch)))};
}

std::vector<std::uint32_t> sample_valid_positions(std::uint32_t pool_size,
                                                  std::uint32_t valid_count,
                                                  Rng& rng) {
  auto picks = rng.sample_without_replacement(pool_size, valid_count);
  std::vector<std::uint32_t> positions;
  positions.reserve(picks.size());
  for (auto p : picks) positions.push_back(static_cast<std::uint32_t>(p));
  std::sort(positions.begin(), positions.end());
  return positions;
}

}  // namespace

bool EpochPool::is_valid_position(std::uint32_t pos) const {
  return std::binary_search(valid_positions.begin(), valid_positions.end(), pos);
}

QueryPoolModel::QueryPoolModel(DgaConfig config) : config_(std::move(config)) {
  config_.validate();
}

const EpochPool& QueryPoolModel::epoch_pool(std::int64_t epoch) {
  for (const auto& [key, pool] : cache_) {
    if (key == epoch) return *pool;
  }
  auto pool = std::make_unique<EpochPool>(build(epoch));
  const EpochPool& ref = *pool;
  cache_.emplace_back(epoch, std::move(pool));
  return ref;
}

// ---------------------------------------------------------------- drain

DrainReplenishPool::DrainReplenishPool(DgaConfig config)
    : QueryPoolModel(std::move(config)) {
  if (config_.taxonomy.pool != PoolModel::kDrainReplenish) {
    throw ConfigError("DrainReplenishPool: config declares a different pool model");
  }
}

EpochPool DrainReplenishPool::build(std::int64_t epoch) const {
  EpochPool pool;
  pool.epoch = epoch;
  const std::uint32_t n = config_.pool_size();
  pool.domains.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.domains.push_back(domain_name(config_.seed, epoch, i));
  }
  Rng rng = epoch_rng(config_, epoch);
  pool.valid_positions = sample_valid_positions(n, config_.valid_count, rng);
  return pool;
}

// -------------------------------------------------------------- sliding

SlidingWindowPool::SlidingWindowPool(DgaConfig config)
    : QueryPoolModel(std::move(config)) {
  if (config_.taxonomy.pool != PoolModel::kSlidingWindow) {
    throw ConfigError("SlidingWindowPool: config declares a different pool model");
  }
  const std::uint64_t window_days = static_cast<std::uint64_t>(config_.window_back_days) +
                                    config_.window_forward_days + 1;
  if (window_days * config_.fresh_per_day != config_.pool_size()) {
    throw ConfigError(
        "SlidingWindowPool: nxd_count + valid_count must equal "
        "fresh_per_day * (window_back_days + window_forward_days + 1)");
  }
}

EpochPool SlidingWindowPool::build(std::int64_t epoch) const {
  EpochPool pool;
  pool.epoch = epoch;
  pool.domains.reserve(config_.pool_size());
  // Batches in day order, oldest first; this is the canonical pool order.
  const std::int64_t first = epoch - config_.window_back_days;
  const std::int64_t last = epoch + config_.window_forward_days;
  for (std::int64_t day = first; day <= last; ++day) {
    for (std::uint32_t i = 0; i < config_.fresh_per_day; ++i) {
      pool.domains.push_back(domain_name(config_.seed, day, i));
    }
  }
  Rng rng = epoch_rng(config_, epoch);
  pool.valid_positions =
      sample_valid_positions(pool.size(), config_.valid_count, rng);
  return pool;
}

// -------------------------------------------------------------- mixture

MultipleMixturePool::MultipleMixturePool(DgaConfig config)
    : QueryPoolModel(std::move(config)) {
  if (config_.taxonomy.pool != PoolModel::kMultipleMixture) {
    throw ConfigError("MultipleMixturePool: config declares a different pool model");
  }
}

EpochPool MultipleMixturePool::build(std::int64_t epoch) const {
  EpochPool pool;
  pool.epoch = epoch;
  const std::uint32_t useful = config_.pool_size();
  const std::uint32_t noise = config_.noise_pool_size;
  const std::uint32_t total = useful + noise;
  pool.domains.reserve(total);

  // Interleave the useful stream into the noise stream at a deterministic
  // stride so neither is a contiguous block (the decoys are meant to hide
  // the useful domains). Record where the useful ones landed.
  const std::uint64_t noise_seed = mix64(config_.seed ^ 0x1705CA5EULL);
  std::vector<std::uint32_t> useful_positions;
  useful_positions.reserve(useful);
  const std::uint32_t stride = total / useful;
  std::uint32_t next_useful = 0, useful_emitted = 0, noise_emitted = 0;
  for (std::uint32_t pos = 0; pos < total; ++pos) {
    const bool emit_useful =
        useful_emitted < useful && (pos == next_useful || noise_emitted >= noise);
    if (emit_useful) {
      pool.domains.push_back(domain_name(config_.seed, epoch, useful_emitted));
      useful_positions.push_back(pos);
      ++useful_emitted;
      next_useful += stride;
    } else {
      pool.domains.push_back(domain_name(noise_seed, epoch, noise_emitted));
      ++noise_emitted;
    }
  }

  // The botmaster registers only useful domains.
  Rng rng = epoch_rng(config_, epoch);
  auto picks = rng.sample_without_replacement(useful, config_.valid_count);
  pool.valid_positions.reserve(picks.size());
  for (auto p : picks) {
    pool.valid_positions.push_back(useful_positions[static_cast<std::size_t>(p)]);
  }
  std::sort(pool.valid_positions.begin(), pool.valid_positions.end());
  return pool;
}

std::unique_ptr<QueryPoolModel> make_pool_model(const DgaConfig& config) {
  switch (config.taxonomy.pool) {
    case PoolModel::kDrainReplenish:
      return std::make_unique<DrainReplenishPool>(config);
    case PoolModel::kSlidingWindow:
      return std::make_unique<SlidingWindowPool>(config);
    case PoolModel::kMultipleMixture:
      return std::make_unique<MultipleMixturePool>(config);
  }
  throw ConfigError("make_pool_model: unknown pool model");
}

}  // namespace botmeter::dga
