// The estimator interface and window-level helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>

#include "estimators/compact_observation.hpp"
#include "estimators/observation.hpp"

namespace botmeter::obs {
class MetricsRegistry;
}  // namespace botmeter::obs

namespace botmeter::estimators {

/// A population estimate with an optional confidence interval. Models that
/// can quantify their uncertainty (Poisson via the exact chi-square rate
/// interval, Bernoulli via a parametric bootstrap of its statistic) fill
/// `interval`; others return the point alone.
///
/// Estimates produced from compact (sketch-backed) observations additionally
/// say whether any input statistic was approximate: when `approximate` is
/// true the interval has been widened by the sketch's error contribution and
/// `sketch_rse` records the relative standard error of the dominant sketch
/// input. Exact-path estimates always report `approximate == false`.
struct IntervalEstimate {
  double value = 0.0;
  std::optional<std::pair<double, double>> interval;  // [lo, hi]
  double level = 0.9;                                 // confidence level
  bool approximate = false;
  double sketch_rse = 0.0;
};

/// A bot-population estimation model (one entry of the analytic model
/// library, step 5 of Fig. 2).
class Estimator {
 public:
  virtual ~Estimator() = default;

  Estimator() = default;
  Estimator(const Estimator&) = delete;
  Estimator& operator=(const Estimator&) = delete;

  /// Short identifier, e.g. "timing", "poisson", "bernoulli".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether the model's assumptions hold for this family (e.g. the Poisson
  /// estimator requires the uniform barrel, the Bernoulli estimator the
  /// randomcut barrel). The Timing estimator applies everywhere.
  [[nodiscard]] virtual bool applicable(const dga::DgaConfig& config) const = 0;

  /// Estimate the active-bot population behind one server for one epoch.
  /// Returns a non-negative real (fractional estimates are meaningful:
  /// they are expectations).
  [[nodiscard]] virtual double estimate(const EpochObservation& obs) const = 0;

  /// Estimate with a confidence interval at the given level. The default
  /// returns the point estimate with no interval; models that can quantify
  /// uncertainty override it.
  [[nodiscard]] virtual IntervalEstimate estimate_with_interval(
      const EpochObservation& obs, double level = 0.9) const {
    return IntervalEstimate{estimate(obs), std::nullopt, level};
  }

  /// Whether (and how) this model can consume sketch-backed compact cells.
  /// The default — no support — covers models that genuinely need individual
  /// lookup timestamps/positions (timing, Bernoulli segment expectation).
  [[nodiscard]] virtual CompactSupport compact_support() const { return {}; }

  /// Estimate from a compact observation. Only valid when
  /// `compact_support().supported`; the default throws ConfigError. While a
  /// cell's sketches are still exact (below the KMV saturation point and,
  /// for slotted models, exactly reconstructible), compact-capable models
  /// return bit-identical results to the exact path and leave
  /// `approximate` false; past that point they flag the estimate and widen
  /// the interval by the propagated sketch error.
  [[nodiscard]] virtual IntervalEstimate estimate_with_interval(
      const CompactObservation& obs, double level = 0.9) const;
};

/// Multi-epoch observation window (§V-A, Fig. 6(b)): per-epoch estimates are
/// averaged over the number of epochs. With a non-null `metrics` the call
/// records its inputs/outputs under `estimator.<name>.*` (windows, epochs,
/// matched lookups consumed, last window estimate); null is a strict no-op.
[[nodiscard]] double estimate_window(const Estimator& estimator,
                                     std::span<const EpochObservation> epochs,
                                     obs::MetricsRegistry* metrics = nullptr);

/// One (server, epoch) cell: the per-epoch interval estimate plus the number
/// of matched lookups it consumed. Cells are what the streaming engine keeps
/// after an epoch closes — the estimate is final, the lookups are freed.
struct EpochCell {
  std::int64_t epoch = 0;
  IntervalEstimate estimate;
  std::uint64_t matched = 0;
};

/// The multi-epoch window aggregate for one server.
struct WindowAggregate {
  double population = 0.0;  // mean of the per-epoch point estimates
  /// Mean of the per-epoch bounds, present only when every cell carries an
  /// interval (conservative; epoch estimates are close to independent).
  std::optional<std::pair<double, double>> interval;
  std::uint64_t matched = 0;  // total matched lookups across the cells
  /// True when any contributing epoch estimate was sketch-approximate; the
  /// largest per-epoch sketch relative error is carried alongside.
  bool approximate = false;
  double sketch_rse = 0.0;
};

/// Aggregate per-epoch cells into the window estimate, summing in the given
/// order. This is the single definition of the window aggregation: batch
/// `BotMeter::analyze` and the streaming engine both call it with cells in
/// ascending epoch order, which is what makes their floating-point totals
/// bit-identical. Throws ConfigError on an empty span.
[[nodiscard]] WindowAggregate aggregate_cells(std::span<const EpochCell> cells);

}  // namespace botmeter::estimators
