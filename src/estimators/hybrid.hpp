// Hybrid estimator (paper future-work #1: "combining temporal and semantic
// traits of DNS lookups to develop more effective bot population
// estimators").
//
// A weighted blend of a semantic model (coverage/segment statistics) and a
// temporal model (timing/poisson). The weight may be fixed or left to the
// default, which leans on the semantic side — the paper's experiments show
// semantic statistics are the more robust signal. bench_ablation_estimators
// sweeps the weight.
#pragma once

#include <memory>
#include <string>

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class HybridEstimator final : public Estimator {
 public:
  /// Blend `semantic` and `temporal` as w * semantic + (1-w) * temporal.
  /// Both estimators must outlive the hybrid if passed by reference; the
  /// owning constructor is preferred.
  HybridEstimator(std::unique_ptr<Estimator> semantic,
                  std::unique_ptr<Estimator> temporal,
                  double semantic_weight = 0.7);

  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Applicable wherever both components are.
  [[nodiscard]] bool applicable(const dga::DgaConfig& config) const override;

  [[nodiscard]] double estimate(const EpochObservation& obs) const override;

  /// Compact-capable iff both components are; the cell must carry the union
  /// of the components' sketch needs. (The library's default hybrid pairs
  /// Bernoulli with Timing, which has no compact path — such a hybrid
  /// reports unsupported.)
  [[nodiscard]] CompactSupport compact_support() const override;

  /// Weighted blend of the components' compact estimates. Approximate when
  /// either side is, carrying the larger sketch error; the interval is the
  /// weighted blend when both components produce one.
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const CompactObservation& obs, double level = 0.9) const override;

  [[nodiscard]] double semantic_weight() const { return weight_; }

 private:
  std::unique_ptr<Estimator> semantic_;
  std::unique_ptr<Estimator> temporal_;
  double weight_;
  std::string name_;
};

}  // namespace botmeter::estimators
