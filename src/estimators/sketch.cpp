#include "estimators/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace botmeter::estimators {
namespace {

// mix64 is a bijection on u64, so two u32 items share a hash iff they are the
// same item — KMV entry hashes are collision-free by construction.
[[nodiscard]] std::uint64_t item_hash(std::uint32_t value) {
  return mix64(static_cast<std::uint64_t>(value));
}

// Per-row count-min salt; any fixed avalanche-quality schedule works, it just
// has to be identical across shards/threads/restores.
[[nodiscard]] std::uint64_t row_salt(std::uint32_t row) {
  return mix64(0xC0117A115EEDULL + static_cast<std::uint64_t>(row) *
                                       0x9E3779B97F4A7C15ULL);
}

constexpr double kTwoPow53 = 9007199254740992.0;  // JSON-exact integer bound

void require(bool ok, const char* what) {
  if (!ok) throw DataError(std::string("sketch: ") + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// KmvSketch

KmvSketch::KmvSketch(std::uint32_t k) : k_(k) {
  if (k < 8) throw ConfigError("KmvSketch: k must be >= 8");
  entries_.reserve(k);
}

void KmvSketch::insert(std::uint32_t value) {
  const std::uint64_t hash = item_hash(value);
  // O(1) fast path: full sketch, hash beyond the current k-th minimum. A
  // strict > is required — equality means `value` is already the back entry.
  if (entries_.size() == k_ && hash > entries_.back().hash) {
    saturated_ = true;
    return;
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), hash,
      [](const Entry& e, std::uint64_t h) { return e.hash < h; });
  if (pos != entries_.end() && pos->hash == hash) return;  // duplicate
  if (entries_.size() == k_) {
    // Evict the current k-th minimum; reserve(k) keeps capacity constant.
    entries_.pop_back();
    saturated_ = true;
  }
  entries_.insert(pos, Entry{hash, value});
}

double KmvSketch::estimate() const {
  if (!saturated_) return static_cast<double>(entries_.size());
  // u_k: the k-th minimum hash mapped into (0, 1]; +1 so a zero hash cannot
  // divide by zero and the map is exact for the all-ones hash.
  const double u_k =
      std::ldexp(static_cast<double>(entries_.back().hash) + 1.0, -64);
  return static_cast<double>(k_ - 1) / u_k;
}

double KmvSketch::relative_error() const {
  if (!saturated_) return 0.0;
  return 1.0 / std::sqrt(static_cast<double>(k_ - 2));
}

std::vector<std::uint32_t> KmvSketch::values() const {
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.value);
  return out;
}

void KmvSketch::merge(const KmvSketch& other) {
  if (other.k_ != k_) throw ConfigError("KmvSketch: merge requires equal k");
  // Inserting the survivors of `other` reproduces the k smallest hashes of
  // the union; a saturated input has already dropped items, so the merged
  // sketch is approximate even if every survivor fits.
  saturated_ = saturated_ || other.saturated_;
  for (const Entry& e : other.entries_) insert(e.value);
}

std::size_t KmvSketch::memory_bytes() const {
  return sizeof(*this) + entries_.capacity() * sizeof(Entry);
}

json::Value KmvSketch::serialize() const {
  json::Array values_json;
  values_json.reserve(entries_.size());
  for (const Entry& e : entries_) {
    values_json.emplace_back(static_cast<double>(e.value));
  }
  json::Object out;
  out["k"] = json::Value{static_cast<double>(k_)};
  out["saturated"] = json::Value{saturated_};
  out["values"] = json::Value{std::move(values_json)};
  return json::Value{std::move(out)};
}

KmvSketch KmvSketch::parse(const json::Value& value) {
  const std::int64_t k = value.at("k").as_int();
  require(k >= 8 && k <= 0x7FFFFFFF, "KMV k out of range");
  KmvSketch out{static_cast<std::uint32_t>(k)};
  const json::Array& values = value.at("values").as_array();
  require(values.size() <= static_cast<std::size_t>(k), "KMV overfull");
  for (const json::Value& v : values) {
    const std::int64_t item = v.as_int();
    require(item >= 0 && item <= 0xFFFFFFFFLL, "KMV value out of range");
    out.insert(static_cast<std::uint32_t>(item));
  }
  require(out.entries_.size() == values.size(), "KMV duplicate values");
  // At most k values re-inserted, so insert() cannot have evicted; the flag
  // carries the pre-serialization truth.
  out.saturated_ = value.at("saturated").as_bool();
  return out;
}

// ---------------------------------------------------------------------------
// CountMinSketch

CountMinSketch::CountMinSketch(std::uint32_t depth, std::uint32_t width)
    : depth_(depth), width_(width) {
  if (depth < 1) throw ConfigError("CountMinSketch: depth must be >= 1");
  if (width < 2 || (width & (width - 1)) != 0) {
    throw ConfigError("CountMinSketch: width must be a power of two >= 2");
  }
  counters_.assign(static_cast<std::size_t>(depth) * width, 0);
}

std::size_t CountMinSketch::slot(std::uint32_t row, std::uint32_t item) const {
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(item) ^ row_salt(row));
  return static_cast<std::size_t>(row) * width_ +
         static_cast<std::size_t>(h & (width_ - 1));
}

void CountMinSketch::add(std::uint32_t item, std::uint64_t count) {
  for (std::uint32_t row = 0; row < depth_; ++row) {
    counters_[slot(row, item)] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::query(std::uint32_t item) const {
  std::uint64_t best = ~0ULL;
  for (std::uint32_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[slot(row, item)]);
  }
  return best;
}

double CountMinSketch::epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    throw ConfigError("CountMinSketch: merge requires equal shape");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

std::size_t CountMinSketch::memory_bytes() const {
  return sizeof(*this) + counters_.capacity() * sizeof(std::uint64_t);
}

json::Value CountMinSketch::serialize() const {
  json::Array rows;
  rows.reserve(depth_);
  for (std::uint32_t row = 0; row < depth_; ++row) {
    json::Array cells;
    cells.reserve(width_);
    for (std::uint32_t col = 0; col < width_; ++col) {
      const std::uint64_t c = counters_[static_cast<std::size_t>(row) * width_ + col];
      if (static_cast<double>(c) >= kTwoPow53) {
        throw DataError("CountMinSketch: counter exceeds JSON-exact range");
      }
      cells.emplace_back(static_cast<double>(c));
    }
    rows.emplace_back(std::move(cells));
  }
  if (static_cast<double>(total_) >= kTwoPow53) {
    throw DataError("CountMinSketch: total exceeds JSON-exact range");
  }
  json::Object out;
  out["depth"] = json::Value{static_cast<double>(depth_)};
  out["width"] = json::Value{static_cast<double>(width_)};
  out["total"] = json::Value{static_cast<double>(total_)};
  out["rows"] = json::Value{std::move(rows)};
  return json::Value{std::move(out)};
}

CountMinSketch CountMinSketch::parse(const json::Value& value) {
  const std::int64_t depth = value.at("depth").as_int();
  const std::int64_t width = value.at("width").as_int();
  require(depth >= 1 && depth <= 64, "CMS depth out of range");
  require(width >= 2 && width <= (1LL << 24), "CMS width out of range");
  CountMinSketch out{static_cast<std::uint32_t>(depth),
                     static_cast<std::uint32_t>(width)};
  const json::Array& rows = value.at("rows").as_array();
  require(rows.size() == static_cast<std::size_t>(depth), "CMS row count");
  for (std::size_t row = 0; row < rows.size(); ++row) {
    const json::Array& cells = rows[row].as_array();
    require(cells.size() == static_cast<std::size_t>(width), "CMS row width");
    for (std::size_t col = 0; col < cells.size(); ++col) {
      const std::int64_t c = cells[col].as_int();
      require(c >= 0, "CMS negative counter");
      out.counters_[row * static_cast<std::size_t>(width) + col] =
          static_cast<std::uint64_t>(c);
    }
  }
  const std::int64_t total = value.at("total").as_int();
  require(total >= 0, "CMS negative total");
  out.total_ = static_cast<std::uint64_t>(total);
  return out;
}

// ---------------------------------------------------------------------------
// HllSketch

HllSketch::HllSketch(std::uint32_t precision) : precision_(precision) {
  if (precision < 4 || precision > 16) {
    throw ConfigError("HllSketch: precision must be in [4, 16]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

void HllSketch::insert(std::uint32_t value) {
  const std::uint64_t h = item_hash(value);
  const std::size_t index = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - precision_ + 1
                : static_cast<std::uint32_t>(std::countl_zero(rest)) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HllSketch::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double alpha = 0.7213 / (1.0 + 1.079 / m);
  if (registers_.size() == 16) alpha = 0.673;
  if (registers_.size() == 32) alpha = 0.697;
  if (registers_.size() == 64) alpha = 0.709;
  double sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / sum;
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));  // linear counting
  }
  return raw;
}

double HllSketch::relative_error() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

void HllSketch::merge(const HllSketch& other) {
  if (other.precision_ != precision_) {
    throw ConfigError("HllSketch: merge requires equal precision");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

std::size_t HllSketch::memory_bytes() const {
  return sizeof(*this) + registers_.capacity() * sizeof(std::uint8_t);
}

json::Value HllSketch::serialize() const {
  json::Array regs;
  regs.reserve(registers_.size());
  for (const std::uint8_t r : registers_) {
    regs.emplace_back(static_cast<double>(r));
  }
  json::Object out;
  out["precision"] = json::Value{static_cast<double>(precision_)};
  out["registers"] = json::Value{std::move(regs)};
  return json::Value{std::move(out)};
}

HllSketch HllSketch::parse(const json::Value& value) {
  const std::int64_t precision = value.at("precision").as_int();
  require(precision >= 4 && precision <= 16, "HLL precision out of range");
  HllSketch out{static_cast<std::uint32_t>(precision)};
  const json::Array& regs = value.at("registers").as_array();
  require(regs.size() == out.registers_.size(), "HLL register count");
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const std::int64_t r = regs[i].as_int();
    require(r >= 0 && r <= 64, "HLL register out of range");
    out.registers_[i] = static_cast<std::uint8_t>(r);
  }
  return out;
}

}  // namespace botmeter::estimators
