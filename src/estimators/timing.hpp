// The Timing estimator M_T (§IV-B, Algorithm 1).
//
// M_T greedily classifies the matched lookups into per-bot groups using
// three temporal heuristics and reports the number of groups:
//   #1  a bot does not look up the same domain twice within the window;
//   #2  two lookups farther apart than the maximum activation duration
//       (theta_q * delta_i) belong to different bots;
//   #3  a bot's lookups are separated by exact multiples of its fixed query
//       interval delta_i, so a gap that is not such a multiple separates
//       different bots.
// Heuristic #3 is disabled for families without a fixed interval ("none" in
// Table II) and degrades as collection granularity coarsens — both effects
// the paper demonstrates on the enterprise trace.
#pragma once

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class TimingEstimator final : public Estimator {
 public:
  TimingEstimator() = default;

  [[nodiscard]] std::string_view name() const override { return "timing"; }

  /// M_T relies only on temporal traits, so it applies to every taxonomy
  /// cell (§IV-C).
  [[nodiscard]] bool applicable(const dga::DgaConfig&) const override {
    return true;
  }

  [[nodiscard]] double estimate(const EpochObservation& obs) const override;
};

}  // namespace botmeter::estimators
