#include "estimators/poisson.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logmath.hpp"
#include "estimators/context.hpp"

namespace botmeter::estimators {

namespace {

/// Gap above which two NXD lookups are considered to belong to different
/// visible activations. Within a train, gaps equal delta_i (or the jitter
/// bound); across visible activations they are at least roughly the
/// negative TTL. Any threshold strictly between works; we leave generous
/// headroom on the train side while staying under half the TTL.
Duration burst_gap_threshold(const dga::DgaConfig& config,
                             const dns::TtlPolicy& ttl) {
  const Duration step = config.query_interval.millis() > 0
                            ? config.query_interval
                            : config.jitter_max;
  const Duration lower = std::max(step * 4, seconds(5));
  const Duration upper = Duration{std::max<std::int64_t>(ttl.negative.millis() / 2,
                                                         step.millis() + 1)};
  return std::min(lower, upper);
}

/// Second clustering stage, shared by the exact and compact paths. Enforces
/// the visibility model of Fig. 4: under the uniform barrel a genuinely new
/// activation can only become visible once the previous window's negative
/// TTL has lapsed. Bursts starting earlier are boundary leakage — jittered
/// per-bot query offsets let a handful of tail lookups slip past entries
/// that expire a few seconds apart — and belong to the previous window. The
/// slack bounds that jitter accumulation.
std::vector<TimePoint> keep_spaced_bursts(const std::vector<TimePoint>& bursts,
                                          const dns::TtlPolicy& ttl) {
  const Duration delta_l = ttl.negative;
  const Duration slack =
      std::min(seconds(60), Duration{delta_l.millis() / 4});
  std::vector<TimePoint> kept;
  kept.reserve(bursts.size());
  for (const TimePoint& t : bursts) {
    if (kept.empty() || t - kept.back() >= delta_l - slack) {
      kept.push_back(t);
    }
  }
  return kept;
}

/// Sum of the waiting gaps Delta_i of Fig. 4. Delta_1 runs from the window
/// start; subsequent gaps run from the end of the previous TTL window.
/// Clamp at zero: with coarse timestamps a new activation can appear to
/// start marginally before the previous TTL lapsed.
double waiting_gap_sum_ms(const std::vector<TimePoint>& activations,
                          TimePoint window_start, Duration delta_l) {
  double sum_gaps_ms = 0.0;
  TimePoint previous_ttl_end = window_start;
  for (const TimePoint& v : activations) {
    const std::int64_t gap = (v - previous_ttl_end).millis();
    sum_gaps_ms += static_cast<double>(std::max<std::int64_t>(gap, 0));
    previous_ttl_end = v + delta_l;
  }
  return sum_gaps_ms;
}

}  // namespace

std::vector<TimePoint> PoissonEstimator::visible_activations(
    const EpochObservation& obs) {
  const Duration threshold = burst_gap_threshold(*obs.config, obs.ttl);
  std::vector<TimePoint> bursts;
  bool in_burst = false;
  TimePoint last_lookup;
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    // Only negative caching drives the visibility argument; valid-domain
    // lookups live under the (much longer) positive TTL.
    if (lookup.is_valid_domain) continue;
    if (!in_burst || (lookup.t - last_lookup) > threshold) {
      bursts.push_back(lookup.t);
      in_burst = true;
    }
    last_lookup = lookup.t;
  }
  return keep_spaced_bursts(bursts, obs.ttl);
}

std::vector<TimePoint> PoissonEstimator::visible_activations(
    const CompactObservation& obs) {
  // The slot minima are a time-ordered subsample of the NXD stream: the
  // first lookup of every kept activation survives (kept activations are at
  // least two slot widths apart, so no earlier lookup can share its slot),
  // while intra-burst lookups mostly collapse. The same two-stage clustering
  // then reproduces the exact path's activation sequence up to slot-width
  // timestamp error.
  const Duration threshold = burst_gap_threshold(*obs.config, obs.ttl);
  const std::span<const std::uint32_t> counts = obs.cell->slot_counts();
  const std::span<const std::int64_t> mins = obs.cell->slot_min_ms();
  std::vector<TimePoint> bursts;
  bool in_burst = false;
  TimePoint last_lookup;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const TimePoint t{mins[i]};
    if (!in_burst || (t - last_lookup) > threshold) {
      bursts.push_back(t);
      in_burst = true;
    }
    last_lookup = t;
  }
  return keep_spaced_bursts(bursts, obs.ttl);
}

double PoissonEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  const std::vector<TimePoint> activations = visible_activations(obs);
  const auto n = static_cast<double>(activations.size());
  if (activations.empty()) return 0.0;

  const Duration delta_l = obs.ttl.negative;
  double sum_gaps_ms =
      waiting_gap_sum_ms(activations, obs.window_start, delta_l);

  // The paper's Eqn (1) uses the rate MLE n / sum(Delta), whose small-sample
  // moments are unbounded: a single activation landing just after the window
  // start makes Delta_1 ~ 0 and the estimate arbitrarily large (the heavy
  // tails visible in Table II's M_P stddevs). We use the unbiased exponential
  // rate estimator (n-1) / sum(Delta) instead — identical at scale
  // (E[(n-1)/sum] = lambda exactly), and with a single visible activation it
  // honestly reports "one bot" rather than inverting an unmeasurable rate.
  if (n < 2.0) return n;
  if (sum_gaps_ms <= 0.0) {
    // Every waiting gap was zero: the TTL windows were saturated
    // back-to-back, which the model can only bound from below. Treat the
    // sum as one timestamp quantum to keep the estimate finite.
    sum_gaps_ms = 1.0;
  }
  const double lambda =
      (n - 1.0) / sum_gaps_ms;  // activations per ms of waiting time
  return lambda * (sum_gaps_ms + n * static_cast<double>(delta_l.millis()));
}

IntervalEstimate PoissonEstimator::estimate_with_interval(
    const EpochObservation& obs, double level) const {
  if (!(level > 0.0 && level < 1.0)) {
    throw ConfigError("estimate_with_interval: level must be in (0,1)");
  }
  IntervalEstimate result;
  result.value = estimate(obs);
  result.level = level;

  const std::vector<TimePoint> activations = visible_activations(obs);
  const auto n = static_cast<double>(activations.size());
  if (n < 2.0) return result;  // rate unmeasurable: point only

  double sum_gaps_ms =
      waiting_gap_sum_ms(activations, obs.window_start, obs.ttl.negative);
  if (sum_gaps_ms <= 0.0) sum_gaps_ms = 1.0;

  // Exact pivot: 2 * lambda * sum(Delta) ~ chi^2(2n). The quantile is a
  // pure function of (p, dof) and dof is quantised (2 * activation count),
  // so a shared context memoizes it across the epoch's servers.
  const double alpha = 1.0 - level;
  const auto quantile = [&](double p, double dof) {
    if (obs.context != nullptr) {
      return obs.context->memoized("poisson.chi_square_quantile", p, dof,
                                   [&] { return chi_square_quantile(p, dof); });
    }
    return chi_square_quantile(p, dof);
  };
  const double lambda_lo =
      quantile(alpha / 2.0, 2.0 * n) / (2.0 * sum_gaps_ms);
  const double lambda_hi =
      quantile(1.0 - alpha / 2.0, 2.0 * n) / (2.0 * sum_gaps_ms);
  const double span =
      sum_gaps_ms + n * static_cast<double>(obs.ttl.negative.millis());
  // The n visible activations are a hard lower bound on the population.
  result.interval = {std::max(lambda_lo * span, n), lambda_hi * span};
  return result;
}

CompactSupport PoissonEstimator::compact_support() const {
  CompactSupport support;
  support.supported = true;
  support.needs_time_slots = true;
  return support;
}

IntervalEstimate PoissonEstimator::estimate_with_interval(
    const CompactObservation& obs, double level) const {
  if (!(level > 0.0 && level < 1.0)) {
    throw ConfigError("estimate_with_interval: level must be in (0,1)");
  }
  obs.validate();
  if (obs.cell->spec().slot_count == 0) {
    throw ConfigError("PoissonEstimator: compact cell lacks time slots");
  }

  // Always approximate: even when the slot minima happen to equal the exact
  // burst starts, the cell cannot prove it — each gap is only known to
  // within one slot width.
  IntervalEstimate result;
  result.level = level;
  result.approximate = true;

  const std::vector<TimePoint> activations = visible_activations(obs);
  const auto n = static_cast<double>(activations.size());
  if (activations.empty()) return result;
  const Duration delta_l = obs.ttl.negative;
  double sum_gaps_ms =
      waiting_gap_sum_ms(activations, obs.window_start, delta_l);
  if (n < 2.0) {
    result.value = n;
    return result;
  }
  if (sum_gaps_ms <= 0.0) sum_gaps_ms = 1.0;
  const double lambda = (n - 1.0) / sum_gaps_ms;
  result.value =
      lambda * (sum_gaps_ms + n * static_cast<double>(delta_l.millis()));

  // Slot-width error on the gap sum: every activation timestamp may sit up
  // to one slot width before the true burst start, so the sum is trusted
  // only within +/- n * w. The estimate is decreasing in the gap sum, so the
  // chi-square band is evaluated at the perturbed sums — low at sum + n * w,
  // high at max(sum - n * w, 1).
  const double slot_w_ms =
      static_cast<double>(obs.cell->slot_width().millis());
  const double sum_hi = sum_gaps_ms + n * slot_w_ms;
  const double sum_lo = std::max(sum_gaps_ms - n * slot_w_ms, 1.0);
  result.sketch_rse = n * slot_w_ms / sum_gaps_ms;

  const double alpha = 1.0 - level;
  const auto quantile = [&](double p, double dof) {
    if (obs.context != nullptr) {
      return obs.context->memoized("poisson.chi_square_quantile", p, dof,
                                   [&] { return chi_square_quantile(p, dof); });
    }
    return chi_square_quantile(p, dof);
  };
  const double q_lo = quantile(alpha / 2.0, 2.0 * n);
  const double q_hi = quantile(1.0 - alpha / 2.0, 2.0 * n);
  const double delta_l_ms = static_cast<double>(delta_l.millis());
  const double lo =
      q_lo / (2.0 * sum_hi) * (sum_hi + n * delta_l_ms);
  const double hi =
      q_hi / (2.0 * sum_lo) * (sum_lo + n * delta_l_ms);
  // The n visible activations are a hard lower bound on the population.
  result.interval = {std::max(lo, n), hi};
  return result;
}

}  // namespace botmeter::estimators
