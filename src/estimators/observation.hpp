// Input to the analytical models (architecture steps 4-6 of Fig. 2).
//
// One `EpochObservation` bundles everything an estimator may legitimately
// know about one (local server, epoch) cell: the matched cache-filtered
// lookups, the family's public parameters (theta_0, theta_E, theta_q,
// delta_i — reverse-engineering knowledge), the pool structure the analyst
// has (detection window), and the network's TTL policy. Ground truth (client
// identities, actual bot count) is deliberately absent.
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "detect/detection_window.hpp"
#include "detect/matcher.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"
#include "dns/record.hpp"

namespace botmeter::estimators {

class EstimationContext;

struct EpochObservation {
  /// Matched lookups for one server and one epoch, sorted by timestamp.
  std::vector<detect::MatchedLookup> lookups;

  /// Family parameters (analyst configuration, step 6 of Fig. 2).
  const dga::DgaConfig* config = nullptr;

  /// Pool structure for this epoch. Valid positions are analyst knowledge
  /// (confirmed C2); NXD contents are only trustworthy where the detection
  /// window covers them.
  const dga::EpochPool* pool = nullptr;

  /// What the D3 algorithm actually knows of the pool.
  const detect::DetectionWindow* window = nullptr;

  /// Caching policy of the local servers.
  dns::TtlPolicy ttl;

  /// Observation window for this epoch.
  TimePoint window_start;
  Duration window_length = days(1);

  /// If the analyst has calibrated the D3 miss rate, estimators may correct
  /// for it (extension; the paper's models run uncorrected).
  std::optional<double> assumed_miss_rate;

  /// Optional shared per-(epoch, configuration) cache (see context.hpp).
  /// When set, estimators may reuse tables and memoized pure results across
  /// the servers of this epoch; results are bit-identical either way. Null
  /// means "no sharing" — the exact pre-context computation path.
  EstimationContext* context = nullptr;

  /// Throws ConfigError if a required field is missing/inconsistent.
  void validate() const;
};

}  // namespace botmeter::estimators
