#include "estimators/bernoulli.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/logmath.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "estimators/context.hpp"
#include "estimators/segments.hpp"

namespace botmeter::estimators {

namespace {

/// Fraction of the (detected) NXD ceiling beyond which the coverage count is
/// considered saturated and the adaptive method switches to the
/// forwarded-count statistic.
constexpr double kSaturationFraction = 0.7;

/// Histogram of "how many start positions cover this NXD" — min(a_d,
/// theta_q) — over all NXD positions of the pool. The coverage expectation
/// only depends on these weights, so the histogram collapses the O(P) sum
/// to O(distinct weights).
std::map<std::uint32_t, std::uint32_t> coverage_weight_histogram(
    const dga::EpochPool& pool, const dga::DgaConfig& config) {
  std::map<std::uint32_t, std::uint32_t> histogram;
  const std::uint32_t size = pool.size();
  const auto& valid = pool.valid_positions;
  if (valid.empty()) throw ConfigError("BernoulliEstimator: pool has no arcs");

  // Walk each arc once: depths run 1..arc_len, so weights are
  // min(1..arc_len, theta_q).
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const std::uint32_t boundary = valid[i];
    const std::uint32_t next = valid[(i + 1) % valid.size()];
    const std::uint32_t arc_len =
        (next + size - boundary) % size == 0
            ? size - 1  // single valid position: one arc spanning the rest
            : (next + size - boundary) % size - 1;
    if (arc_len == 0) continue;
    const std::uint32_t capped = std::min(arc_len, config.barrel_size);
    // Depths 1..capped each appear once; depths capped+1..arc_len all share
    // weight theta_q (== barrel_size, but never more than `capped`).
    for (std::uint32_t depth = 1; depth <= capped; ++depth) {
      ++histogram[depth];
    }
    if (arc_len > capped) {
      histogram[config.barrel_size] += arc_len - capped;
    }
  }
  return histogram;
}

/// Count of distinct observed NXD positions.
double observed_distinct_nxds(const EpochObservation& obs) {
  std::unordered_set<std::uint32_t> distinct;
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    if (!lookup.is_valid_domain) distinct.insert(lookup.pool_position);
  }
  return static_cast<double>(distinct.size());
}

/// Count of observed (forwarded) NXD lookups, duplicates included.
double observed_nxd_lookups(const EpochObservation& obs) {
  std::uint64_t count = 0;
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    if (!lookup.is_valid_domain) ++count;
  }
  return static_cast<double>(count);
}

/// Generic increasing-function inversion by doubling + bisection, capped.
template <typename F>
double invert_increasing(F&& expectation, double observed) {
  if (observed <= 0.0) return 0.0;
  constexpr double kMaxPopulation = 1e8;
  double lo = 0.0;
  double hi = 1.0;
  while (expectation(hi) < observed) {
    hi *= 2.0;
    if (hi >= kMaxPopulation) return kMaxPopulation;  // saturated statistic
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * std::max(hi, 1.0);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expectation(mid) < observed) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

using WeightHistogram = std::map<std::uint32_t, std::uint32_t>;

/// Flattened, precomputed form of the coverage-weight histogram. Entries
/// keep the histogram's ascending-weight order so sums accumulate in exactly
/// the order the map-based code used, and the precomputed members are the
/// same subexpressions that code evaluated — `log1p(-(weight / pool_size))`
/// never interacts with the bisection's `n`, so hoisting it out of the
/// expectation is bit-exact. The histogram walk is O(pool); a bisection
/// evaluates the expectation a few hundred times, so building the table once
/// (per call, or once per epoch via EstimationContext) is the dominant win.
struct CoverageTables {
  struct Entry {
    double weight;       // min(a_d, theta_q)
    double count;        // positions sharing this weight
    double log1p_neg_p;  // log1p(-(weight / pool_size))
  };
  std::vector<Entry> entries;
  double pool_size = 0.0;
};

CoverageTables build_coverage_tables(const dga::EpochPool& pool,
                                     const dga::DgaConfig& config) {
  CoverageTables tables;
  tables.pool_size = pool.size();
  const WeightHistogram histogram = coverage_weight_histogram(pool, config);
  tables.entries.reserve(histogram.size());
  for (const auto& [weight, count] : histogram) {
    const double w = static_cast<double>(weight);
    tables.entries.push_back(
        {w, static_cast<double>(count), std::log1p(-(w / tables.pool_size))});
  }
  return tables;
}

/// Precomputed renewal horizons `1 - (k-1) * ttl_fraction` — the fraction of
/// the epoch within which the k-th forward of one NXD can still happen.
/// Capped: past the cap (only reachable when the TTL is a vanishing fraction
/// of the epoch) horizons are computed on the fly with the same expression.
struct RenewalTable {
  double ttl_fraction = 0.0;
  std::vector<double> horizons;
};

RenewalTable build_renewal_table(double ttl_fraction) {
  constexpr std::size_t kMaxHorizons = 1u << 16;
  RenewalTable table;
  table.ttl_fraction = ttl_fraction;
  for (std::int64_t k = 1; table.horizons.size() < kMaxHorizons; ++k) {
    const double horizon = 1.0 - static_cast<double>(k - 1) * ttl_fraction;
    if (horizon <= 0.0) break;
    table.horizons.push_back(horizon);
  }
  return table;
}

double expected_coverage_from_tables(const CoverageTables& tables, double n,
                                     double keep) {
  double expected = 0.0;
  for (const CoverageTables::Entry& e : tables.entries) {
    // (1-p)^n for real n via exp/log; p < 1 because weight < pool size.
    const double miss_all = std::exp(n * e.log1p_neg_p);
    expected += e.count * (1.0 - miss_all) * keep;
  }
  return expected;
}

/// Lookups of NXD d arrive (across the population, activations uniform over
/// the epoch) as an approximately Poisson stream with mean m = n * p_d per
/// epoch. Negative caching turns the forwarded sub-stream into a renewal
/// process: the k-th forward happens at (k-1) TTL blocks plus a
/// Gamma(k, rate) wait, so over the normalised epoch [0, 1]
///   E[forwards] = sum_k P(Gamma(k) <= 1 - (k-1) f)
///               = sum_k P(Poisson(m (1 - (k-1) f)) >= k),  f = TTL/epoch —
/// exact at every TTL, including the short-TTL regime with many windows.
double renewal_count(const RenewalTable& renewal, double mean_queries) {
  double total = 0.0;
  for (std::size_t i = 0;; ++i) {
    const auto k = static_cast<std::int64_t>(i) + 1;
    const double horizon =
        i < renewal.horizons.size()
            ? renewal.horizons[i]
            : 1.0 - static_cast<double>(k - 1) * renewal.ttl_fraction;
    if (horizon <= 0.0) break;
    const double tail = poisson_tail(mean_queries * horizon, k);
    total += tail;
    if (tail < 1e-12 && static_cast<double>(k) > mean_queries) break;
  }
  return total;
}

double expected_forwards_from_tables(const CoverageTables& tables,
                                     const RenewalTable& renewal, double n,
                                     double keep) {
  double expected = 0.0;
  for (const CoverageTables::Entry& e : tables.entries) {
    const double mean_queries = n * e.weight / tables.pool_size;
    expected += e.count * keep * renewal_count(renewal, mean_queries);
  }
  return expected;
}

/// Invert the coverage expectation, memoizing the bisection per observed
/// statistic when a context is attached. The solve is a pure function of
/// (observed, keep) given the tables, so a memo hit returns exactly the bits
/// a fresh bisection would compute.
double invert_coverage_tables(const CoverageTables& tables, double observed,
                              double keep, EstimationContext* ctx) {
  const auto solve = [&] {
    return invert_increasing(
        [&](double n) {
          return expected_coverage_from_tables(tables, n, keep);
        },
        observed);
  };
  if (ctx != nullptr) {
    return ctx->memoized("bernoulli.invert_coverage", observed, keep, solve);
  }
  return solve();
}

double invert_forwards_tables(const CoverageTables& tables,
                              const RenewalTable& renewal, double observed,
                              double keep, EstimationContext* ctx) {
  const auto solve = [&] {
    return invert_increasing(
        [&](double n) {
          return expected_forwards_from_tables(tables, renewal, n, keep);
        },
        observed);
  };
  if (ctx != nullptr) {
    return ctx->memoized("bernoulli.invert_forwards", observed, keep, solve);
  }
  return solve();
}

/// Coverage tables for this problem: shared via the context when one is
/// attached, otherwise built locally into `local`.
const CoverageTables& coverage_tables_for(EstimationContext* ctx,
                                          const dga::EpochPool& pool,
                                          const dga::DgaConfig& config,
                                          std::unique_ptr<CoverageTables>& local) {
  if (ctx != nullptr) {
    return ctx->table<CoverageTables>("bernoulli.coverage", [&] {
      return std::make_unique<CoverageTables>(
          build_coverage_tables(pool, config));
    });
  }
  local = std::make_unique<CoverageTables>(build_coverage_tables(pool, config));
  return *local;
}

const RenewalTable& renewal_table_for(EstimationContext* ctx,
                                      double ttl_fraction,
                                      std::unique_ptr<RenewalTable>& local) {
  if (ctx != nullptr) {
    return ctx->table<RenewalTable>("bernoulli.renewal", [&] {
      return std::make_unique<RenewalTable>(build_renewal_table(ttl_fraction));
    });
  }
  local = std::make_unique<RenewalTable>(build_renewal_table(ttl_fraction));
  return *local;
}

double ttl_fraction_for(Duration negative_ttl, Duration window_length,
                        const char* where) {
  if (negative_ttl.millis() <= 0 || window_length.millis() <= 0) {
    throw ConfigError(std::string(where) + ": TTL and epoch must be positive");
  }
  return static_cast<double>(negative_ttl.millis()) /
         static_cast<double>(window_length.millis());
}

/// The sufficient statistic of the coverage/forward methods, producible from
/// either observation form. From an exact observation every field is exact;
/// from a compact cell the distinct count comes from the KMV sketch —
/// integer-exact until saturation, flagged approximate with its relative
/// standard error afterwards.
struct BernoulliStats {
  double distinct = 0.0;
  double nxd_lookups = 0.0;
  std::uint64_t total_lookups = 0;  // bootstrap-seed ingredient
  bool approximate = false;
  double distinct_rse = 0.0;
};

BernoulliStats stats_of(const EpochObservation& obs) {
  BernoulliStats stats;
  stats.distinct = observed_distinct_nxds(obs);
  stats.nxd_lookups = observed_nxd_lookups(obs);
  stats.total_lookups = obs.lookups.size();
  return stats;
}

BernoulliStats stats_of(const CompactObservation& obs) {
  const KmvSketch* kmv = obs.cell->distinct_nxd();
  if (kmv == nullptr) {
    throw ConfigError(
        "BernoulliEstimator: compact cell lacks the distinct-NXD sketch");
  }
  BernoulliStats stats;
  stats.distinct = kmv->estimate();
  stats.nxd_lookups = static_cast<double>(obs.cell->nxd_lookups());
  stats.total_lookups = obs.cell->matched();
  stats.approximate = kmv->saturated();
  stats.distinct_rse = kmv->relative_error();
  return stats;
}

/// Everything else an evaluation needs, identical across observation forms.
struct BernoulliProblem {
  const dga::EpochPool* pool = nullptr;
  const dga::DgaConfig* config = nullptr;
  dns::TtlPolicy ttl;
  Duration window_length;
  std::optional<double> assumed_miss_rate;
  EstimationContext* context = nullptr;
};

BernoulliProblem problem_of(const EpochObservation& obs) {
  return {obs.pool, obs.config, obs.ttl, obs.window_length,
          obs.assumed_miss_rate, obs.context};
}

BernoulliProblem problem_of(const CompactObservation& obs) {
  return {obs.pool, obs.config, obs.ttl, obs.window_length,
          obs.assumed_miss_rate, obs.context};
}

/// The shared point-estimate core of the coverage/adaptive methods. Exact
/// and compact paths both land here; identical stats give identical bits.
double estimate_core(const BernoulliProblem& p, const BernoulliStats& stats,
                     BernoulliMethod method) {
  std::unique_ptr<CoverageTables> local_tables;
  const CoverageTables& tables =
      coverage_tables_for(p.context, *p.pool, *p.config, local_tables);
  const double keep = p.assumed_miss_rate ? (1.0 - *p.assumed_miss_rate) : 1.0;

  const double coverage_estimate =
      invert_coverage_tables(tables, stats.distinct, keep, p.context);
  if (method == BernoulliMethod::kCoverageInversion) {
    return coverage_estimate;
  }

  // Adaptive: the coverage count is the cleaner statistic (no temporal
  // assumptions at all) while it still has slope; past saturation it stops
  // resolving N and the forwarded-count renewal statistic takes over.
  const double ceiling = static_cast<double>(p.pool->nxd_count()) * keep;
  if (stats.distinct < kSaturationFraction * ceiling) {
    return coverage_estimate;
  }
  const double ttl_fraction =
      ttl_fraction_for(p.ttl.negative, p.window_length, "invert_forward_count");
  std::unique_ptr<RenewalTable> local_renewal;
  const RenewalTable& renewal =
      renewal_table_for(p.context, ttl_fraction, local_renewal);
  return invert_forwards_tables(tables, renewal, stats.nxd_lookups, keep,
                                p.context);
}

/// The shared interval core: point estimate plus the parametric bootstrap of
/// the active statistic, pushed back through the inversion. For approximate
/// stats the coverage band additionally carries the KMV standard error
/// (variances add: the bootstrap spread and the sketch error are
/// independent); the guard keeps the exact path's arithmetic untouched.
IntervalEstimate interval_core(const BernoulliProblem& p,
                               const BernoulliStats& stats,
                               BernoulliMethod method, double level) {
  IntervalEstimate result;
  result.value = estimate_core(p, stats, method);
  result.level = level;
  result.approximate = stats.approximate;
  result.sketch_rse = stats.distinct_rse;
  if (result.value <= 0.0) return result;

  const dga::EpochPool& pool = *p.pool;
  const dga::DgaConfig& config = *p.config;
  const double keep = p.assumed_miss_rate ? (1.0 - *p.assumed_miss_rate) : 1.0;
  const double distinct = stats.distinct;
  const bool use_forward_statistic =
      method == BernoulliMethod::kAdaptive &&
      distinct >=
          kSaturationFraction * static_cast<double>(pool.nxd_count()) * keep;

  std::unique_ptr<CoverageTables> local_tables;
  const CoverageTables& tables =
      coverage_tables_for(p.context, pool, config, local_tables);

  // Parametric bootstrap under the point estimate. Deterministic: the seed
  // depends only on the observation, not on global state.
  Rng rng{mix64(0xB0075742ULL ^ static_cast<std::uint64_t>(pool.epoch) ^
                (static_cast<std::uint64_t>(stats.total_lookups) << 20))};
  constexpr int kResamples = 32;
  const auto n_hat =
      static_cast<std::uint32_t>(std::min(result.value + 0.5, 5e6));
  RunningStats statistic;

  if (!use_forward_statistic) {
    // Re-simulate the distinct-coverage statistic: N bots, random starts,
    // runs to the boundary or theta_q, thinned by the detection keep rate.
    std::vector<bool> covered(pool.size());
    for (int r = 0; r < kResamples; ++r) {
      std::fill(covered.begin(), covered.end(), false);
      for (std::uint32_t b = 0; b < n_hat; ++b) {
        auto pos = static_cast<std::uint32_t>(rng.uniform(pool.size()));
        for (std::uint32_t step = 0; step < config.barrel_size; ++step) {
          if (pool.is_valid_position(pos)) break;
          covered[pos] = true;
          pos = (pos + 1) % pool.size();
        }
      }
      double count = 0.0;
      for (std::uint32_t d = 0; d < pool.size(); ++d) {
        if (covered[d] && (keep >= 1.0 || rng.bernoulli(keep))) count += 1.0;
      }
      statistic.add(count);
    }
  } else {
    // Re-simulate the forwarded-count statistic at the *bot* level: one
    // bot's run touches up to theta_q consecutive domains at nearly the
    // same time, so per-domain arrival processes are strongly correlated —
    // a per-domain Poisson bootstrap would understate the variance badly.
    const double ttl_fraction =
        static_cast<double>(p.ttl.negative.millis()) /
        static_cast<double>(p.window_length.millis());
    const Duration step = config.query_interval.millis() > 0
                              ? config.query_interval
                              : (config.jitter_min + config.jitter_max) / 2;
    const double step_fraction =
        static_cast<double>(step.millis()) /
        static_cast<double>(p.window_length.millis());
    std::vector<std::vector<double>> arrival_times(pool.size());
    for (int r = 0; r < kResamples; ++r) {
      for (auto& times : arrival_times) times.clear();
      for (std::uint32_t b = 0; b < n_hat; ++b) {
        auto pos = static_cast<std::uint32_t>(rng.uniform(pool.size()));
        const double t0 = rng.uniform01();
        for (std::uint32_t s = 0; s < config.barrel_size; ++s) {
          if (pool.is_valid_position(pos)) break;
          arrival_times[pos].push_back(t0 + s * step_fraction);
          pos = (pos + 1) % pool.size();
        }
      }
      double forwards = 0.0;
      for (auto& times : arrival_times) {
        if (times.empty()) continue;
        std::sort(times.begin(), times.end());
        double blocked_until = -1.0;
        for (double t : times) {
          if (t >= 1.0) break;  // spilled past the window
          if (t >= blocked_until) {
            if (keep >= 1.0 || rng.bernoulli(keep)) forwards += 1.0;
            blocked_until = t + ttl_fraction;
          }
        }
      }
      statistic.add(forwards);
    }
  }

  const double z = normal_quantile(0.5 + level / 2.0);
  double spread = statistic.stddev();
  if (stats.approximate && !use_forward_statistic) {
    // The coverage statistic itself is sketch-estimated: its standard error
    // distinct * rse adds in quadrature to the bootstrap spread. (The
    // forwarded count stays exact in compact cells, so the forward band
    // needs no widening.) Guarded so exact stats keep their exact bits.
    const double sketch_sd = distinct * stats.distinct_rse;
    spread = std::sqrt(spread * spread + sketch_sd * sketch_sd);
  }
  const double observed_statistic =
      use_forward_statistic ? stats.nxd_lookups : distinct;
  const double lo_stat = std::max(observed_statistic - z * spread, 0.0);
  const double hi_stat = observed_statistic + z * spread;
  std::unique_ptr<RenewalTable> local_renewal;
  const RenewalTable* renewal = nullptr;
  if (use_forward_statistic) {
    renewal = &renewal_table_for(
        p.context,
        ttl_fraction_for(p.ttl.negative, p.window_length,
                         "invert_forward_count"),
        local_renewal);
  }
  const auto invert = [&](double s) {
    return use_forward_statistic
               ? invert_forwards_tables(tables, *renewal, s, keep, p.context)
               : invert_coverage_tables(tables, s, keep, p.context);
  };
  result.interval = {invert(lo_stat), invert(hi_stat)};
  return result;
}

}  // namespace

BernoulliEstimator::BernoulliEstimator(BernoulliMethod method)
    : method_(method) {}

std::string_view BernoulliEstimator::name() const {
  switch (method_) {
    case BernoulliMethod::kAdaptive:
      return "bernoulli";
    case BernoulliMethod::kCoverageInversion:
      return "bernoulli-coverage";
    case BernoulliMethod::kSegmentExpectation:
      return "bernoulli-segment";
  }
  return "bernoulli";
}

double BernoulliEstimator::expected_coverage(const dga::EpochPool& pool,
                                             const dga::DgaConfig& config,
                                             double n,
                                             std::optional<double> miss_rate) {
  if (n < 0.0) throw ConfigError("expected_coverage: n must be >= 0");
  return expected_coverage_from_tables(build_coverage_tables(pool, config), n,
                                       miss_rate ? (1.0 - *miss_rate) : 1.0);
}

double BernoulliEstimator::invert_coverage(const dga::EpochPool& pool,
                                           const dga::DgaConfig& config,
                                           double observed,
                                           std::optional<double> miss_rate) {
  // Build the tables once; the bisection evaluates the expectation a few
  // hundred times.
  const CoverageTables tables = build_coverage_tables(pool, config);
  return invert_coverage_tables(tables, observed,
                                miss_rate ? (1.0 - *miss_rate) : 1.0, nullptr);
}

double BernoulliEstimator::expected_forward_count(
    const dga::EpochPool& pool, const dga::DgaConfig& config, double n,
    Duration negative_ttl, Duration epoch_length,
    std::optional<double> miss_rate) {
  if (n < 0.0) throw ConfigError("expected_forward_count: n must be >= 0");
  if (negative_ttl.millis() <= 0 || epoch_length.millis() <= 0) {
    throw ConfigError("expected_forward_count: TTL and epoch must be positive");
  }
  const double ttl_fraction = static_cast<double>(negative_ttl.millis()) /
                              static_cast<double>(epoch_length.millis());
  return expected_forwards_from_tables(
      build_coverage_tables(pool, config), build_renewal_table(ttl_fraction), n,
      miss_rate ? (1.0 - *miss_rate) : 1.0);
}

double BernoulliEstimator::invert_forward_count(
    const dga::EpochPool& pool, const dga::DgaConfig& config, double observed,
    Duration negative_ttl, Duration epoch_length,
    std::optional<double> miss_rate) {
  if (negative_ttl.millis() <= 0 || epoch_length.millis() <= 0) {
    throw ConfigError("invert_forward_count: TTL and epoch must be positive");
  }
  const CoverageTables tables = build_coverage_tables(pool, config);
  const double ttl_fraction = static_cast<double>(negative_ttl.millis()) /
                              static_cast<double>(epoch_length.millis());
  return invert_forwards_tables(tables, build_renewal_table(ttl_fraction),
                                observed, miss_rate ? (1.0 - *miss_rate) : 1.0,
                                nullptr);
}

double BernoulliEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("BernoulliEstimator: requires the randomcut barrel (A_R)");
  }
  if (method_ == BernoulliMethod::kSegmentExpectation) {
    return estimate_by_segments(obs);
  }
  return estimate_core(problem_of(obs), stats_of(obs), method_);
}

IntervalEstimate BernoulliEstimator::estimate_with_interval(
    const EpochObservation& obs, double level) const {
  if (!(level > 0.0 && level < 1.0)) {
    throw ConfigError("estimate_with_interval: level must be in (0,1)");
  }

  if (method_ == BernoulliMethod::kSegmentExpectation) {
    return IntervalEstimate{estimate(obs), std::nullopt, level};
  }
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("BernoulliEstimator: requires the randomcut barrel (A_R)");
  }

  const BernoulliStats stats = stats_of(obs);
  const BernoulliProblem problem = problem_of(obs);
  const auto compute = [&] {
    return interval_core(problem, stats, method_, level);
  };

  // Within one (epoch, configuration) scope the whole result — point
  // estimate, bootstrap (its seed uses only pool.epoch and the lookup
  // count), and pushed-back interval — is a pure function of the sufficient
  // statistic below, so a shared context can memoize the entire call. The
  // segment method reads actual positions and is excluded.
  if (obs.context != nullptr) {
    return obs.context->memoized_interval(
        std::string("bernoulli.interval.") + std::string(name()),
        {stats.distinct, stats.nxd_lookups,
         static_cast<double>(stats.total_lookups), level},
        compute);
  }
  return compute();
}

CompactSupport BernoulliEstimator::compact_support() const {
  if (method_ == BernoulliMethod::kSegmentExpectation) return {};
  CompactSupport support;
  support.supported = true;
  support.needs_distinct = true;
  return support;
}

IntervalEstimate BernoulliEstimator::estimate_with_interval(
    const CompactObservation& obs, double level) const {
  if (!(level > 0.0 && level < 1.0)) {
    throw ConfigError("estimate_with_interval: level must be in (0,1)");
  }
  if (method_ == BernoulliMethod::kSegmentExpectation) {
    return Estimator::estimate_with_interval(obs, level);  // throws
  }
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("BernoulliEstimator: requires the randomcut barrel (A_R)");
  }

  const BernoulliStats stats = stats_of(obs);
  const BernoulliProblem problem = problem_of(obs);
  const auto compute = [&] {
    return interval_core(problem, stats, method_, level);
  };
  if (obs.context != nullptr) {
    // Exact-regime compact stats coincide with the exact path's sufficient
    // statistic, so sharing its memo key returns the exact path's bits.
    // Saturated stats use their own key space: the saturated estimate is a
    // continuous value that must never collide with an exact entry.
    const std::string key =
        (stats.approximate ? std::string("bernoulli.compact_interval.")
                           : std::string("bernoulli.interval.")) +
        std::string(name());
    return obs.context->memoized_interval(
        key,
        {stats.distinct, stats.nxd_lookups,
         static_cast<double>(stats.total_lookups), level},
        compute);
  }
  return compute();
}

double BernoulliEstimator::estimate_by_segments(
    const EpochObservation& obs) const {
  const dga::EpochPool& pool = *obs.pool;
  const dga::DgaConfig& config = *obs.config;

  std::vector<std::uint32_t> positions;
  positions.reserve(obs.lookups.size());
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    if (!lookup.is_valid_domain) positions.push_back(lookup.pool_position);
  }
  const std::vector<Segment> segments = extract_segments(pool, positions);
  if (segments.empty()) return 0.0;

  const double pool_size = static_cast<double>(pool.size());
  const double theta_q = static_cast<double>(config.barrel_size);

  // E[N_L | mu]: expected bots required to cover one segment, with bot
  // starts Poissonized at intensity mu per position. A b-segment is the run
  // of its leftmost bot (1 start observed at the left end, plus interior
  // starts at rate mu); an m-segment of length l > theta_q pins both the
  // leftmost and rightmost start of a window of l - theta_q + 1 positions.
  const auto segment_expectation = [&](const Segment& s, double mu) {
    const double l = static_cast<double>(s.length);
    if (s.kind == SegmentKind::kBoundary) {
      return 1.0 + mu * std::max(l - 1.0, 0.0);
    }
    if (l <= theta_q) return 1.0;  // a single (possibly truncated) run
    const double window = l - theta_q + 1.0;
    return 2.0 + mu * std::max(window - 2.0, 0.0);
  };

  // Fixed point on the population (contraction: the slope in mu is
  // sum(l)/P < 1).
  double n_hat = static_cast<double>(segments.size());
  for (int iter = 0; iter < 100; ++iter) {
    const double mu = n_hat / pool_size;
    double next = 0.0;
    for (const Segment& s : segments) next += segment_expectation(s, mu);
    if (std::abs(next - n_hat) < 1e-9) {
      n_hat = next;
      break;
    }
    n_hat = next;
  }
  return n_hat;
}

}  // namespace botmeter::estimators
