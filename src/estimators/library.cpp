#include "estimators/library.hpp"

#include <string>

#include "common/error.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/hybrid.hpp"
#include "estimators/poisson.hpp"
#include "estimators/sampling_coverage.hpp"
#include "estimators/timing.hpp"

namespace botmeter::estimators {

ModelLibrary::ModelLibrary() {
  models_.push_back(std::make_unique<TimingEstimator>());
  models_.push_back(std::make_unique<PoissonEstimator>());
  models_.push_back(
      std::make_unique<BernoulliEstimator>(BernoulliMethod::kAdaptive));
  models_.push_back(
      std::make_unique<BernoulliEstimator>(BernoulliMethod::kCoverageInversion));
  models_.push_back(
      std::make_unique<BernoulliEstimator>(BernoulliMethod::kSegmentExpectation));
  models_.push_back(std::make_unique<SamplingCoverageEstimator>());
  models_.push_back(std::make_unique<HybridEstimator>(
      std::make_unique<BernoulliEstimator>(BernoulliMethod::kAdaptive),
      std::make_unique<TimingEstimator>()));
}

const Estimator& ModelLibrary::get(std::string_view name) const {
  for (const auto& model : models_) {
    if (model->name() == name) return *model;
  }
  throw ConfigError("ModelLibrary: unknown estimator '" + std::string(name) + "'");
}

std::vector<const Estimator*> ModelLibrary::applicable(
    const dga::DgaConfig& config) const {
  std::vector<const Estimator*> out;
  for (const auto& model : models_) {
    if (model->applicable(config)) out.push_back(model.get());
  }
  return out;
}

const Estimator& ModelLibrary::recommended(const dga::DgaConfig& config) const {
  switch (config.taxonomy.barrel) {
    case dga::BarrelModel::kUniform:
      return get("poisson");
    case dga::BarrelModel::kRandomCut:
      return get("bernoulli");
    case dga::BarrelModel::kSampling:
    case dga::BarrelModel::kPermutation:
    // No estimator is *designed* for the coordinated-cut evasion model
    // (that is its point); the Timing estimator is the only generic fallback.
    case dga::BarrelModel::kCoordinatedCut:
      return get("timing");
  }
  throw ConfigError("ModelLibrary: unknown barrel model");
}

std::vector<std::string_view> ModelLibrary::names() const {
  std::vector<std::string_view> out;
  out.reserve(models_.size());
  for (const auto& model : models_) out.push_back(model->name());
  return out;
}

}  // namespace botmeter::estimators
