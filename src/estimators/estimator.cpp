#include "estimators/estimator.hpp"

#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace botmeter::estimators {

IntervalEstimate Estimator::estimate_with_interval(const CompactObservation&,
                                                   double) const {
  throw ConfigError(std::string(name()) +
                    ": no compact observation path (compact_support() is "
                    "false for this model)");
}

void EpochObservation::validate() const {
  if (config == nullptr) throw ConfigError("EpochObservation: config missing");
  if (pool == nullptr) throw ConfigError("EpochObservation: pool missing");
  if (window == nullptr) throw ConfigError("EpochObservation: detection window missing");
  if (window->detected.size() != pool->domains.size()) {
    throw ConfigError("EpochObservation: window/pool size mismatch");
  }
  if (window_length.millis() <= 0) {
    throw ConfigError("EpochObservation: window length must be positive");
  }
  if (assumed_miss_rate &&
      (*assumed_miss_rate < 0.0 || *assumed_miss_rate >= 1.0)) {
    throw ConfigError("EpochObservation: assumed_miss_rate must be in [0,1)");
  }
  for (std::size_t i = 1; i < lookups.size(); ++i) {
    if (lookups[i].t < lookups[i - 1].t) {
      throw DataError("EpochObservation: lookups must be time-sorted");
    }
  }
}

double estimate_window(const Estimator& estimator,
                       std::span<const EpochObservation> epochs,
                       obs::MetricsRegistry* metrics) {
  if (epochs.empty()) throw ConfigError("estimate_window: no epochs");
  double sum = 0.0;
  std::uint64_t lookups = 0;
  for (const EpochObservation& obs : epochs) {
    sum += estimator.estimate(obs);
    lookups += obs.lookups.size();
  }
  const double value = sum / static_cast<double>(epochs.size());
  if (metrics != nullptr) {
    const std::string prefix = "estimator." + std::string(estimator.name());
    metrics->counter(prefix + ".windows").add(1);
    metrics->counter(prefix + ".epochs").add(epochs.size());
    metrics->counter(prefix + ".lookups").add(lookups);
    metrics->gauge(prefix + ".last_estimate").set(value);
  }
  return value;
}

WindowAggregate aggregate_cells(std::span<const EpochCell> cells) {
  if (cells.empty()) throw ConfigError("aggregate_cells: no cells");
  double sum = 0.0, lo_sum = 0.0, hi_sum = 0.0;
  bool all_intervals = true;
  WindowAggregate out;
  for (const EpochCell& cell : cells) {
    sum += cell.estimate.value;
    if (cell.estimate.interval) {
      lo_sum += cell.estimate.interval->first;
      hi_sum += cell.estimate.interval->second;
    } else {
      all_intervals = false;
    }
    out.matched += cell.matched;
    if (cell.estimate.approximate) {
      out.approximate = true;
      if (cell.estimate.sketch_rse > out.sketch_rse) {
        out.sketch_rse = cell.estimate.sketch_rse;
      }
    }
  }
  const auto n = static_cast<double>(cells.size());
  out.population = sum / n;
  if (all_intervals) out.interval = {lo_sum / n, hi_sum / n};
  return out;
}

}  // namespace botmeter::estimators
