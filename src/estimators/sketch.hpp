// Bounded-memory streaming sketches backing the compact observation path.
//
// Three classic summaries, each chosen for a statistic the estimators need
// (DESIGN.md §13):
//  - KmvSketch: k-minimum-values distinct counter over u32 item ids. Exact
//    while the distinct count stays below k (every survivor keeps its original
//    value, so small cells lose nothing); once saturated it estimates
//    (k-1)/u_k with relative standard error 1/sqrt(k-2).
//  - CountMinSketch: conservative point-frequency tallies (per-position
//    forwarded-count diagnostics); never underestimates, overestimates by at
//    most (e/w)*N with probability >= 1 - e^-d.
//  - HllSketch: HyperLogLog distinct counter, the denser alternative to KMV
//    when only the cardinality (not the surviving ids) is needed.
//
// All three share the properties the streaming engine relies on: insertion
// order never changes the state, merge is associative and commutative, the
// state serializes to JSON deterministically, and every hash is the seedless
// mix64 bijection — so shard count, thread count, and spill timing cannot
// perturb an estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.hpp"

namespace botmeter::estimators {

/// K-minimum-values distinct sketch over 32-bit item ids (pool positions).
/// mix64 is a bijection on u64, so distinct u32 inputs map to distinct
/// hashes: while fewer than k distinct items have been inserted the sketch
/// is exact (`saturated()` false, `estimate() == distinct count`, and
/// `values()` returns every inserted id). Memory is bounded at construction:
/// the entry vector reserves k once and never reallocates.
class KmvSketch {
 public:
  /// k must be >= 8 (the estimator variance formula needs k-2 >> 0).
  explicit KmvSketch(std::uint32_t k);

  /// Insert one item id; duplicate inserts are no-ops. O(1) when the sketch
  /// is full and the hash exceeds the current k-th minimum.
  void insert(std::uint32_t value);

  /// Estimated distinct count: exact (integer-valued) until saturation,
  /// (k-1)/u_k afterwards where u_k is the k-th minimum hash mapped to (0,1].
  [[nodiscard]] double estimate() const;

  /// True once any item has been rejected or evicted — the exactness
  /// guarantee is gone and `estimate()` is approximate.
  [[nodiscard]] bool saturated() const { return saturated_; }

  /// Relative standard error of the saturated estimator: 1/sqrt(k-2).
  /// Zero while the sketch is still exact.
  [[nodiscard]] double relative_error() const;

  /// Number of entries currently held (== distinct count while exact).
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint32_t k() const { return k_; }

  /// The surviving item ids, ascending by hash. While exact this is the full
  /// distinct set (in hash order, not insertion order).
  [[nodiscard]] std::vector<std::uint32_t> values() const;

  /// Merge another sketch (same k required; throws ConfigError otherwise).
  /// Equivalent to having inserted both input streams into one sketch.
  void merge(const KmvSketch& other);

  /// Bytes of heap + inline state; constant after construction.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Deterministic JSON state: {k, saturated, values:[u32...]}. Values (not
  /// hashes) are stored — they fit JSON numbers exactly and re-hash on parse,
  /// so serialize/parse round-trips bit-identically.
  [[nodiscard]] json::Value serialize() const;
  [[nodiscard]] static KmvSketch parse(const json::Value& value);

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint32_t value = 0;
  };
  std::uint32_t k_ = 0;
  bool saturated_ = false;
  std::vector<Entry> entries_;  // ascending by hash, size <= k
};

/// Count-min frequency sketch: d rows of w (power-of-two) u64 counters.
/// Point queries never underestimate; the overestimate is bounded by
/// epsilon() * total() with probability >= 1 - e^-depth.
class CountMinSketch {
 public:
  /// depth >= 1, width a power of two >= 2.
  CountMinSketch(std::uint32_t depth, std::uint32_t width);

  void add(std::uint32_t item, std::uint64_t count = 1);

  /// Upper-biased frequency of `item` (min over rows).
  [[nodiscard]] std::uint64_t query(std::uint32_t item) const;

  /// Total mass added (exact).
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Expected-error factor e/width: query(x) <= true(x) + epsilon()*total().
  [[nodiscard]] double epsilon() const;

  [[nodiscard]] std::uint32_t depth() const { return depth_; }
  [[nodiscard]] std::uint32_t width() const { return width_; }

  /// Elementwise-add merge (same shape required; throws ConfigError).
  void merge(const CountMinSketch& other);

  [[nodiscard]] std::size_t memory_bytes() const;

  /// {depth, width, total, rows:[[u64-as-int...]...]}; counters stay below
  /// 2^53 at any realistic tuple volume, enforced on serialize.
  [[nodiscard]] json::Value serialize() const;
  [[nodiscard]] static CountMinSketch parse(const json::Value& value);

 private:
  [[nodiscard]] std::size_t slot(std::uint32_t row, std::uint32_t item) const;

  std::uint32_t depth_ = 0;
  std::uint32_t width_ = 0;  // power of two
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counters_;  // depth_ * width_, row-major
};

/// HyperLogLog distinct counter with 2^precision one-byte registers.
/// RSE ~ 1.04/sqrt(2^precision); small ranges use linear counting.
class HllSketch {
 public:
  /// precision in [4, 16].
  explicit HllSketch(std::uint32_t precision);

  void insert(std::uint32_t value);

  [[nodiscard]] double estimate() const;

  /// 1.04/sqrt(m) — the asymptotic relative standard error.
  [[nodiscard]] double relative_error() const;

  [[nodiscard]] std::uint32_t precision() const { return precision_; }

  /// Register-wise max merge (same precision required; throws ConfigError).
  void merge(const HllSketch& other);

  [[nodiscard]] std::size_t memory_bytes() const;

  /// {precision, registers:[u8...]}.
  [[nodiscard]] json::Value serialize() const;
  [[nodiscard]] static HllSketch parse(const json::Value& value);

 private:
  std::uint32_t precision_ = 0;
  std::vector<std::uint8_t> registers_;  // 2^precision_
};

}  // namespace botmeter::estimators
