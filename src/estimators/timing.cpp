#include "estimators/timing.hpp"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "botnet/bot.hpp"

namespace botmeter::estimators {

namespace {

/// One entry of Algorithm 1's list L: a conjectured bot.
struct BotEntry {
  TimePoint first_seen;
  std::unordered_set<std::uint32_t> domains;
};

}  // namespace

double TimingEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  const dga::DgaConfig& config = *obs.config;

  const Duration max_duration = botnet::max_activation_duration(config);
  const bool has_fixed_interval = config.query_interval.millis() > 0;
  const std::int64_t interval_ms = config.query_interval.millis();

  // Entries that can no longer absorb anything (heuristic #2 already rejects
  // every future lookup, since input is time-sorted) are retired to a
  // counter; `active` stays small.
  std::vector<BotEntry> active;
  std::uint64_t retired = 0;

  for (const detect::MatchedLookup& lookup : obs.lookups) {
    // Retire entries that have aged out of heuristic #2's horizon.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i].first_seen + max_duration <= lookup.t) {
        ++retired;
      } else {
        if (keep != i) active[keep] = std::move(active[i]);
        ++keep;
      }
    }
    active.resize(keep);

    bool absorbed = false;
    for (BotEntry& entry : active) {
      // Heuristic #3: gap must be an exact multiple of delta_i.
      if (has_fixed_interval &&
          (lookup.t - entry.first_seen).millis() % interval_ms != 0) {
        continue;
      }
      // Heuristic #1: an entry never repeats a domain.
      if (entry.domains.contains(lookup.pool_position)) continue;
      entry.domains.insert(lookup.pool_position);
      absorbed = true;
      break;
    }
    if (!absorbed) {
      BotEntry entry;
      entry.first_seen = lookup.t;
      entry.domains.insert(lookup.pool_position);
      active.push_back(std::move(entry));
    }
  }

  return static_cast<double>(retired + active.size());
}

}  // namespace botmeter::estimators
