// NXD segment extraction for the randomcut barrel A_R (§IV-D, Fig. 5).
//
// The pool forms a circle; the theta_E valid domains partition it into arcs.
// The distinct NXDs looked up during an epoch form maximal runs of
// consecutive positions — *segments*. A segment that ends immediately before
// a valid domain is a b-segment (its bots hit the C2 boundary); one that
// ends mid-arc is an m-segment (its bots aborted after theta_q lookups).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dga/pool.hpp"

namespace botmeter::estimators {

enum class SegmentKind {
  kBoundary,  // b-segment: ends at an arc boundary (valid domain)
  kMiddle,    // m-segment: ends in the middle of an arc
};

struct Segment {
  std::uint32_t start = 0;   // first covered pool position
  std::uint32_t length = 0;  // number of consecutive covered NXDs
  SegmentKind kind = SegmentKind::kMiddle;

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Extract segments from the distinct observed NXD positions.
/// `observed_positions` need not be sorted or deduplicated; valid-domain
/// positions are ignored. Runs wrap around the circle. A run abutting a
/// valid position is a b-segment; all others are m-segments.
[[nodiscard]] std::vector<Segment> extract_segments(
    const dga::EpochPool& pool, std::span<const std::uint32_t> observed_positions);

/// Depth of NXD position `pos` inside its arc: the number of steps from the
/// first position after the preceding valid domain up to `pos`, inclusive
/// (so the position right after a boundary has depth 1). With no valid
/// positions the whole circle is one arc and the depth is the pool size.
[[nodiscard]] std::uint32_t arc_depth(const dga::EpochPool& pool, std::uint32_t pos);

}  // namespace botmeter::estimators
