// Coverage estimator for the sampling barrel (extension).
//
// The paper evaluates only the Timing estimator on A_S (§V-A); its
// future-work list asks for "more effective bot population estimators"
// combining semantic traits. This model fills that gap: under A_S each bot
// queries a random sequence of distinct pool domains until its first C2
// hit, so the marginal probability q that one bot queries a specific NXD is
// identical across NXDs and exactly computable:
//
//   P(X >= k) = prod_{j<k} (theta_0 - j) / (P - j)   (first k draws all NXD)
//   E[X]      = sum_{k=1..theta_q} P(X >= k),   q = E[X] / theta_0
//   E[C | N]  = theta_0 * (1 - (1 - q)^N)
//
// which inverts in closed form at the observed distinct-NXD count. Like the
// Bernoulli estimator it uses no temporal traits (immune to caching and rate
// dynamics) and is uncorrected for D3 misses unless told the miss rate.
//
// The permutation barrel A_P is deliberately NOT covered: there q =
// E[X]/theta_0 = 1/(theta_E + 1) regardless of pool size, so the coverage
// ceiling is reached by a handful of bots and the statistic carries no
// population signal — A_P stays with the Timing estimator, as in the paper.
#pragma once

#include <optional>

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class SamplingCoverageEstimator final : public Estimator {
 public:
  SamplingCoverageEstimator() = default;

  [[nodiscard]] std::string_view name() const override {
    return "sampling-coverage";
  }

  [[nodiscard]] bool applicable(const dga::DgaConfig& config) const override {
    return config.taxonomy.barrel == dga::BarrelModel::kSampling;
  }

  [[nodiscard]] double estimate(const EpochObservation& obs) const override;

  /// The closed-form inversion needs only the distinct-NXD count, so the KMV
  /// sketch is a sufficient compact statistic.
  [[nodiscard]] CompactSupport compact_support() const override;

  /// Compact-path estimate: bit-identical to the exact path while the KMV
  /// sketch is unsaturated (and, like the exact path, interval-free there);
  /// once saturated the estimate is flagged approximate and the closed form
  /// is inverted at distinct * (1 -/+ z * rse) to produce a propagated
  /// confidence band.
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const CompactObservation& obs, double level = 0.9) const override;

  /// Marginal probability that one bot queries a given NXD. Exposed for
  /// tests.
  [[nodiscard]] static double per_bot_nxd_probability(const dga::DgaConfig& config);
};

}  // namespace botmeter::estimators
