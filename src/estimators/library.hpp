// The analytical model library (step 5 of Fig. 2).
//
// Owns one instance of every estimation model and answers the two questions
// the BotMeter configuration interface needs: which models *can* run against
// a given DGA family, and which one the paper's evaluation recommends.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "dga/config.hpp"
#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class ModelLibrary {
 public:
  /// Registers: timing, poisson, bernoulli (coverage inversion),
  /// bernoulli-segment, sampling-coverage, and the hybrid blend for A_R.
  ModelLibrary();

  ModelLibrary(const ModelLibrary&) = delete;
  ModelLibrary& operator=(const ModelLibrary&) = delete;

  /// Look up by name; throws ConfigError if absent.
  [[nodiscard]] const Estimator& get(std::string_view name) const;

  /// Every registered model whose assumptions hold for `config`.
  [[nodiscard]] std::vector<const Estimator*> applicable(
      const dga::DgaConfig& config) const;

  /// The paper's recommendation (§V): the Poisson estimator for uniform
  /// barrels, the Bernoulli estimator for randomcut barrels, the Timing
  /// estimator otherwise.
  [[nodiscard]] const Estimator& recommended(const dga::DgaConfig& config) const;

  [[nodiscard]] std::vector<std::string_view> names() const;

 private:
  std::vector<std::unique_ptr<Estimator>> models_;
};

}  // namespace botmeter::estimators
