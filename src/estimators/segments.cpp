#include "estimators/segments.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace botmeter::estimators {

std::uint32_t arc_depth(const dga::EpochPool& pool, std::uint32_t pos) {
  const std::uint32_t size = pool.size();
  if (pos >= size) throw ConfigError("arc_depth: position out of range");
  const auto& valid = pool.valid_positions;
  if (valid.empty()) return size;
  if (pool.is_valid_position(pos)) return 0;
  // Find the nearest valid position strictly before `pos` on the circle.
  auto it = std::lower_bound(valid.begin(), valid.end(), pos);
  const std::uint32_t prev = (it == valid.begin()) ? valid.back() : *(it - 1);
  return (pos + size - prev) % size;
}

std::vector<Segment> extract_segments(
    const dga::EpochPool& pool,
    std::span<const std::uint32_t> observed_positions) {
  const std::uint32_t size = pool.size();
  std::vector<std::uint32_t> nxds;
  nxds.reserve(observed_positions.size());
  for (std::uint32_t pos : observed_positions) {
    if (pos >= size) throw ConfigError("extract_segments: position out of range");
    if (!pool.is_valid_position(pos)) nxds.push_back(pos);
  }
  std::sort(nxds.begin(), nxds.end());
  nxds.erase(std::unique(nxds.begin(), nxds.end()), nxds.end());
  if (nxds.empty()) return {};

  // Walk sorted positions grouping consecutive ones, then stitch a possible
  // wrap-around (last position == size-1 joining position 0).
  std::vector<Segment> segments;
  std::uint32_t run_start = nxds.front();
  std::uint32_t prev = nxds.front();
  auto close_run = [&](std::uint32_t end) {
    Segment s;
    s.start = run_start;
    s.length = end - run_start + 1;
    const std::uint32_t after = (end + 1) % size;
    s.kind = pool.is_valid_position(after) ? SegmentKind::kBoundary
                                           : SegmentKind::kMiddle;
    segments.push_back(s);
  };
  for (std::size_t i = 1; i < nxds.size(); ++i) {
    if (nxds[i] == prev + 1) {
      prev = nxds[i];
      continue;
    }
    close_run(prev);
    run_start = nxds[i];
    prev = nxds[i];
  }
  close_run(prev);

  // Wrap-around: a run ending at size-1 and a run starting at 0 are one
  // circular run (unless position 0 is a valid domain, in which case the
  // first run already closed as a b-segment... note position 0 being valid
  // means it is absent from `nxds`, so no run starts at 0).
  if (segments.size() >= 2) {
    const Segment& first = segments.front();
    const Segment& last = segments.back();
    if (first.start == 0 && last.start + last.length == size) {
      Segment merged;
      merged.start = last.start;
      merged.length = last.length + first.length;
      merged.kind = first.kind;  // the merged run ends where `first` ended
      segments.back() = merged;
      segments.erase(segments.begin());
    }
  } else if (segments.size() == 1 && segments.front().length == size) {
    // Entire circle covered with no valid positions: one circular segment.
    segments.front().kind = SegmentKind::kMiddle;
  }

  return segments;
}

}  // namespace botmeter::estimators
