// The Poisson estimator M_P (§IV-C, Fig. 4, Eqn 1).
//
// Under the uniform barrel A_U every bot issues the *same* lookup train, so
// negative caching makes all but the first activation in each TTL window
// invisible. M_P therefore models activations as a Poisson process, reads
// the average activation rate off the waiting gaps {Delta_i} between the end
// of one negative-TTL window and the next visible activation, and
// reconstitutes the masked activations:
//
//   E(lambda) = n / sum(Delta_i)
//   E(N)      = E(lambda) * sum(Delta_i + delta_l) = n + n^2 * delta_l / sum(Delta_i)
//
// Delta_1 is the elapse from the start of the observation window to the
// first visible activation (footnote 2 of the paper). This implementation
// replaces the rate MLE n/sum(Delta) with the unbiased (n-1)/sum(Delta) —
// identical at scale but without the MLE's unbounded small-sample moments —
// and merges boundary-leakage bursts so the visible activations obey the
// renewal structure of Fig. 4 (see the .cpp for both derivations).
#pragma once

#include <vector>

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class PoissonEstimator final : public Estimator {
 public:
  PoissonEstimator() = default;

  [[nodiscard]] std::string_view name() const override { return "poisson"; }

  /// The masking argument requires identical barrels, i.e. the uniform
  /// barrel model.
  [[nodiscard]] bool applicable(const dga::DgaConfig& config) const override {
    return config.taxonomy.barrel == dga::BarrelModel::kUniform;
  }

  [[nodiscard]] double estimate(const EpochObservation& obs) const override;

  /// Exact confidence interval: the n waiting gaps are i.i.d. Exp(lambda),
  /// so 2 * lambda * sum(Delta) ~ chi^2(2n); the rate interval maps through
  /// E(N) = lambda * (sum(Delta) + n * delta_l). Requires n >= 2 visible
  /// activations; otherwise only the point estimate is returned.
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const EpochObservation& obs, double level = 0.9) const override;

  /// The visible-activation instants extracted by burst clustering —
  /// exposed for tests and for the hybrid estimator.
  [[nodiscard]] static std::vector<TimePoint> visible_activations(
      const EpochObservation& obs);

  /// The slotted NXD timestamps of a compact cell carry the activation
  /// structure: slots are half the minimum kept-activation spacing wide, so
  /// every kept activation owns its slot and the slot-minimum timestamps
  /// reconstruct the visible-activation sequence to within one slot width.
  [[nodiscard]] CompactSupport compact_support() const override;

  /// Compact-path estimate: the same burst clustering and gap-sum estimator
  /// over the slot-minimum pseudo-stream. Always flagged approximate — the
  /// gap sum is only known to within n * slot_width — with the chi-square
  /// interval evaluated at the perturbed gap-sum bounds (the estimate is
  /// decreasing in the gap sum, so the low bound uses sum + n * w and the
  /// high bound sum - n * w).
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const CompactObservation& obs, double level = 0.9) const override;

  /// The pseudo-activation instants read off a compact cell's slot grid.
  [[nodiscard]] static std::vector<TimePoint> visible_activations(
      const CompactObservation& obs);
};

}  // namespace botmeter::estimators
