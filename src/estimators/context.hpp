// Shared per-epoch estimation state: tables built once, inversions solved
// once.
//
// Batch analyze and the streaming epoch close both evaluate the active
// estimator once per (server, epoch) cell. The expensive ingredients of those
// evaluations split into two classes that one `EstimationContext` — created
// per (epoch, meter configuration) and shared by every server of that epoch —
// caches across cells:
//
//  - **Tables**: immutable precomputations that depend only on the epoch's
//    pool and the analysis configuration (the Bernoulli coverage-weight
//    histogram, the renewal-horizon table, ...). Without a context they are
//    rebuilt for every bisection; with one they are built exactly once.
//  - **Memos**: results of *pure* functions of an observed statistic — a
//    bisection inversion keyed on the observed coverage count, a chi-square
//    quantile keyed on (p, dof), a full interval estimate keyed on the
//    sufficient statistic of the observation. Real landscapes are sparse and
//    quantised (most local servers report zero or one of a handful of small
//    counts), so duplicate keys dominate and each repeat is a cache hit
//    instead of a fresh 200-iteration bisection or 32-resample bootstrap.
//
// Invariant — caching never changes results. Everything stored is a
// deterministic pure function of (key, epoch tables, configuration): whichever
// thread computes a value first stores the same bits any other thread would
// have computed, so attaching a context (or racing on one) leaves every
// estimate byte-identical to the uncached path. That is what makes
// `analyze` output invariant under both `analyze_threads` and the
// `share_estimation_context` switch, and it is regression-tested.
//
// Scope — one context is valid for ONE (epoch, BotMeterConfig) pair: memo
// keys deliberately omit the pool, TTL policy, and miss rate because those
// are constant within that scope. Never share a context across epochs or
// differently-configured meters.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

class EstimationContext {
 public:
  EstimationContext() = default;

  EstimationContext(const EstimationContext&) = delete;
  EstimationContext& operator=(const EstimationContext&) = delete;

  /// Get-or-build the immutable table registered under `key`. The first
  /// caller builds it (under the lock, so concurrent requests for the same
  /// key block instead of duplicating work); everyone else gets the cached
  /// instance. `T` must be the same type for every use of a given key.
  template <typename T>
  const T& table(const std::string& key,
                 const std::function<std::unique_ptr<T>()>& build) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      ++tables_built_;
      std::shared_ptr<const T> built{build().release()};
      it = tables_.emplace(key, std::shared_ptr<const void>(built)).first;
    }
    return *static_cast<const T*>(it->second.get());
  }

  /// Memoized pure scalar function keyed on (key, a) / (key, a, b). On a
  /// miss, `eval` runs OUTSIDE the lock (concurrent misses on the same key
  /// may both evaluate — harmless, they compute identical bits; the first
  /// store wins) so distinct observations still solve in parallel.
  double memoized(const std::string& key, double a,
                  const std::function<double()>& eval) {
    return memoized(key, a, 0.0, eval);
  }
  double memoized(const std::string& key, double a, double b,
                  const std::function<double()>& eval);

  /// Memoized full interval estimate keyed on up to four doubles — the
  /// sufficient statistic of an observation plus the confidence level. Only
  /// correct for estimators whose estimate_with_interval is a pure function
  /// of that statistic (given this context's epoch and configuration).
  IntervalEstimate memoized_interval(
      const std::string& key, const std::array<double, 4>& stat,
      const std::function<IntervalEstimate()>& eval);

  // --- introspection (tests, metrics) --------------------------------------
  [[nodiscard]] std::uint64_t tables_built() const;
  [[nodiscard]] std::uint64_t memo_hits() const;
  [[nodiscard]] std::uint64_t memo_misses() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const void>> tables_;
  std::map<std::pair<std::string, std::pair<double, double>>, double> scalars_;
  std::map<std::pair<std::string, std::array<double, 4>>, IntervalEstimate>
      intervals_;
  std::uint64_t tables_built_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t memo_misses_ = 0;
};

}  // namespace botmeter::estimators
