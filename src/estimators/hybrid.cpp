#include "estimators/hybrid.hpp"

#include "common/error.hpp"

namespace botmeter::estimators {

HybridEstimator::HybridEstimator(std::unique_ptr<Estimator> semantic,
                                 std::unique_ptr<Estimator> temporal,
                                 double semantic_weight)
    : semantic_(std::move(semantic)),
      temporal_(std::move(temporal)),
      weight_(semantic_weight) {
  if (semantic_ == nullptr || temporal_ == nullptr) {
    throw ConfigError("HybridEstimator: both components are required");
  }
  if (weight_ < 0.0 || weight_ > 1.0) {
    throw ConfigError("HybridEstimator: weight must be in [0,1]");
  }
  name_ = "hybrid(" + std::string(semantic_->name()) + "+" +
          std::string(temporal_->name()) + ")";
}

bool HybridEstimator::applicable(const dga::DgaConfig& config) const {
  return semantic_->applicable(config) && temporal_->applicable(config);
}

double HybridEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("HybridEstimator: components not applicable to this family");
  }
  const double semantic = semantic_->estimate(obs);
  const double temporal = temporal_->estimate(obs);
  return weight_ * semantic + (1.0 - weight_) * temporal;
}

}  // namespace botmeter::estimators
