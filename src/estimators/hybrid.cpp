#include "estimators/hybrid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace botmeter::estimators {

HybridEstimator::HybridEstimator(std::unique_ptr<Estimator> semantic,
                                 std::unique_ptr<Estimator> temporal,
                                 double semantic_weight)
    : semantic_(std::move(semantic)),
      temporal_(std::move(temporal)),
      weight_(semantic_weight) {
  if (semantic_ == nullptr || temporal_ == nullptr) {
    throw ConfigError("HybridEstimator: both components are required");
  }
  if (weight_ < 0.0 || weight_ > 1.0) {
    throw ConfigError("HybridEstimator: weight must be in [0,1]");
  }
  name_ = "hybrid(" + std::string(semantic_->name()) + "+" +
          std::string(temporal_->name()) + ")";
}

bool HybridEstimator::applicable(const dga::DgaConfig& config) const {
  return semantic_->applicable(config) && temporal_->applicable(config);
}

double HybridEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("HybridEstimator: components not applicable to this family");
  }
  const double semantic = semantic_->estimate(obs);
  const double temporal = temporal_->estimate(obs);
  return weight_ * semantic + (1.0 - weight_) * temporal;
}

CompactSupport HybridEstimator::compact_support() const {
  const CompactSupport semantic = semantic_->compact_support();
  const CompactSupport temporal = temporal_->compact_support();
  if (!semantic.supported || !temporal.supported) return {};
  CompactSupport support;
  support.supported = true;
  support.needs_distinct = semantic.needs_distinct || temporal.needs_distinct;
  support.needs_position_counts =
      semantic.needs_position_counts || temporal.needs_position_counts;
  support.needs_time_slots =
      semantic.needs_time_slots || temporal.needs_time_slots;
  return support;
}

IntervalEstimate HybridEstimator::estimate_with_interval(
    const CompactObservation& obs, double level) const {
  if (!compact_support().supported) {
    return Estimator::estimate_with_interval(obs, level);  // throws
  }
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("HybridEstimator: components not applicable to this family");
  }
  const IntervalEstimate semantic =
      semantic_->estimate_with_interval(obs, level);
  const IntervalEstimate temporal =
      temporal_->estimate_with_interval(obs, level);
  IntervalEstimate result;
  result.level = level;
  result.value = weight_ * semantic.value + (1.0 - weight_) * temporal.value;
  result.approximate = semantic.approximate || temporal.approximate;
  result.sketch_rse = std::max(semantic.sketch_rse, temporal.sketch_rse);
  if (semantic.interval && temporal.interval) {
    result.interval = {
        weight_ * semantic.interval->first +
            (1.0 - weight_) * temporal.interval->first,
        weight_ * semantic.interval->second +
            (1.0 - weight_) * temporal.interval->second};
  }
  return result;
}

}  // namespace botmeter::estimators
