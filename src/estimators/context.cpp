#include "estimators/context.hpp"

namespace botmeter::estimators {

double EstimationContext::memoized(const std::string& key, double a, double b,
                                   const std::function<double()>& eval) {
  const std::pair<std::string, std::pair<double, double>> k{key, {a, b}};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scalars_.find(k);
    if (it != scalars_.end()) {
      ++memo_hits_;
      return it->second;
    }
  }
  const double value = eval();
  std::lock_guard<std::mutex> lock(mu_);
  // First insert wins; a concurrent evaluator computed the same bits anyway.
  auto [it, inserted] = scalars_.emplace(k, value);
  if (inserted) {
    ++memo_misses_;
  } else {
    ++memo_hits_;
  }
  return it->second;
}

IntervalEstimate EstimationContext::memoized_interval(
    const std::string& key, const std::array<double, 4>& stat,
    const std::function<IntervalEstimate()>& eval) {
  const std::pair<std::string, std::array<double, 4>> k{key, stat};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = intervals_.find(k);
    if (it != intervals_.end()) {
      ++memo_hits_;
      return it->second;
    }
  }
  const IntervalEstimate value = eval();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = intervals_.emplace(k, value);
  if (inserted) {
    ++memo_misses_;
  } else {
    ++memo_hits_;
  }
  return it->second;
}

std::uint64_t EstimationContext::tables_built() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_built_;
}

std::uint64_t EstimationContext::memo_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_hits_;
}

std::uint64_t EstimationContext::memo_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_misses_;
}

}  // namespace botmeter::estimators
