#include "estimators/sampling_coverage.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace botmeter::estimators {

double SamplingCoverageEstimator::per_bot_nxd_probability(
    const dga::DgaConfig& config) {
  const double nxds = config.nxd_count;
  const double pool = config.pool_size();
  const std::uint32_t draws = std::min(config.barrel_size, config.pool_size());

  // E[X] = sum_k P(X >= k); running product of (theta_0 - j)/(P - j).
  double expected_nxd_queries = 0.0;
  if (config.stop_on_hit) {
    double survive = 1.0;  // P(first k-1 draws all NXD)
    for (std::uint32_t k = 1; k <= draws; ++k) {
      const double j = static_cast<double>(k - 1);
      survive *= (nxds - j) / (pool - j);
      if (survive <= 0.0) break;
      expected_nxd_queries += survive;
    }
  } else {
    // Without stop-on-hit the bot queries its whole barrel; expected NXDs
    // among theta_q uniform draws without replacement.
    expected_nxd_queries = static_cast<double>(draws) * nxds / pool;
  }
  return expected_nxd_queries / nxds;
}

double SamplingCoverageEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("SamplingCoverageEstimator: requires the sampling barrel");
  }
  std::unordered_set<std::uint32_t> distinct;
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    if (!lookup.is_valid_domain) distinct.insert(lookup.pool_position);
  }
  const double observed = static_cast<double>(distinct.size());
  if (observed <= 0.0) return 0.0;

  const double q = per_bot_nxd_probability(*obs.config);
  if (!(q > 0.0)) throw ConfigError("SamplingCoverageEstimator: q must be > 0");

  const double keep =
      obs.assumed_miss_rate ? (1.0 - *obs.assumed_miss_rate) : 1.0;
  const double ceiling = static_cast<double>(obs.config->nxd_count) * keep;
  // Saturated coverage: every (detected) NXD was seen; the inversion
  // diverges, so report the largest population distinguishable at this
  // coverage resolution (within half a domain of the ceiling).
  if (observed >= ceiling - 0.5) {
    return std::log(0.5 / ceiling) / std::log1p(-q);
  }
  return std::log1p(-observed / ceiling) / std::log1p(-q);
}

}  // namespace botmeter::estimators
