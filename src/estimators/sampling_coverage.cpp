#include "estimators/sampling_coverage.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/logmath.hpp"

namespace botmeter::estimators {

namespace {

/// The closed-form coverage inversion shared by the exact and compact paths.
double invert_sampling_coverage(double observed, double q, double ceiling) {
  if (observed <= 0.0) return 0.0;
  // Saturated coverage: every (detected) NXD was seen; the inversion
  // diverges, so report the largest population distinguishable at this
  // coverage resolution (within half a domain of the ceiling).
  if (observed >= ceiling - 0.5) {
    return std::log(0.5 / ceiling) / std::log1p(-q);
  }
  return std::log1p(-observed / ceiling) / std::log1p(-q);
}

}  // namespace

double SamplingCoverageEstimator::per_bot_nxd_probability(
    const dga::DgaConfig& config) {
  const double nxds = config.nxd_count;
  const double pool = config.pool_size();
  const std::uint32_t draws = std::min(config.barrel_size, config.pool_size());

  // E[X] = sum_k P(X >= k); running product of (theta_0 - j)/(P - j).
  double expected_nxd_queries = 0.0;
  if (config.stop_on_hit) {
    double survive = 1.0;  // P(first k-1 draws all NXD)
    for (std::uint32_t k = 1; k <= draws; ++k) {
      const double j = static_cast<double>(k - 1);
      survive *= (nxds - j) / (pool - j);
      if (survive <= 0.0) break;
      expected_nxd_queries += survive;
    }
  } else {
    // Without stop-on-hit the bot queries its whole barrel; expected NXDs
    // among theta_q uniform draws without replacement.
    expected_nxd_queries = static_cast<double>(draws) * nxds / pool;
  }
  return expected_nxd_queries / nxds;
}

double SamplingCoverageEstimator::estimate(const EpochObservation& obs) const {
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("SamplingCoverageEstimator: requires the sampling barrel");
  }
  std::unordered_set<std::uint32_t> distinct;
  for (const detect::MatchedLookup& lookup : obs.lookups) {
    if (!lookup.is_valid_domain) distinct.insert(lookup.pool_position);
  }
  const double observed = static_cast<double>(distinct.size());
  if (observed <= 0.0) return 0.0;

  const double q = per_bot_nxd_probability(*obs.config);
  if (!(q > 0.0)) throw ConfigError("SamplingCoverageEstimator: q must be > 0");

  const double keep =
      obs.assumed_miss_rate ? (1.0 - *obs.assumed_miss_rate) : 1.0;
  const double ceiling = static_cast<double>(obs.config->nxd_count) * keep;
  return invert_sampling_coverage(observed, q, ceiling);
}

CompactSupport SamplingCoverageEstimator::compact_support() const {
  CompactSupport support;
  support.supported = true;
  support.needs_distinct = true;
  return support;
}

IntervalEstimate SamplingCoverageEstimator::estimate_with_interval(
    const CompactObservation& obs, double level) const {
  if (!(level > 0.0 && level < 1.0)) {
    throw ConfigError("estimate_with_interval: level must be in (0,1)");
  }
  obs.validate();
  if (!applicable(*obs.config)) {
    throw ConfigError("SamplingCoverageEstimator: requires the sampling barrel");
  }
  const KmvSketch* kmv = obs.cell->distinct_nxd();
  if (kmv == nullptr) {
    throw ConfigError(
        "SamplingCoverageEstimator: compact cell lacks the distinct-NXD sketch");
  }

  const double q = per_bot_nxd_probability(*obs.config);
  if (!(q > 0.0)) throw ConfigError("SamplingCoverageEstimator: q must be > 0");
  const double keep =
      obs.assumed_miss_rate ? (1.0 - *obs.assumed_miss_rate) : 1.0;
  const double ceiling = static_cast<double>(obs.config->nxd_count) * keep;

  IntervalEstimate result;
  result.level = level;
  const double observed = kmv->estimate();
  result.value = invert_sampling_coverage(observed, q, ceiling);
  if (!kmv->saturated()) {
    // Exact regime: the integer distinct count matches the exact path, so
    // the value is bit-identical and — like the exact path — interval-free.
    return result;
  }
  result.approximate = true;
  result.sketch_rse = kmv->relative_error();
  // Propagate the KMV standard error through the monotone inversion: the
  // distinct count is observed * (1 +/- rse), so the population band is the
  // closed form evaluated at the +/- z-sigma coverage bounds.
  const double z = normal_quantile(0.5 + level / 2.0);
  const double lo_cov =
      std::max(observed * (1.0 - z * result.sketch_rse), 0.0);
  const double hi_cov = observed * (1.0 + z * result.sketch_rse);
  result.interval = {invert_sampling_coverage(lo_cov, q, ceiling),
                     invert_sampling_coverage(hi_cov, q, ceiling)};
  return result;
}

}  // namespace botmeter::estimators
