// The Bernoulli estimator M_B (§IV-D, Fig. 5, Theorem 1).
//
// For the randomcut barrel A_R each bot picks a uniformly random start on
// the pool circle and walks clockwise for up to theta_q domains, stopping at
// the first arc boundary (valid domain). M_B inverts collective NXD
// statistics of the population; it uses no per-lookup temporal traits, which
// is why it is robust to caching TTLs and activation-rate dynamics
// (Fig. 6(c), (d)) but sensitive to the D3 detection window (Fig. 6(e)).
//
// Three methods are provided:
//
//  - kAdaptive (default, registered as "bernoulli"): inverts the exact
//    closed-form expected distinct-NXD coverage
//        E[C | N] = sum_d (1 - (1 - min(a_d, theta_q)/P)^N)
//    while the coverage is informative. Once the pool saturates (C close to
//    its ceiling the coverage count carries almost no information about N —
//    with theta_E arcs the uncovered mass is dominated by theta_E arc
//    prefixes, bounding any coverage-only estimator to ~1/sqrt(theta_E)
//    relative error), it refines via the cache-filtered *forwarded lookup
//    count*: under negative TTL delta_l, lookups of NXD d forwarded to the
//    border form a renewal process with
//        E[F | N] = sum_d N p_d / (1 + N p_d delta_l / delta_e),
//    which keeps resolving N far past coverage saturation.
//  - kCoverageInversion ("bernoulli-coverage"): the pure coverage inversion,
//    wholly immune to caching and timing; kept for ablation.
//  - kSegmentExpectation ("bernoulli-segment"): the paper's per-segment
//    formulation (Theorem 1). Each observed segment L contributes the
//    expected number of bots required to cover it, evaluated with a
//    Poissonized start field (intensity mu = N/P per position); the circular
//    dependence on N is resolved by fixed-point iteration.
//
// No method corrects for D3 misses unless the analyst supplies
// EpochObservation::assumed_miss_rate (extension; the paper runs
// uncorrected, which is exactly why M_B degrades in Fig. 6(e)).
#pragma once

#include <optional>

#include "estimators/estimator.hpp"

namespace botmeter::estimators {

enum class BernoulliMethod {
  kAdaptive,
  kCoverageInversion,
  kSegmentExpectation,
};

class BernoulliEstimator final : public Estimator {
 public:
  explicit BernoulliEstimator(BernoulliMethod method = BernoulliMethod::kAdaptive);

  [[nodiscard]] std::string_view name() const override;

  [[nodiscard]] bool applicable(const dga::DgaConfig& config) const override {
    return config.taxonomy.barrel == dga::BarrelModel::kRandomCut;
  }

  [[nodiscard]] double estimate(const EpochObservation& obs) const override;

  /// Confidence interval by parametric bootstrap: the statistic the active
  /// method inverted (distinct coverage, or forwarded count at saturation)
  /// is re-simulated under the point estimate to measure its spread, and
  /// the +/- z * sd band is pushed back through the inversion. Deterministic
  /// given the observation. The segment method returns the point only.
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const EpochObservation& obs, double level = 0.9) const override;

  /// The coverage/forward statistics are sufficient for the adaptive and
  /// coverage methods, so both run from a compact cell (distinct NXDs via
  /// KMV, forwarded counts exact). The segment method reads individual pool
  /// positions and has no compact path.
  [[nodiscard]] CompactSupport compact_support() const override;

  /// Compact-path estimate. Bit-identical to the exact path while the KMV
  /// sketch is unsaturated; past saturation the estimate is flagged
  /// approximate and the bootstrap band is widened by the sketch's
  /// distinct-count standard error before the inversion.
  [[nodiscard]] IntervalEstimate estimate_with_interval(
      const CompactObservation& obs, double level = 0.9) const override;

  /// E[C | N]: expected distinct observed NXDs for a population of `n`
  /// (fractional n allowed). If `miss_rate` is set, the expectation is of
  /// the *detected* coverage. Exposed for tests and benches.
  [[nodiscard]] static double expected_coverage(
      const dga::EpochPool& pool, const dga::DgaConfig& config, double n,
      std::optional<double> miss_rate);

  /// Invert expected_coverage at `observed` distinct NXDs by bisection.
  [[nodiscard]] static double invert_coverage(const dga::EpochPool& pool,
                                              const dga::DgaConfig& config,
                                              double observed,
                                              std::optional<double> miss_rate);

  /// E[F | N]: expected cache-filtered NXD lookups forwarded to the border
  /// during one epoch under negative TTL `negative_ttl`.
  [[nodiscard]] static double expected_forward_count(
      const dga::EpochPool& pool, const dga::DgaConfig& config, double n,
      Duration negative_ttl, Duration epoch_length,
      std::optional<double> miss_rate);

  /// Invert expected_forward_count at `observed` forwarded NXD lookups.
  [[nodiscard]] static double invert_forward_count(
      const dga::EpochPool& pool, const dga::DgaConfig& config, double observed,
      Duration negative_ttl, Duration epoch_length,
      std::optional<double> miss_rate);

 private:
  [[nodiscard]] double estimate_by_segments(const EpochObservation& obs) const;

  BernoulliMethod method_;
};

}  // namespace botmeter::estimators
