#include "estimators/compact_observation.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"

namespace botmeter::estimators {

void CompactObservationConfig::validate() const {
  if (kmv_k < 8) {
    throw ConfigError("CompactObservationConfig: kmv_k must be >= 8");
  }
  if (cms_depth < 1) {
    throw ConfigError("CompactObservationConfig: cms_depth must be >= 1");
  }
  if (cms_width < 2 || (cms_width & (cms_width - 1)) != 0) {
    throw ConfigError(
        "CompactObservationConfig: cms_width must be a power of two >= 2");
  }
  if (max_time_slots < 1) {
    throw ConfigError("CompactObservationConfig: max_time_slots must be >= 1");
  }
}

json::Value CompactCellSpec::serialize() const {
  json::Object out;
  out["window_start_ms"] = json::Value{static_cast<double>(window_start_ms)};
  out["window_ms"] = json::Value{static_cast<double>(window_ms)};
  out["slot_count"] = json::Value{static_cast<double>(slot_count)};
  out["kmv_k"] = json::Value{static_cast<double>(kmv_k)};
  out["cms_depth"] = json::Value{static_cast<double>(cms_depth)};
  out["cms_width"] = json::Value{static_cast<double>(cms_width)};
  return json::Value{std::move(out)};
}

CompactCellSpec CompactCellSpec::parse(const json::Value& value) {
  CompactCellSpec spec;
  spec.window_start_ms = value.at("window_start_ms").as_int();
  spec.window_ms = value.at("window_ms").as_int();
  const auto u32 = [&](const char* key) {
    const std::int64_t v = value.at(key).as_int();
    if (v < 0 || v > 0xFFFFFFFFLL) {
      throw DataError(std::string("CompactCellSpec: ") + key + " out of range");
    }
    return static_cast<std::uint32_t>(v);
  };
  spec.slot_count = u32("slot_count");
  spec.kmv_k = u32("kmv_k");
  spec.cms_depth = u32("cms_depth");
  spec.cms_width = u32("cms_width");
  if (spec.window_ms <= 0) {
    throw DataError("CompactCellSpec: window_ms must be positive");
  }
  return spec;
}

CompactCellSpec make_compact_spec(const CompactObservationConfig& config,
                                  const CompactSupport& support,
                                  TimePoint window_start,
                                  Duration window_length,
                                  const dns::TtlPolicy& ttl) {
  config.validate();
  if (window_length.millis() <= 0) {
    throw ConfigError("make_compact_spec: window length must be positive");
  }
  CompactCellSpec spec;
  spec.window_start_ms = window_start.millis();
  spec.window_ms = window_length.millis();
  if (support.needs_distinct) spec.kmv_k = config.kmv_k;
  if (support.needs_position_counts || config.position_counts) {
    spec.cms_depth = config.cms_depth;
    spec.cms_width = config.cms_width;
  }
  if (support.needs_time_slots) {
    // The Poisson activation filter keeps events at least delta_l - slack
    // apart (delta_l = negative TTL, slack = min(60 s, delta_l / 4)). Half
    // that spacing per slot guarantees two kept activations cannot share a
    // slot, so the slot-minimum timestamps reconstruct every kept event.
    const std::int64_t delta_l = ttl.negative.millis();
    const std::int64_t slack = std::min<std::int64_t>(60'000, delta_l / 4);
    const std::int64_t slot_ms = std::max<std::int64_t>(1, (delta_l - slack) / 2);
    const std::int64_t want =
        (spec.window_ms + slot_ms - 1) / slot_ms;  // ceil(window / slot)
    spec.slot_count = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        want, 1, static_cast<std::int64_t>(config.max_time_slots)));
  }
  return spec;
}

CompactCell::CompactCell(const CompactCellSpec& spec) : spec_(spec) {
  if (spec.window_ms <= 0) {
    throw ConfigError("CompactCell: window_ms must be positive");
  }
  if (spec.kmv_k > 0) kmv_.emplace(spec.kmv_k);
  if (spec.cms_depth > 0) cms_.emplace(spec.cms_depth, spec.cms_width);
  if (spec.slot_count > 0) {
    slot_counts_.assign(spec.slot_count, 0);
    slot_min_ms_.assign(spec.slot_count, 0);
  }
}

Duration CompactCell::slot_width() const {
  if (spec_.slot_count == 0) return Duration{0};
  const std::int64_t n = spec_.slot_count;
  return Duration{(spec_.window_ms + n - 1) / n};
}

void CompactCell::add(const detect::MatchedLookup& lookup) {
  const std::int64_t t_ms = lookup.t.millis();
  if (matched_ == 0) {
    first_ms_ = t_ms;
    last_ms_ = t_ms;
  } else {
    first_ms_ = std::min(first_ms_, t_ms);
    last_ms_ = std::max(last_ms_, t_ms);
  }
  ++matched_;
  if (lookup.is_valid_domain) {
    ++valid_lookups_;
    return;
  }
  ++nxd_lookups_;
  if (kmv_) kmv_->insert(lookup.pool_position);
  if (cms_) cms_->add(lookup.pool_position);
  if (spec_.slot_count > 0) {
    const std::int64_t w = slot_width().millis();
    const std::int64_t raw = (t_ms - spec_.window_start_ms) / w;
    const auto slot = static_cast<std::size_t>(std::clamp<std::int64_t>(
        raw, 0, static_cast<std::int64_t>(spec_.slot_count) - 1));
    if (slot_counts_[slot] == 0 || t_ms < slot_min_ms_[slot]) {
      slot_min_ms_[slot] = t_ms;
    }
    if (slot_counts_[slot] != ~std::uint32_t{0}) ++slot_counts_[slot];
  }
}

void CompactCell::add_all(std::span<const detect::MatchedLookup> lookups) {
  for (const detect::MatchedLookup& lookup : lookups) add(lookup);
}

void CompactCell::merge(const CompactCell& other) {
  if (!(other.spec_ == spec_)) {
    throw ConfigError("CompactCell: merge requires identical spec");
  }
  if (other.matched_ > 0) {
    if (matched_ == 0) {
      first_ms_ = other.first_ms_;
      last_ms_ = other.last_ms_;
    } else {
      first_ms_ = std::min(first_ms_, other.first_ms_);
      last_ms_ = std::max(last_ms_, other.last_ms_);
    }
  }
  matched_ += other.matched_;
  nxd_lookups_ += other.nxd_lookups_;
  valid_lookups_ += other.valid_lookups_;
  if (kmv_) kmv_->merge(*other.kmv_);
  if (cms_) cms_->merge(*other.cms_);
  for (std::size_t i = 0; i < slot_counts_.size(); ++i) {
    if (other.slot_counts_[i] == 0) continue;
    if (slot_counts_[i] == 0 || other.slot_min_ms_[i] < slot_min_ms_[i]) {
      slot_min_ms_[i] = other.slot_min_ms_[i];
    }
    const std::uint64_t sum = std::uint64_t{slot_counts_[i]} + other.slot_counts_[i];
    slot_counts_[i] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sum, ~std::uint32_t{0}));
  }
}

std::optional<TimePoint> CompactCell::first_t() const {
  if (matched_ == 0) return std::nullopt;
  return TimePoint{first_ms_};
}

std::optional<TimePoint> CompactCell::last_t() const {
  if (matched_ == 0) return std::nullopt;
  return TimePoint{last_ms_};
}

std::size_t CompactCell::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  if (kmv_) bytes += kmv_->memory_bytes();
  if (cms_) bytes += cms_->memory_bytes();
  bytes += slot_counts_.capacity() * sizeof(std::uint32_t);
  bytes += slot_min_ms_.capacity() * sizeof(std::int64_t);
  return bytes;
}

json::Value CompactCell::serialize() const {
  json::Object out;
  out["spec"] = spec_.serialize();
  out["matched"] = json::Value{static_cast<double>(matched_)};
  out["nxd"] = json::Value{static_cast<double>(nxd_lookups_)};
  out["valid"] = json::Value{static_cast<double>(valid_lookups_)};
  if (matched_ > 0) {
    out["first_ms"] = json::Value{static_cast<double>(first_ms_)};
    out["last_ms"] = json::Value{static_cast<double>(last_ms_)};
  }
  if (kmv_) out["kmv"] = kmv_->serialize();
  if (cms_) out["cms"] = cms_->serialize();
  if (!slot_counts_.empty()) {
    json::Array counts, mins;
    counts.reserve(slot_counts_.size());
    mins.reserve(slot_counts_.size());
    for (std::size_t i = 0; i < slot_counts_.size(); ++i) {
      counts.emplace_back(static_cast<double>(slot_counts_[i]));
      mins.emplace_back(
          static_cast<double>(slot_counts_[i] > 0 ? slot_min_ms_[i] : 0));
    }
    out["slot_counts"] = json::Value{std::move(counts)};
    out["slot_min_ms"] = json::Value{std::move(mins)};
  }
  return json::Value{std::move(out)};
}

CompactCell CompactCell::parse(const json::Value& value) {
  const CompactCellSpec spec = CompactCellSpec::parse(value.at("spec"));
  CompactCell cell{spec};
  const auto u64 = [&](const char* key) {
    const std::int64_t v = value.at(key).as_int();
    if (v < 0) throw DataError(std::string("CompactCell: negative ") + key);
    return static_cast<std::uint64_t>(v);
  };
  cell.matched_ = u64("matched");
  cell.nxd_lookups_ = u64("nxd");
  cell.valid_lookups_ = u64("valid");
  if (cell.nxd_lookups_ + cell.valid_lookups_ != cell.matched_) {
    throw DataError("CompactCell: matched != nxd + valid");
  }
  if (cell.matched_ > 0) {
    cell.first_ms_ = value.at("first_ms").as_int();
    cell.last_ms_ = value.at("last_ms").as_int();
    if (cell.last_ms_ < cell.first_ms_) {
      throw DataError("CompactCell: last_ms before first_ms");
    }
  }
  if (spec.kmv_k > 0) {
    cell.kmv_ = KmvSketch::parse(value.at("kmv"));
    if (cell.kmv_->k() != spec.kmv_k) {
      throw DataError("CompactCell: KMV k disagrees with spec");
    }
  }
  if (spec.cms_depth > 0) {
    cell.cms_ = CountMinSketch::parse(value.at("cms"));
    if (cell.cms_->depth() != spec.cms_depth ||
        cell.cms_->width() != spec.cms_width) {
      throw DataError("CompactCell: CMS shape disagrees with spec");
    }
  }
  if (spec.slot_count > 0) {
    const json::Array& counts = value.at("slot_counts").as_array();
    const json::Array& mins = value.at("slot_min_ms").as_array();
    if (counts.size() != spec.slot_count || mins.size() != spec.slot_count) {
      throw DataError("CompactCell: slot array width disagrees with spec");
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::int64_t c = counts[i].as_int();
      if (c < 0 || c > 0xFFFFFFFFLL) {
        throw DataError("CompactCell: slot count out of range");
      }
      cell.slot_counts_[i] = static_cast<std::uint32_t>(c);
      cell.slot_min_ms_[i] = mins[i].as_int();
    }
  }
  return cell;
}

void CompactObservation::validate() const {
  if (cell == nullptr) throw ConfigError("CompactObservation: cell missing");
  if (config == nullptr) throw ConfigError("CompactObservation: config missing");
  if (pool == nullptr) throw ConfigError("CompactObservation: pool missing");
  if (window == nullptr) {
    throw ConfigError("CompactObservation: detection window missing");
  }
  if (window->detected.size() != pool->domains.size()) {
    throw ConfigError("CompactObservation: window/pool size mismatch");
  }
  if (window_length.millis() <= 0) {
    throw ConfigError("CompactObservation: window length must be positive");
  }
  if (assumed_miss_rate &&
      (*assumed_miss_rate < 0.0 || *assumed_miss_rate >= 1.0)) {
    throw ConfigError("CompactObservation: assumed_miss_rate must be in [0,1)");
  }
  if (cell->spec().window_start_ms != window_start.millis() ||
      cell->spec().window_ms != window_length.millis()) {
    throw ConfigError("CompactObservation: cell spec/window geometry mismatch");
  }
}

}  // namespace botmeter::estimators
