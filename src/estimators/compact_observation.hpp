// The bounded-memory observation path (DESIGN.md §13).
//
// A `CompactCell` is the sketch-backed replacement for a buffered
// per-(server, epoch) lookup vector: exact scalar tallies (matched counts,
// first/last timestamps), a KMV sketch of the distinct detected-NXD pool
// positions, an optional count-min sketch of per-position forwarded counts,
// and a fixed grid of time slots holding {NXD count, earliest timestamp} —
// everything the compact-capable estimators consume, in O(k + slots) bytes
// regardless of traffic volume. `CompactObservation` then plays the role of
// `EpochObservation` for the compact path: the cell plus the same family /
// pool / window / TTL context, handed to `Estimator::estimate_with_interval`.
//
// Cells are insertion-order invariant and merge deterministically (sketches
// merge, scalars add, slots add with min-timestamps), so spilling an exact
// buffer into a cell mid-stream, restoring one from a checkpoint, or merging
// shard-local cells all reproduce the cell a single pass would have built.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"
#include "detect/detection_window.hpp"
#include "detect/matcher.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"
#include "dns/record.hpp"
#include "estimators/sketch.hpp"

namespace botmeter::estimators {

class EstimationContext;

/// What a given estimator can do with compact state. `supported` false means
/// the model needs individual lookups (timing, Bernoulli segments) and the
/// compact path must not be enabled for it; the `needs_*` flags size the
/// cell — structures no model asked for are simply absent.
struct CompactSupport {
  bool supported = false;
  bool needs_distinct = false;         // KMV over detected-NXD positions
  bool needs_position_counts = false;  // count-min per-position tallies
  bool needs_time_slots = false;       // slotted NXD timestamps (Poisson)
};

/// Tuning for the compact path; one config serves every cell of a run.
struct CompactObservationConfig {
  /// KMV size: cells stay exact below this many distinct NXD positions;
  /// saturated relative error is 1/sqrt(kmv_k - 2) (~3.2% at 1024).
  std::uint32_t kmv_k = 1024;
  /// Count-min shape for the per-position tally sketch.
  std::uint32_t cms_depth = 4;
  std::uint32_t cms_width = 256;  // power of two
  /// Include the count-min tally even when no estimator asked for it
  /// (per-position forwarded-count diagnostics).
  bool position_counts = false;
  /// Upper bound on time slots per cell; the actual count is derived from
  /// the window length and the negative-TTL activation spacing.
  std::uint32_t max_time_slots = 4096;

  void validate() const;
};

/// The concrete shape of one cell, derived from config + estimator support +
/// the epoch's window geometry. A zero count/size means the structure is
/// absent. Cells serialize their spec, and only equal-spec cells merge.
struct CompactCellSpec {
  std::int64_t window_start_ms = 0;
  std::int64_t window_ms = 0;
  std::uint32_t slot_count = 0;
  std::uint32_t kmv_k = 0;
  std::uint32_t cms_depth = 0;
  std::uint32_t cms_width = 0;

  friend bool operator==(const CompactCellSpec&, const CompactCellSpec&) = default;

  [[nodiscard]] json::Value serialize() const;
  [[nodiscard]] static CompactCellSpec parse(const json::Value& value);
};

/// Derive the cell shape for one epoch. The slot width is chosen so that
/// consecutive kept activations (spaced at least delta_l - slack apart, the
/// Poisson estimator's filter) land in distinct slots: half that spacing,
/// clamped to [1 ms, window] and to at most `max_time_slots` slots.
[[nodiscard]] CompactCellSpec make_compact_spec(
    const CompactObservationConfig& config, const CompactSupport& support,
    TimePoint window_start, Duration window_length, const dns::TtlPolicy& ttl);

/// Bounded sketch state for one (server, epoch) cell. All allocation happens
/// in the constructor, so `memory_bytes()` is constant over the cell's life.
class CompactCell {
 public:
  explicit CompactCell(const CompactCellSpec& spec);

  /// Fold one matched lookup into the cell. Order-invariant.
  void add(const detect::MatchedLookup& lookup);

  /// Fold a whole buffer (the spill path).
  void add_all(std::span<const detect::MatchedLookup> lookups);

  /// Merge another cell built with an identical spec (throws ConfigError on
  /// mismatch). Equivalent to having added both input streams to one cell.
  void merge(const CompactCell& other);

  [[nodiscard]] const CompactCellSpec& spec() const { return spec_; }

  /// Exact scalars.
  [[nodiscard]] std::uint64_t matched() const { return matched_; }
  [[nodiscard]] std::uint64_t nxd_lookups() const { return nxd_lookups_; }
  [[nodiscard]] std::uint64_t valid_lookups() const { return valid_lookups_; }
  [[nodiscard]] std::optional<TimePoint> first_t() const;
  [[nodiscard]] std::optional<TimePoint> last_t() const;

  /// Sketches; null when the spec excluded them.
  [[nodiscard]] const KmvSketch* distinct_nxd() const { return kmv_ ? &*kmv_ : nullptr; }
  [[nodiscard]] const CountMinSketch* position_counts() const {
    return cms_ ? &*cms_ : nullptr;
  }

  /// Time-slot grid (empty spans when slot_count == 0). `slot_min_ms()[i]`
  /// is meaningful only where `slot_counts()[i] > 0`.
  [[nodiscard]] std::span<const std::uint32_t> slot_counts() const {
    return slot_counts_;
  }
  [[nodiscard]] std::span<const std::int64_t> slot_min_ms() const {
    return slot_min_ms_;
  }
  [[nodiscard]] Duration slot_width() const;

  /// Heap + inline footprint; constant after construction.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Deterministic JSON state (spec included; parse is self-contained).
  [[nodiscard]] json::Value serialize() const;
  [[nodiscard]] static CompactCell parse(const json::Value& value);

 private:
  CompactCellSpec spec_;
  std::uint64_t matched_ = 0;
  std::uint64_t nxd_lookups_ = 0;
  std::uint64_t valid_lookups_ = 0;
  std::int64_t first_ms_ = 0;  // valid iff matched_ > 0
  std::int64_t last_ms_ = 0;
  std::optional<KmvSketch> kmv_;
  std::optional<CountMinSketch> cms_;
  std::vector<std::uint32_t> slot_counts_;
  std::vector<std::int64_t> slot_min_ms_;
};

/// The compact counterpart of `EpochObservation`: one cell plus the same
/// analyst-side context. Estimators whose `compact_support().supported` is
/// true accept this via `estimate_with_interval(const CompactObservation&)`
/// and flag which reported statistics became approximate.
struct CompactObservation {
  const CompactCell* cell = nullptr;

  const dga::DgaConfig* config = nullptr;
  const dga::EpochPool* pool = nullptr;
  const detect::DetectionWindow* window = nullptr;
  dns::TtlPolicy ttl;
  TimePoint window_start;
  Duration window_length = days(1);
  std::optional<double> assumed_miss_rate;
  EstimationContext* context = nullptr;

  /// Throws ConfigError if a required field is missing/inconsistent or the
  /// cell's spec disagrees with the stated window geometry.
  void validate() const;
};

}  // namespace botmeter::estimators
