// Authoritative view of the global DNS: which names resolve, and when.
//
// The botmaster registers a handful of pool domains per epoch as C2 servers
// (§III); everything else in the pool is an NXDOMAIN. Registrations carry a
// validity interval so takedown-and-relocate dynamics can be simulated.
// Benign (non-DGA) names can be registered permanently to model background
// enterprise traffic.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "dns/record.hpp"

namespace botmeter::dns {

class AuthoritativeRegistry {
 public:
  /// Register `domain` as resolving within [from, until). Multiple disjoint
  /// registrations of the same name are allowed (re-registration after a
  /// takedown).
  void register_domain(const std::string& domain, TimePoint from, TimePoint until);

  /// Register `domain` as resolving forever (benign infrastructure).
  void register_permanent(const std::string& domain);

  /// Resolve at time `now`: kAddress if a live registration exists,
  /// kNxDomain otherwise.
  [[nodiscard]] Rcode resolve(const std::string& domain, TimePoint now) const;

  [[nodiscard]] std::size_t registered_count() const { return intervals_.size(); }

 private:
  struct Interval {
    TimePoint from;
    TimePoint until;  // exclusive; TimePoint{INT64_MAX} means permanent
  };
  std::unordered_map<std::string, std::vector<Interval>> intervals_;
};

}  // namespace botmeter::dns
