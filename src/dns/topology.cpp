#include "dns/topology.hpp"

namespace botmeter::dns {

Network::Network(std::size_t server_count, TtlPolicy ttl,
                 Duration timestamp_granularity)
    : vantage_(timestamp_granularity) {
  if (server_count == 0) throw ConfigError("Network: need at least one local server");
  ttl.validate();
  resolvers_.reserve(server_count);
  for (std::size_t i = 0; i < server_count; ++i) {
    resolvers_.emplace_back(ServerId{static_cast<std::uint32_t>(i)}, ttl,
                            authority_, vantage_);
  }
}

CacheStats Network::cache_stats() const {
  CacheStats total;
  for (const LocalResolver& r : resolvers_) total += r.cache().stats();
  return total;
}

LocalResolver& Network::resolver(ServerId id) {
  if (id.value() >= resolvers_.size()) {
    throw ConfigError("Network::resolver: unknown server id");
  }
  return resolvers_[id.value()];
}

ServerId Network::server_for_client(ClientId client) const {
  if (assignment_) return assignment_(client);
  return ServerId{client.value() % static_cast<std::uint32_t>(resolvers_.size())};
}

void Network::set_client_assignment(
    std::function<ServerId(ClientId)> assignment) {
  assignment_ = std::move(assignment);
}

Rcode Network::resolve(TimePoint t, ClientId client, const std::string& domain) {
  return resolver(server_for_client(client)).resolve(t, domain);
}

void Network::evict_expired(TimePoint now) {
  for (auto& r : resolvers_) r.evict_expired(now);
}

}  // namespace botmeter::dns
