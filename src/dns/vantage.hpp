// The border-server vantage point (§II-B).
//
// The vantage point sits at the border DNS server and records every lookup
// forwarded to it by lower-level servers as a tuple
// (timestamp t, forwarding server s, domain d). Client identities are NOT
// visible here — that is the central difficulty the estimators address.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dns/ids.hpp"

namespace botmeter::dns {

/// One cache-missed lookup as seen at the border.
struct ForwardedLookup {
  TimePoint timestamp;
  ServerId forwarder;
  std::string domain;

  friend bool operator==(const ForwardedLookup&, const ForwardedLookup&) = default;
};

/// Append-only sink of forwarded lookups, with optional timestamp
/// quantisation to model the coarse collection granularity of real traces
/// (100 ms in the synthetic experiments, 1 s in the enterprise dataset).
class VantagePoint {
 public:
  VantagePoint() = default;
  /// `granularity` <= 0 ms means "record exact timestamps".
  explicit VantagePoint(Duration granularity) : granularity_(granularity) {}

  void record(TimePoint t, ServerId forwarder, std::string domain);

  [[nodiscard]] const std::vector<ForwardedLookup>& stream() const { return stream_; }
  [[nodiscard]] std::size_t size() const { return stream_.size(); }
  void clear() { stream_.clear(); }

  /// Move the accumulated stream out (the harness drains per-epoch).
  [[nodiscard]] std::vector<ForwardedLookup> take();

 private:
  Duration granularity_{0};
  std::vector<ForwardedLookup> stream_;
};

}  // namespace botmeter::dns
