// The border-server vantage point (§II-B).
//
// The vantage point sits at the border DNS server and records every lookup
// forwarded to it by lower-level servers as a tuple
// (timestamp t, forwarding server s, domain d). Client identities are NOT
// visible here — that is the central difficulty the estimators address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "dns/ids.hpp"

namespace botmeter::dns {

/// One cache-missed lookup as seen at the border.
struct ForwardedLookup {
  TimePoint timestamp;
  ServerId forwarder;
  std::string domain;

  friend bool operator==(const ForwardedLookup&, const ForwardedLookup&) = default;
};

/// Columnar (structure-of-arrays) view of a batch of forwarded lookups —
/// the zero-copy unit of the binary hot path (trace::BlockReader,
/// VantagePoint::drain_block, stream::StreamEngine::ingest_block). The
/// `domain` column holds interned ids into a string table that travels
/// beside the view; ids are stable for the lifetime of whichever component
/// owns the table, so consumers resolve each distinct domain exactly once
/// and replay the result per tuple. All three spans have equal length and
/// are only valid for the duration of the producing call.
struct LookupColumns {
  std::span<const std::int64_t> t_ms;
  std::span<const std::uint32_t> server;
  std::span<const std::uint32_t> domain;

  [[nodiscard]] std::size_t size() const { return t_ms.size(); }
};

/// Append-only sink of forwarded lookups, with optional timestamp
/// quantisation to model the coarse collection granularity of real traces
/// (100 ms in the synthetic experiments, 1 s in the enterprise dataset).
///
/// Two consumption modes:
///   - *batch* (default): lookups accumulate into an internal vector that
///     callers read via stream() or move out via take();
///   - *tap* (set_sink): every record() is handed to a callback in arrival
///     order and nothing is buffered — the bounded-memory path long-horizon
///     monitors use to feed the streaming engine (src/stream/) without ever
///     materialising the full lookup stream.
class VantagePoint {
 public:
  using Sink = std::function<void(const ForwardedLookup&)>;

  VantagePoint() = default;
  /// `granularity` <= 0 ms means "record exact timestamps".
  explicit VantagePoint(Duration granularity) : granularity_(granularity) {}

  void record(TimePoint t, ServerId forwarder, std::string domain);

  /// Install (or, with a null sink, remove) the tap. Timestamp quantisation
  /// still applies before the callback sees a tuple, so a tapped consumer
  /// observes exactly the stream a batch caller would. Installing a sink
  /// does not disturb already-buffered lookups; drain or take them first.
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool has_sink() const { return static_cast<bool>(sink_); }

  [[nodiscard]] const std::vector<ForwardedLookup>& stream() const { return stream_; }
  [[nodiscard]] std::size_t size() const { return stream_.size(); }
  void clear() { stream_.clear(); }

  /// Move the accumulated stream out (the harness drains per-epoch).
  [[nodiscard]] std::vector<ForwardedLookup> take();

  /// Pull-batch drain: hand the buffered lookups to `consume` as one span,
  /// then clear the buffer. Returns the number of lookups handed over.
  /// The span is only valid during the call.
  std::size_t drain(
      const std::function<void(std::span<const ForwardedLookup>)>& consume);

  /// Columnar drain: intern the buffered domains into a per-vantage-point
  /// string table (ids are stable across drains for the lifetime of this
  /// VantagePoint) and hand `consume` the column view plus the full table,
  /// then clear the buffer. Tuple order and values are identical to drain();
  /// only the representation changes. The column spans are valid during the
  /// call; the table reference stays valid (and only grows) until the
  /// VantagePoint dies. Returns the number of lookups handed over.
  std::size_t drain_block(
      const std::function<void(const LookupColumns&,
                               std::span<const std::string>)>& consume);

  /// Distinct domains interned by drain_block so far.
  [[nodiscard]] std::size_t interned_domain_count() const {
    return domain_table_.size();
  }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  Duration granularity_{0};
  std::vector<ForwardedLookup> stream_;
  Sink sink_;

  // drain_block state: the append-only intern table plus reusable column
  // buffers (no per-drain allocation once warm).
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      intern_;
  std::vector<std::string> domain_table_;
  std::vector<std::int64_t> col_t_ms_;
  std::vector<std::uint32_t> col_server_;
  std::vector<std::uint32_t> col_domain_;
};

}  // namespace botmeter::dns
