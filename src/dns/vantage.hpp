// The border-server vantage point (§II-B).
//
// The vantage point sits at the border DNS server and records every lookup
// forwarded to it by lower-level servers as a tuple
// (timestamp t, forwarding server s, domain d). Client identities are NOT
// visible here — that is the central difficulty the estimators address.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dns/ids.hpp"

namespace botmeter::dns {

/// One cache-missed lookup as seen at the border.
struct ForwardedLookup {
  TimePoint timestamp;
  ServerId forwarder;
  std::string domain;

  friend bool operator==(const ForwardedLookup&, const ForwardedLookup&) = default;
};

/// Append-only sink of forwarded lookups, with optional timestamp
/// quantisation to model the coarse collection granularity of real traces
/// (100 ms in the synthetic experiments, 1 s in the enterprise dataset).
///
/// Two consumption modes:
///   - *batch* (default): lookups accumulate into an internal vector that
///     callers read via stream() or move out via take();
///   - *tap* (set_sink): every record() is handed to a callback in arrival
///     order and nothing is buffered — the bounded-memory path long-horizon
///     monitors use to feed the streaming engine (src/stream/) without ever
///     materialising the full lookup stream.
class VantagePoint {
 public:
  using Sink = std::function<void(const ForwardedLookup&)>;

  VantagePoint() = default;
  /// `granularity` <= 0 ms means "record exact timestamps".
  explicit VantagePoint(Duration granularity) : granularity_(granularity) {}

  void record(TimePoint t, ServerId forwarder, std::string domain);

  /// Install (or, with a null sink, remove) the tap. Timestamp quantisation
  /// still applies before the callback sees a tuple, so a tapped consumer
  /// observes exactly the stream a batch caller would. Installing a sink
  /// does not disturb already-buffered lookups; drain or take them first.
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool has_sink() const { return static_cast<bool>(sink_); }

  [[nodiscard]] const std::vector<ForwardedLookup>& stream() const { return stream_; }
  [[nodiscard]] std::size_t size() const { return stream_.size(); }
  void clear() { stream_.clear(); }

  /// Move the accumulated stream out (the harness drains per-epoch).
  [[nodiscard]] std::vector<ForwardedLookup> take();

  /// Pull-batch drain: hand the buffered lookups to `consume` as one span,
  /// then clear the buffer. Returns the number of lookups handed over.
  /// The span is only valid during the call.
  std::size_t drain(
      const std::function<void(std::span<const ForwardedLookup>)>& consume);

 private:
  Duration granularity_{0};
  std::vector<ForwardedLookup> stream_;
  Sink sink_;
};

}  // namespace botmeter::dns
