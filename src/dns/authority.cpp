#include "dns/authority.hpp"

#include <limits>

#include "common/error.hpp"

namespace botmeter::dns {

void AuthoritativeRegistry::register_domain(const std::string& domain,
                                            TimePoint from, TimePoint until) {
  if (domain.empty()) throw ConfigError("register_domain: empty domain name");
  if (until <= from) throw ConfigError("register_domain: empty validity interval");
  intervals_[domain].push_back(Interval{from, until});
}

void AuthoritativeRegistry::register_permanent(const std::string& domain) {
  register_domain(domain, TimePoint{std::numeric_limits<std::int64_t>::min()},
                  TimePoint{std::numeric_limits<std::int64_t>::max()});
}

Rcode AuthoritativeRegistry::resolve(const std::string& domain,
                                     TimePoint now) const {
  auto it = intervals_.find(domain);
  if (it == intervals_.end()) return Rcode::kNxDomain;
  for (const Interval& iv : it->second) {
    if (now >= iv.from && now < iv.until) return Rcode::kAddress;
  }
  return Rcode::kNxDomain;
}

}  // namespace botmeter::dns
