#include "dns/cache.hpp"

namespace botmeter::dns {

std::optional<Rcode> DnsCache::lookup(const std::string& domain, TimePoint now) {
  auto it = entries_.find(domain);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (now >= it->second.expires_at) {
    entries_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.rcode;
}

void DnsCache::insert(const std::string& domain, Rcode rcode, TimePoint now,
                      Duration ttl) {
  entries_[domain] = Entry{rcode, now + ttl};
}

void DnsCache::evict_expired(TimePoint now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now >= it->second.expires_at) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void DnsCache::clear() { entries_.clear(); }

}  // namespace botmeter::dns
