#include "dns/cache.hpp"

namespace botmeter::dns {

std::optional<Rcode> DnsCache::lookup(const std::string& domain, TimePoint now) {
  Shard& s = shards_[shard_of(domain)];
  auto it = s.entries_.find(domain);
  if (it == s.entries_.end()) {
    ++s.misses_;
    return std::nullopt;
  }
  if (now >= it->second.expires_at) {
    s.entries_.erase(it);
    ++s.misses_;
    ++s.evictions_;
    return std::nullopt;
  }
  ++s.hits_;
  return it->second.rcode;
}

void DnsCache::insert(const std::string& domain, Rcode rcode, TimePoint now,
                      Duration ttl) {
  shards_[shard_of(domain)].entries_[domain] = Entry{rcode, now + ttl};
}

void DnsCache::evict_expired(TimePoint now) {
  for (Shard& s : shards_) {
    for (auto it = s.entries_.begin(); it != s.entries_.end();) {
      if (now >= it->second.expires_at) {
        it = s.entries_.erase(it);
        ++s.evictions_;
      } else {
        ++it;
      }
    }
  }
}

void DnsCache::clear() {
  for (Shard& s : shards_) s.entries_.clear();
}

std::size_t DnsCache::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.entries_.size();
  return total;
}

std::uint64_t DnsCache::hits() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.hits_;
  return total;
}

std::uint64_t DnsCache::misses() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.misses_;
  return total;
}

std::uint64_t DnsCache::evictions() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.evictions_;
  return total;
}

CacheStats DnsCache::stats() const {
  CacheStats total;
  for (const Shard& s : shards_) {
    total += CacheStats{s.hits_, s.misses_, s.evictions_, s.entries_.size()};
  }
  return total;
}

}  // namespace botmeter::dns
