// Positive/negative DNS cache with TTL expiry.
//
// Models the record store of a caching-and-forwarding local DNS server
// (§II-A): previously-seen responses — valid addresses *and* NXDOMAINs — are
// answered locally until their TTL lapses; only misses are forwarded
// upstream. This cache is exactly what "masks" repeated DGA lookups from the
// vantage point and motivates the Poisson estimator.
//
// Storage is split into kShardCount shards keyed by a fixed hash of the
// domain, so that the parallel batch replay (botnet/simulator.cpp) can have
// concurrent workers operate on disjoint shards of the *same* cache without
// locks: the cache state touched by a query depends only on its domain, and
// two domains in different shards share no mutable state. The shard map is a
// pure function of the domain — never of the thread count — so results stay
// bit-identical however the shards are scheduled.
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/time.hpp"
#include "dns/record.hpp"

namespace botmeter::dns {

/// Point-in-time accounting snapshot of a cache (or a sum over several).
/// hits/misses/evictions are monotonic; `entries` is the live entry count at
/// snapshot time.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    return *this;
  }

  /// Delta between two snapshots of the same cache: the monotonic counters
  /// subtract; `entries` keeps the newer snapshot's live count.
  [[nodiscard]] CacheStats since(const CacheStats& earlier) const {
    return CacheStats{hits - earlier.hits, misses - earlier.misses,
                      evictions - earlier.evictions, entries};
  }

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

class DnsCache {
 public:
  /// A cached answer: what it was and until when it may be served. A
  /// freshly created slot (see Shard::slot) starts already expired, i.e. a
  /// guaranteed miss.
  struct Entry {
    Rcode rcode = Rcode::kNxDomain;
    TimePoint expires_at{std::numeric_limits<std::int64_t>::min()};
  };

  static constexpr std::size_t kShardCount = 64;

  /// Which shard owns `domain`. Stable within a process; used both for the
  /// internal routing and by the batch replay to partition its workers.
  [[nodiscard]] static std::size_t shard_of(std::string_view domain) {
    return std::hash<std::string_view>{}(domain) & (kShardCount - 1);
  }

  /// One shard: the entries (and hit/miss accounting) for the domains that
  /// hash into it. Operations on distinct shards are safe to run
  /// concurrently; operations within one shard are not synchronised.
  class Shard {
   public:
    /// Stable pointer to the entry for `domain`, created expired if absent.
    /// `domain` must hash to this shard. The pointer stays valid until the
    /// entry is erased (lookup eviction, evict_expired, clear) — the batch
    /// replay only holds it across lookup_slot/insert_slot, which never
    /// erase.
    [[nodiscard]] Entry* slot(const std::string& domain) {
      return &entries_[domain];
    }

    /// Slot-based hit check: like DnsCache::lookup but without re-hashing
    /// the domain, and a stale entry is left in place (the caller
    /// immediately overwrites it via insert_slot after resolving upstream).
    [[nodiscard]] std::optional<Rcode> lookup_slot(Entry& e, TimePoint now) {
      if (now < e.expires_at) {
        ++hits_;
        return e.rcode;
      }
      ++misses_;
      return std::nullopt;
    }

    static void insert_slot(Entry& e, Rcode rcode, TimePoint now, Duration ttl) {
      e = Entry{rcode, now + ttl};
    }

   private:
    friend class DnsCache;
    std::unordered_map<std::string, Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
  };

  [[nodiscard]] Shard& shard(std::size_t s) { return shards_[s]; }

  /// Look up `domain` at simulated time `now`. A live entry is returned and
  /// counted as a hit; a stale entry is evicted and treated as a miss.
  [[nodiscard]] std::optional<Rcode> lookup(const std::string& domain, TimePoint now);

  /// Store the upstream answer received at `now`, valid for `ttl`.
  /// Overwrites any previous entry for the domain.
  void insert(const std::string& domain, Rcode rcode, TimePoint now, Duration ttl);

  /// Drop every entry whose TTL has lapsed by `now`. The simulator calls this
  /// between epochs to keep long runs bounded; correctness never depends on
  /// it because `lookup` checks expiry itself.
  void evict_expired(TimePoint now);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Entries dropped because their TTL lapsed (the lazy erase in lookup()
  /// plus evict_expired() sweeps). clear() does not count — it is a reset,
  /// not an expiry.
  [[nodiscard]] std::uint64_t evictions() const;

  /// All accounting in one snapshot, summed over the shards.
  [[nodiscard]] CacheStats stats() const;

 private:
  std::array<Shard, kShardCount> shards_;
};

}  // namespace botmeter::dns
