// Positive/negative DNS cache with TTL expiry.
//
// Models the record store of a caching-and-forwarding local DNS server
// (§II-A): previously-seen responses — valid addresses *and* NXDOMAINs — are
// answered locally until their TTL lapses; only misses are forwarded
// upstream. This cache is exactly what "masks" repeated DGA lookups from the
// vantage point and motivates the Poisson estimator.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/time.hpp"
#include "dns/record.hpp"

namespace botmeter::dns {

class DnsCache {
 public:
  /// A cached answer: what it was and until when it may be served.
  struct Entry {
    Rcode rcode = Rcode::kNxDomain;
    TimePoint expires_at;  // exclusive: an entry is stale at t >= expires_at
  };

  /// Look up `domain` at simulated time `now`. A live entry is returned and
  /// counted as a hit; a stale entry is evicted and treated as a miss.
  [[nodiscard]] std::optional<Rcode> lookup(const std::string& domain, TimePoint now);

  /// Store the upstream answer received at `now`, valid for `ttl`.
  /// Overwrites any previous entry for the domain.
  void insert(const std::string& domain, Rcode rcode, TimePoint now, Duration ttl);

  /// Drop every entry whose TTL has lapsed by `now`. The simulator calls this
  /// between epochs to keep long runs bounded; correctness never depends on
  /// it because `lookup` checks expiry itself.
  void evict_expired(TimePoint now);

  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace botmeter::dns
