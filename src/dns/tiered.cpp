#include "dns/tiered.hpp"

#include "common/error.hpp"

namespace botmeter::dns {

TieredNetwork::TieredNetwork(std::size_t local_count, std::size_t regional_count,
                             TtlPolicy local_ttl, TtlPolicy regional_ttl,
                             Duration timestamp_granularity)
    : vantage_(timestamp_granularity),
      local_ttl_(local_ttl),
      regional_ttl_(regional_ttl) {
  if (local_count == 0 || regional_count == 0) {
    throw ConfigError("TieredNetwork: need at least one server per tier");
  }
  if (regional_count > local_count) {
    throw ConfigError("TieredNetwork: more regional than local servers");
  }
  local_ttl_.validate();
  regional_ttl_.validate();
  local_caches_.resize(local_count);
  regional_caches_.resize(regional_count);
}

ServerId TieredNetwork::local_for_client(ClientId client) const {
  return ServerId{client.value() %
                  static_cast<std::uint32_t>(local_caches_.size())};
}

ServerId TieredNetwork::regional_for_local(ServerId local) const {
  if (local.value() >= local_caches_.size()) {
    throw ConfigError("TieredNetwork: unknown local server");
  }
  return ServerId{local.value() %
                  static_cast<std::uint32_t>(regional_caches_.size())};
}

CacheStats TieredNetwork::local_cache_stats() const {
  CacheStats total;
  for (const DnsCache& cache : local_caches_) total += cache.stats();
  return total;
}

CacheStats TieredNetwork::regional_cache_stats() const {
  CacheStats total;
  for (const DnsCache& cache : regional_caches_) total += cache.stats();
  return total;
}

Rcode TieredNetwork::resolve(TimePoint t, ClientId client,
                             const std::string& domain) {
  const ServerId local = local_for_client(client);
  DnsCache& local_cache = local_caches_[local.value()];
  if (auto cached = local_cache.lookup(domain, t)) return *cached;

  const ServerId regional = regional_for_local(local);
  DnsCache& regional_cache = regional_caches_[regional.value()];
  if (auto cached = regional_cache.lookup(domain, t)) {
    // Served by the concentrator: invisible at the border, but the local
    // resolver caches the answer under its own policy.
    local_cache.insert(domain, *cached, t, local_ttl_.for_rcode(*cached));
    return *cached;
  }

  vantage_.record(t, regional, domain);
  const Rcode answer = authority_.resolve(domain, t);
  regional_cache.insert(domain, answer, t, regional_ttl_.for_rcode(answer));
  local_cache.insert(domain, answer, t, local_ttl_.for_rcode(answer));
  return answer;
}

void TieredNetwork::evict_expired(TimePoint now) {
  for (auto& cache : local_caches_) cache.evict_expired(now);
  for (auto& cache : regional_caches_) cache.evict_expired(now);
}

Rcode TieredNetwork::Replay::resolve(TimePoint t, ServerId route,
                                     std::uint32_t pos, std::size_t shard,
                                     std::size_t query_index,
                                     std::vector<ReplayMiss>& sink) {
  const std::string& domain = (*domains_)[pos];
  const ServerId local = route;
  if (local.value() >= net_->local_count()) {
    throw ConfigError("TieredNetwork::resolve: unknown local server id");
  }
  DnsCache::Shard& local_shard =
      net_->local_caches_[local.value()].shard(shard);
  DnsCache::Entry*& local_slot =
      local_slots_[static_cast<std::size_t>(pos) * net_->local_count() +
                   local.value()];
  if (local_slot == nullptr) local_slot = local_shard.slot(domain);
  if (auto cached = local_shard.lookup_slot(*local_slot, t)) return *cached;

  const ServerId regional = net_->regional_for_local(local);
  DnsCache::Shard& regional_shard =
      net_->regional_caches_[regional.value()].shard(shard);
  DnsCache::Entry*& regional_slot =
      regional_slots_[static_cast<std::size_t>(pos) * net_->regional_count() +
                      regional.value()];
  if (regional_slot == nullptr) regional_slot = regional_shard.slot(domain);
  if (auto cached = regional_shard.lookup_slot(*regional_slot, t)) {
    DnsCache::Shard::insert_slot(*local_slot, *cached, t,
                                 net_->local_ttl_.for_rcode(*cached));
    return *cached;
  }

  sink.push_back(ReplayMiss{query_index, t, regional, pos});
  const Rcode answer = net_->authority_.resolve(domain, t);
  DnsCache::Shard::insert_slot(*regional_slot, answer, t,
                               net_->regional_ttl_.for_rcode(answer));
  DnsCache::Shard::insert_slot(*local_slot, answer, t,
                               net_->local_ttl_.for_rcode(answer));
  return answer;
}

}  // namespace botmeter::dns
