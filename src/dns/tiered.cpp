#include "dns/tiered.hpp"

#include "common/error.hpp"

namespace botmeter::dns {

TieredNetwork::TieredNetwork(std::size_t local_count, std::size_t regional_count,
                             TtlPolicy local_ttl, TtlPolicy regional_ttl,
                             Duration timestamp_granularity)
    : vantage_(timestamp_granularity),
      local_ttl_(local_ttl),
      regional_ttl_(regional_ttl) {
  if (local_count == 0 || regional_count == 0) {
    throw ConfigError("TieredNetwork: need at least one server per tier");
  }
  if (regional_count > local_count) {
    throw ConfigError("TieredNetwork: more regional than local servers");
  }
  local_ttl_.validate();
  regional_ttl_.validate();
  local_caches_.resize(local_count);
  regional_caches_.resize(regional_count);
}

ServerId TieredNetwork::local_for_client(ClientId client) const {
  return ServerId{client.value() %
                  static_cast<std::uint32_t>(local_caches_.size())};
}

ServerId TieredNetwork::regional_for_local(ServerId local) const {
  if (local.value() >= local_caches_.size()) {
    throw ConfigError("TieredNetwork: unknown local server");
  }
  return ServerId{local.value() %
                  static_cast<std::uint32_t>(regional_caches_.size())};
}

Rcode TieredNetwork::resolve(TimePoint t, ClientId client,
                             const std::string& domain) {
  const ServerId local = local_for_client(client);
  DnsCache& local_cache = local_caches_[local.value()];
  if (auto cached = local_cache.lookup(domain, t)) return *cached;

  const ServerId regional = regional_for_local(local);
  DnsCache& regional_cache = regional_caches_[regional.value()];
  if (auto cached = regional_cache.lookup(domain, t)) {
    // Served by the concentrator: invisible at the border, but the local
    // resolver caches the answer under its own policy.
    local_cache.insert(domain, *cached, t, local_ttl_.for_rcode(*cached));
    return *cached;
  }

  vantage_.record(t, regional, domain);
  const Rcode answer = authority_.resolve(domain, t);
  regional_cache.insert(domain, answer, t, regional_ttl_.for_rcode(answer));
  local_cache.insert(domain, answer, t, local_ttl_.for_rcode(answer));
  return answer;
}

void TieredNetwork::evict_expired(TimePoint now) {
  for (auto& cache : local_caches_) cache.evict_expired(now);
  for (auto& cache : regional_caches_) cache.evict_expired(now);
}

}  // namespace botmeter::dns
