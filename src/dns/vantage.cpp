#include "dns/vantage.hpp"

#include <utility>

namespace botmeter::dns {

void VantagePoint::record(TimePoint t, ServerId forwarder, std::string domain) {
  if (granularity_.millis() > 0) t = quantize(t, granularity_);
  if (sink_) {
    sink_(ForwardedLookup{t, forwarder, std::move(domain)});
    return;
  }
  stream_.push_back(ForwardedLookup{t, forwarder, std::move(domain)});
}

std::vector<ForwardedLookup> VantagePoint::take() {
  return std::exchange(stream_, {});
}

std::size_t VantagePoint::drain(
    const std::function<void(std::span<const ForwardedLookup>)>& consume) {
  const std::size_t n = stream_.size();
  if (n != 0) consume(std::span<const ForwardedLookup>{stream_});
  stream_.clear();
  return n;
}

}  // namespace botmeter::dns
