#include "dns/vantage.hpp"

#include <utility>

namespace botmeter::dns {

void VantagePoint::record(TimePoint t, ServerId forwarder, std::string domain) {
  if (granularity_.millis() > 0) t = quantize(t, granularity_);
  stream_.push_back(ForwardedLookup{t, forwarder, std::move(domain)});
}

std::vector<ForwardedLookup> VantagePoint::take() {
  return std::exchange(stream_, {});
}

}  // namespace botmeter::dns
