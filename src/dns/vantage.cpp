#include "dns/vantage.hpp"

#include <utility>

namespace botmeter::dns {

void VantagePoint::record(TimePoint t, ServerId forwarder, std::string domain) {
  if (granularity_.millis() > 0) t = quantize(t, granularity_);
  if (sink_) {
    sink_(ForwardedLookup{t, forwarder, std::move(domain)});
    return;
  }
  stream_.push_back(ForwardedLookup{t, forwarder, std::move(domain)});
}

std::vector<ForwardedLookup> VantagePoint::take() {
  return std::exchange(stream_, {});
}

std::size_t VantagePoint::drain(
    const std::function<void(std::span<const ForwardedLookup>)>& consume) {
  const std::size_t n = stream_.size();
  if (n != 0) consume(std::span<const ForwardedLookup>{stream_});
  stream_.clear();
  return n;
}

std::size_t VantagePoint::drain_block(
    const std::function<void(const LookupColumns&,
                             std::span<const std::string>)>& consume) {
  const std::size_t n = stream_.size();
  if (n == 0) return 0;
  col_t_ms_.clear();
  col_server_.clear();
  col_domain_.clear();
  col_t_ms_.reserve(n);
  col_server_.reserve(n);
  col_domain_.reserve(n);
  for (const ForwardedLookup& lookup : stream_) {
    col_t_ms_.push_back(lookup.timestamp.millis());
    col_server_.push_back(lookup.forwarder.value());
    const auto it = intern_.find(std::string_view{lookup.domain});
    if (it != intern_.end()) {
      col_domain_.push_back(it->second);
    } else {
      const auto id = static_cast<std::uint32_t>(domain_table_.size());
      intern_.emplace(lookup.domain, id);
      domain_table_.push_back(lookup.domain);
      col_domain_.push_back(id);
    }
  }
  consume(LookupColumns{col_t_ms_, col_server_, col_domain_},
          std::span<const std::string>{domain_table_});
  stream_.clear();
  return n;
}

}  // namespace botmeter::dns
