// A two-tier caching hierarchy: clients -> local resolvers -> regional
// resolvers -> border vantage point.
//
// The paper's setting (Fig. 1) has one caching layer below the vantage
// point. Real enterprise DNS often stacks several: site resolvers forward
// to regional concentrators that cache too. Two consequences matter for
// population estimation, and `bench_ablation_hierarchy` quantifies both:
//
//  1. *Attribution coarsens*: the border sees the regional server as the
//     forwarder, so the landscape can only be charted per region.
//  2. *Masking compounds*: a lookup served from the regional cache never
//     reaches the border even though it missed the local cache; the
//     effective negative TTL at the vantage point is the regional one
//     (a local-cache hit can only occur while the regional entry is also
//     live, when the TTLs are equal).
//
// The estimators remain unbiased at regional granularity provided they are
// configured with the *regional* TTL — that is the actionable guidance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dns/authority.hpp"
#include "dns/cache.hpp"
#include "dns/ids.hpp"
#include "dns/record.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

class TieredNetwork {
 public:
  /// `local_count` site resolvers are spread round-robin over
  /// `regional_count` regional resolvers; clients round-robin over locals.
  TieredNetwork(std::size_t local_count, std::size_t regional_count,
                TtlPolicy local_ttl, TtlPolicy regional_ttl,
                Duration timestamp_granularity);

  TieredNetwork(const TieredNetwork&) = delete;
  TieredNetwork& operator=(const TieredNetwork&) = delete;

  [[nodiscard]] AuthoritativeRegistry& authority() { return authority_; }
  [[nodiscard]] VantagePoint& vantage() { return vantage_; }
  [[nodiscard]] const VantagePoint& vantage() const { return vantage_; }

  [[nodiscard]] std::size_t local_count() const { return local_caches_.size(); }
  [[nodiscard]] std::size_t regional_count() const {
    return regional_caches_.size();
  }

  [[nodiscard]] ServerId local_for_client(ClientId client) const;
  [[nodiscard]] ServerId regional_for_local(ServerId local) const;

  /// Resolve through both cache tiers; only a miss at both reaches the
  /// border, recorded with the *regional* server as forwarder.
  Rcode resolve(TimePoint t, ClientId client, const std::string& domain);

  void evict_expired(TimePoint now);

 private:
  AuthoritativeRegistry authority_;
  VantagePoint vantage_;
  TtlPolicy local_ttl_;
  TtlPolicy regional_ttl_;
  std::vector<DnsCache> local_caches_;
  std::vector<DnsCache> regional_caches_;
};

}  // namespace botmeter::dns
