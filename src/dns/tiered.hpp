// A two-tier caching hierarchy: clients -> local resolvers -> regional
// resolvers -> border vantage point.
//
// The paper's setting (Fig. 1) has one caching layer below the vantage
// point. Real enterprise DNS often stacks several: site resolvers forward
// to regional concentrators that cache too. Two consequences matter for
// population estimation, and `bench_ablation_hierarchy` quantifies both:
//
//  1. *Attribution coarsens*: the border sees the regional server as the
//     forwarder, so the landscape can only be charted per region.
//  2. *Masking compounds*: a lookup served from the regional cache never
//     reaches the border even though it missed the local cache; the
//     effective negative TTL at the vantage point is the regional one
//     (a local-cache hit can only occur while the regional entry is also
//     live, when the TTLs are equal).
//
// The estimators remain unbiased at regional granularity provided they are
// configured with the *regional* TTL — that is the actionable guidance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dns/authority.hpp"
#include "dns/cache.hpp"
#include "dns/ids.hpp"
#include "dns/record.hpp"
#include "dns/replay.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

class TieredNetwork {
 public:
  /// `local_count` site resolvers are spread round-robin over
  /// `regional_count` regional resolvers; clients round-robin over locals.
  TieredNetwork(std::size_t local_count, std::size_t regional_count,
                TtlPolicy local_ttl, TtlPolicy regional_ttl,
                Duration timestamp_granularity);

  TieredNetwork(const TieredNetwork&) = delete;
  TieredNetwork& operator=(const TieredNetwork&) = delete;

  [[nodiscard]] AuthoritativeRegistry& authority() { return authority_; }
  [[nodiscard]] VantagePoint& vantage() { return vantage_; }
  [[nodiscard]] const VantagePoint& vantage() const { return vantage_; }

  [[nodiscard]] std::size_t local_count() const { return local_caches_.size(); }
  [[nodiscard]] std::size_t regional_count() const {
    return regional_caches_.size();
  }

  /// Per-tier cache accounting (observability), summed over the tier.
  [[nodiscard]] CacheStats local_cache_stats() const;
  [[nodiscard]] CacheStats regional_cache_stats() const;

  [[nodiscard]] ServerId local_for_client(ClientId client) const;
  [[nodiscard]] ServerId regional_for_local(ServerId local) const;

  /// The forwarder id the border attributes this client's misses to — its
  /// regional resolver. Mirrors Network::server_for_client so the shared
  /// simulation core can chart both topologies uniformly.
  [[nodiscard]] ServerId server_for_client(ClientId client) const {
    return regional_for_local(local_for_client(client));
  }

  /// The resolver whose cache serves this client first — its *local* server.
  /// The batch replay routes by this id and derives the regional tier from
  /// it; callers precompute it once per client.
  [[nodiscard]] ServerId route_for_client(ClientId client) const {
    return local_for_client(client);
  }

  /// Resolve through both cache tiers; only a miss at both reaches the
  /// border, recorded with the *regional* server as forwarder.
  Rcode resolve(TimePoint t, ClientId client, const std::string& domain);

  void evict_expired(TimePoint now);

  /// Batch-replay session; see Network::Replay for the contract. Both tiers'
  /// state for a domain lives in the same cache shard, so the shard
  /// partition keeps concurrent workers disjoint across the whole hierarchy.
  class Replay {
   public:
    Replay(TieredNetwork& net, const std::vector<std::string>& domains)
        : net_(&net),
          domains_(&domains),
          local_slots_(domains.size() * net.local_count(), nullptr),
          regional_slots_(domains.size() * net.regional_count(), nullptr) {}

    /// `route` is the client's local server as returned by route_for_client.
    Rcode resolve(TimePoint t, ServerId route, std::uint32_t pos,
                  std::size_t shard, std::size_t query_index,
                  std::vector<ReplayMiss>& sink);

   private:
    TieredNetwork* net_;
    const std::vector<std::string>* domains_;
    std::vector<DnsCache::Entry*> local_slots_;
    std::vector<DnsCache::Entry*> regional_slots_;
  };

 private:
  AuthoritativeRegistry authority_;
  VantagePoint vantage_;
  TtlPolicy local_ttl_;
  TtlPolicy regional_ttl_;
  std::vector<DnsCache> local_caches_;
  std::vector<DnsCache> regional_caches_;
};

}  // namespace botmeter::dns
