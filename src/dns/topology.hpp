// The hierarchical DNS topology of Fig. 1: a set of local
// caching-and-forwarding servers behind one border server / vantage point,
// and a static assignment of clients to local servers.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "dns/authority.hpp"
#include "dns/ids.hpp"
#include "dns/resolver.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

class Network {
 public:
  /// Build a network of `server_count` local servers sharing one TTL policy.
  /// `timestamp_granularity` applies to the vantage-point recording; pass
  /// Duration{0} for exact timestamps.
  Network(std::size_t server_count, TtlPolicy ttl, Duration timestamp_granularity);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] AuthoritativeRegistry& authority() { return authority_; }
  [[nodiscard]] const AuthoritativeRegistry& authority() const { return authority_; }

  [[nodiscard]] VantagePoint& vantage() { return vantage_; }
  [[nodiscard]] const VantagePoint& vantage() const { return vantage_; }

  [[nodiscard]] std::size_t server_count() const { return resolvers_.size(); }
  [[nodiscard]] LocalResolver& resolver(ServerId id);

  /// Client placement. Defaults to deterministic round-robin; real
  /// deployments pin each device to the resolver of its site, which a custom
  /// assignment can model (e.g. a skewed infection landscape).
  [[nodiscard]] ServerId server_for_client(ClientId client) const;

  /// Override the placement. The function must return an id below
  /// server_count() for every client it will see; out-of-range results are
  /// rejected at resolve time.
  void set_client_assignment(std::function<ServerId(ClientId)> assignment);

  /// Resolve on behalf of `client` at time `t` through its local server.
  Rcode resolve(TimePoint t, ClientId client, const std::string& domain);

  void evict_expired(TimePoint now);

 private:
  AuthoritativeRegistry authority_;
  VantagePoint vantage_;
  std::vector<LocalResolver> resolvers_;
  std::function<ServerId(ClientId)> assignment_;  // empty = round-robin
};

}  // namespace botmeter::dns
