// The hierarchical DNS topology of Fig. 1: a set of local
// caching-and-forwarding servers behind one border server / vantage point,
// and a static assignment of clients to local servers.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "dns/authority.hpp"
#include "dns/ids.hpp"
#include "dns/resolver.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

class Network {
 public:
  /// Build a network of `server_count` local servers sharing one TTL policy.
  /// `timestamp_granularity` applies to the vantage-point recording; pass
  /// Duration{0} for exact timestamps.
  Network(std::size_t server_count, TtlPolicy ttl, Duration timestamp_granularity);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] AuthoritativeRegistry& authority() { return authority_; }
  [[nodiscard]] const AuthoritativeRegistry& authority() const { return authority_; }

  [[nodiscard]] VantagePoint& vantage() { return vantage_; }
  [[nodiscard]] const VantagePoint& vantage() const { return vantage_; }

  [[nodiscard]] std::size_t server_count() const { return resolvers_.size(); }
  [[nodiscard]] LocalResolver& resolver(ServerId id);

  /// Cache accounting summed over every local resolver (observability).
  [[nodiscard]] CacheStats cache_stats() const;

  /// Client placement. Defaults to deterministic round-robin; real
  /// deployments pin each device to the resolver of its site, which a custom
  /// assignment can model (e.g. a skewed infection landscape).
  [[nodiscard]] ServerId server_for_client(ClientId client) const;

  /// The resolver whose cache serves this client — the id the batch replay
  /// routes queries by. For the flat topology this is simply the client's
  /// local server (in the tiered topology it is too, with the regional tier
  /// derived from it).
  [[nodiscard]] ServerId route_for_client(ClientId client) const {
    return server_for_client(client);
  }

  /// Override the placement. The function must return an id below
  /// server_count() for every client it will see; out-of-range results are
  /// rejected at resolve time. It must be a pure function of the client id —
  /// the parallel batch replay calls it from concurrent workers.
  void set_client_assignment(std::function<ServerId(ClientId)> assignment);

  /// Resolve on behalf of `client` at time `t` through its local server.
  Rcode resolve(TimePoint t, ClientId client, const std::string& domain);

  void evict_expired(TimePoint now);

  /// Batch-replay session over one epoch's domain pool (positions index into
  /// `domains`). Outcomes are identical to calling Network::resolve() in
  /// query order; the differences are purely mechanical: per-(server, domain)
  /// cache slots are resolved once and then reused (no per-query string
  /// hashing), and border misses are collected into the caller's per-shard
  /// sinks for a later order-restoring merge (dns/replay.hpp). Concurrent
  /// resolve() calls are safe provided each worker only passes positions
  /// whose domain falls in its own cache shard (DnsCache::shard_of).
  class Replay {
   public:
    /// `net` and `domains` must outlive the session; the session must be
    /// dropped before anything erases cache entries (evict_expired/clear).
    Replay(Network& net, const std::vector<std::string>& domains)
        : net_(&net),
          domains_(&domains),
          slots_(domains.size() * net.server_count(), nullptr) {}

    /// `route` is the client's resolver as returned by route_for_client —
    /// precomputed by the caller once per client rather than per query.
    Rcode resolve(TimePoint t, ServerId route, std::uint32_t pos,
                  std::size_t shard, std::size_t query_index,
                  std::vector<ReplayMiss>& sink) {
      const std::size_t server_count = net_->resolvers_.size();
      if (route.value() >= server_count) {
        throw ConfigError("Network::resolver: unknown server id");
      }
      // Pos-major layout: a position belongs to exactly one domain shard, so
      // concurrent workers touch disjoint rows.
      DnsCache::Entry*& slot =
          slots_[static_cast<std::size_t>(pos) * server_count + route.value()];
      return net_->resolvers_[route.value()].resolve_slotted(
          t, (*domains_)[pos], pos, shard, slot, query_index, sink);
    }

   private:
    Network* net_;
    const std::vector<std::string>* domains_;
    std::vector<DnsCache::Entry*> slots_;
  };

 private:
  AuthoritativeRegistry authority_;
  VantagePoint vantage_;
  std::vector<LocalResolver> resolvers_;
  std::function<ServerId(ClientId)> assignment_;  // empty = round-robin
};

}  // namespace botmeter::dns
