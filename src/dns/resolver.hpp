// A caching-and-forwarding local DNS server (§II-A, Fig. 1).
//
// Each client query first consults the server's positive/negative cache.
// Only on a miss is the query forwarded to the border server — where the
// vantage point records it — and resolved against the authoritative
// registry; the answer is then cached under the TTL policy.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "dns/authority.hpp"
#include "dns/cache.hpp"
#include "dns/ids.hpp"
#include "dns/record.hpp"
#include "dns/replay.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

class LocalResolver {
 public:
  /// `authority` and `vantage` must outlive the resolver.
  LocalResolver(ServerId id, TtlPolicy ttl, const AuthoritativeRegistry& authority,
                VantagePoint& vantage);

  /// Resolve `domain` for a client at time `t`. Cache hits are answered
  /// locally (invisible upstream); misses are recorded at the vantage point,
  /// resolved authoritatively, and cached.
  Rcode resolve(TimePoint t, const std::string& domain);

  /// Batch-replay variant of resolve() with identical outcomes: the cache
  /// entry is reached through `slot` (looked up at most once per
  /// (session, domain), then reused — no per-query hashing), and a border
  /// miss is appended to `sink` tagged with `query_index` instead of going
  /// to the vantage point, so per-shard workers can be merged back into
  /// canonical order (see dns/replay.hpp). `shard` must be
  /// DnsCache::shard_of(domain); concurrent calls are safe iff their shards
  /// differ.
  Rcode resolve_slotted(TimePoint t, const std::string& domain,
                        std::uint32_t pool_position, std::size_t shard,
                        DnsCache::Entry*& slot, std::size_t query_index,
                        std::vector<ReplayMiss>& sink);

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] const DnsCache& cache() const { return cache_; }
  [[nodiscard]] const TtlPolicy& ttl() const { return ttl_; }

  /// Housekeeping between epochs; see DnsCache::evict_expired.
  void evict_expired(TimePoint now) { cache_.evict_expired(now); }

 private:
  ServerId id_;
  TtlPolicy ttl_;
  const AuthoritativeRegistry* authority_;
  VantagePoint* vantage_;
  DnsCache cache_;
};

}  // namespace botmeter::dns
