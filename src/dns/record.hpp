// DNS response records and TTL policy.
#pragma once

#include <iosfwd>
#include <ostream>

#include "common/error.hpp"
#include "common/time.hpp"

namespace botmeter::dns {

/// Outcome of a DNS resolution: a valid address record, or NXDOMAIN.
enum class Rcode {
  kAddress,   // domain resolves (a registered C2 domain, or benign traffic)
  kNxDomain,  // non-existent domain
};

[[nodiscard]] constexpr const char* to_string(Rcode r) {
  return r == Rcode::kAddress ? "ADDRESS" : "NXDOMAIN";
}

inline std::ostream& operator<<(std::ostream& os, Rcode r) {
  return os << to_string(r);
}

/// Positive / negative caching durations (§II-B: positive TTLs are typically
/// one to several days, negative TTLs minutes to hours; RFC 2308 / RFC 1912).
struct TtlPolicy {
  Duration positive = days(1);
  Duration negative = hours(2);

  void validate() const {
    if (positive.millis() <= 0 || negative.millis() <= 0) {
      throw ConfigError("TtlPolicy: TTLs must be positive");
    }
  }

  [[nodiscard]] Duration for_rcode(Rcode r) const {
    return r == Rcode::kAddress ? positive : negative;
  }
};

}  // namespace botmeter::dns
