#include "dns/resolver.hpp"

namespace botmeter::dns {

LocalResolver::LocalResolver(ServerId id, TtlPolicy ttl,
                             const AuthoritativeRegistry& authority,
                             VantagePoint& vantage)
    : id_(id), ttl_(ttl), authority_(&authority), vantage_(&vantage) {
  ttl_.validate();
}

Rcode LocalResolver::resolve(TimePoint t, const std::string& domain) {
  if (auto cached = cache_.lookup(domain, t)) return *cached;
  vantage_->record(t, id_, domain);
  const Rcode answer = authority_->resolve(domain, t);
  cache_.insert(domain, answer, t, ttl_.for_rcode(answer));
  return answer;
}

}  // namespace botmeter::dns
