#include "dns/resolver.hpp"

namespace botmeter::dns {

LocalResolver::LocalResolver(ServerId id, TtlPolicy ttl,
                             const AuthoritativeRegistry& authority,
                             VantagePoint& vantage)
    : id_(id), ttl_(ttl), authority_(&authority), vantage_(&vantage) {
  ttl_.validate();
}

Rcode LocalResolver::resolve(TimePoint t, const std::string& domain) {
  if (auto cached = cache_.lookup(domain, t)) return *cached;
  vantage_->record(t, id_, domain);
  const Rcode answer = authority_->resolve(domain, t);
  cache_.insert(domain, answer, t, ttl_.for_rcode(answer));
  return answer;
}

Rcode LocalResolver::resolve_slotted(TimePoint t, const std::string& domain,
                                     std::uint32_t pool_position,
                                     std::size_t shard, DnsCache::Entry*& slot,
                                     std::size_t query_index,
                                     std::vector<ReplayMiss>& sink) {
  DnsCache::Shard& cache_shard = cache_.shard(shard);
  if (slot == nullptr) slot = cache_shard.slot(domain);
  if (auto cached = cache_shard.lookup_slot(*slot, t)) return *cached;
  sink.push_back(ReplayMiss{query_index, t, id_, pool_position});
  const Rcode answer = authority_->resolve(domain, t);
  DnsCache::Shard::insert_slot(*slot, answer, t, ttl_.for_rcode(answer));
  return answer;
}

}  // namespace botmeter::dns
