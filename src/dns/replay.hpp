// Support types for the deterministic parallel batch replay.
//
// The simulation engine replays each epoch's time-sorted query stream
// through the caching network in parallel, partitioned by cache shard
// (DnsCache::shard_of): all cache state a query can touch — across every
// tier — lives in the shard its domain hashes to, so workers on distinct
// shards never share mutable state. Border misses cannot be appended to the
// vantage point from inside the workers without racing on order, so each
// worker collects them (tagged with the query's index in the globally
// sorted stream) and merge_misses() replays them into the vantage point
// serially, in exactly the order a sequential replay would have produced.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dns/ids.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {

/// One border-visible miss produced during a batch replay, tagged with the
/// index of the originating query in the epoch's sorted stream.
struct ReplayMiss {
  std::size_t query_index = 0;
  TimePoint t;
  ServerId forwarder{0};
  std::uint32_t pool_position = 0;
};

/// Merge per-shard miss streams (each already ordered by query_index) into
/// the vantage point in global query order — bit-identical to a sequential
/// replay, independent of how many workers produced them.
inline void merge_misses(VantagePoint& vantage,
                         const std::vector<std::string>& domains,
                         std::vector<std::vector<ReplayMiss>>& per_shard) {
  std::vector<ReplayMiss> all;
  std::size_t total = 0;
  for (const auto& v : per_shard) total += v.size();
  all.reserve(total);
  for (auto& v : per_shard) {
    all.insert(all.end(), v.begin(), v.end());
    v.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const ReplayMiss& a, const ReplayMiss& b) {
              return a.query_index < b.query_index;
            });
  for (const ReplayMiss& m : all) {
    vantage.record(m.t, m.forwarder, domains[m.pool_position]);
  }
}

}  // namespace botmeter::dns
