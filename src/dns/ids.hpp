// Strongly-typed identifiers for the DNS substrate.
//
// Clients, local DNS servers, and pool positions are all small integers at
// heart; tagging them prevents, e.g., passing a client id where a forwarding
// server id is expected — the exact confusion the vantage-point tuple format
// of §II-B invites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace botmeter::dns {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  constexpr auto operator<=>(const Id&) const = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

struct ClientTag {};
struct ServerTag {};

/// A device issuing DNS lookups (an IP address in the paper's traces).
using ClientId = Id<ClientTag>;
/// A local (caching-and-forwarding) DNS server; the "forwarding server s" of
/// the vantage-point tuple.
using ServerId = Id<ServerTag>;

}  // namespace botmeter::dns

template <typename Tag>
struct std::hash<botmeter::dns::Id<Tag>> {
  std::size_t operator()(botmeter::dns::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
