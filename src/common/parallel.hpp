// A small persistent worker pool for deterministic data parallelism.
//
// The simulation engine shards per-epoch work (per-bot query generation,
// chunk sorting, per-domain-shard cache replay) over a fixed number of
// threads. Determinism is preserved by construction: every parallel_for body
// writes only to slots indexed by its own item, the item partition never
// depends on the thread count, and all cross-item merging happens serially
// afterwards in a canonical order. The pool itself therefore makes no
// ordering promises beyond "each index runs exactly once".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace botmeter {

/// Stable process-wide ordinal for the calling thread, assigned on first
/// use from a global counter (the first thread to ask — normally the main
/// thread — gets 0). Trace exports use it as the track id, so spans recorded
/// on a pool worker land on that worker's track rather than the caller's.
/// Never affects any computation: it exists for observability only.
[[nodiscard]] std::uint32_t this_thread_ordinal();

/// Attach a human-readable label to the calling thread's ordinal ("main",
/// "worker-2", ...). WorkerPool labels its threads automatically; tools may
/// label their main thread. Unlabeled ordinals render as "thread-<n>".
void set_this_thread_label(std::string label);
[[nodiscard]] std::string thread_label(std::uint32_t ordinal);

class WorkerPool {
 public:
  /// Whether a requested `thread_count` above the hardware concurrency is
  /// honored or clamped. Clamping is the safe default — oversubscribing
  /// cores only adds scheduling overhead, and no result ever depends on the
  /// thread count. kAllow exists for callers that must *exercise* a specific
  /// count regardless of the machine (determinism regressions asserting
  /// byte-identical output at 8 threads must actually run 8 threads, even in
  /// a single-core CI container).
  enum class Oversubscribe { kClamp, kAllow };

  /// `thread_count` is the total parallelism including the calling thread;
  /// 0 means std::thread::hardware_concurrency(). Counts above the hardware
  /// concurrency are clamped to it unless `oversubscribe` is kAllow.
  /// With an effective count <= 1 no threads are spawned and parallel_for
  /// degrades to a plain loop.
  explicit WorkerPool(std::size_t thread_count = 0,
                      Oversubscribe oversubscribe = Oversubscribe::kClamp);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total parallelism (worker threads + the calling thread).
  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// Invoke body(i) once for every i in [0, n), distributing indices over
  /// the pool (the caller participates). Blocks until all complete. The
  /// first exception thrown by any body is rethrown here; remaining indices
  /// may be skipped once an exception is seen.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop();
  void run_indices(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per batch to wake the workers
  std::size_t active_ = 0;        // workers still running the current batch
  Batch* batch_ = nullptr;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace botmeter
