// Portable software-prefetch hint. Batched hot loops (block ingest, bulk
// domain resolution) touch large tables in data-dependent order; issuing the
// loads a few iterations ahead overlaps the cache misses that otherwise
// serialise the loop. A no-op on compilers without the intrinsic.
#pragma once

namespace botmeter {

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

}  // namespace botmeter
