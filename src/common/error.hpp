// Error types shared across the BotMeter libraries.
//
// All BotMeter exceptions derive from `botmeter::Error` so callers can catch
// the whole family with one handler while still distinguishing configuration
// mistakes from data problems.
#pragma once

#include <stdexcept>
#include <string>

namespace botmeter {

/// Root of the BotMeter exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An invalid or inconsistent configuration value (e.g. a DGA with an empty
/// query pool, a negative TTL, or an estimator applied to the wrong taxonomy
/// cell).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Malformed input data (e.g. an unparseable trace line or out-of-order
/// timestamps where monotonicity is required).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

}  // namespace botmeter
