// Simulated time for the DNS/botnet substrate.
//
// The whole system runs on a discrete simulated clock with millisecond
// resolution. `Duration` and `TimePoint` are distinct strong types so that
// absolute instants and spans cannot be mixed up by accident; the usual
// affine-space arithmetic is provided (point - point = duration,
// point + duration = point, duration +/- duration = duration).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace botmeter {

/// A span of simulated time, in milliseconds. May be negative (a gap
/// computed between out-of-order events), though most APIs require
/// non-negative values and say so.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ms) : ms_(ms) {}

  [[nodiscard]] constexpr std::int64_t millis() const { return ms_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ms_) / 1000.0;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ms_ + o.ms_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ms_ - o.ms_}; }
  constexpr Duration operator-() const { return Duration{-ms_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ms_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ms_ / k}; }
  constexpr Duration& operator+=(Duration o) { ms_ += o.ms_; return *this; }
  constexpr Duration& operator-=(Duration o) { ms_ -= o.ms_; return *this; }

  /// Integer division of two spans (how many `o` fit in `*this`).
  [[nodiscard]] constexpr std::int64_t div(Duration o) const { return ms_ / o.ms_; }
  /// Remainder of `*this` modulo `o` (sign follows the C++ `%` rules).
  [[nodiscard]] constexpr Duration mod(Duration o) const { return Duration{ms_ % o.ms_}; }

 private:
  std::int64_t ms_ = 0;
};

constexpr Duration milliseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration minutes(std::int64_t n) { return Duration{n * 60'000}; }
constexpr Duration hours(std::int64_t n) { return Duration{n * 3'600'000}; }
constexpr Duration days(std::int64_t n) { return Duration{n * 86'400'000}; }

/// An absolute instant on the simulated clock, in milliseconds since the
/// simulation origin (time zero).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ms) : ms_(ms) {}

  [[nodiscard]] constexpr std::int64_t millis() const { return ms_; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ms_ + d.millis()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ms_ - d.millis()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ms_ - o.ms_}; }
  constexpr TimePoint& operator+=(Duration d) { ms_ += d.millis(); return *this; }

 private:
  std::int64_t ms_ = 0;
};

/// Truncate `t` downward to a multiple of `granularity` (used to model the
/// coarse timestamp resolution of collected traces, e.g. the 1-second
/// granularity of the paper's enterprise dataset).
[[nodiscard]] TimePoint quantize(TimePoint t, Duration granularity);

/// Render as "DdHH:MM:SS.mmm" for logs and test diagnostics.
[[nodiscard]] std::string to_string(TimePoint t);
/// Render as a human-readable span, e.g. "2h", "500ms", "1d4h".
[[nodiscard]] std::string to_string(Duration d);

std::ostream& operator<<(std::ostream& os, TimePoint t);
std::ostream& operator<<(std::ostream& os, Duration d);

}  // namespace botmeter
