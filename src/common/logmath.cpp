#include "common/logmath.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace botmeter {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_factorial(std::int64_t n) {
  if (n < 0) throw ConfigError("log_factorial: n must be >= 0");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return kNegInf;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_sum_exp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(std::span<const double> v) {
  double hi = kNegInf;
  for (double x : v) hi = std::max(hi, x);
  if (hi == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

double log1m_exp(double x) {
  if (x > 0.0) throw ConfigError("log1m_exp: argument must be <= 0");
  if (x == 0.0) return kNegInf;
  // Machler (2012): use log(-expm1(x)) near 0, log1p(-exp(x)) otherwise.
  constexpr double kLogHalf = -0.6931471805599453;
  if (x > kLogHalf) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw ConfigError("normal_quantile: p must be in (0,1)");
  }
  // Acklam (2003) rational approximation with central/tail split.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double chi_square_quantile(double p, double k) {
  if (!(k > 0.0)) throw ConfigError("chi_square_quantile: k must be > 0");
  const double z = normal_quantile(p);
  // Wilson-Hilferty: (X/k)^(1/3) approx Normal(1 - 2/(9k), 2/(9k)).
  const double f = 2.0 / (9.0 * k);
  const double cube = 1.0 - f + z * std::sqrt(f);
  if (cube <= 0.0) return 0.0;  // deep lower tail at tiny k
  return k * cube * cube * cube;
}

double poisson_tail(double mean, std::int64_t k) {
  if (mean < 0.0) throw ConfigError("poisson_tail: mean must be >= 0");
  if (k < 0) throw ConfigError("poisson_tail: k must be >= 0");
  if (k == 0) return 1.0;
  if (mean == 0.0) return 0.0;
  // CDF of the first k terms via the pmf recurrence. exp(-mean) underflows
  // to 0 for mean >~ 745, making the tail 1 — the correct limit.
  double pmf = std::exp(-mean);
  double cdf = pmf;
  for (std::int64_t j = 1; j < k; ++j) {
    pmf *= mean / static_cast<double>(j);
    cdf += pmf;
  }
  return std::max(0.0, 1.0 - cdf);
}

LogStirling2::LogStirling2(std::int64_t n_max) : n_max_(n_max) {
  if (n_max < 0) throw ConfigError("LogStirling2: n_max must be >= 0");
  const auto rows = static_cast<std::size_t>(n_max) + 1;
  table_.assign(rows * (rows + 1) / 2, kNegInf);
  table_[0] = 0.0;  // S(0,0) = 1
  for (std::int64_t n = 1; n <= n_max; ++n) {
    for (std::int64_t m = 1; m <= n; ++m) {
      // S(n,m) = m*S(n-1,m) + S(n-1,m-1), all terms non-negative.
      const double a = (m <= n - 1) ? std::log(static_cast<double>(m)) +
                                          table_[index(n - 1, m)]
                                    : kNegInf;
      const double b = table_[index(n - 1, m - 1)];
      table_[index(n, m)] = log_sum_exp(a, b);
    }
  }
}

std::size_t LogStirling2::index(std::int64_t n, std::int64_t m) const {
  return static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) + 1) / 2 +
         static_cast<std::size_t>(m);
}

double LogStirling2::operator()(std::int64_t n, std::int64_t m) const {
  if (n < 0 || n > n_max_) throw ConfigError("LogStirling2: n out of range");
  if (m < 0 || m > n) return kNegInf;
  return table_[index(n, m)];
}

double occupancy_probability(std::int64_t n, std::int64_t l, std::int64_t m,
                             const LogStirling2& stirling) {
  if (l < 1) throw ConfigError("occupancy_probability: l must be >= 1");
  if (n < 0) throw ConfigError("occupancy_probability: n must be >= 0");
  if (m < 0 || m > std::min(n, l)) return 0.0;
  if (n == 0) return m == 0 ? 1.0 : 0.0;
  const double log_p = log_binomial(l, m) + log_factorial(m) + stirling(n, m) -
                       static_cast<double>(n) * std::log(static_cast<double>(l));
  return std::exp(log_p);
}

}  // namespace botmeter
