// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator (activation processes, barrel
// sampling, domain generation, detection-window misses) draw from `Rng`, a
// xoshiro256** generator seeded via SplitMix64. Determinism given a seed is a
// hard requirement: every bench and test pins its seed so results are
// reproducible run-to-run and machine-to-machine.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace botmeter {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mix an arbitrary 64-bit value into a well-distributed hash (one SplitMix64
/// round). Handy for deriving per-entity sub-seeds: `mix64(seed ^ entity_id)`.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Derive the seed of an independent substream identified by two 64-bit
/// coordinates (e.g. epoch and bot id). Every coordinate passes through a
/// full-width avalanche with its own salt and the results are chained, so —
/// unlike bit-packing schemes such as `epoch << 20 | bot` — distinct
/// (a, b) pairs never alias, at any population scale, and negative
/// coordinates (cast to uint64) are handled like any other value.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t root,
                                                  std::uint64_t a,
                                                  std::uint64_t b = 0) {
  // Chained rather than XOR-combined so swapping coordinates, or moving bits
  // between them, cannot cancel out: h <- mix64(h ^ mix64(x_i ^ salt_i)).
  std::uint64_t h = mix64(root ^ 0xD1B54A32D192ED03ULL);
  h = mix64(h ^ mix64(a ^ 0x8CB92BA72F3D8DD7ULL));
  h = mix64(h ^ mix64(b ^ 0x2545F4914F6CDD1DULL));
  return h;
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state. Satisfies
/// `std::uniform_random_bit_generator` so it plugs into <random> if needed,
/// though the members below cover everything this codebase uses.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via four SplitMix64 draws, per the reference implementation.
  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) with Lemire's unbiased multiply-shift
  /// rejection. `bound` must be positive.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential variate with the given rate (events per unit). rate > 0.
  double exponential(double rate);

  /// Standard normal via Marsaglia polar; `normal(mu, sigma)` scales it.
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson variate with the given mean (Knuth for small, normal
  /// approximation clamped at 0 for large means).
  std::uint64_t poisson(double mean);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) uniformly without replacement.
  /// Returns them in random order. Requires k <= n. Uses a partial
  /// Fisher-Yates over an index map so it is O(k) memory for k << n.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                                      std::uint64_t k);

  /// Fork a statistically independent child generator. Used to give each bot
  /// / epoch / trial its own stream so that changing one component's draw
  /// count does not perturb the others.
  [[nodiscard]] Rng fork();

  /// The generator of substream (a, b) of `root` — see stream_seed(). This is
  /// the collision-free way to hand every (epoch, bot) pair its own private
  /// stream, independent of iteration order and of every other stream.
  [[nodiscard]] static Rng stream(std::uint64_t root, std::uint64_t a,
                                  std::uint64_t b = 0) {
    return Rng{stream_seed(root, a, b)};
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  // Cached second variate from the polar method.
  double spare_normal_ = 0.0;
  bool have_spare_normal_ = false;
};

}  // namespace botmeter
