// Log-space combinatorics for the Bernoulli estimator's analytical forms.
//
// The per-segment expectation of Theorem 1 (paper §IV-D) involves binomial
// coefficients and Stirling numbers of the second kind over segment lengths
// of several hundred, which overflow any fixed-width integer. Everything here
// therefore works in log space; probabilities are reassembled with
// log-sum-exp only at the end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace botmeter {

/// Natural log of n! via lgamma. n >= 0.
[[nodiscard]] double log_factorial(std::int64_t n);

/// Natural log of C(n, k). Returns -inf when k < 0 or k > n (coefficient 0).
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// log(exp(a) + exp(b)) without overflow. Either argument may be -inf.
[[nodiscard]] double log_sum_exp(double a, double b);

/// log(sum_i exp(v[i])). Empty input yields -inf.
[[nodiscard]] double log_sum_exp(std::span<const double> v);

/// Numerically-stable log(1 - exp(x)) for x < 0 (log of a complement
/// probability). Requires x <= 0; x == 0 yields -inf.
[[nodiscard]] double log1m_exp(double x);

/// Table of log Stirling numbers of the second kind, log S(n, m), for
/// 0 <= m <= n <= n_max. S(n, m) counts partitions of an n-set into m
/// non-empty blocks; in the occupancy interpretation used by the Bernoulli
/// estimator, C(l,m) * m! * S(n,m) / l^n is the probability that n balls
/// thrown uniformly into l boxes occupy exactly m distinct boxes.
class LogStirling2 {
 public:
  explicit LogStirling2(std::int64_t n_max);

  /// log S(n, m). Returns -inf for the zero cases (m > n, or m == 0 with
  /// n > 0). S(0,0) = 1 so (0,0) returns 0.
  [[nodiscard]] double operator()(std::int64_t n, std::int64_t m) const;

  [[nodiscard]] std::int64_t n_max() const { return n_max_; }

 private:
  std::int64_t n_max_;
  // Row-major lower-triangular storage: row n holds m = 0..n.
  std::vector<double> table_;
  [[nodiscard]] std::size_t index(std::int64_t n, std::int64_t m) const;
};

/// Inverse CDF of the standard normal distribution (quantile function),
/// p in (0, 1). Acklam's rational approximation, |error| < 1.2e-9 —
/// far below the statistical error of anything built on it here.
[[nodiscard]] double normal_quantile(double p);

/// Inverse CDF of the chi-square distribution with k > 0 degrees of freedom
/// (k may be fractional), via the Wilson-Hilferty cube-root normal
/// approximation. Used for exponential/Poisson rate confidence intervals:
/// if sum(gaps) ~ Gamma(n, rate) then 2*rate*sum(gaps) ~ chi^2(2n).
[[nodiscard]] double chi_square_quantile(double p, double k);

/// P(Poisson(mean) >= k): the upper tail of a Poisson distribution, equal to
/// the CDF of a Gamma(k, rate) waiting time at t = mean/rate — which is how
/// the Bernoulli estimator's renewal model uses it. Requires mean >= 0 and
/// k >= 0. Numerically: 1 - sum_{j<k} pmf(j), with the pmf recurrence
/// underflowing to 0 (hence tail 1) for very large means, which is the
/// correct limit.
[[nodiscard]] double poisson_tail(double mean, std::int64_t k);

/// Probability that n balls thrown uniformly and independently into l boxes
/// occupy exactly m distinct boxes (classical occupancy distribution),
/// computed in log space: C(l,m) * m! * S(n,m) / l^n. Requires l >= 1,
/// n >= 0, 0 <= m <= min(n, l); out-of-support m yields 0.
[[nodiscard]] double occupancy_probability(std::int64_t n, std::int64_t l,
                                           std::int64_t m,
                                           const LogStirling2& stirling);

}  // namespace botmeter
