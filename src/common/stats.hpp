// Descriptive statistics used by the evaluation harness.
//
// The paper reports absolute relative error (ARE, Eqn 4) with 25th/50th/75th
// percentile error bars (Fig. 6) and mean +/- stddev summaries (Table II).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace botmeter {

/// Absolute relative error |estimate - actual| / actual (paper Eqn 4).
/// `actual` must be non-zero.
[[nodiscard]] double absolute_relative_error(double estimated, double actual);

/// Streaming accumulator for mean / variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of a sample, p in [0, 100]. The input is
/// copied and sorted; empty input is a DataError.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// The quartile summary plotted as one error bar in Fig. 6.
struct QuartileSummary {
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

[[nodiscard]] QuartileSummary summarize_quartiles(std::span<const double> values);

/// "mean +/- stddev" with three decimals, matching Table II formatting.
[[nodiscard]] std::string format_mean_std(double mean, double stddev);

}  // namespace botmeter
