// A minimal, dependency-free JSON reader and writer.
//
// Just enough JSON for BotMeter's configuration files and run reports:
// objects, arrays, strings (with the standard escapes), numbers, booleans,
// null. Parse errors carry line/column positions. The writer is
// deterministic and byte-stable: object keys serialize in sorted order
// (Object is a std::map) and numbers use the shortest round-trip
// representation, so write(parse(write(v))) == write(v).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace botmeter::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value. Numbers are stored as double (the JSON model); integral
/// accessors range-check the conversion.
class Value {
 public:
  Value() : data_(nullptr) {}
  explicit Value(std::nullptr_t) : data_(nullptr) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(Array a) : data_(std::move(a)) {}
  explicit Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; throw DataError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;  // must be integral and in range
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member access; `at` throws DataError when absent, `find` returns
  /// nullptr.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] const Value* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws DataError with "line L, column C" context on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize compactly (no whitespace). Numbers that hold an integral value
/// within the exactly-representable double range print as integers ("42",
/// not "42.0"); everything else uses the shortest representation that
/// round-trips through parse(). Non-finite numbers throw DataError — JSON
/// cannot represent them.
[[nodiscard]] std::string write(const Value& value);

/// Pretty serializer: `indent` spaces per nesting level, one member per
/// line, newline-terminated. Same number/key determinism as write().
[[nodiscard]] std::string write_pretty(const Value& value, int indent = 2);

}  // namespace botmeter::json
