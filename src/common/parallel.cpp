#include "common/parallel.hpp"

#include <map>
#include <utility>

namespace botmeter {

namespace {

std::atomic<std::uint32_t> g_next_thread_ordinal{0};

std::mutex& thread_label_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::uint32_t, std::string>& thread_labels() {
  static std::map<std::uint32_t, std::string> labels;
  return labels;
}

}  // namespace

std::uint32_t this_thread_ordinal() {
  thread_local const std::uint32_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void set_this_thread_label(std::string label) {
  const std::uint32_t ordinal = this_thread_ordinal();
  std::lock_guard<std::mutex> lock(thread_label_mutex());
  thread_labels()[ordinal] = std::move(label);
}

std::string thread_label(std::uint32_t ordinal) {
  {
    std::lock_guard<std::mutex> lock(thread_label_mutex());
    const auto it = thread_labels().find(ordinal);
    if (it != thread_labels().end()) return it->second;
  }
  return "thread-" + std::to_string(ordinal);
}

WorkerPool::WorkerPool(std::size_t thread_count, Oversubscribe oversubscribe) {
  std::size_t cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  if (thread_count == 0 ||
      (thread_count > cores && oversubscribe == Oversubscribe::kClamp)) {
    thread_count = cores;
  }
  workers_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    workers_.emplace_back([this, i] {
      set_this_thread_label("worker-" + std::to_string(i + 1));
      worker_loop();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run_indices(Batch& batch) {
  try {
    for (std::size_t i = batch.next.fetch_add(1); i < batch.n;
         i = batch.next.fetch_add(1)) {
      (*batch.body)(i);
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    // Stop handing out further indices; peers drain quickly.
    batch.next.store(batch.n);
  }
}

void WorkerPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Batch batch;
  batch.n = n;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    active_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  run_indices(batch);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return active_ == 0; });
  batch_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    run_indices(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace botmeter
