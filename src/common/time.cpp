#include "common/time.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace botmeter {

TimePoint quantize(TimePoint t, Duration granularity) {
  if (granularity.millis() <= 0) {
    throw ConfigError("quantize: granularity must be positive");
  }
  const std::int64_t g = granularity.millis();
  std::int64_t ms = t.millis();
  // Floor division so negative instants also truncate downward.
  std::int64_t q = ms / g;
  if (ms % g != 0 && ms < 0) --q;
  return TimePoint{q * g};
}

std::string to_string(TimePoint t) {
  std::int64_t ms = t.millis();
  const bool neg = ms < 0;
  if (neg) ms = -ms;
  const std::int64_t d = ms / 86'400'000;
  ms %= 86'400'000;
  const std::int64_t h = ms / 3'600'000;
  ms %= 3'600'000;
  const std::int64_t m = ms / 60'000;
  ms %= 60'000;
  const std::int64_t s = ms / 1000;
  ms %= 1000;
  std::ostringstream os;
  if (neg) os << '-';
  os << d << 'd';
  os.fill('0');
  os.width(2);
  os << h << ':';
  os.width(2);
  os << m << ':';
  os.width(2);
  os << s << '.';
  os.width(3);
  os << ms;
  return os.str();
}

std::string to_string(Duration dur) {
  std::int64_t ms = dur.millis();
  if (ms == 0) return "0ms";
  std::ostringstream os;
  if (ms < 0) {
    os << '-';
    ms = -ms;
  }
  const std::int64_t d = ms / 86'400'000;
  ms %= 86'400'000;
  const std::int64_t h = ms / 3'600'000;
  ms %= 3'600'000;
  const std::int64_t m = ms / 60'000;
  ms %= 60'000;
  const std::int64_t s = ms / 1000;
  ms %= 1000;
  if (d != 0) os << d << 'd';
  if (h != 0) os << h << 'h';
  if (m != 0) os << m << 'm';
  if (s != 0) os << s << 's';
  if (ms != 0) os << ms << "ms";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << to_string(t); }
std::ostream& operator<<(std::ostream& os, Duration d) { return os << to_string(d); }

}  // namespace botmeter
