#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace botmeter {

double absolute_relative_error(double estimated, double actual) {
  if (actual == 0.0) {
    throw DataError("absolute_relative_error: actual population is zero");
  }
  return std::abs(estimated - actual) / std::abs(actual);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw DataError("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ == 0) throw DataError("RunningStats::variance: no samples");
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw DataError("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw DataError("RunningStats::max: no samples");
  return max_;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw DataError("percentile: empty sample");
  // The negated comparison also rejects NaN (every comparison with NaN is
  // false), which the naive `p < 0 || p > 100` check silently accepted and
  // then fed through an undefined float-to-integer cast.
  if (!(p >= 0.0 && p <= 100.0)) {
    throw ConfigError("percentile: p out of [0,100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const auto max_rank = static_cast<double>(sorted.size() - 1);
  // Clamp: floating-point rounding of p/100*(n-1) must never push the index
  // outside [0, n-1], and p == 0 / p == 100 must hit min/max exactly.
  const double rank = std::clamp(p / 100.0 * max_rank, 0.0, max_rank);
  const auto lo = std::min(static_cast<std::size_t>(rank), sorted.size() - 2);
  const std::size_t hi = lo + 1;
  const double frac = rank - static_cast<double>(lo);
  if (frac <= 0.0) return sorted[lo];
  if (frac >= 1.0) return sorted[hi];
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

QuartileSummary summarize_quartiles(std::span<const double> values) {
  QuartileSummary s;
  s.p25 = percentile(values, 25.0);
  s.median = percentile(values, 50.0);
  s.p75 = percentile(values, 75.0);
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.max = rs.max();
  return s;
}

std::string format_mean_std(double mean, double stddev) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << mean << " +/- " << stddev;
  return os.str();
}

}  // namespace botmeter
