#include "common/rng.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace botmeter {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw ConfigError("Rng::uniform: bound must be positive");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw ConfigError("Rng::uniform_range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next() : uniform(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) throw ConfigError("Rng::exponential: rate must be > 0");
  double u = uniform01();
  // u in [0,1); 1-u in (0,1] so the log is finite.
  return -std::log1p(-u) / rate;
}

double Rng::normal(double mu, double sigma) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * f;
  have_spare_normal_ = true;
  return mu + sigma * (u * f);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw ConfigError("Rng::poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform01();
    while (prod > limit) {
      ++k;
      prod *= uniform01();
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  if (k > n) throw ConfigError("sample_without_replacement: k > n");
  // Partial Fisher-Yates using a sparse displacement map: O(k) time/space.
  std::unordered_map<std::uint64_t, std::uint64_t> displaced;
  displaced.reserve(static_cast<std::size_t>(2 * k));
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + uniform(n - i);
    auto it_j = displaced.find(j);
    const std::uint64_t value_j = (it_j == displaced.end()) ? j : it_j->second;
    auto it_i = displaced.find(i);
    const std::uint64_t value_i = (it_i == displaced.end()) ? i : it_i->second;
    displaced[j] = value_i;
    out.push_back(value_j);
  }
  return out;
}

Rng Rng::fork() { return Rng{next() ^ 0xA02BDBF7BB3C0A7ULL}; }

}  // namespace botmeter
