#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace botmeter::json {

bool Value::as_bool() const {
  if (!is_bool()) throw DataError("json: expected a boolean");
  return std::get<bool>(data_);
}

double Value::as_double() const {
  if (!is_number()) throw DataError("json: expected a number");
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw DataError("json: expected an integral number");
  }
  return i;
}

const std::string& Value::as_string() const {
  if (!is_string()) throw DataError("json: expected a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw DataError("json: expected an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw DataError("json: expected an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw DataError("json: missing key '" + key + "'");
  return *v;
}

const Value* Value::find(const std::string& key) const {
  const Object& object = as_object();
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw DataError("json parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(column) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Value{true};
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Value{false};
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value{nullptr};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Value parse_object() {
    expect('{');
    Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(object)};
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      Value value = parse_value();
      if (object.contains(key)) fail("duplicate key '" + key + "'");
      object.emplace(std::move(key), std::move(value));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(object)};
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(array)};
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(array)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are rejected — config
          // files have no business containing them).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate in \\u escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      pos_ = start;
      fail("malformed number");
    }
    return Value{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Writer {
 public:
  explicit Writer(int indent) : indent_(indent) {}

  std::string serialize(const Value& value) {
    write_value(value, 0);
    if (indent_ >= 0) out_.push_back('\n');
    return std::move(out_);
  }

 private:
  void write_value(const Value& value, int depth) {
    if (value.is_null()) {
      out_ += "null";
    } else if (value.is_bool()) {
      out_ += value.as_bool() ? "true" : "false";
    } else if (value.is_number()) {
      write_number(value.as_double());
    } else if (value.is_string()) {
      write_string(value.as_string());
    } else if (value.is_array()) {
      write_array(value.as_array(), depth);
    } else {
      write_object(value.as_object(), depth);
    }
  }

  void write_number(double d) {
    if (!std::isfinite(d)) {
      throw DataError("json: cannot serialize a non-finite number");
    }
    char buf[64];
    // 2^53: below this every integral double has an exact integer spelling,
    // which reads better than scientific shortest form and parses back to
    // the same value.
    constexpr double kExactIntLimit = 9007199254740992.0;
    if (d == std::floor(d) && std::abs(d) < kExactIntLimit) {
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), static_cast<std::int64_t>(d));
      out_.append(buf, ptr);
      return;
    }
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    out_.append(buf, ptr);
  }

  void write_string(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  void write_array(const Array& array, int depth) {
    if (array.empty()) {
      out_ += "[]";
      return;
    }
    out_.push_back('[');
    bool first = true;
    for (const Value& element : array) {
      if (!first) out_.push_back(',');
      first = false;
      newline_indent(depth + 1);
      write_value(element, depth + 1);
    }
    newline_indent(depth);
    out_.push_back(']');
  }

  void write_object(const Object& object, int depth) {
    if (object.empty()) {
      out_ += "{}";
      return;
    }
    out_.push_back('{');
    bool first = true;
    for (const auto& [key, element] : object) {
      if (!first) out_.push_back(',');
      first = false;
      newline_indent(depth + 1);
      write_string(key);
      out_.push_back(':');
      if (indent_ >= 0) out_.push_back(' ');
      write_value(element, depth + 1);
    }
    newline_indent(depth);
    out_.push_back('}');
  }

  void newline_indent(int depth) {
    if (indent_ < 0) return;
    out_.push_back('\n');
    out_.append(static_cast<std::size_t>(depth * indent_), ' ');
  }

  int indent_;
  std::string out_;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string write(const Value& value) { return Writer(-1).serialize(value); }

std::string write_pretty(const Value& value, int indent) {
  if (indent < 0) indent = 0;
  return Writer(indent).serialize(value);
}

}  // namespace botmeter::json
