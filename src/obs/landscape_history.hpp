// Landscape time-series history: the queryable record of how a DGA-botnet
// landscape evolves across epochs.
//
// The paper's deliverable is *charting* landscapes, yet a monitor that only
// emits a final LandscapeReport (or instantaneous /metrics counters) cannot
// answer "how did server 12's Murofet population move over the last week?".
// `LandscapeHistory` is that record: every epoch close (streaming) or every
// analyzed epoch row (batch) appends one per-server snapshot — population
// estimate, 90% confidence interval, and the matched-lookup count that is the
// estimate's recorded sufficient statistic — plus the health-monitor state at
// close time when a monitor is attached.
//
// Retention is bounded and two-tiered so thousands of epochs stay cheap:
//   - the most recent `retain_recent` epochs are kept at full resolution,
//     *delta-encoded*: each entry stores only the cells that changed against
//     the previous epoch (sparse landscapes — few infected servers in a large
//     network — collapse to a handful of cells per epoch);
//   - epochs evicted from the recent ring are *coarsened*: only epochs
//     divisible by `coarse_stride` survive, as sparse full rows, up to
//     `retain_coarse` of them. Older history keeps its shape at reduced
//     temporal resolution instead of vanishing.
//
// Serialization is the canonical `botmeter.landscape_series.v1` document via
// the byte-stable common/json writer: the document is a pure function of the
// recorded row sequence and the retention configuration, so the streaming and
// batch pipelines — which hand over bit-identical rows — produce byte-equal
// files for the same trace (provided neither or both record health states).
//
// Thread-safety: every public method takes the internal mutex and returns
// copies, so the ingest thread may `record()` while the HTTP exporter thread
// serves `/landscape*` queries — the copy-under-mutex contract the exporter's
// handler rules require. Attaching a history never changes pipeline results:
// it only observes rows the pipelines already computed.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace botmeter::obs {

/// One (family, server) cell of a snapshot: the per-epoch interval estimate
/// and the matched-lookup count it consumed (the observation's recorded
/// sufficient statistic). A default-constructed cell — population 0, no
/// interval, nothing matched — is what an unrecorded server means, which is
/// what makes sparse encodings lossless.
struct LandscapeCell {
  double population = 0.0;
  std::optional<std::pair<double, double>> interval90;
  std::uint64_t matched = 0;

  /// True when the estimate came from saturated sketch state (the compact
  /// observation path); `sketch_rse` then carries the sketch relative
  /// standard error propagated into the interval. Serialized only when set,
  /// so exact pipelines' documents are unchanged.
  bool approximate = false;
  double sketch_rse = 0.0;

  friend bool operator==(const LandscapeCell&, const LandscapeCell&) = default;
};

/// What a pipeline hands to record(): one epoch's full landscape row. The
/// family/estimator identify the series (fixed after the first record);
/// `health` is the stream health state word at close time, absent when no
/// monitor is attached (always absent for batch analyze).
struct LandscapeEpochRecord {
  std::int64_t epoch = 0;
  std::string family;
  std::string estimator;
  std::vector<LandscapeCell> servers;
  std::optional<std::string> health;
};

struct LandscapeHistoryConfig {
  /// Full-resolution epochs retained (the delta-encoded recent ring).
  std::size_t retain_recent = 4096;
  /// Coarsened older epochs retained beyond the recent ring.
  std::size_t retain_coarse = 512;
  /// Only epochs divisible by this stride survive coarsening. 1 keeps every
  /// evicted epoch (until retain_coarse evicts it for good).
  std::int64_t coarse_stride = 16;

  void validate() const;
};

/// One fully reconstructed epoch snapshot, as queries return it.
struct LandscapeSnapshot {
  std::int64_t epoch = 0;
  /// "recent" (full-resolution ring) or "coarse" (survived coarsening).
  std::string tier;
  std::vector<LandscapeCell> servers;
  std::optional<std::string> health;

  [[nodiscard]] double total_population() const;
  [[nodiscard]] std::uint64_t total_matched() const;

  friend bool operator==(const LandscapeSnapshot&,
                         const LandscapeSnapshot&) = default;
};

/// One point of a per-server series query.
struct LandscapeSeriesPoint {
  std::int64_t epoch = 0;
  LandscapeCell cell;

  friend bool operator==(const LandscapeSeriesPoint&,
                         const LandscapeSeriesPoint&) = default;
};

/// Per-family quality telemetry over the retained window.
struct LandscapeSummary {
  std::string family;
  std::string estimator;
  std::size_t server_count = 0;
  std::uint64_t epochs_recorded = 0;   // ever, including evicted-for-good
  std::size_t epochs_retained = 0;     // recent + coarse
  std::int64_t first_retained_epoch = 0;
  std::int64_t last_epoch = 0;
  double latest_total_population = 0.0;
  std::uint64_t latest_total_matched = 0;
  std::optional<std::string> latest_health;
  /// Fraction of servers whose latest cell carries a confidence interval.
  double interval_coverage = 0.0;
  /// Mean (hi - lo) over the latest cells that carry an interval; 0 if none.
  double mean_ci_width = 0.0;
  /// Delta-encoding telemetry: cells stored vs. the dense equivalent
  /// (epochs_retained * server_count) — the retention policy's win.
  std::uint64_t stored_cells = 0;
};

/// The parsed form of a botmeter.landscape_series.v1 document: every entry
/// reconstructed to a full row, ascending by epoch.
struct LandscapeSeries {
  std::string family;
  std::string estimator;
  std::size_t server_count = 0;
  std::uint64_t epochs_recorded = 0;
  std::vector<LandscapeSnapshot> snapshots;
};

class LandscapeHistory {
 public:
  explicit LandscapeHistory(LandscapeHistoryConfig config = {});

  LandscapeHistory(const LandscapeHistory&) = delete;
  LandscapeHistory& operator=(const LandscapeHistory&) = delete;

  /// Append one epoch row. Epochs must be strictly increasing; the first
  /// record fixes the series' family, estimator, and server width, and every
  /// later record must match them (ConfigError otherwise).
  void record(const LandscapeEpochRecord& row);

  /// Latest snapshot, or nullopt before the first record.
  [[nodiscard]] std::optional<LandscapeSnapshot> latest() const;

  /// Every retained snapshot with epoch in [from, to], ascending (coarse
  /// tier first — coarse epochs always precede recent ones).
  [[nodiscard]] std::vector<LandscapeSnapshot> window(std::int64_t from,
                                                      std::int64_t to) const;

  /// One server's series over [from, to], ascending. Throws ConfigError when
  /// `server` is outside the recorded width.
  [[nodiscard]] std::vector<LandscapeSeriesPoint> series(std::uint32_t server,
                                                         std::int64_t from,
                                                         std::int64_t to) const;

  /// Quality telemetry, or nullopt before the first record.
  [[nodiscard]] std::optional<LandscapeSummary> summary() const;

  [[nodiscard]] std::uint64_t epochs_recorded() const;

  // --- canonical JSON (schema botmeter.landscape_series.v1) ----------------
  /// The full retained history: coarse entries as sparse full rows, the
  /// recent ring with its delta encoding (first recent entry materialized).
  /// Byte-stable: a pure function of the recorded rows and the retention
  /// configuration.
  [[nodiscard]] json::Value to_json() const;

  /// A one-entry series document holding only the latest snapshot (the
  /// `/landscape` route body). Before the first record: an entry-less
  /// document (schema + empty entries).
  [[nodiscard]] json::Value latest_json() const;

  /// A windowed series document: every retained entry in [from, to],
  /// materialized as full sparse rows; with `server` set, rows are narrowed
  /// to that one server's cell (the `/landscape/history` route body).
  [[nodiscard]] json::Value window_json(std::optional<std::uint32_t> server,
                                        std::int64_t from,
                                        std::int64_t to) const;

  /// The summary document (schema botmeter.landscape_summary.v1, the
  /// `/landscape/summary` route body).
  [[nodiscard]] json::Value summary_json() const;

  [[nodiscard]] const LandscapeHistoryConfig& config() const { return config_; }

 private:
  /// One recent-ring entry: the cells that differ from the previous epoch's
  /// row. The first entry's predecessor is `base_` (the reconstruction
  /// anchor — the full row state just before the ring).
  struct Entry {
    std::int64_t epoch = 0;
    std::optional<std::string> health;
    std::vector<std::pair<std::uint32_t, LandscapeCell>> cells;  // ascending id
  };

  void evict_locked();
  [[nodiscard]] std::vector<LandscapeSnapshot> window_locked(
      std::int64_t from, std::int64_t to) const;
  [[nodiscard]] LandscapeSummary summary_locked() const;
  [[nodiscard]] json::Value series_header_locked() const;

  LandscapeHistoryConfig config_;

  mutable std::mutex mu_;
  std::string family_;
  std::string estimator_;
  std::size_t server_count_ = 0;
  std::uint64_t epochs_recorded_ = 0;

  /// Reconstruction anchor: the full row state immediately before
  /// `recent_.front()` (all-default until the first eviction).
  std::vector<LandscapeCell> base_;
  std::deque<Entry> recent_;
  /// Latest full row (base_ with every recent delta applied), maintained
  /// incrementally so record() diffs in O(changed).
  std::vector<LandscapeCell> last_;
  std::optional<std::string> last_health_;
  /// Coarsened tier: sparse full rows (cells differing from default).
  std::deque<Entry> coarse_;
};

/// Parse a botmeter.landscape_series.v1 document (as produced by to_json /
/// latest_json / window_json) back into fully reconstructed snapshots.
/// Throws DataError on schema or structural violations.
[[nodiscard]] LandscapeSeries parse_landscape_series(const json::Value& doc);

}  // namespace botmeter::obs
