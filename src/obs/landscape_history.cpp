#include "obs/landscape_history.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace botmeter::obs {
namespace {

constexpr std::string_view kSeriesSchema = "botmeter.landscape_series.v1";
constexpr std::string_view kSummarySchema = "botmeter.landscape_summary.v1";

const LandscapeCell kDefaultCell{};

json::Value cell_to_json(std::uint32_t server, const LandscapeCell& cell) {
  json::Object o;
  o.emplace("server", json::Value(static_cast<double>(server)));
  o.emplace("population", json::Value(cell.population));
  o.emplace("matched", json::Value(static_cast<double>(cell.matched)));
  if (cell.interval90.has_value()) {
    o.emplace("lo", json::Value(cell.interval90->first));
    o.emplace("hi", json::Value(cell.interval90->second));
  }
  if (cell.approximate) {
    o.emplace("approximate", json::Value(true));
    o.emplace("sketch_rse", json::Value(cell.sketch_rse));
  }
  return json::Value(std::move(o));
}

json::Value entry_to_json(
    std::int64_t epoch, std::string_view tier, std::string_view encoding,
    const std::vector<std::pair<std::uint32_t, LandscapeCell>>& cells,
    const std::optional<std::string>& health) {
  json::Object o;
  json::Array cell_array;
  cell_array.reserve(cells.size());
  for (const auto& [id, cell] : cells) {
    cell_array.push_back(cell_to_json(id, cell));
  }
  o.emplace("cells", json::Value(std::move(cell_array)));
  o.emplace("encoding", json::Value(std::string(encoding)));
  o.emplace("epoch", json::Value(static_cast<double>(epoch)));
  if (health.has_value()) {
    o.emplace("health", json::Value(*health));
  }
  o.emplace("tier", json::Value(std::string(tier)));
  return json::Value(std::move(o));
}

/// The non-default cells of a full row — the lossless sparse encoding.
std::vector<std::pair<std::uint32_t, LandscapeCell>> sparse_of(
    const std::vector<LandscapeCell>& row) {
  std::vector<std::pair<std::uint32_t, LandscapeCell>> cells;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!(row[i] == kDefaultCell)) {
      cells.emplace_back(static_cast<std::uint32_t>(i), row[i]);
    }
  }
  return cells;
}

void apply_cells(
    const std::vector<std::pair<std::uint32_t, LandscapeCell>>& cells,
    std::vector<LandscapeCell>& row) {
  for (const auto& [id, cell] : cells) {
    row[id] = cell;
  }
}

}  // namespace

void LandscapeHistoryConfig::validate() const {
  if (retain_recent < 1) {
    throw ConfigError("landscape history retain_recent must be >= 1");
  }
  if (coarse_stride < 1) {
    throw ConfigError("landscape history coarse_stride must be >= 1");
  }
}

double LandscapeSnapshot::total_population() const {
  double total = 0.0;
  for (const LandscapeCell& cell : servers) total += cell.population;
  return total;
}

std::uint64_t LandscapeSnapshot::total_matched() const {
  std::uint64_t total = 0;
  for (const LandscapeCell& cell : servers) total += cell.matched;
  return total;
}

LandscapeHistory::LandscapeHistory(LandscapeHistoryConfig config)
    : config_(config) {
  config_.validate();
}

void LandscapeHistory::record(const LandscapeEpochRecord& row) {
  std::lock_guard lock(mu_);
  if (epochs_recorded_ == 0) {
    if (row.servers.empty()) {
      throw ConfigError("landscape history: first record has zero servers");
    }
    family_ = row.family;
    estimator_ = row.estimator;
    server_count_ = row.servers.size();
    base_.assign(server_count_, kDefaultCell);
    last_ = base_;
  } else {
    if (row.family != family_ || row.estimator != estimator_) {
      throw ConfigError("landscape history: series identity changed (" +
                        family_ + "/" + estimator_ + " -> " + row.family +
                        "/" + row.estimator + ")");
    }
    if (row.servers.size() != server_count_) {
      throw ConfigError("landscape history: server width changed (" +
                        std::to_string(server_count_) + " -> " +
                        std::to_string(row.servers.size()) + ")");
    }
    if (row.epoch <= recent_.back().epoch) {
      throw ConfigError("landscape history: epochs must be strictly "
                        "increasing (got " + std::to_string(row.epoch) +
                        " after " + std::to_string(recent_.back().epoch) + ")");
    }
  }

  Entry entry;
  entry.epoch = row.epoch;
  entry.health = row.health;
  for (std::size_t i = 0; i < server_count_; ++i) {
    if (!(row.servers[i] == last_[i])) {
      entry.cells.emplace_back(static_cast<std::uint32_t>(i), row.servers[i]);
      last_[i] = row.servers[i];
    }
  }
  last_health_ = row.health;
  recent_.push_back(std::move(entry));
  ++epochs_recorded_;
  evict_locked();
}

void LandscapeHistory::evict_locked() {
  while (recent_.size() > config_.retain_recent) {
    Entry& front = recent_.front();
    apply_cells(front.cells, base_);
    if (front.epoch % config_.coarse_stride == 0) {
      Entry coarse;
      coarse.epoch = front.epoch;
      coarse.health = std::move(front.health);
      coarse.cells = sparse_of(base_);
      coarse_.push_back(std::move(coarse));
      while (coarse_.size() > config_.retain_coarse) {
        coarse_.pop_front();
      }
    }
    recent_.pop_front();
  }
}

std::optional<LandscapeSnapshot> LandscapeHistory::latest() const {
  std::lock_guard lock(mu_);
  if (epochs_recorded_ == 0) return std::nullopt;
  LandscapeSnapshot snap;
  snap.epoch = recent_.back().epoch;
  snap.tier = "recent";
  snap.servers = last_;
  snap.health = last_health_;
  return snap;
}

std::vector<LandscapeSnapshot> LandscapeHistory::window_locked(
    std::int64_t from, std::int64_t to) const {
  std::vector<LandscapeSnapshot> out;
  for (const Entry& entry : coarse_) {
    if (entry.epoch < from || entry.epoch > to) continue;
    LandscapeSnapshot snap;
    snap.epoch = entry.epoch;
    snap.tier = "coarse";
    snap.servers.assign(server_count_, kDefaultCell);
    apply_cells(entry.cells, snap.servers);
    snap.health = entry.health;
    out.push_back(std::move(snap));
  }
  std::vector<LandscapeCell> rolling = base_;
  for (const Entry& entry : recent_) {
    apply_cells(entry.cells, rolling);
    if (entry.epoch < from || entry.epoch > to) continue;
    LandscapeSnapshot snap;
    snap.epoch = entry.epoch;
    snap.tier = "recent";
    snap.servers = rolling;
    snap.health = entry.health;
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<LandscapeSnapshot> LandscapeHistory::window(std::int64_t from,
                                                        std::int64_t to) const {
  std::lock_guard lock(mu_);
  return window_locked(from, to);
}

std::vector<LandscapeSeriesPoint> LandscapeHistory::series(
    std::uint32_t server, std::int64_t from, std::int64_t to) const {
  std::lock_guard lock(mu_);
  if (epochs_recorded_ > 0 && server >= server_count_) {
    throw ConfigError("landscape history: server " + std::to_string(server) +
                      " outside recorded width " +
                      std::to_string(server_count_));
  }
  std::vector<LandscapeSeriesPoint> out;
  for (LandscapeSnapshot& snap : window_locked(from, to)) {
    out.push_back({snap.epoch, snap.servers[server]});
  }
  return out;
}

LandscapeSummary LandscapeHistory::summary_locked() const {
  LandscapeSummary s;
  s.family = family_;
  s.estimator = estimator_;
  s.server_count = server_count_;
  s.epochs_recorded = epochs_recorded_;
  s.epochs_retained = recent_.size() + coarse_.size();
  s.first_retained_epoch =
      !coarse_.empty() ? coarse_.front().epoch
                       : (!recent_.empty() ? recent_.front().epoch : 0);
  s.last_epoch = !recent_.empty() ? recent_.back().epoch : 0;
  s.latest_health = last_health_;
  std::size_t with_interval = 0;
  double width_sum = 0.0;
  for (const LandscapeCell& cell : last_) {
    s.latest_total_population += cell.population;
    s.latest_total_matched += cell.matched;
    if (cell.interval90.has_value()) {
      ++with_interval;
      width_sum += cell.interval90->second - cell.interval90->first;
    }
  }
  if (server_count_ > 0) {
    s.interval_coverage =
        static_cast<double>(with_interval) / static_cast<double>(server_count_);
  }
  if (with_interval > 0) {
    s.mean_ci_width = width_sum / static_cast<double>(with_interval);
  }
  for (const Entry& entry : recent_) s.stored_cells += entry.cells.size();
  for (const Entry& entry : coarse_) s.stored_cells += entry.cells.size();
  return s;
}

std::optional<LandscapeSummary> LandscapeHistory::summary() const {
  std::lock_guard lock(mu_);
  if (epochs_recorded_ == 0) return std::nullopt;
  return summary_locked();
}

std::uint64_t LandscapeHistory::epochs_recorded() const {
  std::lock_guard lock(mu_);
  return epochs_recorded_;
}

json::Value LandscapeHistory::series_header_locked() const {
  json::Object doc;
  doc.emplace("schema", json::Value(std::string(kSeriesSchema)));
  doc.emplace("family", json::Value(family_));
  doc.emplace("estimator", json::Value(estimator_));
  doc.emplace("server_count",
              json::Value(static_cast<double>(server_count_)));
  doc.emplace("epochs_recorded",
              json::Value(static_cast<double>(epochs_recorded_)));
  json::Object retention;
  retention.emplace("coarse_stride",
                    json::Value(static_cast<double>(config_.coarse_stride)));
  retention.emplace("retain_coarse",
                    json::Value(static_cast<double>(config_.retain_coarse)));
  retention.emplace("retain_recent",
                    json::Value(static_cast<double>(config_.retain_recent)));
  doc.emplace("retention", json::Value(std::move(retention)));
  return json::Value(std::move(doc));
}

json::Value LandscapeHistory::to_json() const {
  std::lock_guard lock(mu_);
  json::Object doc = series_header_locked().as_object();
  json::Array entries;
  for (const Entry& entry : coarse_) {
    entries.push_back(
        entry_to_json(entry.epoch, "coarse", "full", entry.cells,
                      entry.health));
  }
  std::vector<LandscapeCell> rolling = base_;
  bool first = true;
  for (const Entry& entry : recent_) {
    apply_cells(entry.cells, rolling);
    if (first) {
      // The ring's first entry anchors reconstruction: materialized as a
      // sparse full row so the document never depends on evicted state.
      entries.push_back(entry_to_json(entry.epoch, "recent", "full",
                                      sparse_of(rolling), entry.health));
      first = false;
    } else {
      entries.push_back(entry_to_json(entry.epoch, "recent", "delta",
                                      entry.cells, entry.health));
    }
  }
  doc.emplace("entries", json::Value(std::move(entries)));
  return json::Value(std::move(doc));
}

json::Value LandscapeHistory::latest_json() const {
  std::lock_guard lock(mu_);
  json::Object doc = series_header_locked().as_object();
  json::Array entries;
  if (epochs_recorded_ > 0) {
    entries.push_back(entry_to_json(recent_.back().epoch, "recent", "full",
                                    sparse_of(last_), last_health_));
  }
  doc.emplace("entries", json::Value(std::move(entries)));
  return json::Value(std::move(doc));
}

json::Value LandscapeHistory::window_json(std::optional<std::uint32_t> server,
                                          std::int64_t from,
                                          std::int64_t to) const {
  std::lock_guard lock(mu_);
  if (server.has_value() && epochs_recorded_ > 0 &&
      *server >= server_count_) {
    throw ConfigError("landscape history: server " + std::to_string(*server) +
                      " outside recorded width " +
                      std::to_string(server_count_));
  }
  json::Object doc = series_header_locked().as_object();
  if (server.has_value()) {
    doc.emplace("server", json::Value(static_cast<double>(*server)));
  }
  json::Array entries;
  for (const LandscapeSnapshot& snap : window_locked(from, to)) {
    std::vector<std::pair<std::uint32_t, LandscapeCell>> cells;
    if (server.has_value()) {
      if (!(snap.servers[*server] == kDefaultCell)) {
        cells.emplace_back(*server, snap.servers[*server]);
      }
    } else {
      cells = sparse_of(snap.servers);
    }
    entries.push_back(
        entry_to_json(snap.epoch, snap.tier, "full", cells, snap.health));
  }
  doc.emplace("entries", json::Value(std::move(entries)));
  return json::Value(std::move(doc));
}

json::Value LandscapeHistory::summary_json() const {
  std::lock_guard lock(mu_);
  LandscapeSummary s = summary_locked();
  json::Object doc;
  doc.emplace("schema", json::Value(std::string(kSummarySchema)));
  doc.emplace("family", json::Value(s.family));
  doc.emplace("estimator", json::Value(s.estimator));
  doc.emplace("server_count", json::Value(static_cast<double>(s.server_count)));
  doc.emplace("epochs_recorded",
              json::Value(static_cast<double>(s.epochs_recorded)));
  doc.emplace("epochs_retained",
              json::Value(static_cast<double>(s.epochs_retained)));
  doc.emplace("first_retained_epoch",
              json::Value(static_cast<double>(s.first_retained_epoch)));
  doc.emplace("last_epoch", json::Value(static_cast<double>(s.last_epoch)));
  doc.emplace("total_population", json::Value(s.latest_total_population));
  doc.emplace("total_matched",
              json::Value(static_cast<double>(s.latest_total_matched)));
  if (s.latest_health.has_value()) {
    doc.emplace("health", json::Value(*s.latest_health));
  }
  doc.emplace("interval_coverage", json::Value(s.interval_coverage));
  doc.emplace("mean_ci_width", json::Value(s.mean_ci_width));
  doc.emplace("stored_cells", json::Value(static_cast<double>(s.stored_cells)));
  doc.emplace("dense_cells",
              json::Value(static_cast<double>(s.epochs_retained) *
                          static_cast<double>(s.server_count)));
  return json::Value(std::move(doc));
}

LandscapeSeries parse_landscape_series(const json::Value& doc) {
  if (doc.at("schema").as_string() != kSeriesSchema) {
    throw DataError("landscape series: unexpected schema \"" +
                    doc.at("schema").as_string() + "\"");
  }
  LandscapeSeries series;
  series.family = doc.at("family").as_string();
  series.estimator = doc.at("estimator").as_string();
  const std::int64_t width = doc.at("server_count").as_int();
  if (width < 0) {
    throw DataError("landscape series: negative server_count");
  }
  series.server_count = static_cast<std::size_t>(width);
  series.epochs_recorded =
      static_cast<std::uint64_t>(doc.at("epochs_recorded").as_int());

  std::vector<LandscapeCell> rolling(series.server_count, LandscapeCell{});
  bool have_previous = false;
  for (const json::Value& entry : doc.at("entries").as_array()) {
    const std::string& encoding = entry.at("encoding").as_string();
    if (encoding == "full") {
      rolling.assign(series.server_count, LandscapeCell{});
    } else if (encoding == "delta") {
      if (!have_previous) {
        throw DataError("landscape series: delta entry with no predecessor");
      }
    } else {
      throw DataError("landscape series: unknown encoding \"" + encoding +
                      "\"");
    }
    for (const json::Value& cell_value : entry.at("cells").as_array()) {
      const std::int64_t id = cell_value.at("server").as_int();
      if (id < 0 || static_cast<std::size_t>(id) >= series.server_count) {
        throw DataError("landscape series: server " + std::to_string(id) +
                        " outside width " +
                        std::to_string(series.server_count));
      }
      LandscapeCell cell;
      cell.population = cell_value.at("population").as_double();
      cell.matched =
          static_cast<std::uint64_t>(cell_value.at("matched").as_int());
      const json::Value* lo = cell_value.find("lo");
      const json::Value* hi = cell_value.find("hi");
      if ((lo == nullptr) != (hi == nullptr)) {
        throw DataError("landscape series: cell with only one interval bound");
      }
      if (lo != nullptr) {
        cell.interval90 = {lo->as_double(), hi->as_double()};
      }
      if (const json::Value* approx = cell_value.find("approximate");
          approx != nullptr) {
        cell.approximate = approx->as_bool();
        cell.sketch_rse = cell_value.at("sketch_rse").as_double();
      }
      rolling[static_cast<std::size_t>(id)] = cell;
    }

    LandscapeSnapshot snap;
    snap.epoch = entry.at("epoch").as_int();
    snap.tier = entry.at("tier").as_string();
    if (snap.tier != "recent" && snap.tier != "coarse") {
      throw DataError("landscape series: unknown tier \"" + snap.tier + "\"");
    }
    if (have_previous && snap.epoch <= series.snapshots.back().epoch) {
      throw DataError("landscape series: epochs not strictly increasing at " +
                      std::to_string(snap.epoch));
    }
    snap.servers = rolling;
    if (const json::Value* health = entry.find("health")) {
      snap.health = health->as_string();
    }
    series.snapshots.push_back(std::move(snap));
    have_previous = true;
  }
  return series;
}

}  // namespace botmeter::obs
