// Pipeline lag attribution for the sharded cluster runtime.
//
// A frontier-lag gauge says the merged landscape is behind; it cannot say
// *where* a tuple's wall time went on the way there. The LagTracker
// decomposes end-to-end delay into the five stages a tuple (or its epoch)
// passes through:
//
//   producer_batch — from the first tuple entering a producer's pending
//                    scatter batch until the batch is enqueued (batching
//                    delay on the producer thread);
//   queue_wait     — from enqueue until a shard worker dequeues the batch
//                    (backpressure / shard-thread saturation);
//   shard_ingest   — the shard engine's ingest_block + advance time for the
//                    batch (per-shard compute);
//   epoch_close    — the engine's estimator wall time closing an epoch;
//   merge_publish  — from a shard offering its closed epoch until the merger
//                    publishes the merged row (waiting on sibling shards).
//
// Each (shard, stage) pair keeps an exponential-bucket histogram (bounds
// from obs::exponential_bounds) plus count/total/max accumulators — one
// mutex, locked per *batch*/close, never per tuple. On top of the
// histograms, a bounded per-epoch straggler table records, for every merged
// epoch, which shard's close arrived last and by how much — "which border
// is holding the frontier back" as a first-class answer.
//
// `attribution()` folds the table down to the slowest stage and slowest
// shard by accumulated wall time, which ClusterRuntime::health_json embeds
// so a "degraded" verdict names its suspect. `to_json()` is the full
// canonical `botmeter.lag.v1` document served at `/debug/lag`.
//
// Like every observability hook in this codebase, the tracker is attached
// as a nullable pointer: null means no clock reads and no-ops, keeping the
// landscape byte-identical with attribution on or off.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace botmeter::obs {

enum class LagStage : int {
  kProducerBatch = 0,
  kQueueWait = 1,
  kShardIngest = 2,
  kEpochClose = 3,
  kMergePublish = 4,
};

inline constexpr std::size_t kLagStageCount = 5;

[[nodiscard]] std::string_view lag_stage_name(LagStage stage);

/// One row of the per-epoch straggler table.
struct StragglerRow {
  std::int64_t epoch = 0;
  /// Shard whose epoch close arrived last at the merger.
  std::size_t straggler_shard = 0;
  double first_close_ms = 0.0;
  double last_close_ms = 0.0;
  /// last_close_ms - first_close_ms: how long the merge frontier waited on
  /// the straggler after the first shard was ready.
  double straggle_ms = 0.0;
  /// When the merged row was published.
  double merge_ms = 0.0;
};

/// Accumulated view of one (shard, stage) histogram.
struct LagStageSample {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 (overflow)
};

/// attribution(): the fold health_json embeds.
struct LagAttribution {
  /// Stage with the largest accumulated wall time across all shards, and
  /// that total. Unset (nullopt) until at least one sample was recorded.
  std::optional<LagStage> slowest_stage;
  double slowest_stage_total_ms = 0.0;
  /// Shard with the largest accumulated wall time across all stages.
  std::optional<std::size_t> slowest_shard;
  double slowest_shard_total_ms = 0.0;
  /// Accumulated wall time per stage, summed over shards (kLagStageCount).
  std::vector<double> stage_total_ms;
};

class LagTracker {
 public:
  explicit LagTracker(std::size_t shard_count,
                      std::size_t straggler_capacity = 256);

  LagTracker(const LagTracker&) = delete;
  LagTracker& operator=(const LagTracker&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

  /// Record `ms` of wall time spent in `stage` on `shard`. Out-of-range
  /// shards are a ConfigError (instrumentation bugs should be loud).
  void record(std::size_t shard, LagStage stage, double ms);

  /// A shard's close for `epoch` reached the merger at `now_ms`.
  void note_shard_close(std::int64_t epoch, std::size_t shard, double now_ms);

  /// The merger published `epoch` at `now_ms`: records merge_publish wait
  /// per contributing shard (now - its close arrival), appends the epoch's
  /// straggler row, and drops the pending close times.
  void note_merge(std::int64_t epoch, double now_ms);

  [[nodiscard]] LagStageSample stage_sample(std::size_t shard,
                                            LagStage stage) const;
  /// Straggler rows in merge order, oldest first (bounded retention).
  [[nodiscard]] std::vector<StragglerRow> stragglers() const;

  [[nodiscard]] LagAttribution attribution() const;

  /// Canonical botmeter.lag.v1 document for /debug/lag.
  [[nodiscard]] json::Value to_json() const;
  /// The compact object health_json embeds under "lag".
  [[nodiscard]] json::Value attribution_json() const;

  /// Shared histogram bounds (milliseconds).
  [[nodiscard]] static const std::vector<double>& bounds();

 private:
  struct StageAcc {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
    std::vector<std::uint64_t> buckets;  // bounds().size() + 1
  };

  std::size_t shard_count_;
  std::size_t straggler_capacity_;

  mutable std::mutex mu_;
  /// shard_count_ x kLagStageCount, row-major by shard.
  std::vector<StageAcc> stages_;
  /// epoch -> (shard -> close arrival time); pending until note_merge.
  std::map<std::int64_t, std::map<std::size_t, double>> pending_closes_;
  std::deque<StragglerRow> stragglers_;
};

}  // namespace botmeter::obs
