// Prometheus text exposition (format 0.0.4) of a MetricsRegistry snapshot.
//
// Rendering rules:
//   - Metric names are sanitized to the Prometheus charset: every character
//     outside [a-zA-Z0-9_:] becomes '_' ("sim.queries" -> "sim_queries"),
//     with a leading '_' prepended when the name would start with a digit.
//   - The registry's single optional per-series label renders as
//     `{series="<value>"}`; label values escape backslash, double quote,
//     and newline per the exposition spec.
//   - Counters/gauges emit one `# TYPE` line per metric name, then one
//     sample line per series. Histograms emit the conventional triplet:
//     cumulative `<name>_bucket{le="..."}` lines ending in `le="+Inf"`,
//     then `<name>_sum` and `<name>_count`.
//   - Numbers use the shortest round-trip representation (integers bare);
//     non-finite values render as +Inf / -Inf / NaN.
//
// `delta_snapshot` subtracts a baseline snapshot from a current one so a
// scraper (or a test) can compute rates between two scrapes without the
// registry having to track cursors; `parse_exposition` is the minimal
// inverse used by the round-trip tests.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace botmeter::obs {

/// The standard Content-Type for the text exposition format.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Render one snapshot as Prometheus text exposition.
[[nodiscard]] std::string expose_prometheus(
    const MetricsRegistry::Snapshot& snapshot);

/// `current - baseline`, series-wise: counter values and histogram
/// buckets/count/sum subtract (clamped to the current value when the
/// baseline is missing or larger — a counter reset); gauges pass through
/// unchanged (they are point-in-time values, not accumulations). Series
/// absent from `current` are dropped.
[[nodiscard]] MetricsRegistry::Snapshot delta_snapshot(
    const MetricsRegistry::Snapshot& current,
    const MetricsRegistry::Snapshot& baseline);

/// One parsed sample line: the (sanitized) metric name, the raw label block
/// without braces ("" when absent), and the value.
struct ExpositionSample {
  std::string name;
  std::string labels;
  double value = 0.0;

  friend bool operator==(const ExpositionSample&,
                         const ExpositionSample&) = default;
};

/// Parse exposition text back into sample lines (comments and blank lines
/// skipped), in document order. Throws DataError on a malformed line.
[[nodiscard]] std::vector<ExpositionSample> parse_exposition(
    std::string_view text);

/// Derives per-second rate gauges from successive registry snapshots so
/// dashboards scrape ready-made rates (`tuples/s`, `epochs closed/s`)
/// instead of differencing counters client-side.
///
/// Construct with the counter names to track; each `tick` appends one
/// `<name>.per_sec` gauge per tracked counter series (labels preserved) to
/// the snapshot, computed via `delta_snapshot` against the previous tick,
/// then remembers the un-augmented snapshot as the next baseline. The first
/// tick appends *no* rate gauges — there is no baseline yet, and dividing a
/// counter's whole lifetime by an arbitrary dt is the classic first-scrape
/// spike — so `*_per_sec` series exist only once two samples do. Later
/// ticks with a non-positive time step report 0. Counter resets clamp to 0
/// (the delta_snapshot rule), never negative rates.
///
/// Not thread-safe: tick() is meant to be called from exactly one thread —
/// in practice the HTTP exporter's handler thread, where successive
/// /metrics scrapes are naturally serialized.
class RateTracker {
 public:
  explicit RateTracker(std::vector<std::string> counter_names);

  /// Augment `snapshot` with rate gauges (keeping the gauge list sorted by
  /// (name, label)) and advance the baseline. `now_ms` is any monotonic
  /// millisecond clock.
  void tick(MetricsRegistry::Snapshot& snapshot, double now_ms);

 private:
  std::vector<std::string> names_;
  MetricsRegistry::Snapshot previous_;
  double previous_ms_ = 0.0;
  bool have_previous_ = false;
};

}  // namespace botmeter::obs
