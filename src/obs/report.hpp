// Structured run reports (schema "botmeter.run_report.v1").
//
// A run report is one machine-readable JSON document per pipeline run: an
// echo of the configuration, every metric series from the registry
// (per-epoch cache hit/miss/eviction counts, per-server forwarded-lookup
// counts, matcher tallies, estimator inputs/outputs, ...), and the phase
// tracer's wall-time breakdown. Reports are emitted by the CLI tools
// (--metrics-out) and by the bench harness next to every regenerated figure.
//
// Everything exported here parses back through common/json and re-serializes
// byte-stably (sorted keys, shortest round-trip numbers) — the format is the
// stable interface future perf PRs cite.
//
// Exported layout:
//   {
//     "schema": "botmeter.run_report.v1",
//     "tool": "<producer>",
//     "config": { ...caller echo... },
//     "counters": {
//       "sim.queries": 123,                       // plain series
//       "sim.queries.per_epoch": {"0": 60, ...}   // labeled family
//     },
//     "gauges": { ... same shape, double values ... },
//     "histograms": {
//       "<name>": {"upper_bounds": [...], "counts": [...],  // +overflow
//                   "count": n, "sum": s}
//     },
//     "trace": {
//       "phases": [{"phase": ..., "count": ..., "total_ms": ...,
//                   "mean_ms": ..., "min_ms": ..., "p50_ms": ...,
//                   "max_ms": ...}],
//       "spans": [{"phase": ..., "ms": ...}]
//     }
//   }
#pragma once

#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::obs {

/// The registry's series as a JSON object with "counters" / "gauges" /
/// "histograms" members. A metric name with only the unlabeled series maps
/// to a bare number; a name with labeled series maps to a label -> value
/// object (an unlabeled series alongside labels appears under "_total").
[[nodiscard]] json::Value metrics_json(const MetricsRegistry& registry);

/// The tracer's spans and per-phase summary as a JSON object.
[[nodiscard]] json::Value trace_json(const TraceSession& session);

struct RunReport {
  std::string tool;                         // producing binary, e.g. "botmeter_simulate"
  json::Value config;                       // configuration echo (object) or null
  const MetricsRegistry* metrics = nullptr; // optional
  const TraceSession* trace = nullptr;      // optional
};

/// The complete report as a json::Value (callers can extend it before
/// serialization).
[[nodiscard]] json::Value report_json(const RunReport& report);

/// Pretty-printed (2-space) serialization of report_json().
[[nodiscard]] std::string export_json(const RunReport& report);

/// Serialize to `path`; throws DataError when the file cannot be written.
void write_report_file(const RunReport& report, const std::string& path);

}  // namespace botmeter::obs
