// The always-on flight recorder: a bounded structured event journal.
//
// A long-running cluster turns unhealthy hours after the decision that made
// it so; counters say *that* something degraded, never *what happened
// before*. The journal is the post-hoc explainability layer: every
// state-changing moment of the pipeline — health transitions, epoch closes,
// watermark advances, checkpoint/restore, queue saturation, merge publishes
// — is appended as one small structured event into a fixed-capacity ring.
// Old events fall off the far end (the drop count is reported), so the
// journal's memory is bounded regardless of run length, and it is cheap
// enough to leave on in production.
//
// Events carry a monotonic sequence number (assigned at append, never
// reused), a wall-time offset from the journal's construction, an optional
// shard index (-1 = cluster / engine level), a kind, and small details
// (epoch, numeric value, free-text message). `events_since(seq)` plus the
// seq cursor give pollers (`/events?from=&shard=`) exactly-once delivery
// without the journal tracking consumers.
//
// Serialization is the canonical `botmeter.events.v1` document via the
// byte-stable common/json writer. `dump()` writes it to disk; callers that
// configure `set_dump_path()` can invoke `auto_dump()` at the moment a
// health monitor turns unhealthy — the flight recorder hits the ground
// with the black box already written.
//
// Thread-safety and cost: one mutex, short critical sections (a push +
// possible pop per append; queries copy under the lock). Appends happen per
// *batch*/close/transition — never per tuple — so the journal is invisible
// in the ingest profile; a null `EventJournal*` at every instrumentation
// point means no-op and no clock read, which is what keeps landscapes
// byte-identical with the recorder on or off.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace botmeter::obs {

enum class EventKind : int {
  kHealthTransition = 0,
  kEpochClose = 1,
  kWatermarkAdvance = 2,
  kCheckpoint = 3,
  kRestore = 4,
  kQueueSaturation = 5,
  kMergePublish = 6,
};

[[nodiscard]] std::string_view event_kind_name(EventKind kind);
/// Inverse of event_kind_name; throws DataError on an unknown word.
[[nodiscard]] EventKind event_kind_from_name(std::string_view name);

/// One journal entry. `seq` is assigned by append(); everything else is the
/// caller's statement about what happened.
struct JournalEvent {
  std::uint64_t seq = 0;
  /// Wall milliseconds since the journal was constructed (stamped by the
  /// convenience log(); explicit appends may inject simulated time).
  double t_ms = 0.0;
  /// Shard index the event belongs to; -1 = cluster / engine level.
  std::int32_t shard = -1;
  EventKind kind = EventKind::kHealthTransition;
  /// Epoch the event refers to, when meaningful (kEpochClose,
  /// kWatermarkAdvance, kMergePublish); INT64_MIN = not applicable.
  std::int64_t epoch = kNoEpoch;
  /// Small numeric detail: the new health state word's ordinal, a close
  /// latency, a queue depth — whatever the kind's docs say.
  double value = 0.0;
  std::string message;

  static constexpr std::int64_t kNoEpoch =
      std::numeric_limits<std::int64_t>::min();
};

struct EventJournalConfig {
  /// Ring capacity in events. Appends beyond it evict the oldest event
  /// (counted in dropped()).
  std::size_t capacity = 4096;

  void validate() const;
};

class EventJournal {
 public:
  explicit EventJournal(EventJournalConfig config = {});

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Append one event with caller-supplied time (simulated-time test path).
  /// Returns the assigned sequence number.
  std::uint64_t append(JournalEvent event);

  /// Convenience append stamping the journal's own monotonic clock.
  std::uint64_t log(EventKind kind, std::int32_t shard,
                    std::int64_t epoch = JournalEvent::kNoEpoch,
                    double value = 0.0, std::string message = {});

  /// Wall milliseconds since construction (the t_ms clock log() stamps).
  [[nodiscard]] double now_ms() const;

  /// Retained events with seq >= from, oldest first; with `shard` set, only
  /// that shard's events (cluster-level events carry shard -1 and are
  /// matched by filtering for -1 explicitly, not implicitly included).
  [[nodiscard]] std::vector<JournalEvent> events_since(
      std::uint64_t from,
      std::optional<std::int32_t> shard = std::nullopt) const;

  /// Sequence number the next append will receive (== total ever appended).
  [[nodiscard]] std::uint64_t next_seq() const;
  /// Events evicted from the ring so far.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t size() const;

  /// Canonical botmeter.events.v1 document over events_since(from, shard).
  [[nodiscard]] json::Value to_json(
      std::uint64_t from = 0,
      std::optional<std::int32_t> shard = std::nullopt) const;

  /// Serialize to_json() to `path` (pretty-printed); throws DataError when
  /// the file cannot be written.
  void dump(const std::string& path) const;

  /// Configure the auto-dump target auto_dump() writes to. Empty disables.
  void set_dump_path(std::string path);
  /// Dump to the configured path, swallowing write failures (the flight
  /// recorder must never take the pipeline down with it). Returns true when
  /// a dump was written. No-op without a configured path.
  bool auto_dump() const;
  [[nodiscard]] std::string dump_path() const;

 private:
  EventJournalConfig config_;
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mu_;
  std::deque<JournalEvent> ring_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::string dump_path_;
};

}  // namespace botmeter::obs
