// Phase tracing for the BotMeter pipeline: wall-clock spans per stage
// (pool build, query generation, merge, cache replay, matching, estimation)
// recorded into a `TraceSession` and summarized per phase.
//
// Like the metrics registry, tracing is optional everywhere: a null
// `TraceSession*` makes `ScopedTimer` a no-op (it does not even read the
// clock). Wall times are inherently nondeterministic — they feed the run
// report only, never the simulation itself, so results stay bit-identical
// with tracing on or off.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace botmeter::obs {

/// Append-only sink of (phase, wall-milliseconds) spans. Thread-safe.
class TraceSession {
 public:
  struct Span {
    std::string phase;
    double millis = 0.0;
  };

  /// One per-phase aggregate row; min/median/max reuse the evaluation
  /// harness' percentile code (common/stats).
  struct PhaseSummary {
    std::string phase;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double p50_ms = 0.0;
    double max_ms = 0.0;
  };

  void record(std::string_view phase, double millis);

  /// Copy of every span, in recording order.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t span_count() const;

  /// Aggregates sorted by phase name.
  [[nodiscard]] std::vector<PhaseSummary> summary() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII wall timer: records one span into the session on destruction (or at
/// the first `stop()`). With a null session every operation is a no-op.
class ScopedTimer {
 public:
  ScopedTimer(TraceSession* session, std::string_view phase)
      : session_(session), phase_(session != nullptr ? phase : ""),
        start_(session != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { (void)stop(); }

  /// Record the span now; later calls (and the destructor) do nothing.
  /// Returns the elapsed milliseconds (0 when there is no session).
  double stop();

 private:
  TraceSession* session_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Render `summary()` as an aligned text table (for --trace / bench stderr
/// output). Returns an empty string when no spans were recorded.
[[nodiscard]] std::string format_phase_table(const TraceSession& session);

}  // namespace botmeter::obs
