// Span tracing for the BotMeter pipeline: wall-clock spans per stage
// (pool build, query generation, merge, cache replay, matching, estimation)
// recorded into a `TraceSession`, summarized per phase, and exportable as
// Chrome trace_event JSON so a run opens directly in Perfetto or
// chrome://tracing.
//
// Spans are hierarchical and carry the recording thread's stable ordinal
// (common/parallel.hpp), so per-chunk / per-shard work instrumented inside a
// WorkerPool body appears on that worker's own track, nested under the
// calling thread's enclosing phase by start/duration containment.
//
// Like the metrics registry, tracing is optional everywhere: a null
// `TraceSession*` makes `ScopedTimer` a no-op (it does not even read the
// clock), and so does an ended session (`end()`), so a timer may safely
// outlive the consumer that wanted its data — e.g. when the HTTP exporter
// thread outlives a tool's TraceSession. Wall times are inherently
// nondeterministic — they feed the run report and the trace file only, never
// the simulation itself, so results stay bit-identical with tracing on or
// off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace botmeter::obs {

/// Append-only sink of hierarchical wall-time spans. Thread-safe.
class TraceSession {
 public:
  struct Span {
    std::string phase;
    double millis = 0.0;
    /// Wall offset of the span start from the session's construction, ms.
    double start_ms = 0.0;
    /// Stable ordinal of the recording thread (common/parallel.hpp) — the
    /// track this span renders on.
    std::uint32_t thread = 0;
    /// Nesting depth at record time: 0 for a top-level span, 1 for a span
    /// opened inside one enclosing ScopedTimer on the same thread, ...
    std::uint32_t depth = 0;
    /// Cross-thread flow linkage (Perfetto flow events): `flow_out` draws an
    /// arrow from this span's end to the start of the span whose `flow_in`
    /// carries the same id. 0 = no linkage. Ids come from next_flow_id().
    std::uint64_t flow_in = 0;
    std::uint64_t flow_out = 0;
  };

  /// One per-phase aggregate row; min/median/max reuse the evaluation
  /// harness' percentile code (common/stats).
  struct PhaseSummary {
    std::string phase;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double p50_ms = 0.0;
    double max_ms = 0.0;
  };

  TraceSession() : origin_(std::chrono::steady_clock::now()) {}

  /// Record a span that ends now and lasted `millis`, on the calling
  /// thread's track at its current nesting depth.
  void record(std::string_view phase, double millis);
  /// Record a fully specified span (ScopedTimer's path).
  void record_span(std::string_view phase, double start_ms, double millis,
                   std::uint32_t thread, std::uint32_t depth);
  /// Record a span carrying flow linkage: `flow_out` starts an arrow at this
  /// span's end, `flow_in` terminates one at its start (0 = none). The two
  /// halves of one arrow must pass the same id, minted by next_flow_id().
  void record_flow_span(std::string_view phase, double start_ms, double millis,
                        std::uint32_t thread, std::uint64_t flow_in,
                        std::uint64_t flow_out);

  /// Mint a fresh nonzero flow id (process-wide, so ids never collide even
  /// across sessions written into one trace file).
  [[nodiscard]] static std::uint64_t next_flow_id();

  /// Seal the session: every later record (including from ScopedTimers
  /// still in flight on other threads) is dropped. Irreversible.
  void end() { ended_.store(true, std::memory_order_release); }
  [[nodiscard]] bool ended() const {
    return ended_.load(std::memory_order_acquire);
  }

  /// Wall milliseconds elapsed since the session was constructed.
  [[nodiscard]] double now_ms() const;

  /// Copy of every span, in recording order.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t span_count() const;

  /// Aggregates sorted by phase name.
  [[nodiscard]] std::vector<PhaseSummary> summary() const;

  void clear();

 private:
  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> ended_{false};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII wall timer: records one span into the session on destruction (or at
/// the first `stop()`). With a null or ended session every operation is a
/// no-op; a moved-from timer is inert. Safe to construct inside WorkerPool
/// bodies — the span lands on the worker's own track.
class ScopedTimer {
 public:
  ScopedTimer(TraceSession* session, std::string_view phase);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer(ScopedTimer&& other) noexcept;
  ScopedTimer& operator=(ScopedTimer&& other) noexcept;

  ~ScopedTimer() { (void)stop(); }

  /// Record the span now; later calls (and the destructor) do nothing.
  /// Returns the elapsed milliseconds (0 when there is no session).
  double stop();

 private:
  TraceSession* session_ = nullptr;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
  double start_ms_ = 0.0;
  std::uint32_t depth_ = 0;
};

/// Render `summary()` as an aligned text table (for --trace / bench stderr
/// output). Returns an empty string when no spans were recorded.
[[nodiscard]] std::string format_phase_table(const TraceSession& session);

/// The session's spans in the Chrome trace_event JSON format understood by
/// Perfetto and chrome://tracing: one complete ("ph":"X") event per span
/// with microsecond ts/dur, one track per recording thread, plus
/// thread_name metadata naming each track from common/parallel's labels.
/// Spans carrying flow ids additionally emit flow start ("ph":"s", at the
/// producing span's end) and flow finish ("ph":"f", binding point "e", at
/// the consuming span's start) events under the "botmeter.flow" category —
/// the arrows linking producer batches to shard ingests and epoch closes to
/// merge publishes across threads.
[[nodiscard]] json::Value chrome_trace_json(const TraceSession& session);

/// Serialize chrome_trace_json() to `path` (pretty-printed); throws
/// DataError when the file cannot be written.
void write_chrome_trace_file(const TraceSession& session,
                             const std::string& path);

}  // namespace botmeter::obs
