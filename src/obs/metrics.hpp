// The BotMeter metrics registry: named counters, gauges, and fixed-bucket
// histograms shared by every pipeline stage (simulator, DNS hierarchy,
// matcher, estimators).
//
// Design constraints, in order:
//   1. *Optional.* Every instrumentation point in the pipeline takes a
//      nullable `MetricsRegistry*`; a null registry means no-op — the hot
//      paths pay a single pointer test per epoch, nothing per query.
//   2. *Cheap.* Handles (`Counter&`, `Gauge&`, `Histogram&`) are resolved
//      once (one lock + map lookup) and stay valid for the registry's
//      lifetime; increments are single relaxed atomic RMWs. Hot loops go
//      further and tally into plain locals (the simulator's per-chunk /
//      per-shard accumulators), flushing one bulk `add` per epoch — the
//      thread-local-shard pattern with the merge done in canonical order.
//   3. *Deterministic.* Counter and histogram-bucket totals are integer sums,
//      so they are identical however concurrent adds interleave and however
//      many workers produced them; `snapshot()` orders every series by
//      (name, label). The one caveat is `Histogram::sum()`: a floating-point
//      accumulation whose rounding may depend on add order (documented
//      there).
//
// Series may carry one label value (e.g. the epoch number or a server id),
// giving per-epoch / per-server breakdowns next to the plain totals; see
// obs/report.hpp for how families are exported.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace botmeter::obs {

/// Monotonic event count. Concurrent `add`s are safe and, being integer
/// sums, order-independent: the total is bit-identical for any schedule.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value (e.g. a population estimate, a cache
/// entry count at epoch end).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` (strictly increasing) plus an
/// implicit overflow bucket. An observation lands in the first bucket whose
/// bound is >= the value. Bucket counts and the observation count are
/// integer sums (deterministic under concurrency); `sum()` is a
/// floating-point accumulation whose last-ulp rounding may depend on the
/// order of concurrent observes.
///
/// Synchronization contract: `observe` updates several fields, so a reader
/// interleaving the individual accessors (`bucket_count`/`count`/`sum`) with
/// concurrent observes may see a half-applied observation — count already
/// incremented, its bucket not yet. A live scrape thread must therefore read
/// through `sample()` (or `MetricsRegistry::snapshot()`, which uses it):
/// observe and sample share the histogram's mutex, so every sample is a
/// whole number of observations. The individual accessors remain lock-free
/// for tests and single-threaded consumers.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double x) noexcept;

  [[nodiscard]] std::span<const double> upper_bounds() const { return bounds_; }
  /// `i` in [0, upper_bounds().size()]; the last index is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_size() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  struct Sample {
    std::vector<std::uint64_t> counts;  // upper_bounds().size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Consistent copy of the counts/count/sum triple: taken under the same
  /// mutex `observe` holds, so it always reflects a whole number of
  /// observations (sum of `counts` == `count`).
  [[nodiscard]] Sample sample() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;  // serializes observe against sample
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` strictly increasing bounds `start, start*factor, ...` — the
/// conventional exponential bucket layout for latency histograms.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime
  /// (map nodes are stable); creation takes the registry lock, so resolve
  /// handles outside per-query loops.
  Counter& counter(std::string_view name) { return counter(name, {}); }
  Counter& counter(std::string_view name, std::string_view label);
  Gauge& gauge(std::string_view name) { return gauge(name, {}); }
  Gauge& gauge(std::string_view name, std::string_view label);
  /// Histograms are unlabeled. Re-getting an existing histogram with
  /// different bounds is a ConfigError.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  struct CounterSample {
    std::string name;
    std::string label;  // empty for plain series
    std::uint64_t value = 0;

    friend bool operator==(const CounterSample&, const CounterSample&) = default;
  };
  struct GaugeSample {
    std::string name;
    std::string label;
    double value = 0.0;

    friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    double sum = 0.0;

    friend bool operator==(const HistogramSample&, const HistogramSample&) = default;
  };

  /// A copy of every series, sorted by (name, label). Safe to call from a
  /// scrape thread while instrumented threads are still writing: series
  /// discovery holds the registry mutex, counter/gauge values are single
  /// atomic loads, and each histogram is sampled under its own observe
  /// mutex, so no individual series is ever torn (a histogram's buckets
  /// always sum to its count). *Cross*-series consistency is the one thing a
  /// live snapshot does not promise — e.g. a hit counter may already include
  /// an event whose companion miss counter does not; take the snapshot from
  /// a quiescent point (between epochs, after a run) when exact cross-series
  /// totals matter.
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  using SeriesKey = std::pair<std::string, std::string>;  // (name, label)

  mutable std::mutex mu_;
  std::map<SeriesKey, Counter> counters_;
  std::map<SeriesKey, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace botmeter::obs
