#include "obs/report.hpp"

#include <fstream>
#include <utility>

#include "common/error.hpp"

namespace botmeter::obs {

namespace {

/// Fold (name, label, value) samples into the exported shape: plain series
/// become bare values, labeled families become label -> value objects. The
/// samples arrive sorted by (name, label), so a family's members are
/// contiguous and the output is deterministic.
template <typename SampleT, typename ToValueT>
json::Value fold_families(const std::vector<SampleT>& samples,
                          const ToValueT& to_value) {
  json::Object out;
  for (std::size_t i = 0; i < samples.size();) {
    const std::string& name = samples[i].name;
    std::size_t end = i;
    bool any_labeled = false;
    while (end < samples.size() && samples[end].name == name) {
      any_labeled |= !samples[end].label.empty();
      ++end;
    }
    if (!any_labeled) {
      // end - i == 1: labels are unique per (name, label) key, and the only
      // label in this run is "".
      out.emplace(name, to_value(samples[i].value));
    } else {
      json::Object family;
      for (std::size_t k = i; k < end; ++k) {
        family.emplace(samples[k].label.empty() ? "_total" : samples[k].label,
                       to_value(samples[k].value));
      }
      out.emplace(name, json::Value{std::move(family)});
    }
    i = end;
  }
  return json::Value{std::move(out)};
}

}  // namespace

json::Value metrics_json(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  json::Object out;
  out.emplace("counters",
              fold_families(snap.counters, [](std::uint64_t v) {
                return json::Value{static_cast<double>(v)};
              }));
  out.emplace("gauges", fold_families(snap.gauges, [](double v) {
                return json::Value{v};
              }));
  json::Object histograms;
  for (const MetricsRegistry::HistogramSample& sample : snap.histograms) {
    json::Object hist;
    json::Array bounds;
    for (double b : sample.upper_bounds) bounds.emplace_back(b);
    json::Array counts;
    for (std::uint64_t c : sample.counts) {
      counts.emplace_back(static_cast<double>(c));
    }
    hist.emplace("upper_bounds", json::Value{std::move(bounds)});
    hist.emplace("counts", json::Value{std::move(counts)});
    hist.emplace("count", json::Value{static_cast<double>(sample.count)});
    hist.emplace("sum", json::Value{sample.sum});
    histograms.emplace(sample.name, json::Value{std::move(hist)});
  }
  out.emplace("histograms", json::Value{std::move(histograms)});
  return json::Value{std::move(out)};
}

json::Value trace_json(const TraceSession& session) {
  json::Object out;
  json::Array phases;
  for (const TraceSession::PhaseSummary& row : session.summary()) {
    json::Object phase;
    phase.emplace("phase", json::Value{row.phase});
    phase.emplace("count", json::Value{static_cast<double>(row.count)});
    phase.emplace("total_ms", json::Value{row.total_ms});
    phase.emplace("mean_ms", json::Value{row.mean_ms});
    phase.emplace("min_ms", json::Value{row.min_ms});
    phase.emplace("p50_ms", json::Value{row.p50_ms});
    phase.emplace("max_ms", json::Value{row.max_ms});
    phases.emplace_back(std::move(phase));
  }
  out.emplace("phases", json::Value{std::move(phases)});
  json::Array spans;
  for (const TraceSession::Span& span : session.spans()) {
    json::Object s;
    s.emplace("phase", json::Value{span.phase});
    s.emplace("ms", json::Value{span.millis});
    spans.emplace_back(std::move(s));
  }
  out.emplace("spans", json::Value{std::move(spans)});
  return json::Value{std::move(out)};
}

json::Value report_json(const RunReport& report) {
  json::Object out;
  out.emplace("schema", json::Value{std::string("botmeter.run_report.v1")});
  out.emplace("tool", json::Value{report.tool});
  out.emplace("config", report.config);
  if (report.metrics != nullptr) {
    const json::Value metrics = metrics_json(*report.metrics);
    for (const auto& [key, value] : metrics.as_object()) {
      out.emplace(key, value);
    }
  }
  if (report.trace != nullptr) {
    out.emplace("trace", trace_json(*report.trace));
  }
  return json::Value{std::move(out)};
}

std::string export_json(const RunReport& report) {
  return json::write_pretty(report_json(report), 2);
}

void write_report_file(const RunReport& report, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw DataError("run report: cannot open " + path);
  file << export_json(report);
  if (!file) throw DataError("run report: failed writing " + path);
}

}  // namespace botmeter::obs
