#include "obs/expose.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace botmeter::obs {

namespace {

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral values print bare (the common case for counters); everything
  // else uses the shortest representation that round-trips.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<std::int64_t>(v));
    (void)ec;
    return std::string(buf, ptr);
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

std::string format_number(std::uint64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& label_block, const std::string& value) {
  out += name;
  out += label_block;
  out += ' ';
  out += value;
  out += '\n';
}

std::string series_label_block(const std::string& label) {
  if (label.empty()) return {};
  return "{series=\"" + escape_label_value(label) + "\"}";
}

/// Walk samples grouped by name (they arrive sorted by (name, label)) and
/// emit one TYPE header per group.
template <typename SampleT, typename EmitT>
void render_family(std::string& out, const std::vector<SampleT>& samples,
                   const char* type, const EmitT& emit) {
  for (std::size_t i = 0; i < samples.size();) {
    const std::string name = sanitize_name(samples[i].name);
    out += "# TYPE " + name + " " + type + "\n";
    for (; i < samples.size() && sanitize_name(samples[i].name) == name; ++i) {
      emit(out, name, samples[i]);
    }
  }
}

}  // namespace

std::string expose_prometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  render_family(out, snapshot.counters, "counter",
                [](std::string& text, const std::string& name,
                   const MetricsRegistry::CounterSample& sample) {
                  append_sample(text, name, series_label_block(sample.label),
                                format_number(sample.value));
                });
  render_family(out, snapshot.gauges, "gauge",
                [](std::string& text, const std::string& name,
                   const MetricsRegistry::GaugeSample& sample) {
                  append_sample(text, name, series_label_block(sample.label),
                                format_number(sample.value));
                });
  for (const MetricsRegistry::HistogramSample& hist : snapshot.histograms) {
    const std::string name = sanitize_name(hist.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      cumulative += hist.counts[i];
      append_sample(out, name + "_bucket",
                    "{le=\"" + format_number(hist.upper_bounds[i]) + "\"}",
                    format_number(cumulative));
    }
    cumulative += hist.counts.back();  // the overflow bucket
    append_sample(out, name + "_bucket", "{le=\"+Inf\"}",
                  format_number(cumulative));
    append_sample(out, name + "_sum", {}, format_number(hist.sum));
    append_sample(out, name + "_count", {}, format_number(hist.count));
  }
  return out;
}

MetricsRegistry::Snapshot delta_snapshot(
    const MetricsRegistry::Snapshot& current,
    const MetricsRegistry::Snapshot& baseline) {
  MetricsRegistry::Snapshot out;

  std::map<std::pair<std::string, std::string>, std::uint64_t> base_counters;
  for (const auto& sample : baseline.counters) {
    base_counters.emplace(std::make_pair(sample.name, sample.label),
                          sample.value);
  }
  out.counters.reserve(current.counters.size());
  for (const auto& sample : current.counters) {
    auto delta = sample;
    const auto it = base_counters.find({sample.name, sample.label});
    if (it != base_counters.end() && it->second <= sample.value) {
      delta.value = sample.value - it->second;
    }
    out.counters.push_back(std::move(delta));
  }

  out.gauges = current.gauges;

  std::map<std::string, const MetricsRegistry::HistogramSample*> base_hists;
  for (const auto& sample : baseline.histograms) {
    base_hists.emplace(sample.name, &sample);
  }
  out.histograms.reserve(current.histograms.size());
  for (const auto& sample : current.histograms) {
    auto delta = sample;
    const auto it = base_hists.find(sample.name);
    if (it != base_hists.end() &&
        it->second->upper_bounds == sample.upper_bounds &&
        it->second->count <= sample.count) {
      const MetricsRegistry::HistogramSample& base = *it->second;
      for (std::size_t i = 0; i < delta.counts.size(); ++i) {
        delta.counts[i] -= std::min(base.counts[i], delta.counts[i]);
      }
      delta.count = sample.count - base.count;
      delta.sum = sample.sum - base.sum;
    }
    out.histograms.push_back(std::move(delta));
  }
  return out;
}

std::vector<ExpositionSample> parse_exposition(std::string_view text) {
  std::vector<ExpositionSample> out;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    ExpositionSample sample;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0 || i == line.size()) {
      throw DataError("exposition line " + std::to_string(line_no) +
                      ": expected '<name>[{labels}] <value>'");
    }
    sample.name = std::string(line.substr(0, i));
    if (line[i] == '{') {
      // Scan to the closing brace, honoring backslash escapes in quoted
      // label values (a '}' inside a value must not terminate the block).
      std::size_t j = i + 1;
      bool in_quote = false;
      for (; j < line.size(); ++j) {
        const char c = line[j];
        if (in_quote && c == '\\') {
          ++j;  // skip the escaped character
        } else if (c == '"') {
          in_quote = !in_quote;
        } else if (!in_quote && c == '}') {
          break;
        }
      }
      if (j >= line.size()) {
        throw DataError("exposition line " + std::to_string(line_no) +
                        ": unterminated label block");
      }
      sample.labels = std::string(line.substr(i + 1, j - i - 1));
      i = j + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      throw DataError("exposition line " + std::to_string(line_no) +
                      ": expected ' <value>' after the name");
    }
    const std::string value_text(line.substr(i + 1));
    char* value_end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &value_end);
    if (value_end == value_text.c_str() ||
        *value_end != '\0') {
      throw DataError("exposition line " + std::to_string(line_no) +
                      ": malformed value '" + value_text + "'");
    }
    out.push_back(std::move(sample));
  }
  return out;
}

RateTracker::RateTracker(std::vector<std::string> counter_names)
    : names_(std::move(counter_names)) {}

void RateTracker::tick(MetricsRegistry::Snapshot& snapshot, double now_ms) {
  // The baseline must be the un-augmented snapshot: copy before appending.
  const MetricsRegistry::Snapshot baseline = snapshot;

  // First poll: no baseline to difference against, so any rate would be an
  // artifact — the counter's whole lifetime divided by an arbitrary dt (the
  // classic first-scrape spike). Emit nothing; rates appear once two
  // samples exist.
  if (!have_previous_) {
    previous_ = baseline;
    previous_ms_ = now_ms;
    have_previous_ = true;
    return;
  }

  const double dt_s = (now_ms - previous_ms_) / 1000.0;
  MetricsRegistry::Snapshot delta;
  if (dt_s > 0.0) delta = delta_snapshot(snapshot, previous_);

  for (const std::string& name : names_) {
    bool found = false;
    for (const MetricsRegistry::CounterSample& counter : snapshot.counters) {
      if (counter.name != name) continue;
      found = true;
      double rate = 0.0;
      if (dt_s > 0.0) {
        for (const MetricsRegistry::CounterSample& d : delta.counters) {
          if (d.name == counter.name && d.label == counter.label) {
            rate = static_cast<double>(d.value) / dt_s;
            break;
          }
        }
      }
      snapshot.gauges.push_back({name + ".per_sec", counter.label, rate});
    }
    // Emit the plain series even before its counter exists, so dashboards
    // see the gauge from the very first scrape.
    if (!found) snapshot.gauges.push_back({name + ".per_sec", "", 0.0});
  }
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            [](const MetricsRegistry::GaugeSample& a,
               const MetricsRegistry::GaugeSample& b) {
              return std::tie(a.name, a.label) < std::tie(b.name, b.label);
            });

  previous_ = baseline;
  previous_ms_ = now_ms;
  have_previous_ = true;
}

}  // namespace botmeter::obs
