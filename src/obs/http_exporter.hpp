// Dependency-free HTTP scrape endpoint for live telemetry.
//
// A `HttpExporter` owns one background thread that accepts loopback TCP
// connections and answers `GET` requests from a fixed route table — in
// practice `/metrics` (Prometheus text exposition of a MetricsRegistry
// snapshot) and `/healthz` (the stream health state). It is deliberately
// tiny: blocking HTTP/1.1 over POSIX sockets, one connection at a time,
// `Connection: close` on every response, request parsing bounded to a few
// KiB so a misbehaving client cannot balloon memory.
//
// Observability invariants (the PR 2 contract):
//   - The exporter thread only *reads*: route handlers take registry
//     snapshots / monitor states, never mutate pipeline state, so attaching
//     an exporter can never change simulation or analysis results.
//   - Handlers run on the exporter thread. Anything they touch must be
//     thread-safe against the instrumented threads (MetricsRegistry
//     snapshots and StreamHealthMonitor reads are; raw engine accessors are
//     not — sample them from the ingest thread instead).
//   - `port = 0` binds an ephemeral port (reported by `port()`), so tests
//     and CI never collide on a fixed number.
//
// Shutdown is prompt and clean: `stop()` (or the destructor) wakes the
// accept loop through a self-pipe, the thread finishes any in-flight
// response, and the listening socket closes before `stop()` returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace botmeter::obs {

struct HttpExporterConfig {
  /// TCP port to listen on; 0 binds an ephemeral port.
  std::uint16_t port = 0;
  /// Address to bind. Defaults to loopback: telemetry is unauthenticated,
  /// so exposing it beyond the host is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
};

/// One parsed GET request as handlers see it. Routing matches `path`
/// exactly; anything after '?' lands in `query` so handlers can take
/// parameters (`/landscape/history?from=3&to=9`) without the route table
/// caring.
struct HttpRequest {
  std::string path;
  /// Raw query string (without the '?'); empty when the request had none.
  std::string query;

  /// Value of the query parameter `key` ("a=1&b=2" → param("b") == "2"),
  /// percent-decoded with '+' as space; nullopt when absent. A bare key
  /// with no '=' yields an empty string.
  [[nodiscard]] std::optional<std::string> param(std::string_view key) const;
};

/// One HTTP response. Handlers fill status/content_type/body; the exporter
/// adds the status line, Content-Type, Content-Length, and Connection
/// headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpExporter {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bind, listen, and start the serving thread. Routes map exact request
  /// paths ("/metrics") to handlers; unknown paths answer 404, non-GET
  /// methods 405, malformed or oversized requests 400. Throws DataError
  /// when the socket cannot be created or bound.
  HttpExporter(const HttpExporterConfig& config,
               std::map<std::string, Handler> routes);

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  ~HttpExporter();

  /// The actually bound port (resolves port 0 to the ephemeral choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (including error responses). Monotonic;
  /// readable from any thread.
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Stop accepting, join the serving thread, close the socket. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: stop() wakes the poll()
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace botmeter::obs
