#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/stats.hpp"

namespace botmeter::obs {

void TraceSession::record(std::string_view phase, double millis) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::string(phase), millis});
}

std::vector<TraceSession::Span> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t TraceSession::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSession::PhaseSummary> TraceSession::summary() const {
  std::map<std::string, std::vector<double>> by_phase;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& span : spans_) {
      by_phase[span.phase].push_back(span.millis);
    }
  }
  std::vector<PhaseSummary> out;
  out.reserve(by_phase.size());
  for (const auto& [phase, samples] : by_phase) {
    PhaseSummary row;
    row.phase = phase;
    row.count = samples.size();
    for (double s : samples) row.total_ms += s;
    row.mean_ms = row.total_ms / static_cast<double>(samples.size());
    row.min_ms = percentile(samples, 0.0);
    row.p50_ms = percentile(samples, 50.0);
    row.max_ms = percentile(samples, 100.0);
    out.push_back(std::move(row));
  }
  return out;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

double ScopedTimer::stop() {
  if (session_ == nullptr) return 0.0;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double millis =
      std::chrono::duration<double, std::milli>(elapsed).count();
  session_->record(phase_, millis);
  session_ = nullptr;
  return millis;
}

std::string format_phase_table(const TraceSession& session) {
  const std::vector<TraceSession::PhaseSummary> rows = session.summary();
  if (rows.empty()) return {};
  std::size_t width = 5;  // "phase"
  for (const auto& row : rows) width = std::max(width, row.phase.size());
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %8s %12s %10s %10s %10s\n",
                static_cast<int>(width), "phase", "count", "total_ms",
                "mean_ms", "p50_ms", "max_ms");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-*s %8llu %12.3f %10.3f %10.3f %10.3f\n",
                  static_cast<int>(width), row.phase.c_str(),
                  static_cast<unsigned long long>(row.count), row.total_ms,
                  row.mean_ms, row.p50_ms, row.max_ms);
    out += line;
  }
  return out;
}

}  // namespace botmeter::obs
