#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace botmeter::obs {

namespace {

/// Per-thread nesting depth of live ScopedTimers. Tracked per thread, not
/// per (session, thread): interleaving timers of two sessions on one thread
/// shares the depth counter, which only ever makes nesting deeper than
/// strictly necessary — never wrong for a single session, the common case.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

double TraceSession::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void TraceSession::record(std::string_view phase, double millis) {
  record_span(phase, now_ms() - millis, millis, this_thread_ordinal(),
              t_span_depth);
}

void TraceSession::record_span(std::string_view phase, double start_ms,
                               double millis, std::uint32_t thread,
                               std::uint32_t depth) {
  if (ended()) return;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(
      Span{std::string(phase), millis, start_ms, thread, depth, 0, 0});
}

void TraceSession::record_flow_span(std::string_view phase, double start_ms,
                                    double millis, std::uint32_t thread,
                                    std::uint64_t flow_in,
                                    std::uint64_t flow_out) {
  if (ended()) return;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::string(phase), millis, start_ms, thread, 0,
                        flow_in, flow_out});
}

std::uint64_t TraceSession::next_flow_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceSession::Span> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t TraceSession::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSession::PhaseSummary> TraceSession::summary() const {
  std::map<std::string, std::vector<double>> by_phase;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& span : spans_) {
      by_phase[span.phase].push_back(span.millis);
    }
  }
  std::vector<PhaseSummary> out;
  out.reserve(by_phase.size());
  for (const auto& [phase, samples] : by_phase) {
    PhaseSummary row;
    row.phase = phase;
    row.count = samples.size();
    for (double s : samples) row.total_ms += s;
    row.mean_ms = row.total_ms / static_cast<double>(samples.size());
    row.min_ms = percentile(samples, 0.0);
    row.p50_ms = percentile(samples, 50.0);
    row.max_ms = percentile(samples, 100.0);
    out.push_back(std::move(row));
  }
  return out;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

ScopedTimer::ScopedTimer(TraceSession* session, std::string_view phase)
    : session_(session != nullptr && !session->ended() ? session : nullptr) {
  if (session_ == nullptr) return;
  phase_ = phase;
  start_ = std::chrono::steady_clock::now();
  start_ms_ = session_->now_ms();
  depth_ = t_span_depth++;
}

ScopedTimer::ScopedTimer(ScopedTimer&& other) noexcept
    : session_(other.session_), phase_(std::move(other.phase_)),
      start_(other.start_), start_ms_(other.start_ms_), depth_(other.depth_) {
  other.session_ = nullptr;
}

ScopedTimer& ScopedTimer::operator=(ScopedTimer&& other) noexcept {
  if (this != &other) {
    (void)stop();
    session_ = other.session_;
    phase_ = std::move(other.phase_);
    start_ = other.start_;
    start_ms_ = other.start_ms_;
    depth_ = other.depth_;
    other.session_ = nullptr;
  }
  return *this;
}

double ScopedTimer::stop() {
  if (session_ == nullptr) return 0.0;
  // The depth counter must unwind even when the move crossed threads (it
  // normally never does; ScopedTimer is a lexical-scope guard).
  if (t_span_depth > 0) --t_span_depth;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double millis =
      std::chrono::duration<double, std::milli>(elapsed).count();
  session_->record_span(phase_, start_ms_, millis, this_thread_ordinal(),
                        depth_);
  session_ = nullptr;
  return millis;
}

std::string format_phase_table(const TraceSession& session) {
  const std::vector<TraceSession::PhaseSummary> rows = session.summary();
  if (rows.empty()) return {};
  std::size_t width = 5;  // "phase"
  for (const auto& row : rows) width = std::max(width, row.phase.size());
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %8s %12s %10s %10s %10s\n",
                static_cast<int>(width), "phase", "count", "total_ms",
                "mean_ms", "p50_ms", "max_ms");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-*s %8llu %12.3f %10.3f %10.3f %10.3f\n",
                  static_cast<int>(width), row.phase.c_str(),
                  static_cast<unsigned long long>(row.count), row.total_ms,
                  row.mean_ms, row.p50_ms, row.max_ms);
    out += line;
  }
  return out;
}

json::Value chrome_trace_json(const TraceSession& session) {
  const std::vector<TraceSession::Span> spans = session.spans();

  json::Array events;
  std::set<std::uint32_t> threads;
  for (const TraceSession::Span& span : spans) threads.insert(span.thread);

  // One thread_name metadata event per track, so Perfetto shows "main" /
  // "worker-k" instead of bare ordinals.
  for (const std::uint32_t tid : threads) {
    json::Object args;
    args.emplace("name", json::Value(thread_label(tid)));
    json::Object meta;
    meta.emplace("name", json::Value(std::string("thread_name")));
    meta.emplace("ph", json::Value(std::string("M")));
    meta.emplace("pid", json::Value(1.0));
    meta.emplace("tid", json::Value(static_cast<double>(tid)));
    meta.emplace("args", json::Value(std::move(args)));
    events.emplace_back(std::move(meta));
  }

  for (const TraceSession::Span& span : spans) {
    json::Object event;
    event.emplace("cat", json::Value(std::string("botmeter")));
    event.emplace("name", json::Value(span.phase));
    event.emplace("ph", json::Value(std::string("X")));
    event.emplace("pid", json::Value(1.0));
    event.emplace("tid", json::Value(static_cast<double>(span.thread)));
    // trace_event timestamps are microseconds.
    event.emplace("ts", json::Value(span.start_ms * 1000.0));
    event.emplace("dur", json::Value(span.millis * 1000.0));
    events.emplace_back(std::move(event));

    // Flow halves: the start anchors at the producing span's END, the
    // finish (binding point "e" = enclosing slice) at the consuming span's
    // START — so the viewer draws the arrow across threads in time order.
    if (span.flow_out != 0) {
      json::Object flow;
      flow.emplace("cat", json::Value(std::string("botmeter.flow")));
      flow.emplace("name", json::Value(std::string("flow")));
      flow.emplace("ph", json::Value(std::string("s")));
      flow.emplace("id", json::Value(static_cast<double>(span.flow_out)));
      flow.emplace("pid", json::Value(1.0));
      flow.emplace("tid", json::Value(static_cast<double>(span.thread)));
      flow.emplace("ts", json::Value((span.start_ms + span.millis) * 1000.0));
      events.emplace_back(std::move(flow));
    }
    if (span.flow_in != 0) {
      json::Object flow;
      flow.emplace("bp", json::Value(std::string("e")));
      flow.emplace("cat", json::Value(std::string("botmeter.flow")));
      flow.emplace("name", json::Value(std::string("flow")));
      flow.emplace("ph", json::Value(std::string("f")));
      flow.emplace("id", json::Value(static_cast<double>(span.flow_in)));
      flow.emplace("pid", json::Value(1.0));
      flow.emplace("tid", json::Value(static_cast<double>(span.thread)));
      flow.emplace("ts", json::Value(span.start_ms * 1000.0));
      events.emplace_back(std::move(flow));
    }
  }

  json::Object root;
  root.emplace("displayTimeUnit", json::Value(std::string("ms")));
  root.emplace("traceEvents", json::Value(std::move(events)));
  return json::Value(std::move(root));
}

void write_chrome_trace_file(const TraceSession& session,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file) throw DataError("chrome trace: cannot open " + path);
  file << json::write_pretty(chrome_trace_json(session));
  if (!file) throw DataError("chrome trace: failed writing " + path);
}

}  // namespace botmeter::obs
