#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace botmeter::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw ConfigError("Histogram: at least one upper bound is required");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw ConfigError("Histogram: upper bounds must be strictly increasing");
  }
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  // The mutex makes the three updates atomic with respect to sample() (a
  // live scrape must never see count ahead of the buckets); the fields stay
  // atomics so the lock-free accessors remain valid.
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

Histogram::Sample Histogram::sample() const {
  std::lock_guard<std::mutex> lock(mu_);
  Sample out;
  out.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    out.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw ConfigError(
        "exponential_bounds: start > 0, factor > 1, count > 0 required");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[SeriesKey{std::string(name), std::string(label)}];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[SeriesKey{std::string(name), std::string(label)}];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), upper_bounds).first;
    return it->second;
  }
  const std::span<const double> existing = it->second.upper_bounds();
  if (!std::equal(existing.begin(), existing.end(), upper_bounds.begin(),
                  upper_bounds.end())) {
    throw ConfigError("MetricsRegistry: histogram '" + std::string(name) +
                      "' re-registered with different bounds");
  }
  return it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snap.counters.push_back(CounterSample{key.first, key.second, counter.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSample{key.first, key.second, gauge.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.upper_bounds.assign(hist.upper_bounds().begin(),
                               hist.upper_bounds().end());
    Histogram::Sample consistent = hist.sample();
    sample.counts = std::move(consistent.counts);
    sample.count = consistent.count;
    sample.sum = consistent.sum;
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

}  // namespace botmeter::obs
