#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace botmeter::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw ConfigError("Histogram: at least one upper bound is required");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw ConfigError("Histogram: upper bounds must be strictly increasing");
  }
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[SeriesKey{std::string(name), std::string(label)}];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[SeriesKey{std::string(name), std::string(label)}];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), upper_bounds).first;
    return it->second;
  }
  const std::span<const double> existing = it->second.upper_bounds();
  if (!std::equal(existing.begin(), existing.end(), upper_bounds.begin(),
                  upper_bounds.end())) {
    throw ConfigError("MetricsRegistry: histogram '" + std::string(name) +
                      "' re-registered with different bounds");
  }
  return it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snap.counters.push_back(CounterSample{key.first, key.second, counter.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSample{key.first, key.second, gauge.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.upper_bounds.assign(hist.upper_bounds().begin(),
                               hist.upper_bounds().end());
    sample.counts.reserve(hist.bucket_size());
    for (std::size_t i = 0; i < hist.bucket_size(); ++i) {
      sample.counts.push_back(hist.bucket_count(i));
    }
    sample.count = hist.count();
    sample.sum = hist.sum();
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

}  // namespace botmeter::obs
