#include "obs/lag_tracker.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace botmeter::obs {

namespace {

constexpr const char* kSchema = "botmeter.lag.v1";

constexpr LagStage kAllStages[kLagStageCount] = {
    LagStage::kProducerBatch, LagStage::kQueueWait, LagStage::kShardIngest,
    LagStage::kEpochClose, LagStage::kMergePublish};

}  // namespace

std::string_view lag_stage_name(LagStage stage) {
  switch (stage) {
    case LagStage::kProducerBatch:
      return "producer_batch";
    case LagStage::kQueueWait:
      return "queue_wait";
    case LagStage::kShardIngest:
      return "shard_ingest";
    case LagStage::kEpochClose:
      return "epoch_close";
    case LagStage::kMergePublish:
      return "merge_publish";
  }
  throw DataError("unknown LagStage ordinal");
}

const std::vector<double>& LagTracker::bounds() {
  // 0.01 ms .. ~42 s in x4 steps: sub-millisecond queue hops through
  // multi-second straggler waits land in distinct buckets.
  static const std::vector<double> kBounds = exponential_bounds(0.01, 4.0, 12);
  return kBounds;
}

LagTracker::LagTracker(std::size_t shard_count, std::size_t straggler_capacity)
    : shard_count_(shard_count), straggler_capacity_(straggler_capacity) {
  if (shard_count_ == 0) {
    throw ConfigError("LagTracker shard_count must be positive");
  }
  if (straggler_capacity_ == 0) {
    throw ConfigError("LagTracker straggler_capacity must be positive");
  }
  stages_.resize(shard_count_ * kLagStageCount);
  for (StageAcc& acc : stages_) {
    acc.buckets.assign(bounds().size() + 1, 0);
  }
}

void LagTracker::record(std::size_t shard, LagStage stage, double ms) {
  if (shard >= shard_count_) {
    throw ConfigError("LagTracker.record: shard index out of range");
  }
  const double clamped = ms < 0.0 ? 0.0 : ms;
  const std::vector<double>& b = bounds();
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), clamped) - b.begin());
  std::lock_guard<std::mutex> lock(mu_);
  StageAcc& acc =
      stages_[shard * kLagStageCount + static_cast<std::size_t>(stage)];
  ++acc.count;
  acc.total_ms += clamped;
  acc.max_ms = std::max(acc.max_ms, clamped);
  ++acc.buckets[bucket];
}

void LagTracker::note_shard_close(std::int64_t epoch, std::size_t shard,
                                  double now_ms) {
  if (shard >= shard_count_) {
    throw ConfigError("LagTracker.note_shard_close: shard index out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_closes_[epoch][shard] = now_ms;
}

void LagTracker::note_merge(std::int64_t epoch, double now_ms) {
  std::map<std::size_t, double> closes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_closes_.find(epoch);
    if (it == pending_closes_.end()) return;
    closes = std::move(it->second);
    pending_closes_.erase(it);
  }
  StragglerRow row;
  row.epoch = epoch;
  row.merge_ms = now_ms;
  bool first = true;
  for (const auto& [shard, close_ms] : closes) {
    record(shard, LagStage::kMergePublish,
           now_ms > close_ms ? now_ms - close_ms : 0.0);
    if (first || close_ms < row.first_close_ms) row.first_close_ms = close_ms;
    if (first || close_ms > row.last_close_ms) {
      row.last_close_ms = close_ms;
      row.straggler_shard = shard;
    }
    first = false;
  }
  if (first) return;  // no contributing shards recorded
  row.straggle_ms = row.last_close_ms - row.first_close_ms;
  std::lock_guard<std::mutex> lock(mu_);
  stragglers_.push_back(row);
  if (stragglers_.size() > straggler_capacity_) stragglers_.pop_front();
}

LagStageSample LagTracker::stage_sample(std::size_t shard,
                                        LagStage stage) const {
  if (shard >= shard_count_) {
    throw ConfigError("LagTracker.stage_sample: shard index out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const StageAcc& acc =
      stages_[shard * kLagStageCount + static_cast<std::size_t>(stage)];
  LagStageSample sample;
  sample.count = acc.count;
  sample.total_ms = acc.total_ms;
  sample.max_ms = acc.max_ms;
  sample.bucket_counts = acc.buckets;
  return sample;
}

std::vector<StragglerRow> LagTracker::stragglers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stragglers_.begin(), stragglers_.end()};
}

LagAttribution LagTracker::attribution() const {
  std::lock_guard<std::mutex> lock(mu_);
  LagAttribution out;
  out.stage_total_ms.assign(kLagStageCount, 0.0);
  std::vector<double> shard_total(shard_count_, 0.0);
  for (std::size_t shard = 0; shard < shard_count_; ++shard) {
    for (std::size_t s = 0; s < kLagStageCount; ++s) {
      const StageAcc& acc = stages_[shard * kLagStageCount + s];
      out.stage_total_ms[s] += acc.total_ms;
      shard_total[shard] += acc.total_ms;
    }
  }
  std::uint64_t samples = 0;
  for (const StageAcc& acc : stages_) samples += acc.count;
  if (samples == 0) return out;
  const std::size_t stage_idx = static_cast<std::size_t>(
      std::max_element(out.stage_total_ms.begin(), out.stage_total_ms.end()) -
      out.stage_total_ms.begin());
  out.slowest_stage = kAllStages[stage_idx];
  out.slowest_stage_total_ms = out.stage_total_ms[stage_idx];
  const std::size_t shard_idx = static_cast<std::size_t>(
      std::max_element(shard_total.begin(), shard_total.end()) -
      shard_total.begin());
  out.slowest_shard = shard_idx;
  out.slowest_shard_total_ms = shard_total[shard_idx];
  return out;
}

json::Value LagTracker::attribution_json() const {
  using json::Value;
  const LagAttribution a = attribution();
  json::Object o;
  json::Object totals;
  for (std::size_t s = 0; s < kLagStageCount; ++s) {
    totals.emplace(std::string(lag_stage_name(kAllStages[s])),
                   Value(a.stage_total_ms[s]));
  }
  o.emplace("stage_total_ms", Value(std::move(totals)));
  if (a.slowest_stage) {
    o.emplace("slowest_stage",
              Value(std::string(lag_stage_name(*a.slowest_stage))));
    o.emplace("slowest_stage_total_ms", Value(a.slowest_stage_total_ms));
  }
  if (a.slowest_shard) {
    o.emplace("slowest_shard",
              Value(static_cast<double>(*a.slowest_shard)));
    o.emplace("slowest_shard_total_ms", Value(a.slowest_shard_total_ms));
  }
  return Value(std::move(o));
}

json::Value LagTracker::to_json() const {
  using json::Value;
  json::Array bound_values;
  for (const double b : bounds()) bound_values.push_back(Value(b));

  json::Array shard_rows;
  for (std::size_t shard = 0; shard < shard_count_; ++shard) {
    json::Object stages;
    for (std::size_t s = 0; s < kLagStageCount; ++s) {
      const LagStageSample sample = stage_sample(shard, kAllStages[s]);
      json::Object stage;
      stage.emplace("count", Value(static_cast<double>(sample.count)));
      stage.emplace("total_ms", Value(sample.total_ms));
      stage.emplace("max_ms", Value(sample.max_ms));
      stage.emplace("mean_ms",
                    Value(sample.count > 0
                              ? sample.total_ms /
                                    static_cast<double>(sample.count)
                              : 0.0));
      json::Array buckets;
      for (const std::uint64_t c : sample.bucket_counts) {
        buckets.push_back(Value(static_cast<double>(c)));
      }
      stage.emplace("buckets", Value(std::move(buckets)));
      stages.emplace(std::string(lag_stage_name(kAllStages[s])),
                     Value(std::move(stage)));
    }
    json::Object row;
    row.emplace("shard", Value(static_cast<double>(shard)));
    row.emplace("stages", Value(std::move(stages)));
    shard_rows.push_back(Value(std::move(row)));
  }

  json::Array straggler_rows;
  for (const StragglerRow& row : stragglers()) {
    json::Object o;
    o.emplace("epoch", Value(static_cast<double>(row.epoch)));
    o.emplace("straggler_shard",
              Value(static_cast<double>(row.straggler_shard)));
    o.emplace("first_close_ms", Value(row.first_close_ms));
    o.emplace("last_close_ms", Value(row.last_close_ms));
    o.emplace("straggle_ms", Value(row.straggle_ms));
    o.emplace("merge_ms", Value(row.merge_ms));
    straggler_rows.push_back(Value(std::move(o)));
  }

  json::Object root;
  root.emplace("schema", Value(std::string(kSchema)));
  root.emplace("shard_count", Value(static_cast<double>(shard_count_)));
  root.emplace("bucket_bounds_ms", Value(std::move(bound_values)));
  root.emplace("shards", Value(std::move(shard_rows)));
  root.emplace("stragglers", Value(std::move(straggler_rows)));
  root.emplace("attribution", attribution_json());
  return Value(std::move(root));
}

}  // namespace botmeter::obs
