#include "obs/event_journal.hpp"

#include <fstream>
#include <utility>

#include "common/error.hpp"

namespace botmeter::obs {

namespace {

constexpr const char* kSchema = "botmeter.events.v1";

}  // namespace

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kHealthTransition:
      return "health_transition";
    case EventKind::kEpochClose:
      return "epoch_close";
    case EventKind::kWatermarkAdvance:
      return "watermark_advance";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kRestore:
      return "restore";
    case EventKind::kQueueSaturation:
      return "queue_saturation";
    case EventKind::kMergePublish:
      return "merge_publish";
  }
  throw DataError("unknown EventKind ordinal");
}

EventKind event_kind_from_name(std::string_view name) {
  for (const EventKind kind :
       {EventKind::kHealthTransition, EventKind::kEpochClose,
        EventKind::kWatermarkAdvance, EventKind::kCheckpoint,
        EventKind::kRestore, EventKind::kQueueSaturation,
        EventKind::kMergePublish}) {
    if (event_kind_name(kind) == name) return kind;
  }
  throw DataError("unknown event kind: " + std::string(name));
}

void EventJournalConfig::validate() const {
  if (capacity == 0) {
    throw ConfigError("EventJournalConfig.capacity must be positive");
  }
}

EventJournal::EventJournal(EventJournalConfig config)
    : config_(config), origin_(std::chrono::steady_clock::now()) {
  config_.validate();
}

std::uint64_t EventJournal::append(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  const std::uint64_t seq = event.seq;
  ring_.push_back(std::move(event));
  if (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  return seq;
}

std::uint64_t EventJournal::log(EventKind kind, std::int32_t shard,
                                std::int64_t epoch, double value,
                                std::string message) {
  JournalEvent event;
  event.t_ms = now_ms();
  event.shard = shard;
  event.kind = kind;
  event.epoch = epoch;
  event.value = value;
  event.message = std::move(message);
  return append(std::move(event));
}

double EventJournal::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

std::vector<JournalEvent> EventJournal::events_since(
    std::uint64_t from, std::optional<std::int32_t> shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEvent> out;
  for (const JournalEvent& event : ring_) {
    if (event.seq < from) continue;
    if (shard && event.shard != *shard) continue;
    out.push_back(event);
  }
  return out;
}

std::uint64_t EventJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

json::Value EventJournal::to_json(std::uint64_t from,
                                  std::optional<std::int32_t> shard) const {
  using json::Value;
  const std::vector<JournalEvent> events = events_since(from, shard);
  json::Array rows;
  rows.reserve(events.size());
  for (const JournalEvent& event : events) {
    json::Object row;
    row.emplace("seq", Value(static_cast<double>(event.seq)));
    row.emplace("t_ms", Value(event.t_ms));
    row.emplace("shard", Value(static_cast<double>(event.shard)));
    row.emplace("kind", Value(std::string(event_kind_name(event.kind))));
    if (event.epoch != JournalEvent::kNoEpoch) {
      row.emplace("epoch", Value(static_cast<double>(event.epoch)));
    }
    row.emplace("value", Value(event.value));
    if (!event.message.empty()) {
      row.emplace("message", Value(event.message));
    }
    rows.push_back(Value(std::move(row)));
  }
  json::Object root;
  root.emplace("schema", Value(std::string(kSchema)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    root.emplace("next_seq", Value(static_cast<double>(next_seq_)));
    root.emplace("dropped", Value(static_cast<double>(dropped_)));
  }
  root.emplace("events", Value(std::move(rows)));
  return Value(std::move(root));
}

void EventJournal::dump(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw DataError("cannot open journal dump path: " + path);
  }
  out << json::write_pretty(to_json());
  if (!out) {
    throw DataError("failed writing journal dump: " + path);
  }
}

void EventJournal::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_path_ = std::move(path);
}

bool EventJournal::auto_dump() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = dump_path_;
  }
  if (path.empty()) return false;
  try {
    dump(path);
  } catch (const DataError&) {
    return false;
  }
  return true;
}

std::string EventJournal::dump_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_path_;
}

}  // namespace botmeter::obs
