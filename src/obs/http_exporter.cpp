#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/error.hpp"

namespace botmeter::obs {

namespace {

/// Upper bound on a request head we are willing to buffer. A scrape request
/// line plus a handful of headers fits in a fraction of this; anything
/// larger is a misbehaving client and gets a 400.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

/// Per-connection poll timeout. A scraper that stalls mid-request holds its
/// connection (and the single-threaded exporter) at most this long.
constexpr int kClientTimeoutMs = 2000;

/// Error responses are always plain text; set explicitly rather than relying
/// on the HttpResponse default so every response the exporter itself builds
/// names its Content-Type.
constexpr const char* kErrorContentType = "text/plain; charset=utf-8";

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_response(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         reason_phrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Percent-decode one query component ('+' means space). Malformed escapes
/// pass through literally — telemetry queries are best-effort, not strict.
std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[i + 1])) != 0 &&
               std::isxdigit(static_cast<unsigned char>(text[i + 2])) != 0) {
      const auto nibble = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        return (std::tolower(static_cast<unsigned char>(h)) - 'a') + 10;
      };
      out += static_cast<char>(nibble(text[i + 1]) * 16 + nibble(text[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::optional<std::string> HttpRequest::param(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (url_decode(name) == key) {
      return eq == std::string_view::npos ? std::string()
                                          : url_decode(pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

HttpExporter::HttpExporter(const HttpExporterConfig& config,
                           std::map<std::string, Handler> routes)
    : routes_(std::move(routes)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw DataError("http exporter: socket() failed: " +
                    std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    throw DataError("http exporter: bad bind address '" + config.bind_address +
                    "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    close_fd(listen_fd_);
    throw DataError("http exporter: cannot listen on " + config.bind_address +
                    ":" + std::to_string(config.port) + ": " + reason);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    close_fd(listen_fd_);
    throw DataError("http exporter: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    close_fd(listen_fd_);
    throw DataError("http exporter: pipe() failed");
  }

  thread_ = std::thread([this] { serve_loop(); });
}

HttpExporter::~HttpExporter() { stop(); }

std::uint64_t HttpExporter::requests_served() const noexcept {
  return requests_.load(std::memory_order_relaxed);
}

void HttpExporter::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Wake the accept poll; the write can only fail if the thread already
  // exited, in which case join() returns immediately anyway.
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void HttpExporter::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpExporter::handle_connection(int client_fd) {
  // Read until the end of the request head (blank line) or the byte bound.
  std::string request;
  bool overflow = false;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kClientTimeoutMs);
    if (ready <= 0) break;  // stalled or errored client: give up
    char buf[1024];
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > kMaxRequestBytes) {
      overflow = true;
      break;
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  const std::size_t line_end = request.find('\n');
  if (overflow || line_end == std::string::npos) {
    response.status = 400;
    response.content_type = kErrorContentType;
    response.body = "bad request\n";
    send_all(client_fd, render_response(response));
    return;
  }

  // Request line: METHOD SP PATH SP VERSION.
  std::string_view line(request.data(), line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response.status = 400;
    response.content_type = kErrorContentType;
    response.body = "bad request\n";
    send_all(client_fd, render_response(response));
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  HttpRequest parsed;
  const std::size_t query = target.find('?');
  parsed.path = std::string(target.substr(0, query));
  if (query != std::string_view::npos) {
    parsed.query = std::string(target.substr(query + 1));
  }

  if (method != "GET") {
    response.status = 405;
    response.content_type = kErrorContentType;
    response.body = "only GET is supported\n";
  } else if (const auto it = routes_.find(parsed.path); it != routes_.end()) {
    response = it->second(parsed);
  } else {
    // Unknown route: a plain-text listing of everything that *is* served,
    // so a mistyped scrape config diagnoses itself.
    response.status = 404;
    response.content_type = kErrorContentType;
    std::string known;
    for (const auto& [route, handler] : routes_) known += route + "\n";
    response.body = "not found; routes:\n" + known;
  }
  send_all(client_fd, render_response(response));
}

}  // namespace botmeter::obs
