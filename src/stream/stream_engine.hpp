// The online BotMeter engine: incremental landscape charting over a live
// border feed.
//
// The batch pipeline (core::BotMeter::analyze) consumes the whole
// vantage-point horizon at once; a deployed monitor can't — it taps the
// border server continuously (§II, Fig. 2) and must publish estimates as
// epochs complete, with memory bounded by the *active* window rather than
// the horizon. StreamEngine is that path:
//
//   - Tuples arrive one at a time or in batches (ingest), in any order the
//     collector's quantised timestamps produce. Each is matched immediately
//     (DomainMatcher::match_one — the same attribution the batch matcher
//     applies) and the matched residue is bucketed per (server, epoch).
//     Unmatched traffic — the overwhelming majority at a real border — is
//     dropped on arrival, never buffered.
//   - An epoch closes when the ingest watermark (max timestamp seen) passes
//     the epoch's end plus `allowed_lateness`, or when the producer closes
//     it explicitly (close_through / finish). At close, the engine sorts
//     each server's bucket, builds the same EpochObservation batch analyze
//     would, runs the active estimator (optionally sharded over servers by
//     a worker pool), frees the buckets, and emits an EpochReport.
//   - finish() closes everything outstanding and assembles the final
//     LandscapeReport from the retained per-epoch cells via the shared
//     window aggregation — **bit-identical** to core::BotMeter::analyze on
//     the concatenated stream (provided nothing was dropped as late), for
//     every estimator and any worker_threads value.
//   - checkpoint()/restore() round-trip the mutable state through the
//     byte-stable common/json writer (schema botmeter.stream_checkpoint.v1)
//     so a monitor can restart mid-horizon without reprocessing the feed.
//
// See DESIGN.md §7 for the state layout and equivalence argument.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/time.hpp"
#include "core/botmeter.hpp"
#include "detect/matcher.hpp"
#include "dns/vantage.hpp"
#include "estimators/estimator.hpp"

namespace botmeter::obs {
class EventJournal;
class LandscapeHistory;
}  // namespace botmeter::obs

namespace botmeter::stream {

class StreamHealthMonitor;

struct StreamEngineConfig {
  /// The analysis configuration (family, TTL policy, estimator choice,
  /// detection window seed, obs sinks) — exactly what batch BotMeter takes.
  core::BotMeterConfig meter;

  /// Epoch horizon [first_epoch, first_epoch + epoch_count). All pools and
  /// detection windows are prepared up front so incremental matching
  /// attributes tuples exactly as a batch matcher over the horizon would.
  std::int64_t first_epoch = 0;
  std::int64_t epoch_count = 1;

  /// Number of local DNS servers behind the border (fixes report width).
  std::size_t server_count = 1;

  /// Worker threads for per-server estimation at epoch close. Results are
  /// bit-identical for every value: each server's estimate is an
  /// independent pure function of its bucket, written to its own slot.
  std::size_t worker_threads = 1;

  /// Optional landscape time-series sink: every epoch close appends one
  /// per-server snapshot row (estimate, CI, matched count) to the history.
  /// Purely observational — attaching a history never changes the engine's
  /// reports or counters. The history outlives the engine's use of it; its
  /// own mutex makes record() safe against concurrent HTTP queries.
  obs::LandscapeHistory* history = nullptr;

  /// Optional health monitor whose coarse state is stamped onto each history
  /// row at close time (the "what did the feed look like when this estimate
  /// landed" annotation). Read-only; ignored when `history` is null. Leave
  /// null when cross-pipeline byte-equality with batch analyze matters —
  /// batch rows never carry health.
  const StreamHealthMonitor* health = nullptr;

  /// Optional flight recorder: epoch closes, explicit watermark advances,
  /// and checkpoint/restore each append one structured event. Purely
  /// observational (a null journal means no clock reads and no-ops), and
  /// never consulted on the per-tuple path — events are per close/advance.
  obs::EventJournal* journal = nullptr;

  /// How far the watermark must pass an epoch's end before the engine
  /// auto-closes it. Lookup trains spill past epoch boundaries and
  /// quantised collectors deliver ties out of order, so closing exactly at
  /// the boundary would drop stragglers. Default (nullopt): one epoch
  /// length — ample for every simulated family. Tuples attributed to an
  /// already-closed epoch are counted in late_dropped(), not analyzed.
  std::optional<Duration> allowed_lateness;

  /// Bounded-memory mode (DESIGN.md §13): once an open (server, epoch)
  /// bucket holds `compact_spill_threshold` matched lookups, its buffer is
  /// folded into a sketch-backed estimators::CompactCell and freed; further
  /// matched tuples stream into the cell in O(1) space. Cells below the
  /// threshold stay exact and produce byte-identical estimates; spilled
  /// cells are estimated through the active estimator's compact path (the
  /// constructor rejects estimators without one) and their statistics are
  /// flagged approximate with the sketch error propagated into the interval.
  bool compact_state = false;
  std::size_t compact_spill_threshold = 8192;
  estimators::CompactObservationConfig compact;

  void validate() const;
};

/// What one epoch close produced: per-server single-epoch estimates. The
/// values are final — late tuples can no longer change them.
struct EpochReport {
  std::int64_t epoch = 0;
  std::string estimator_name;
  std::vector<core::ServerEstimate> servers;  // per_epoch has one entry each

  [[nodiscard]] double total_population() const;
  /// View as a one-epoch landscape (for viz::render_landscape etc.).
  [[nodiscard]] core::LandscapeReport as_landscape() const;
};

class StreamEngine {
 public:
  using EpochCallback = std::function<void(const EpochReport&)>;

  explicit StreamEngine(StreamEngineConfig config);

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Invoked after every epoch close, in ascending epoch order.
  void on_epoch_close(EpochCallback callback);

  /// Ingest one tuple / a batch of tuples. Throws ConfigError after
  /// finish(). Advances the watermark and auto-closes every epoch whose
  /// close boundary it passed.
  void ingest(const dns::ForwardedLookup& lookup);
  void ingest(std::span<const dns::ForwardedLookup> batch);

  /// Zero-copy batched ingest of one columnar block (a decoded
  /// trace::BlockReader frame or a VantagePoint::drain_block batch).
  /// `domains` is the producer's full accumulated string table, which the
  /// block's `domain` ids index. Pool membership is resolved once per
  /// newly-seen interned id and cached for the engine's lifetime, so the
  /// per-tuple path does no hashing and no allocation. Semantics — matching
  /// attribution, watermark advance, epoch closes, lateness drops, counters
  /// — are tuple-for-tuple identical to ingest() on the equivalent stream.
  ///
  /// All blocks fed to one engine must share one interning lineage (one
  /// reader / one vantage point): the table may only grow between calls,
  /// and ids must keep their meaning. A shrinking table throws ConfigError.
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string_view> domains);

  /// Convenience for producers whose table is owned strings (a
  /// VantagePoint's intern table); rebuilds a view table per call — O(table
  /// size), fine for the drain path's small tables.
  void ingest_block(const dns::LookupColumns& block,
                    std::span<const std::string> domains);

  /// Advance the watermark without data (a quiet feed still makes time
  /// pass), closing epochs the new watermark matured.
  void advance(TimePoint watermark);

  /// Explicitly close every epoch up to and including `epoch`, regardless
  /// of the watermark — for producers that know a period is complete (e.g.
  /// a per-day batch feed). No-op for epochs already closed.
  void close_through(std::int64_t epoch);

  /// Close all remaining epochs and return the final landscape —
  /// bit-identical to batch analyze on the same stream when late_dropped()
  /// is zero. The engine is sealed afterwards (ingest throws; checkpoint
  /// and accessors still work).
  [[nodiscard]] core::LandscapeReport finish();

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t ingested() const { return ingested_; }
  [[nodiscard]] std::uint64_t matched() const { return matched_; }
  [[nodiscard]] std::uint64_t unmatched() const { return unmatched_; }
  [[nodiscard]] std::uint64_t late_dropped() const { return late_dropped_; }
  /// Matched lookups attributed to open epochs (buffered exactly or
  /// absorbed into compact cells) — the engine's resident analysis state.
  /// Bounded by the active window, not the horizon.
  [[nodiscard]] std::size_t resident_lookups() const { return resident_; }
  [[nodiscard]] std::size_t peak_resident_lookups() const { return peak_resident_; }
  /// Heap bytes the open buckets actually hold: the *capacity* of every
  /// exact buffer (vectors over-allocate on growth, so element counts
  /// understate the real footprint) plus the constant footprint of every
  /// spilled compact cell. Maintained incrementally — O(1) to read — and
  /// the health monitor's buffer-pressure signal.
  [[nodiscard]] std::size_t open_buffer_bytes() const { return open_bytes_; }
  /// High-water mark of open_buffer_bytes() over the engine's life.
  [[nodiscard]] std::size_t peak_open_buffer_bytes() const {
    return peak_open_bytes_;
  }
  /// Open buckets that have spilled to sketch state so far (0 when the
  /// compact path is off).
  [[nodiscard]] std::uint64_t compact_spills() const { return compact_spills_; }
  /// Next epoch that will close (first_epoch + epochs_closed); one past the
  /// horizon once everything closed.
  [[nodiscard]] std::int64_t next_epoch_to_close() const;
  [[nodiscard]] std::optional<TimePoint> watermark() const { return watermark_; }
  [[nodiscard]] bool finished() const { return finished_; }
  /// Wall milliseconds of each epoch close so far (flush latency).
  [[nodiscard]] std::span<const double> close_latencies_ms() const {
    return close_latencies_ms_;
  }
  [[nodiscard]] const core::BotMeter& meter() const { return meter_; }
  [[nodiscard]] const StreamEngineConfig& config() const { return config_; }
  /// Closed per-epoch cell rows so far, [epoch index][server] — the final
  /// per-cell estimates a cluster merger scatters into the global grid.
  /// Rows are immutable once closed; the span is invalidated by the next
  /// close.
  [[nodiscard]] std::span<const std::vector<estimators::EpochCell>>
  closed_rows() const {
    return closed_;
  }

  // --- checkpointing -------------------------------------------------------
  /// Serialize the engine's mutable state (schema
  /// botmeter.stream_checkpoint.v1). Derived state — pools, detection
  /// windows, the matcher index — is a pure function of the configuration
  /// and is rebuilt on restore, so checkpoints stay small: counters, the
  /// watermark, closed-epoch cells, and the open buckets.
  [[nodiscard]] json::Value checkpoint() const;

  /// Load a checkpoint into a freshly constructed engine (nothing ingested
  /// yet). The engine's configuration must match the checkpointed
  /// fingerprint (family, estimator, horizon, server count); mismatches and
  /// schema violations throw DataError. After restore the engine continues
  /// exactly where the checkpointed one stopped: resumed ingestion yields
  /// bit-identical reports.
  void restore(const json::Value& checkpoint);

 private:
  /// One closed (server, epoch) cell. The estimate is immutable once the
  /// epoch closed; buckets are freed at that point.
  using Cell = estimators::EpochCell;

  /// One open (server, epoch) bucket: the exact buffer, or — after a
  /// compact-mode spill — a sketch cell (the exact buffer is then empty and
  /// freed). Appends land in whichever representation is live.
  struct OpenBucket {
    std::vector<detect::MatchedLookup> exact;
    std::unique_ptr<estimators::CompactCell> compact;
  };

  void ingest_matched(const detect::DomainMatcher::MatchOutcome& outcome);
  /// Flush counter deltas accumulated since the previous flush into the
  /// registry, so `stream.ingested`/`stream.matched`/... advance at every
  /// epoch close (live rate gauges need moving counters) while the final
  /// totals stay exactly what finish() always published.
  void flush_counters(obs::MetricsRegistry& metrics);
  [[nodiscard]] OpenBucket* bucket_for(const detect::StreamKey& key);
  /// Append one matched lookup to its bucket, maintaining the byte
  /// accounting and spilling the exact buffer into a compact cell when the
  /// threshold is crossed.
  void append_matched(OpenBucket& bucket, std::int64_t epoch,
                      const detect::MatchedLookup& lookup);
  /// Fold `bucket.exact` into a freshly specced compact cell and free it.
  void spill_bucket(OpenBucket& bucket, std::int64_t epoch);
  void note_open_bytes_grew(std::size_t delta);
  void maybe_close(TimePoint watermark);
  void close_next_epoch();
  [[nodiscard]] Duration lateness() const;
  [[nodiscard]] TimePoint epoch_close_boundary(std::int64_t epoch) const;

  StreamEngineConfig config_;
  core::BotMeter meter_;
  WorkerPool workers_;
  EpochCallback on_close_;

  /// Open buckets: matched lookups awaiting their epoch's close, keyed by
  /// (server, epoch). Append order; sorted at close.
  std::map<detect::StreamKey, OpenBucket> open_;

  /// Flat (epoch row × server) cache of open-bucket addresses, so the
  /// per-matched-tuple path skips the map walk — map nodes are stable, so a
  /// pointer stays valid until close_next_epoch() erases its bucket (the
  /// row is nulled there). Lazily sized; derived state, never checkpointed.
  std::vector<OpenBucket*> bucket_cache_;

  /// Per-interned-domain-id cache entry of the block path: pool membership,
  /// resolved once per id, plus a one-slot memo of the last attribution.
  /// The matcher's (epoch, pool_position, is_valid) answer depends only on
  /// (domain, nominal epoch), and lookup trains repeat a domain many times
  /// within one epoch, so the memo turns most tuples into a single indexed
  /// load with no occurrence scan.
  struct BlockDomain {
    detect::DomainMatcher::Resolved resolved;
    std::int64_t memo_nominal = std::numeric_limits<std::int64_t>::min();
    std::int64_t memo_epoch = 0;
    std::uint32_t memo_position = 0;
    bool memo_valid = false;
  };

  /// Indexed by the producer's table ids. Derived state (a pure function of
  /// the matcher and the table) — never checkpointed, rebuilt as blocks
  /// arrive.
  std::vector<BlockDomain> resolved_;

  /// Reused landing strip for resolve_many over the table's new tail.
  std::vector<detect::DomainMatcher::Resolved> resolve_scratch_;

  /// Reused view table for the owned-strings ingest_block overload.
  std::vector<std::string_view> table_view_scratch_;

  /// Closed cells, [epoch index][server]. Grows one epoch row per close;
  /// this (plus `open_`) is the entire analysis state.
  std::vector<std::vector<Cell>> closed_;

  std::optional<TimePoint> watermark_;
  std::uint64_t ingested_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t unmatched_ = 0;
  std::uint64_t late_dropped_ = 0;
  std::size_t resident_ = 0;
  std::size_t peak_resident_ = 0;
  /// Open-bucket heap bytes (exact capacities + compact cell footprints),
  /// maintained at every growth/spill/close so the accessor is O(1).
  std::size_t open_bytes_ = 0;
  std::size_t peak_open_bytes_ = 0;
  std::uint64_t compact_spills_ = 0;
  bool finished_ = false;
  std::vector<double> close_latencies_ms_;

  // Counter-flush cursors: how much of each total has already been added to
  // the registry (incrementally at closes, remainder at finish()).
  std::uint64_t flushed_ingested_ = 0;
  std::uint64_t flushed_matched_ = 0;
  std::uint64_t flushed_unmatched_ = 0;
  std::uint64_t flushed_late_dropped_ = 0;
};

}  // namespace botmeter::stream
