#include "stream/health_monitor.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/json.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::stream {

namespace {

/// Exponential close-latency buckets: 0.25 ms .. ~512 ms, doubling. Covers
/// sub-millisecond closes on small horizons up to flushes that threaten a
/// one-second epoch cadence; beyond the last bound the +Inf bucket tells
/// the story.
const std::vector<double>& close_latency_bounds() {
  static const std::vector<double> bounds =
      obs::exponential_bounds(0.25, 2.0, 12);
  return bounds;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace

std::string_view health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

void StreamHealthConfig::validate() const {
  if (!(degraded_watermark_lag_ms >= 0.0) ||
      !(unhealthy_watermark_lag_ms >= degraded_watermark_lag_ms)) {
    throw ConfigError(
        "StreamHealthConfig: watermark-lag thresholds must satisfy "
        "0 <= degraded <= unhealthy");
  }
  if (!(degraded_late_rate >= 0.0) || !(degraded_late_rate <= 1.0) ||
      !(unhealthy_late_rate >= degraded_late_rate) ||
      !(unhealthy_late_rate <= 1.0)) {
    throw ConfigError(
        "StreamHealthConfig: late-rate thresholds must satisfy "
        "0 <= degraded <= unhealthy <= 1");
  }
  if (unhealthy_buffer_bytes < degraded_buffer_bytes) {
    throw ConfigError(
        "StreamHealthConfig: buffer-bytes thresholds must satisfy "
        "degraded <= unhealthy");
  }
  if (!(recovery_hold_ms >= 0.0)) {
    throw ConfigError("StreamHealthConfig: recovery_hold_ms must be >= 0");
  }
}

StreamHealthMonitor::StreamHealthMonitor(StreamHealthConfig config,
                                         obs::MetricsRegistry* metrics)
    : config_((config.validate(), config)), metrics_(metrics) {}

HealthState StreamHealthMonitor::raw_state(
    const StreamHealthSignals& s) const {
  const bool unhealthy = s.watermark_lag_ms >= config_.unhealthy_watermark_lag_ms ||
                         s.late_rate >= config_.unhealthy_late_rate ||
                         s.open_buffer_bytes >= config_.unhealthy_buffer_bytes;
  if (unhealthy) return HealthState::kUnhealthy;
  const bool degraded = s.watermark_lag_ms >= config_.degraded_watermark_lag_ms ||
                        s.late_rate >= config_.degraded_late_rate ||
                        s.open_buffer_bytes >= config_.degraded_buffer_bytes;
  return degraded ? HealthState::kDegraded : HealthState::kOk;
}

void StreamHealthMonitor::publish(const StreamHealthSignals& s,
                                  HealthState state) {
  if (metrics_ == nullptr) return;
  metrics_->gauge("stream.health.state").set(static_cast<double>(state));
  metrics_->gauge("stream.health.watermark_lag_ms").set(s.watermark_lag_ms);
  metrics_->gauge("stream.health.late_rate").set(s.late_rate);
  metrics_->gauge("stream.health.open_buffer_bytes")
      .set(static_cast<double>(s.open_buffer_bytes));
}

HealthState StreamHealthMonitor::sample(const StreamEngine& engine,
                                        double now_ms) {
  StreamHealthSignals signals;
  signals.ingested = engine.ingested();
  signals.matched = engine.matched();
  signals.late_dropped = engine.late_dropped();
  signals.open_buffer_bytes = engine.open_buffer_bytes();

  const std::uint64_t attributed = signals.matched + signals.late_dropped;
  signals.late_rate =
      attributed == 0
          ? 0.0
          : static_cast<double>(signals.late_dropped) /
                static_cast<double>(attributed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // The watermark "advances" when its stream timestamp moves (or on the
    // very first sample, which seeds the reference point).
    const std::optional<TimePoint> watermark = engine.watermark();
    const std::optional<std::int64_t> watermark_ms =
        watermark ? std::optional<std::int64_t>(watermark->millis())
                  : std::nullopt;
    if (!last_advance_wall_ms_ || watermark_ms != last_watermark_ms_) {
      last_watermark_ms_ = watermark_ms;
      last_advance_wall_ms_ = now_ms;
    }
    signals.watermark_lag_ms = std::max(0.0, now_ms - *last_advance_wall_ms_);

    // Observe close latencies appended since the previous sample.
    const std::span<const double> closes = engine.close_latencies_ms();
    signals.epochs_closed = closes.size();
    if (!closes.empty()) signals.last_close_ms = closes.back();
    if (metrics_ != nullptr && close_latency_cursor_ < closes.size()) {
      obs::Histogram& hist = metrics_->histogram(
          "stream.epoch_close_latency_ms", close_latency_bounds());
      for (std::size_t i = close_latency_cursor_; i < closes.size(); ++i) {
        hist.observe(closes[i]);
      }
    }
    close_latency_cursor_ = closes.size();
  }

  return evaluate(signals, now_ms);
}

HealthState StreamHealthMonitor::evaluate(const StreamHealthSignals& signals,
                                          double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  signals_ = signals;
  const HealthState raw = raw_state(signals);

  if (raw >= state_) {
    // Worsening (or holding steady) applies immediately and cancels any
    // recovery in progress.
    state_ = raw;
    improving_ = false;
  } else {
    if (!improving_) {
      improving_ = true;
      candidate_ = raw;
      improving_since_ms_ = now_ms;
    } else {
      // Track the *worst* state seen during the streak: recovery lands on
      // the level the signals actually sustained, not a momentary dip.
      candidate_ = std::max(candidate_, raw);
    }
    if (now_ms - improving_since_ms_ >= config_.recovery_hold_ms) {
      state_ = candidate_;
      improving_ = state_ > HealthState::kOk && raw < state_;
      if (improving_) {
        candidate_ = raw;
        improving_since_ms_ = now_ms;
      }
    }
  }

  publish(signals_, state_);
  return state_;
}

HealthState StreamHealthMonitor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

StreamHealthSignals StreamHealthMonitor::last_signals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return signals_;
}

std::string StreamHealthMonitor::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "status: ";
  out += health_state_name(state_);
  out += '\n';
  out += "watermark_lag_ms: " + format_fixed(signals_.watermark_lag_ms, 1) + '\n';
  out += "late_rate: " + format_fixed(signals_.late_rate, 6) + '\n';
  out += "open_buffer_bytes: " +
         std::to_string(signals_.open_buffer_bytes) + '\n';
  out += "ingested: " + std::to_string(signals_.ingested) + '\n';
  out += "matched: " + std::to_string(signals_.matched) + '\n';
  out += "late_dropped: " + std::to_string(signals_.late_dropped) + '\n';
  out += "epochs_closed: " + std::to_string(signals_.epochs_closed) + '\n';
  if (signals_.last_close_ms.has_value()) {
    out += "last_close_ms: " + format_fixed(*signals_.last_close_ms, 3) + '\n';
  }
  return out;
}

std::string StreamHealthMonitor::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object doc;
  doc.emplace("schema", json::Value(std::string("botmeter.healthz.v1")));
  doc.emplace("status",
              json::Value(std::string(health_state_name(state_))));
  doc.emplace("watermark_lag_ms", json::Value(signals_.watermark_lag_ms));
  doc.emplace("late_rate", json::Value(signals_.late_rate));
  doc.emplace("open_buffer_bytes",
              json::Value(static_cast<double>(signals_.open_buffer_bytes)));
  doc.emplace("ingested",
              json::Value(static_cast<double>(signals_.ingested)));
  doc.emplace("matched", json::Value(static_cast<double>(signals_.matched)));
  doc.emplace("late_dropped",
              json::Value(static_cast<double>(signals_.late_dropped)));
  doc.emplace("epochs_closed",
              json::Value(static_cast<double>(signals_.epochs_closed)));
  doc.emplace("last_close_ms",
              signals_.last_close_ms.has_value()
                  ? json::Value(*signals_.last_close_ms)
                  : json::Value(nullptr));
  return json::write(json::Value(std::move(doc)));
}

}  // namespace botmeter::stream
