#include "stream/stream_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/prefetch.hpp"
#include "obs/event_journal.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stream/health_monitor.hpp"

namespace botmeter::stream {

namespace {

constexpr const char* kCheckpointSchema = "botmeter.stream_checkpoint.v1";

template <typename T>
json::Value number(T v) {
  return json::Value(static_cast<double>(v));
}

}  // namespace

void StreamEngineConfig::validate() const {
  meter.validate();
  if (epoch_count <= 0) {
    throw ConfigError("StreamEngineConfig: epoch_count must be > 0");
  }
  if (server_count == 0) {
    throw ConfigError("StreamEngineConfig: server_count must be > 0");
  }
  if (allowed_lateness && allowed_lateness->millis() < 0) {
    throw ConfigError("StreamEngineConfig: allowed_lateness must be >= 0");
  }
  if (compact_state) {
    compact.validate();
    if (compact_spill_threshold == 0) {
      throw ConfigError(
          "StreamEngineConfig: compact_spill_threshold must be > 0");
    }
  }
}

double EpochReport::total_population() const {
  double total = 0.0;
  for (const core::ServerEstimate& s : servers) total += s.population;
  return total;
}

core::LandscapeReport EpochReport::as_landscape() const {
  core::LandscapeReport report;
  report.estimator_name = estimator_name;
  report.servers = servers;
  return report;
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_((config.validate(), std::move(config))),
      meter_(config_.meter),
      // kAllow: close-time estimation is bit-identical for any worker count,
      // and determinism tests pin counts above small CI machines' cores.
      workers_(config_.worker_threads, WorkerPool::Oversubscribe::kAllow) {
  meter_.prepare_epochs(config_.first_epoch, config_.epoch_count);
  if (config_.compact_state &&
      !meter_.active_estimator().compact_support().supported) {
    throw ConfigError(
        "StreamEngine: estimator '" +
        std::string(meter_.active_estimator().name()) +
        "' has no compact observation path; compact_state requires one");
  }
}

void StreamEngine::on_epoch_close(EpochCallback callback) {
  on_close_ = std::move(callback);
}

Duration StreamEngine::lateness() const {
  return config_.allowed_lateness.value_or(config_.meter.dga.epoch);
}

TimePoint StreamEngine::epoch_close_boundary(std::int64_t epoch) const {
  return TimePoint{(epoch + 1) * config_.meter.dga.epoch.millis()} + lateness();
}

std::int64_t StreamEngine::next_epoch_to_close() const {
  return config_.first_epoch + static_cast<std::int64_t>(closed_.size());
}

void StreamEngine::ingest_matched(
    const detect::DomainMatcher::MatchOutcome& outcome) {
  if (outcome.key.epoch < next_epoch_to_close()) {
    ++late_dropped_;
    return;
  }
  ++matched_;
  append_matched(*bucket_for(outcome.key), outcome.key.epoch, outcome.lookup);
  ++resident_;
  peak_resident_ = std::max(peak_resident_, resident_);
}

void StreamEngine::note_open_bytes_grew(std::size_t delta) {
  open_bytes_ += delta;
  peak_open_bytes_ = std::max(peak_open_bytes_, open_bytes_);
}

void StreamEngine::spill_bucket(OpenBucket& bucket, std::int64_t epoch) {
  bucket.compact = std::make_unique<estimators::CompactCell>(
      meter_.compact_spec_for_epoch(epoch, config_.compact));
  bucket.compact->add_all(bucket.exact);
  open_bytes_ -= bucket.exact.capacity() * sizeof(detect::MatchedLookup);
  // Free, not clear — the buffer is what the spill sheds. (`= {}` would take
  // the initializer_list assignment, which keeps the capacity allocated.)
  std::vector<detect::MatchedLookup>{}.swap(bucket.exact);
  note_open_bytes_grew(bucket.compact->memory_bytes());
  ++compact_spills_;
}

void StreamEngine::append_matched(OpenBucket& bucket, std::int64_t epoch,
                                  const detect::MatchedLookup& lookup) {
  if (bucket.compact != nullptr) {
    bucket.compact->add(lookup);  // cell footprint is constant
    return;
  }
  const std::size_t before = bucket.exact.capacity();
  bucket.exact.push_back(lookup);
  if (const std::size_t after = bucket.exact.capacity(); after != before) {
    note_open_bytes_grew((after - before) * sizeof(detect::MatchedLookup));
  }
  if (config_.compact_state &&
      bucket.exact.size() >= config_.compact_spill_threshold) {
    spill_bucket(bucket, epoch);
  }
}

StreamEngine::OpenBucket* StreamEngine::bucket_for(
    const detect::StreamKey& key) {
  const std::size_t server = key.server.value();
  const std::int64_t row = key.epoch - config_.first_epoch;
  // Keys outside the horizon grid (a trace naming more servers than
  // configured) take the uncached map path; everything the matcher emits
  // for a prepared horizon lands in the grid.
  if (server >= config_.server_count || row < 0 ||
      row >= config_.epoch_count) {
    return &open_[key];
  }
  if (bucket_cache_.empty()) {
    bucket_cache_.assign(
        config_.server_count * static_cast<std::size_t>(config_.epoch_count),
        nullptr);
  }
  OpenBucket*& slot =
      bucket_cache_[static_cast<std::size_t>(row) * config_.server_count +
                    server];
  if (slot == nullptr) slot = &open_[key];
  return slot;
}

void StreamEngine::ingest(const dns::ForwardedLookup& lookup) {
  if (finished_) throw ConfigError("StreamEngine: ingest after finish()");
  ++ingested_;
  const std::optional<detect::DomainMatcher::MatchOutcome> outcome =
      meter_.matcher().match_one(lookup);
  if (outcome) {
    ingest_matched(*outcome);
  } else {
    ++unmatched_;
  }
  if (!watermark_ || lookup.timestamp > *watermark_) {
    watermark_ = lookup.timestamp;
    maybe_close(*watermark_);
  }
}

void StreamEngine::ingest(std::span<const dns::ForwardedLookup> batch) {
  for (const dns::ForwardedLookup& lookup : batch) ingest(lookup);
}

void StreamEngine::ingest_block(const dns::LookupColumns& block,
                                std::span<const std::string> domains) {
  table_view_scratch_.assign(domains.begin(), domains.end());
  ingest_block(block, std::span<const std::string_view>(table_view_scratch_));
}

void StreamEngine::ingest_block(const dns::LookupColumns& block,
                                std::span<const std::string_view> domains) {
  if (finished_) throw ConfigError("StreamEngine: ingest after finish()");
  if (block.server.size() != block.size() ||
      block.domain.size() != block.size()) {
    throw DataError("StreamEngine::ingest_block: ragged columns");
  }
  if (domains.size() < resolved_.size()) {
    throw ConfigError(
        "StreamEngine::ingest_block: domain table shrank — blocks from a "
        "different interning lineage");
  }
  obs::ScopedTimer block_span(config_.meter.trace, "stream.block.ingest");

  // Resolve pool membership for the table's new tail: one hash per distinct
  // domain per engine, ever — batched so the index's cache misses overlap.
  const detect::DomainMatcher& matcher = meter_.matcher();
  if (domains.size() > resolved_.size()) {
    obs::ScopedTimer resolve_span(config_.meter.trace,
                                  "stream.block.resolve_many");
    const std::size_t old = resolved_.size();
    resolve_scratch_.resize(domains.size() - old);
    matcher.resolve_many(domains.subspan(old), resolve_scratch_);
    resolved_.resize(domains.size());
    for (std::size_t i = 0; i < resolve_scratch_.size(); ++i) {
      resolved_[old + i].resolved = resolve_scratch_[i];
    }
  }

  // The per-tuple loop keeps its bookkeeping in locals and commits on exit
  // (including the throw paths), so the compiler needn't reload members
  // around every push_back. Committed state is identical to the per-tuple
  // ingest() path's at every observable point: before each epoch close and
  // whenever control leaves this function.
  const std::int64_t epoch_ms = matcher.epoch_length().millis();
  std::int64_t nominal = 0;
  std::int64_t nominal_start = 1;  // empty range: first tuple recomputes
  std::int64_t nominal_end = 0;
  bool have_wm = watermark_.has_value();
  std::int64_t wm = have_wm ? watermark_->millis()
                            : std::numeric_limits<std::int64_t>::min();
  std::int64_t open_floor = next_epoch_to_close();
  auto close_boundary_ms = [this] {
    return closed_.size() < static_cast<std::size_t>(config_.epoch_count)
               ? epoch_close_boundary(next_epoch_to_close()).millis()
               : std::numeric_limits<std::int64_t>::max();
  };
  std::int64_t next_boundary = close_boundary_ms();
  std::uint64_t ingested = 0, matched = 0, unmatched = 0, late = 0;
  std::size_t resident = resident_;
  const auto commit = [&] {
    ingested_ += ingested;
    matched_ += matched;
    unmatched_ += unmatched;
    late_dropped_ += late;
    ingested = matched = unmatched = late = 0;
    resident_ = resident;
    peak_resident_ = std::max(peak_resident_, resident);
    if (have_wm) watermark_ = TimePoint{wm};
  };

  const std::size_t n = block.size();
  try {
    for (std::size_t i = 0; i < n; ++i) {
      if (const std::size_t ahead = i + 16; ahead < n) {
        const std::uint32_t pid = block.domain[ahead];
        if (pid < resolved_.size()) prefetch_ro(resolved_.data() + pid);
      }
      ++ingested;
      const std::uint32_t id = block.domain[i];
      if (id >= resolved_.size()) {
        throw DataError("StreamEngine::ingest_block: domain id " +
                        std::to_string(id) + " outside the table");
      }
      const std::int64_t t_ms = block.t_ms[i];
      BlockDomain& entry = resolved_[id];
      if (entry.resolved) {
        if (t_ms < nominal_start || t_ms >= nominal_end) {
          nominal = matcher.nominal_epoch(TimePoint{t_ms});
          nominal_start = nominal * epoch_ms;
          nominal_end = nominal_start + epoch_ms;
        }
        if (entry.memo_nominal != nominal) {
          const detect::DomainMatcher::MatchOutcome outcome =
              matcher.match_resolved(entry.resolved, TimePoint{t_ms},
                                     dns::ServerId{block.server[i]}, nominal);
          entry.memo_nominal = nominal;
          entry.memo_epoch = outcome.key.epoch;
          entry.memo_position = outcome.lookup.pool_position;
          entry.memo_valid = outcome.lookup.is_valid_domain;
        }
        if (entry.memo_epoch < open_floor) {
          ++late;
        } else {
          ++matched;
          append_matched(
              *bucket_for(detect::StreamKey{dns::ServerId{block.server[i]},
                                            entry.memo_epoch}),
              entry.memo_epoch,
              detect::MatchedLookup{TimePoint{t_ms}, entry.memo_position,
                                    entry.memo_valid});
          ++resident;
        }
      } else {
        ++unmatched;
      }
      if (!have_wm || t_ms > wm) {
        wm = t_ms;
        have_wm = true;
        if (wm >= next_boundary) {
          commit();
          maybe_close(TimePoint{wm});
          resident = resident_;  // closes freed their buckets
          open_floor = next_epoch_to_close();
          next_boundary = close_boundary_ms();
        }
      }
    }
  } catch (...) {
    commit();
    throw;
  }
  commit();
}

void StreamEngine::advance(TimePoint watermark) {
  if (finished_) throw ConfigError("StreamEngine: advance after finish()");
  if (!watermark_ || watermark > *watermark_) {
    watermark_ = watermark;
    if (config_.journal != nullptr) {
      config_.journal->log(obs::EventKind::kWatermarkAdvance, -1,
                           obs::JournalEvent::kNoEpoch,
                           static_cast<double>(watermark.millis()));
    }
    maybe_close(*watermark_);
  }
}

void StreamEngine::maybe_close(TimePoint watermark) {
  while (closed_.size() < static_cast<std::size_t>(config_.epoch_count) &&
         watermark >= epoch_close_boundary(next_epoch_to_close())) {
    close_next_epoch();
  }
}

void StreamEngine::close_through(std::int64_t epoch) {
  if (finished_) throw ConfigError("StreamEngine: close_through after finish()");
  while (closed_.size() < static_cast<std::size_t>(config_.epoch_count) &&
         next_epoch_to_close() <= epoch) {
    close_next_epoch();
  }
}

void StreamEngine::close_next_epoch() {
  const std::int64_t epoch = next_epoch_to_close();
  const auto wall_start = std::chrono::steady_clock::now();

  // Serially detach this epoch's buckets from the open map (one per
  // server; servers with no matched traffic get an empty bucket — a
  // population-0 statement, exactly as in batch analyze).
  std::vector<std::vector<detect::MatchedLookup>> buckets(config_.server_count);
  std::vector<std::unique_ptr<estimators::CompactCell>> compact_cells;
  if (config_.compact_state) compact_cells.resize(config_.server_count);
  std::uint64_t epoch_matched = 0;
  for (std::uint32_t s = 0; s < config_.server_count; ++s) {
    auto it = open_.find(detect::StreamKey{dns::ServerId{s}, epoch});
    if (it != open_.end()) {
      OpenBucket bucket = std::move(it->second);
      open_.erase(it);
      open_bytes_ -= bucket.exact.capacity() * sizeof(detect::MatchedLookup);
      if (bucket.compact != nullptr) {
        open_bytes_ -= bucket.compact->memory_bytes();
        epoch_matched += bucket.compact->matched();
        compact_cells[s] = std::move(bucket.compact);
      } else {
        epoch_matched += bucket.exact.size();
        buckets[s] = std::move(bucket.exact);
      }
    }
  }
  resident_ -= static_cast<std::size_t>(epoch_matched);
  if (!bucket_cache_.empty()) {
    // The erased buckets' cached addresses are dead; null the epoch's row.
    const auto row = static_cast<std::size_t>(epoch - config_.first_epoch);
    std::fill_n(bucket_cache_.begin() +
                    static_cast<std::ptrdiff_t>(row * config_.server_count),
                config_.server_count, nullptr);
  }

  // Per-server estimation through the meter's shared row path — the same
  // code batch analyze runs per prepared epoch (worker sharding, shared
  // per-epoch EstimationContext, canonical bucket sort), which is what keeps
  // streaming closes bit-identical to the batch pipeline.
  const estimators::Estimator& estimator = meter_.active_estimator();
  closed_.push_back(meter_.estimate_epoch_row(
      epoch, std::move(buckets), std::move(compact_cells), &workers_,
      config_.meter.trace, "stream.close.server"));

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  close_latencies_ms_.push_back(wall_ms);

  obs::MetricsRegistry* const metrics = config_.meter.metrics;
  if (metrics != nullptr) {
    const std::string label = "epoch_" + std::to_string(epoch);
    metrics->counter("stream.closed_epochs").add(1);
    metrics->counter("stream.matched.per_epoch", label).add(epoch_matched);
    static constexpr double kCloseBounds[] = {0.1, 0.3, 1.0,   3.0,  10.0,
                                              30.0, 100.0, 300.0, 1000.0};
    metrics->histogram("stream.epoch_close_ms", kCloseBounds).observe(wall_ms);
    metrics->gauge("stream.resident_lookups").set(static_cast<double>(resident_));
    metrics->gauge("stream.resident_lookups.peak")
        .set(static_cast<double>(peak_resident_));
    metrics->gauge("stream.open_buffer_bytes")
        .set(static_cast<double>(open_bytes_));
    metrics->gauge("stream.open_buffer_bytes.peak")
        .set(static_cast<double>(peak_open_bytes_));
    if (config_.compact_state) {
      metrics->gauge("stream.compact_spills")
          .set(static_cast<double>(compact_spills_));
    }
    flush_counters(*metrics);
  }
  if (config_.meter.trace != nullptr) {
    config_.meter.trace->record("stream.epoch_close", wall_ms);
  }
  if (config_.journal != nullptr) {
    config_.journal->log(obs::EventKind::kEpochClose, -1, epoch, wall_ms);
  }

  if (config_.history != nullptr) {
    const std::vector<Cell>& cells = closed_.back();
    obs::LandscapeEpochRecord row;
    row.epoch = epoch;
    row.family = config_.meter.dga.name;
    row.estimator = std::string(meter_.active_estimator().name());
    row.servers.reserve(cells.size());
    for (const Cell& cell : cells) {
      obs::LandscapeCell snapshot_cell;
      snapshot_cell.population = cell.estimate.value;
      snapshot_cell.interval90 = cell.estimate.interval;
      snapshot_cell.matched = cell.matched;
      snapshot_cell.approximate = cell.estimate.approximate;
      snapshot_cell.sketch_rse = cell.estimate.sketch_rse;
      row.servers.push_back(std::move(snapshot_cell));
    }
    if (config_.health != nullptr) {
      row.health = std::string(health_state_name(config_.health->state()));
    }
    config_.history->record(row);
  }

  if (on_close_) {
    const std::vector<Cell>& cells = closed_.back();
    EpochReport report;
    report.epoch = epoch;
    report.estimator_name = std::string(estimator.name());
    report.servers.reserve(config_.server_count);
    for (std::uint32_t s = 0; s < config_.server_count; ++s) {
      core::ServerEstimate estimate;
      estimate.server = dns::ServerId{s};
      estimate.population = cells[s].estimate.value;
      estimate.per_epoch.emplace_back(epoch, cells[s].estimate.value);
      estimate.matched_lookups = cells[s].matched;
      estimate.interval90 = cells[s].estimate.interval;
      estimate.approximate = cells[s].estimate.approximate;
      estimate.sketch_rse = cells[s].estimate.sketch_rse;
      report.servers.push_back(std::move(estimate));
    }
    on_close_(report);
  }
}

core::LandscapeReport StreamEngine::finish() {
  if (finished_) throw ConfigError("StreamEngine: finish() called twice");
  while (closed_.size() < static_cast<std::size_t>(config_.epoch_count)) {
    close_next_epoch();
  }
  finished_ = true;

  // Assemble the final landscape from the retained cells via the shared
  // window aggregation — the same code path, in the same epoch order, as
  // batch analyze, hence bit-identical totals.
  core::LandscapeReport report;
  report.estimator_name = std::string(meter_.active_estimator().name());
  report.servers.reserve(config_.server_count);
  std::vector<Cell> column(static_cast<std::size_t>(config_.epoch_count));
  for (std::uint32_t s = 0; s < config_.server_count; ++s) {
    for (std::size_t i = 0; i < closed_.size(); ++i) column[i] = closed_[i][s];
    core::ServerEstimate estimate;
    estimate.server = dns::ServerId{s};
    for (const Cell& cell : column) {
      estimate.per_epoch.emplace_back(cell.epoch, cell.estimate.value);
    }
    const estimators::WindowAggregate aggregate =
        estimators::aggregate_cells(column);
    estimate.population = aggregate.population;
    estimate.interval90 = aggregate.interval;
    estimate.matched_lookups = aggregate.matched;
    estimate.approximate = aggregate.approximate;
    estimate.sketch_rse = aggregate.sketch_rse;
    report.servers.push_back(std::move(estimate));
  }

  obs::MetricsRegistry* const metrics = config_.meter.metrics;
  if (metrics != nullptr) {
    flush_counters(*metrics);
    metrics->gauge("stream.population.total").set(report.total_population());
  }
  return report;
}

void StreamEngine::flush_counters(obs::MetricsRegistry& metrics) {
  metrics.counter("stream.ingested").add(ingested_ - flushed_ingested_);
  metrics.counter("stream.matched").add(matched_ - flushed_matched_);
  metrics.counter("stream.unmatched").add(unmatched_ - flushed_unmatched_);
  metrics.counter("stream.late_dropped")
      .add(late_dropped_ - flushed_late_dropped_);
  flushed_ingested_ = ingested_;
  flushed_matched_ = matched_;
  flushed_unmatched_ = unmatched_;
  flushed_late_dropped_ = late_dropped_;
}

// --- checkpointing ---------------------------------------------------------

json::Value StreamEngine::checkpoint() const {
  json::Object fingerprint;
  fingerprint.emplace("family", json::Value(config_.meter.dga.name));
  fingerprint.emplace("dga_seed", number(config_.meter.dga.seed));
  fingerprint.emplace("estimator", json::Value(config_.meter.estimator));
  fingerprint.emplace("window_seed", number(config_.meter.seed));
  fingerprint.emplace("detection_miss_rate",
                      number(config_.meter.detection_miss_rate));
  fingerprint.emplace("first_epoch", number(config_.first_epoch));
  fingerprint.emplace("epoch_count", number(config_.epoch_count));
  fingerprint.emplace("server_count", number(config_.server_count));
  fingerprint.emplace("neg_ttl_ms", number(config_.meter.ttl.negative.millis()));
  // Compact-mode fields appear only when the mode is on, so exact engines'
  // checkpoints stay byte-identical to their pre-compact form.
  if (config_.compact_state) {
    fingerprint.emplace("compact_state", json::Value(true));
    fingerprint.emplace("compact_spill_threshold",
                        number(config_.compact_spill_threshold));
    fingerprint.emplace("compact_kmv_k", number(config_.compact.kmv_k));
    fingerprint.emplace("compact_cms_depth", number(config_.compact.cms_depth));
    fingerprint.emplace("compact_cms_width", number(config_.compact.cms_width));
    fingerprint.emplace("compact_max_time_slots",
                        number(config_.compact.max_time_slots));
    fingerprint.emplace("compact_position_counts",
                        json::Value(config_.compact.position_counts));
  }

  json::Array closed;
  for (std::size_t i = 0; i < closed_.size(); ++i) {
    const std::vector<Cell>& row = closed_[i];
    json::Array value, matched, lo, hi;
    bool any_approximate = false;
    for (const Cell& cell : row) {
      value.push_back(number(cell.estimate.value));
      matched.push_back(number(cell.matched));
      if (cell.estimate.interval) {
        lo.push_back(number(cell.estimate.interval->first));
        hi.push_back(number(cell.estimate.interval->second));
      } else {
        lo.push_back(json::Value(nullptr));
        hi.push_back(json::Value(nullptr));
      }
      any_approximate = any_approximate || cell.estimate.approximate;
    }
    json::Object row_obj;
    row_obj.emplace("epoch",
                    number(config_.first_epoch + static_cast<std::int64_t>(i)));
    row_obj.emplace("value", json::Value(std::move(value)));
    row_obj.emplace("matched", json::Value(std::move(matched)));
    row_obj.emplace("lo", json::Value(std::move(lo)));
    row_obj.emplace("hi", json::Value(std::move(hi)));
    if (any_approximate) {
      // Emitted only when some cell is sketch-approximate, keeping exact
      // rows byte-identical to the v1 layout.
      json::Array approx, rse;
      for (const Cell& cell : row) {
        approx.push_back(
            number(static_cast<std::int64_t>(cell.estimate.approximate ? 1 : 0)));
        rse.push_back(number(cell.estimate.sketch_rse));
      }
      row_obj.emplace("approx", json::Value(std::move(approx)));
      row_obj.emplace("rse", json::Value(std::move(rse)));
    }
    closed.emplace_back(std::move(row_obj));
  }

  json::Array open;
  for (const auto& [key, bucket] : open_) {
    json::Array t, pos, valid;
    for (const detect::MatchedLookup& lookup : bucket.exact) {
      t.push_back(number(lookup.t.millis()));
      pos.push_back(number(static_cast<std::int64_t>(lookup.pool_position)));
      valid.push_back(number(static_cast<std::int64_t>(
          lookup.is_valid_domain ? 1 : 0)));
    }
    json::Object bucket_obj;
    bucket_obj.emplace("server", number(static_cast<std::int64_t>(key.server.value())));
    bucket_obj.emplace("epoch", number(key.epoch));
    bucket_obj.emplace("t", json::Value(std::move(t)));
    bucket_obj.emplace("pos", json::Value(std::move(pos)));
    bucket_obj.emplace("valid", json::Value(std::move(valid)));
    if (bucket.compact != nullptr) {
      // A spilled bucket: the sketch cell is the state (`exact` is empty).
      bucket_obj.emplace("compact", bucket.compact->serialize());
    }
    open.emplace_back(std::move(bucket_obj));
  }

  json::Object root;
  root.emplace("schema", json::Value(std::string(kCheckpointSchema)));
  root.emplace("config", json::Value(std::move(fingerprint)));
  root.emplace("watermark_ms", watermark_ ? number(watermark_->millis())
                                          : json::Value(nullptr));
  root.emplace("ingested", number(ingested_));
  root.emplace("matched", number(matched_));
  root.emplace("unmatched", number(unmatched_));
  root.emplace("late_dropped", number(late_dropped_));
  root.emplace("peak_resident", number(peak_resident_));
  // Only compact engines carry a spill counter, keeping exact checkpoints
  // byte-identical to their pre-compact form.
  if (config_.compact_state) {
    root.emplace("compact_spills", number(compact_spills_));
  }
  root.emplace("finished", json::Value(finished_));
  root.emplace("closed", json::Value(std::move(closed)));
  root.emplace("open", json::Value(std::move(open)));
  if (config_.journal != nullptr) {
    config_.journal->log(obs::EventKind::kCheckpoint, -1,
                         obs::JournalEvent::kNoEpoch,
                         static_cast<double>(closed_.size()));
  }
  return json::Value(std::move(root));
}

void StreamEngine::restore(const json::Value& checkpoint) {
  if (ingested_ != 0 || !closed_.empty() || !open_.empty() || finished_) {
    throw ConfigError("StreamEngine::restore: engine already used");
  }
  if (checkpoint.at("schema").as_string() != kCheckpointSchema) {
    throw DataError("StreamEngine::restore: unknown schema '" +
                    checkpoint.at("schema").as_string() + "'");
  }

  const json::Value& fp = checkpoint.at("config");
  auto require = [&fp](const std::string& key, auto actual) {
    const double stored = fp.at(key).as_double();
    if (stored != static_cast<double>(actual)) {
      throw DataError("StreamEngine::restore: checkpoint was taken under a "
                      "different configuration (" + key + " mismatch)");
    }
  };
  if (fp.at("family").as_string() != config_.meter.dga.name) {
    throw DataError(
        "StreamEngine::restore: checkpoint was taken under a different "
        "configuration (family mismatch)");
  }
  if (fp.at("estimator").as_string() != config_.meter.estimator) {
    throw DataError(
        "StreamEngine::restore: checkpoint was taken under a different "
        "configuration (estimator mismatch)");
  }
  require("dga_seed", config_.meter.dga.seed);
  require("window_seed", config_.meter.seed);
  require("detection_miss_rate", config_.meter.detection_miss_rate);
  require("first_epoch", config_.first_epoch);
  require("epoch_count", config_.epoch_count);
  require("server_count", config_.server_count);
  require("neg_ttl_ms", config_.meter.ttl.negative.millis());
  const bool checkpoint_compact = fp.find("compact_state") != nullptr;
  if (checkpoint_compact && !config_.compact_state) {
    // Sketch state cannot be expanded back into exact buffers; a compact
    // checkpoint only restores into a compact engine.
    throw DataError(
        "StreamEngine::restore: compact-state checkpoint into an exact "
        "engine (enable compact_state to resume it)");
  }
  if (checkpoint_compact) {
    // Sketch parameters shape the live cells; resuming under different ones
    // would silently mix error regimes.
    require("compact_spill_threshold", config_.compact_spill_threshold);
    require("compact_kmv_k", config_.compact.kmv_k);
    require("compact_cms_depth", config_.compact.cms_depth);
    require("compact_cms_width", config_.compact.cms_width);
    require("compact_max_time_slots", config_.compact.max_time_slots);
    if (fp.at("compact_position_counts").as_bool() !=
        config_.compact.position_counts) {
      throw DataError("StreamEngine::restore: checkpoint was taken under a "
                      "different configuration (compact_position_counts "
                      "mismatch)");
    }
  }
  // An exact checkpoint *is* restorable into a compact engine: the exact
  // buckets load verbatim and any at or past the spill threshold are spilled
  // below, exactly as if the threshold had been crossed live (cells are
  // insertion-order invariant, so the result is identical).

  // Parse the entire payload into locals first and commit members only once
  // every field validated. A checkpoint rejected mid-parse (truncated row,
  // out-of-range bucket, misaligned arrays) must leave the engine exactly as
  // constructed — empty and usable — not with a half-loaded watermark and
  // counters that a retry or fallback ingest would silently build on.
  std::optional<TimePoint> new_watermark;
  const json::Value& watermark = checkpoint.at("watermark_ms");
  if (!watermark.is_null()) new_watermark = TimePoint{watermark.as_int()};
  const auto new_ingested =
      static_cast<std::uint64_t>(checkpoint.at("ingested").as_int());
  const auto new_matched =
      static_cast<std::uint64_t>(checkpoint.at("matched").as_int());
  const auto new_unmatched =
      static_cast<std::uint64_t>(checkpoint.at("unmatched").as_int());
  const auto new_late_dropped =
      static_cast<std::uint64_t>(checkpoint.at("late_dropped").as_int());
  auto new_peak_resident =
      static_cast<std::size_t>(checkpoint.at("peak_resident").as_int());
  // Absent in exact checkpoints; spills-on-load below add on top.
  std::uint64_t new_compact_spills = 0;
  if (const json::Value* spills = checkpoint.find("compact_spills");
      spills != nullptr) {
    new_compact_spills = static_cast<std::uint64_t>(spills->as_int());
  }
  const bool new_finished = checkpoint.at("finished").as_bool();

  std::vector<std::vector<Cell>> new_closed;
  const json::Array& closed = checkpoint.at("closed").as_array();
  if (closed.size() > static_cast<std::size_t>(config_.epoch_count)) {
    throw DataError("StreamEngine::restore: more closed epochs than the horizon");
  }
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const json::Value& row_obj = closed[i];
    if (row_obj.at("epoch").as_int() !=
        config_.first_epoch + static_cast<std::int64_t>(i)) {
      throw DataError("StreamEngine::restore: closed epochs not contiguous");
    }
    const json::Array& value = row_obj.at("value").as_array();
    const json::Array& matched = row_obj.at("matched").as_array();
    const json::Array& lo = row_obj.at("lo").as_array();
    const json::Array& hi = row_obj.at("hi").as_array();
    if (value.size() != config_.server_count ||
        matched.size() != config_.server_count ||
        lo.size() != config_.server_count || hi.size() != config_.server_count) {
      throw DataError("StreamEngine::restore: closed row width mismatch");
    }
    const json::Value* approx = row_obj.find("approx");
    const json::Value* rse = row_obj.find("rse");
    if ((approx == nullptr) != (rse == nullptr)) {
      throw DataError("StreamEngine::restore: approx/rse arrays misaligned");
    }
    if (approx != nullptr &&
        (approx->as_array().size() != config_.server_count ||
         rse->as_array().size() != config_.server_count)) {
      throw DataError("StreamEngine::restore: closed row width mismatch");
    }
    std::vector<Cell> row(config_.server_count);
    for (std::size_t s = 0; s < config_.server_count; ++s) {
      row[s].epoch = row_obj.at("epoch").as_int();
      row[s].estimate.value = value[s].as_double();
      row[s].matched = static_cast<std::uint64_t>(matched[s].as_int());
      if (!lo[s].is_null() != !hi[s].is_null()) {
        throw DataError("StreamEngine::restore: half-open interval in cell");
      }
      if (!lo[s].is_null()) {
        row[s].estimate.interval = {lo[s].as_double(), hi[s].as_double()};
      }
      if (approx != nullptr) {
        row[s].estimate.approximate = approx->as_array()[s].as_int() != 0;
        row[s].estimate.sketch_rse = rse->as_array()[s].as_double();
      }
    }
    new_closed.push_back(std::move(row));
  }

  std::map<detect::StreamKey, OpenBucket> new_open;
  std::size_t new_resident = 0;
  const std::int64_t open_floor =
      config_.first_epoch + static_cast<std::int64_t>(new_closed.size());
  for (const json::Value& bucket_obj : checkpoint.at("open").as_array()) {
    const std::int64_t epoch = bucket_obj.at("epoch").as_int();
    const std::int64_t server = bucket_obj.at("server").as_int();
    if (epoch < open_floor ||
        epoch >= config_.first_epoch + config_.epoch_count) {
      throw DataError("StreamEngine::restore: open bucket outside the horizon");
    }
    if (server < 0 || static_cast<std::size_t>(server) >= config_.server_count) {
      throw DataError("StreamEngine::restore: open bucket server out of range");
    }
    const json::Array& t = bucket_obj.at("t").as_array();
    const json::Array& pos = bucket_obj.at("pos").as_array();
    const json::Array& valid = bucket_obj.at("valid").as_array();
    if (t.size() != pos.size() || t.size() != valid.size()) {
      throw DataError("StreamEngine::restore: open bucket arrays misaligned");
    }
    OpenBucket& bucket = new_open[detect::StreamKey{
        dns::ServerId{static_cast<std::uint32_t>(server)}, epoch}];
    if (const json::Value* compact = bucket_obj.find("compact");
        compact != nullptr) {
      if (!config_.compact_state) {
        throw DataError(
            "StreamEngine::restore: compact-state checkpoint into an exact "
            "engine (enable compact_state to resume it)");
      }
      if (!t.empty()) {
        throw DataError(
            "StreamEngine::restore: spilled bucket with exact residue");
      }
      auto cell =
          std::make_unique<estimators::CompactCell>(
              estimators::CompactCell::parse(*compact));
      if (!(cell->spec() ==
            meter_.compact_spec_for_epoch(epoch, config_.compact))) {
        throw DataError(
            "StreamEngine::restore: compact cell spec disagrees with the "
            "engine's configuration");
      }
      new_resident += cell->matched();
      bucket.compact = std::move(cell);
      continue;
    }
    bucket.exact.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      bucket.exact.push_back(detect::MatchedLookup{
          TimePoint{t[i].as_int()},
          static_cast<std::uint32_t>(pos[i].as_int()),
          valid[i].as_int() != 0});
    }
    new_resident += bucket.exact.size();
  }
  new_peak_resident = std::max(new_peak_resident, new_resident);

  // Commit — nothing below throws (spill_bucket only allocates fixed-size
  // cells whose specs this configuration already produced above).
  watermark_ = new_watermark;
  ingested_ = new_ingested;
  matched_ = new_matched;
  unmatched_ = new_unmatched;
  late_dropped_ = new_late_dropped;
  finished_ = new_finished;
  closed_ = std::move(new_closed);
  open_ = std::move(new_open);
  resident_ = new_resident;
  peak_resident_ = new_peak_resident;
  compact_spills_ = new_compact_spills;

  // Rebuild the byte accounting from the restored buckets, then apply the
  // spill policy to exact buckets already past the threshold — an exact
  // checkpoint resumed by a compact engine spills on load, and cells are
  // insertion-order invariant, so the state matches a live-spilled run.
  open_bytes_ = 0;
  for (auto& [key, bucket] : open_) {
    open_bytes_ += bucket.exact.capacity() * sizeof(detect::MatchedLookup);
    if (bucket.compact != nullptr) open_bytes_ += bucket.compact->memory_bytes();
  }
  if (config_.compact_state) {
    for (auto& [key, bucket] : open_) {
      if (bucket.compact == nullptr &&
          bucket.exact.size() >= config_.compact_spill_threshold) {
        spill_bucket(bucket, key.epoch);
      }
    }
  }
  peak_open_bytes_ = std::max(peak_open_bytes_, open_bytes_);
  if (config_.journal != nullptr) {
    config_.journal->log(obs::EventKind::kRestore, -1,
                         obs::JournalEvent::kNoEpoch,
                         static_cast<double>(closed_.size()));
  }
}

}  // namespace botmeter::stream
