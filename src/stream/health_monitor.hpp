// Operational health signals for a long-running StreamEngine.
//
// A deployed monitor runs for days; "is it keeping up?" must be answerable
// from outside without stopping it. StreamHealthMonitor derives a small set
// of signals from the engine and folds them into one coarse state
// (ok / degraded / unhealthy) that `/healthz` and dashboards key on:
//
//   - *Watermark lag*: wall milliseconds since the ingest watermark last
//     advanced. A healthy feed moves the watermark constantly; a stalled
//     collector or upstream tap freezes it while the wall clock runs on.
//   - *Late rate*: tuples dropped as too late, as a fraction of all tuples
//     the matcher attributed (matched + late). A rising late rate means the
//     allowed lateness no longer covers the feed's disorder — estimates are
//     silently losing evidence.
//   - *Open-buffer bytes*: approximate heap held by matched lookups waiting
//     for their epoch to close — the engine's resident analysis state.
//     Unbounded growth means epochs stopped closing.
//   - *Epoch-close latency*: wall time of each close, observed into an
//     exponential-bucket histogram so a scraper can spot flushes falling
//     behind the epoch cadence.
//
// Time is always injected (`now_ms`, any monotonic wall-clock milliseconds):
// the monitor never reads a clock itself, so threshold/hysteresis behaviour
// is testable with simulated time and no sleeps.
//
// Thread-safety: `sample()` must run on the ingest thread (StreamEngine's
// accessors are unsynchronized), while `state()` / `render()` /
// `last_signals()` may run on any thread — the HTTP exporter reads them
// concurrently. All shared state sits behind one mutex; gauge/histogram
// writes go through the (optional) MetricsRegistry, which is itself safe
// for concurrent scrapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace botmeter::stream {

class StreamEngine;

enum class HealthState : int { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

[[nodiscard]] std::string_view health_state_name(HealthState state);

struct StreamHealthConfig {
  /// Watermark-lag thresholds, wall ms since the watermark last advanced.
  double degraded_watermark_lag_ms = 60'000.0;
  double unhealthy_watermark_lag_ms = 300'000.0;

  /// Late-dropped fraction of attributed tuples (matched + late).
  double degraded_late_rate = 0.01;
  double unhealthy_late_rate = 0.10;

  /// Open-epoch buffer pressure, bytes.
  std::size_t degraded_buffer_bytes = std::size_t{256} << 20;
  std::size_t unhealthy_buffer_bytes = std::size_t{1} << 30;

  /// Hysteresis: a *worse* raw state is reported immediately, but the
  /// reported state only improves after the raw state has held at the
  /// better level for this long — a feed flapping around a threshold reads
  /// as degraded, not as an ok/degraded strobe.
  double recovery_hold_ms = 5'000.0;

  void validate() const;
};

/// The raw signal vector one evaluation sees.
struct StreamHealthSignals {
  double watermark_lag_ms = 0.0;
  double late_rate = 0.0;
  std::size_t open_buffer_bytes = 0;
  std::uint64_t ingested = 0;
  std::uint64_t matched = 0;
  std::uint64_t late_dropped = 0;
  /// Watermark epoch closes so far, and the wall time the most recent one
  /// took (nullopt before the first close).
  std::uint64_t epochs_closed = 0;
  std::optional<double> last_close_ms;

  friend bool operator==(const StreamHealthSignals&,
                         const StreamHealthSignals&) = default;
};

class StreamHealthMonitor {
 public:
  /// `metrics` may be null (signals then live only in the monitor). With a
  /// registry, every sample publishes the gauges
  /// `stream.health.state` (0/1/2), `stream.health.watermark_lag_ms`,
  /// `stream.health.late_rate`, `stream.health.open_buffer_bytes`, and the
  /// histogram `stream.epoch_close_latency_ms` (exponential buckets).
  explicit StreamHealthMonitor(StreamHealthConfig config,
                               obs::MetricsRegistry* metrics = nullptr);

  /// Derive signals from the engine at wall time `now_ms` and evaluate
  /// them. Call from the ingest thread (engine accessors are not
  /// synchronized against ingest). Newly appended epoch-close latencies are
  /// observed into the latency histogram exactly once.
  HealthState sample(const StreamEngine& engine, double now_ms);

  /// Evaluate an explicit signal vector (the simulated-time test path, and
  /// the building block `sample()` uses).
  HealthState evaluate(const StreamHealthSignals& signals, double now_ms);

  [[nodiscard]] HealthState state() const;
  [[nodiscard]] StreamHealthSignals last_signals() const;

  /// Plain-text body for `/healthz`: the state line first, then one
  /// `name: value` line per signal.
  [[nodiscard]] std::string render() const;

  /// Canonical JSON body for `/healthz?format=json` (schema
  /// `botmeter.healthz.v1`): state word plus the full signal vector, via
  /// the byte-stable common/json writer. Same thread-safety as render().
  [[nodiscard]] std::string render_json() const;

 private:
  [[nodiscard]] HealthState raw_state(const StreamHealthSignals& s) const;
  void publish(const StreamHealthSignals& s, HealthState state);

  StreamHealthConfig config_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  HealthState state_ = HealthState::kOk;
  StreamHealthSignals signals_;

  // Recovery hysteresis: the best state observed during the current
  // improvement streak, and when the streak began.
  bool improving_ = false;
  HealthState candidate_ = HealthState::kOk;
  double improving_since_ms_ = 0.0;

  // Watermark-advance tracking for sample().
  std::optional<std::int64_t> last_watermark_ms_;
  std::optional<double> last_advance_wall_ms_;
  std::size_t close_latency_cursor_ = 0;
};

}  // namespace botmeter::stream
