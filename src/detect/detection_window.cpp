#include "detect/detection_window.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace botmeter::detect {

std::size_t DetectionWindow::detected_count() const {
  return static_cast<std::size_t>(
      std::count(detected.begin(), detected.end(), true));
}

DetectionWindow make_detection_window(const dga::EpochPool& pool,
                                      double miss_rate, Rng& rng) {
  if (miss_rate < 0.0 || miss_rate > 1.0) {
    throw ConfigError("make_detection_window: miss_rate must be in [0,1]");
  }
  DetectionWindow window;
  window.epoch = pool.epoch;
  window.miss_rate = miss_rate;
  window.detected.assign(pool.size(), true);
  for (std::uint32_t pos = 0; pos < pool.size(); ++pos) {
    if (pool.is_valid_position(pos)) continue;  // confirmed C2 always known
    if (rng.bernoulli(miss_rate)) window.detected[pos] = false;
  }
  return window;
}

DetectionWindow perfect_detection(const dga::EpochPool& pool) {
  DetectionWindow window;
  window.epoch = pool.epoch;
  window.miss_rate = 0.0;
  window.detected.assign(pool.size(), true);
  return window;
}

}  // namespace botmeter::detect
