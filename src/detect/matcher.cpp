#include "detect/matcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/prefetch.hpp"

namespace botmeter::detect {

DomainMatcher::DomainMatcher(Duration epoch_length)
    : epoch_length_(epoch_length) {
  if (epoch_length.millis() <= 0) {
    throw ConfigError("DomainMatcher: epoch length must be positive");
  }
}

void DomainMatcher::add_epoch(const dga::EpochPool& pool,
                              const DetectionWindow& window) {
  if (window.epoch != pool.epoch) {
    throw ConfigError("DomainMatcher: detection window epoch mismatch");
  }
  if (window.detected.size() != pool.domains.size()) {
    throw ConfigError("DomainMatcher: detection window size mismatch");
  }
  for (std::uint32_t pos = 0; pos < pool.size(); ++pos) {
    if (!window.detected[pos]) continue;
    const auto [it, inserted] = index_.try_emplace(pool.domains[pos]);
    it->second.push_back(Occurrence{pool.epoch, pos, pool.is_valid_position(pos)});
    if (inserted) fast_insert(*it);
    ++index_size_;
  }
}

void DomainMatcher::fast_insert(const IndexEntry& entry) {
  if (fast_.empty() || (fast_count_ + 1) * 2 > fast_.size()) {
    std::vector<FastSlot> grown(fast_.empty() ? 1024 : fast_.size() * 2);
    const std::size_t mask = grown.size() - 1;
    for (const FastSlot& slot : fast_) {
      if (slot.entry == nullptr) continue;
      std::size_t i = slot.hash & mask;
      while (grown[i].entry != nullptr) i = (i + 1) & mask;
      grown[i] = slot;
    }
    fast_ = std::move(grown);
  }
  const std::uint64_t hash = StringHash{}(entry.first);
  const std::size_t mask = fast_.size() - 1;
  std::size_t i = hash & mask;
  while (fast_[i].entry != nullptr) i = (i + 1) & mask;
  fast_[i] = FastSlot{hash, &entry};
  ++fast_count_;
}

DomainMatcher::Resolved DomainMatcher::fast_find(
    std::uint64_t hash, std::string_view domain) const {
  const std::size_t mask = fast_.size() - 1;
  Resolved resolved;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    const FastSlot& slot = fast_[i];
    if (slot.entry == nullptr) return resolved;
    if (slot.hash == hash && slot.entry->first == domain) {
      resolved.occurrences_ = &slot.entry->second;
      return resolved;
    }
  }
}

DomainMatcher::Resolved DomainMatcher::resolve(std::string_view domain) const {
  const auto it = index_.find(domain);
  Resolved resolved;
  if (it != index_.end()) resolved.occurrences_ = &it->second;
  return resolved;
}

void DomainMatcher::resolve_many(std::span<const std::string_view> domains,
                                 std::span<Resolved> out) const {
  if (domains.size() != out.size()) {
    throw ConfigError("DomainMatcher::resolve_many: output span size mismatch");
  }
  if (fast_count_ == 0) {
    std::fill(out.begin(), out.end(), Resolved{});
    return;
  }
  // Staged pipeline over fixed chunks: hash everything first, then walk the
  // miss chain in prefetch waves — first the probe slots, then the map nodes
  // they name, then the key bytes — so by the time fast_find compares keys,
  // each lookup's three dependent lines are already in flight.
  const std::size_t mask = fast_.size() - 1;
  constexpr std::size_t kChunk = 64;
  std::uint64_t hash[kChunk];
  const FastSlot* slot[kChunk];
  for (std::size_t base = 0; base < domains.size(); base += kChunk) {
    const std::size_t m = std::min(kChunk, domains.size() - base);
    for (std::size_t j = 0; j < m; ++j) {
      hash[j] = StringHash{}(domains[base + j]);
      slot[j] = &fast_[hash[j] & mask];
      prefetch_ro(slot[j]);
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (slot[j]->entry != nullptr) prefetch_ro(slot[j]->entry);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const IndexEntry* entry = slot[j]->entry;
      if (entry != nullptr && slot[j]->hash == hash[j]) {
        prefetch_ro(entry->first.data());
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      out[base + j] = fast_find(hash[j], domains[base + j]);
    }
  }
}

std::int64_t DomainMatcher::nominal_epoch(TimePoint t) const {
  return t.millis() >= 0
             ? t.millis() / epoch_length_.millis()
             : (t.millis() - epoch_length_.millis() + 1) /
                   epoch_length_.millis();
}

DomainMatcher::MatchOutcome DomainMatcher::match_resolved(
    Resolved resolved, TimePoint t, dns::ServerId forwarder) const {
  return match_resolved(resolved, t, forwarder, nominal_epoch(t));
}

DomainMatcher::MatchOutcome DomainMatcher::match_resolved(
    Resolved resolved, TimePoint t, dns::ServerId forwarder,
    std::int64_t nominal) const {
  const auto& occurrences =
      *static_cast<const std::vector<Occurrence>*>(resolved.occurrences_);

  // Attribute the lookup to the pool epoch containing its timestamp when
  // possible; otherwise to the closest registered epoch (a lookup train
  // that spilled past an epoch boundary, or a sliding-window domain
  // observed outside its generation day).
  const Occurrence* best = &occurrences.front();
  std::int64_t best_distance = std::abs(best->epoch - nominal);
  for (const Occurrence& occ : occurrences) {
    const std::int64_t distance = std::abs(occ.epoch - nominal);
    if (distance < best_distance) {
      best = &occ;
      best_distance = distance;
    }
  }
  return MatchOutcome{StreamKey{forwarder, best->epoch},
                      MatchedLookup{t, best->pool_position, best->is_valid}};
}

std::optional<DomainMatcher::MatchOutcome> DomainMatcher::match_one(
    const dns::ForwardedLookup& lookup) const {
  const Resolved resolved = resolve(lookup.domain);
  if (!resolved) return std::nullopt;
  return match_resolved(resolved, lookup.timestamp, lookup.forwarder);
}

void DomainMatcher::match_range(std::span<const dns::ForwardedLookup> stream,
                                MatchedStreams& out, MatchStats& stats) const {
  for (const dns::ForwardedLookup& lookup : stream) {
    ++stats.stream_size;
    const std::optional<MatchOutcome> outcome = match_one(lookup);
    if (!outcome) {
      ++stats.unmatched;
      continue;
    }
    ++stats.matched;
    if (outcome->lookup.is_valid_domain) {
      ++stats.valid_domain;
    } else {
      ++stats.nxd;
    }
    out[outcome->key].push_back(outcome->lookup);
  }
}

MatchedStreams DomainMatcher::match(
    std::span<const dns::ForwardedLookup> stream, MatchStats* stats,
    WorkerPool* workers) const {
  MatchedStreams out;
  MatchStats tally;
  if (workers != nullptr && workers->thread_count() > 1 && stream.size() > 1) {
    // Contiguous shards; match_one only reads the immutable index, so shards
    // are independent. The shard partition depends on the thread count but
    // the merged output does not: appending each key's shard-local lookups
    // in shard order reproduces the exact stream order for that key.
    const std::size_t shard_count =
        std::min(stream.size(), workers->thread_count() * 4);
    std::vector<MatchedStreams> shard_out(shard_count);
    std::vector<MatchStats> shard_stats(shard_count);
    workers->parallel_for(shard_count, [&](std::size_t s) {
      const std::size_t begin = stream.size() * s / shard_count;
      const std::size_t end = stream.size() * (s + 1) / shard_count;
      match_range(stream.subspan(begin, end - begin), shard_out[s],
                  shard_stats[s]);
    });
    for (std::size_t s = 0; s < shard_count; ++s) {
      tally += shard_stats[s];
      for (auto& [key, lookups] : shard_out[s]) {
        auto& merged = out[key];
        merged.insert(merged.end(), lookups.begin(), lookups.end());
      }
    }
  } else {
    match_range(stream, out, tally);
  }
  if (stats != nullptr) *stats = tally;
  for (auto& [key, lookups] : out) {
    std::sort(lookups.begin(), lookups.end(), matched_lookup_less);
  }
  return out;
}

AlgorithmicPattern::AlgorithmicPattern(std::size_t min_label_len,
                                       std::size_t max_label_len,
                                       std::vector<std::string> tlds)
    : min_label_len_(min_label_len),
      max_label_len_(max_label_len),
      tlds_(std::move(tlds)) {
  if (min_label_len_ == 0 || max_label_len_ < min_label_len_) {
    throw ConfigError("AlgorithmicPattern: invalid label length bounds");
  }
  for (const auto& tld : tlds_) {
    if (tld.empty() || tld.front() != '.') {
      throw ConfigError("AlgorithmicPattern: TLDs must start with '.'");
    }
  }
}

bool AlgorithmicPattern::matches(std::string_view domain) const {
  // Find a TLD suffix first.
  const std::string* tld = nullptr;
  for (const auto& candidate : tlds_) {
    if (domain.size() > candidate.size() &&
        domain.substr(domain.size() - candidate.size()) == candidate) {
      tld = &candidate;
      break;
    }
  }
  if (tld == nullptr) return false;
  const std::string_view label = domain.substr(0, domain.size() - tld->size());
  if (label.size() < min_label_len_ || label.size() > max_label_len_) return false;
  // DGA labels here are a single flat label of [a-z0-9] starting with a letter.
  if (label.find('.') != std::string_view::npos) return false;
  if (!(label.front() >= 'a' && label.front() <= 'z')) return false;
  return std::all_of(label.begin(), label.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
  });
}

}  // namespace botmeter::detect
