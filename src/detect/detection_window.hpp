// The D3 (DGA-domain detection) window model (§II-B, Fig. 6(e)).
//
// A perfect detector would know every domain in the pool. Real detectors —
// reverse-engineered generators, NXD clustering, lexical classifiers — miss
// a fraction. We model the window as the pool minus a uniformly random x%
// of its NXDs; confirmed C2 (valid) domains are always known, since they are
// what incident responders sinkhole first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dga/pool.hpp"

namespace botmeter::detect {

struct DetectionWindow {
  std::int64_t epoch = 0;
  double miss_rate = 0.0;        // fraction of NXDs unknown to the detector
  std::vector<bool> detected;    // per pool position

  [[nodiscard]] bool covers(std::uint32_t pool_position) const {
    return pool_position < detected.size() && detected[pool_position];
  }
  [[nodiscard]] std::size_t detected_count() const;
};

/// Build a window over `pool` that misses each NXD independently with
/// probability `miss_rate` in [0, 1]. Valid positions are always covered.
[[nodiscard]] DetectionWindow make_detection_window(const dga::EpochPool& pool,
                                                    double miss_rate, Rng& rng);

/// The perfect detector (miss_rate = 0) used by the synthetic benches unless
/// Fig. 6(e) varies coverage.
[[nodiscard]] DetectionWindow perfect_detection(const dga::EpochPool& pool);

}  // namespace botmeter::detect
