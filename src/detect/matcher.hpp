// The DGA-domain matcher (architecture step 3 of Fig. 2).
//
// The matcher consumes the vantage-point stream and keeps the lookups whose
// domain falls inside a registered detection window, grouping them by
// (forwarding server, pool epoch) — exactly the matching results handed to
// the analytical models in step 4. Domains may be registered from plain
// lists (detection windows over known pools) or recognised structurally via
// `AlgorithmicPattern` (§ "algorithmic patterns (or plain lists)").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "detect/detection_window.hpp"
#include "dga/pool.hpp"
#include "dns/ids.hpp"
#include "dns/vantage.hpp"

namespace botmeter {
class WorkerPool;
}

namespace botmeter::detect {

/// One matched, cache-filtered lookup. `pool_position` indexes the epoch's
/// pool; `is_valid_domain` says whether that position is registered C2.
struct MatchedLookup {
  TimePoint t;
  std::uint32_t pool_position = 0;
  bool is_valid_domain = false;

  friend bool operator==(const MatchedLookup&, const MatchedLookup&) = default;
};

/// Canonical order of a matched (server, epoch) stream. Ties are benign:
/// within one epoch a pool position determines the domain, so two lookups
/// comparing equal are byte-identical elements and even an unstable sort
/// yields one canonical sequence.
inline bool matched_lookup_less(const MatchedLookup& a,
                                const MatchedLookup& b) {
  if (a.t != b.t) return a.t < b.t;
  return a.pool_position < b.pool_position;
}

/// Grouping key for matched streams.
struct StreamKey {
  dns::ServerId server;
  std::int64_t epoch = 0;

  friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
};

/// Matched lookups per (server, epoch), each stream sorted by timestamp.
using MatchedStreams = std::map<StreamKey, std::vector<MatchedLookup>>;

/// Tallies of one match() pass (observability): how much of the vantage
/// stream the detection window recognised, split by registered C2 vs
/// detected-NXD hits.
struct MatchStats {
  std::uint64_t stream_size = 0;  // lookups examined
  std::uint64_t matched = 0;      // fell inside a detection window
  std::uint64_t unmatched = 0;    // benign traffic / missed NXDs
  std::uint64_t valid_domain = 0; // matched, registered C2 position
  std::uint64_t nxd = 0;          // matched, detected NXD position

  MatchStats& operator+=(const MatchStats& other) {
    stream_size += other.stream_size;
    matched += other.matched;
    unmatched += other.unmatched;
    valid_domain += other.valid_domain;
    nxd += other.nxd;
    return *this;
  }

  friend bool operator==(const MatchStats&, const MatchStats&) = default;
};

class DomainMatcher {
 public:
  /// `epoch_length` maps timestamps to nominal epochs when a domain string
  /// belongs to several epochs' pools (sliding-window families).
  explicit DomainMatcher(Duration epoch_length);

  /// Register one epoch's pool and its detection window. Only detected
  /// positions become matchable.
  void add_epoch(const dga::EpochPool& pool, const DetectionWindow& window);

  /// Match a vantage-point stream. Unmatched lookups (benign traffic,
  /// missed NXDs) are dropped; pass `stats` to learn how many.
  [[nodiscard]] MatchedStreams match(
      std::span<const dns::ForwardedLookup> stream) const {
    return match(stream, nullptr);
  }
  [[nodiscard]] MatchedStreams match(
      std::span<const dns::ForwardedLookup> stream, MatchStats* stats) const {
    return match(stream, stats, nullptr);
  }

  /// Parallel variant: shards the stream into contiguous ranges over
  /// `workers` and merges the per-shard results serially in shard order.
  /// Matching is stateless per lookup and per-key concatenation in shard
  /// order reproduces the exact stream order, so the output (and `stats`)
  /// is bit-identical to the serial overloads for any worker count. A null
  /// or single-threaded pool degrades to the serial loop.
  [[nodiscard]] MatchedStreams match(std::span<const dns::ForwardedLookup> stream,
                                     MatchStats* stats,
                                     WorkerPool* workers) const;

  /// One matched lookup with its (server, epoch) attribution.
  struct MatchOutcome {
    StreamKey key;
    MatchedLookup lookup;
  };

  /// Match a single lookup — the incremental entry point the streaming
  /// engine uses. Attribution is identical to match(): the batch path is a
  /// loop over this function, so a tuple matches the same way whether it
  /// arrives in a replayed vector or one at a time off a live feed.
  [[nodiscard]] std::optional<MatchOutcome> match_one(
      const dns::ForwardedLookup& lookup) const;

  /// Pre-resolved pool membership of one domain string — the per-interned-id
  /// cache entry of the batched block path. Falsy means the domain is not in
  /// any detection window (the overwhelming majority of border traffic).
  /// Valid as long as the matcher lives and no further add_epoch() happens.
  class Resolved {
   public:
    Resolved() = default;
    [[nodiscard]] explicit operator bool() const { return occurrences_ != nullptr; }

   private:
    friend class DomainMatcher;
    const void* occurrences_ = nullptr;
  };

  /// One string hash per *distinct* domain: resolve the membership once
  /// (per interned id per trace file / vantage table), then replay the
  /// handle per tuple via match_resolved — no hashing, no allocation.
  [[nodiscard]] Resolved resolve(std::string_view domain) const;

  /// Batched resolve: `out[i] == resolve(domains[i])` for every i
  /// (`out.size() == domains.size()`). Probes a flat open-addressed mirror
  /// of the index with a software-prefetch pipeline, so the dependent cache
  /// misses of tens of thousands of lookups against a large table overlap
  /// instead of serialising — the block path resolves a whole freshly
  /// interned table tail per call.
  void resolve_many(std::span<const std::string_view> domains,
                    std::span<Resolved> out) const;

  /// Attribute one tuple of a pre-resolved domain. Precondition: `resolved`
  /// is truthy and came from this matcher. Attribution is byte-identical to
  /// match_one on the equivalent (t, server, domain) tuple — match_one is
  /// resolve + match_resolved.
  [[nodiscard]] MatchOutcome match_resolved(Resolved resolved, TimePoint t,
                                            dns::ServerId forwarder) const;

  /// The nominal pool epoch containing `t` — the reference point of
  /// match_resolved's closest-epoch attribution. Exposed so batched callers
  /// can hoist the per-tuple division out of their hot loop: timestamps
  /// arrive almost sorted, so one epoch's range answers long runs of tuples.
  [[nodiscard]] std::int64_t nominal_epoch(TimePoint t) const;

  /// match_resolved with the nominal epoch precomputed. Precondition on top
  /// of match_resolved's: `nominal == nominal_epoch(t)`. The outcome's
  /// (epoch, pool_position, is_valid_domain) depend only on the domain and
  /// `nominal` — t and forwarder pass through — so callers may additionally
  /// memoise the attribution per (domain, nominal) pair.
  [[nodiscard]] MatchOutcome match_resolved(Resolved resolved, TimePoint t,
                                            dns::ServerId forwarder,
                                            std::int64_t nominal) const;

  [[nodiscard]] Duration epoch_length() const { return epoch_length_; }

  [[nodiscard]] std::uint64_t matchable_domain_count() const {
    return index_size_;
  }

 private:
  struct Occurrence {
    std::int64_t epoch;
    std::uint32_t pool_position;
    bool is_valid;
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  void match_range(std::span<const dns::ForwardedLookup> stream,
                   MatchedStreams& out, MatchStats& stats) const;

  using IndexEntry = std::pair<const std::string, std::vector<Occurrence>>;

  /// One slot of the flat probe table: the key's hash plus the address of
  /// the owning map node (node addresses are stable across map rehashes).
  struct FastSlot {
    std::uint64_t hash = 0;
    const IndexEntry* entry = nullptr;
  };

  void fast_insert(const IndexEntry& entry);
  [[nodiscard]] Resolved fast_find(std::uint64_t hash,
                                   std::string_view domain) const;

  Duration epoch_length_;
  std::unordered_map<std::string, std::vector<Occurrence>, StringHash,
                     std::equal_to<>>
      index_;
  std::uint64_t index_size_ = 0;

  /// Flat linear-probe mirror of `index_` (power-of-two size, load ≤ 1/2),
  /// maintained by add_epoch and read-only afterwards — resolve_many's
  /// prefetch pipeline needs direct slot addresses, which the node-based
  /// map cannot expose.
  std::vector<FastSlot> fast_;
  std::size_t fast_count_ = 0;
};

/// Structural recognition of a DGA family's output: length bounds, allowed
/// label characters, and candidate TLDs. This is the "algorithmic pattern"
/// entry path of the BotMeter configuration interface; it cannot tell two
/// families with the same shape apart, so the pipeline prefers plain lists
/// when a generator is available.
class AlgorithmicPattern {
 public:
  AlgorithmicPattern(std::size_t min_label_len, std::size_t max_label_len,
                     std::vector<std::string> tlds);

  [[nodiscard]] bool matches(std::string_view domain) const;

 private:
  std::size_t min_label_len_;
  std::size_t max_label_len_;
  std::vector<std::string> tlds_;
};

}  // namespace botmeter::detect
