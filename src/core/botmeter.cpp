#include "core/botmeter.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "estimators/context.hpp"
#include "estimators/observation.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::core {

void BotMeterConfig::validate() const {
  dga.validate();
  ttl.validate();
  if (detection_miss_rate < 0.0 || detection_miss_rate > 1.0) {
    throw ConfigError("BotMeterConfig: detection_miss_rate must be in [0,1]");
  }
  if (assumed_miss_rate &&
      (*assumed_miss_rate < 0.0 || *assumed_miss_rate >= 1.0)) {
    throw ConfigError("BotMeterConfig: assumed_miss_rate must be in [0,1)");
  }
}

double LandscapeReport::total_population() const {
  double total = 0.0;
  for (const ServerEstimate& s : servers) total += s.population;
  return total;
}

json::Value landscape_to_json(const LandscapeReport& report) {
  json::Array servers;
  for (const ServerEstimate& s : report.servers) {
    json::Array per_epoch;
    for (const auto& [epoch, value] : s.per_epoch) {
      json::Array pair;
      pair.emplace_back(static_cast<double>(epoch));
      pair.emplace_back(value);
      per_epoch.emplace_back(std::move(pair));
    }
    json::Object server;
    server.emplace("server", json::Value(static_cast<double>(s.server.value())));
    server.emplace("population", json::Value(s.population));
    server.emplace("matched_lookups",
                   json::Value(static_cast<double>(s.matched_lookups)));
    server.emplace("per_epoch", json::Value(std::move(per_epoch)));
    server.emplace("interval90_lo", s.interval90
                                        ? json::Value(s.interval90->first)
                                        : json::Value(nullptr));
    server.emplace("interval90_hi", s.interval90
                                        ? json::Value(s.interval90->second)
                                        : json::Value(nullptr));
    // Emitted only for sketch-approximate estimates so exact pipelines stay
    // byte-identical to their pre-compact output.
    if (s.approximate) {
      server.emplace("approximate", json::Value(true));
      server.emplace("sketch_rse", json::Value(s.sketch_rse));
    }
    servers.emplace_back(std::move(server));
  }
  json::Object root;
  root.emplace("estimator", json::Value(report.estimator_name));
  root.emplace("servers", json::Value(std::move(servers)));
  return json::Value(std::move(root));
}

BotMeter::BotMeter(BotMeterConfig config) : config_(std::move(config)) {
  config_.validate();
  pool_model_ = dga::make_pool_model(config_.dga);
  matcher_ = std::make_unique<detect::DomainMatcher>(config_.dga.epoch);
  if (!config_.estimator.empty()) {
    (void)library_.get(config_.estimator);  // fail fast on unknown names
  }
}

const estimators::Estimator& BotMeter::active_estimator() const {
  return config_.estimator.empty() ? library_.recommended(config_.dga)
                                   : library_.get(config_.estimator);
}

void BotMeter::prepare_epochs(std::int64_t first_epoch, std::int64_t epoch_count) {
  if (epoch_count <= 0) throw ConfigError("prepare_epochs: epoch_count must be > 0");
  for (std::int64_t e = first_epoch; e < first_epoch + epoch_count; ++e) {
    if (epoch_states_.contains(e)) continue;
    const dga::EpochPool& pool = pool_model_->epoch_pool(e);
    // Each epoch samples its window from its own (seed, epoch) substream, so
    // the windows depend only on the configuration — never on how the
    // preparation calls were batched ([0,10) vs [0,5)+[5,10) are identical).
    Rng window_rng{stream_seed(config_.seed, static_cast<std::uint64_t>(e))};
    detect::DetectionWindow window =
        detect::make_detection_window(pool, config_.detection_miss_rate, window_rng);
    matcher_->add_epoch(pool, window);
    epoch_states_.emplace(e, EpochState{&pool, std::move(window)});
    prepared_epochs_.insert(
        std::upper_bound(prepared_epochs_.begin(), prepared_epochs_.end(), e), e);
  }
}

const BotMeter::EpochState& BotMeter::epoch_state(std::int64_t epoch) const {
  const auto it = epoch_states_.find(epoch);
  if (it == epoch_states_.end()) {
    throw ConfigError("window_for_epoch: epoch not prepared");
  }
  return it->second;
}

const detect::DetectionWindow& BotMeter::window_for_epoch(std::int64_t epoch) const {
  return epoch_state(epoch).window;
}

estimators::EpochObservation BotMeter::make_observation(
    std::int64_t epoch, std::vector<detect::MatchedLookup> lookups) const {
  const EpochState& state = epoch_state(epoch);
  estimators::EpochObservation obs;
  obs.lookups = std::move(lookups);
  obs.config = &config_.dga;
  obs.pool = state.pool;
  obs.window = &state.window;
  obs.ttl = config_.ttl;
  obs.window_start = TimePoint{epoch * config_.dga.epoch.millis()};
  obs.window_length = config_.dga.epoch;
  obs.assumed_miss_rate = config_.assumed_miss_rate;
  return obs;
}

estimators::CompactObservation BotMeter::make_compact_observation(
    std::int64_t epoch, const estimators::CompactCell& cell) const {
  const EpochState& state = epoch_state(epoch);
  estimators::CompactObservation obs;
  obs.cell = &cell;
  obs.config = &config_.dga;
  obs.pool = state.pool;
  obs.window = &state.window;
  obs.ttl = config_.ttl;
  obs.window_start = TimePoint{epoch * config_.dga.epoch.millis()};
  obs.window_length = config_.dga.epoch;
  obs.assumed_miss_rate = config_.assumed_miss_rate;
  return obs;
}

estimators::CompactCellSpec BotMeter::compact_spec_for_epoch(
    std::int64_t epoch,
    const estimators::CompactObservationConfig& compact) const {
  const estimators::CompactSupport support =
      active_estimator().compact_support();
  if (!support.supported) {
    throw ConfigError("BotMeter: estimator '" +
                      std::string(active_estimator().name()) +
                      "' has no compact observation path");
  }
  return estimators::make_compact_spec(
      compact, support, TimePoint{epoch * config_.dga.epoch.millis()},
      config_.dga.epoch, config_.ttl);
}

std::vector<estimators::EpochCell> BotMeter::estimate_epoch_row(
    std::int64_t epoch, std::vector<std::vector<detect::MatchedLookup>> buckets,
    WorkerPool* workers, obs::TraceSession* trace,
    const char* span_name) const {
  return estimate_epoch_row(epoch, std::move(buckets), {}, workers, trace,
                            span_name);
}

std::vector<estimators::EpochCell> BotMeter::estimate_epoch_row(
    std::int64_t epoch, std::vector<std::vector<detect::MatchedLookup>> buckets,
    std::vector<std::unique_ptr<estimators::CompactCell>> compact_cells,
    WorkerPool* workers, obs::TraceSession* trace,
    const char* span_name) const {
  if (!compact_cells.empty() && compact_cells.size() != buckets.size()) {
    throw ConfigError("estimate_epoch_row: compact_cells width mismatch");
  }
  const estimators::Estimator& estimator = active_estimator();
  estimators::EstimationContext context;
  estimators::EstimationContext* const shared =
      config_.share_estimation_context ? &context : nullptr;
  std::vector<estimators::EpochCell> cells(buckets.size());
  const auto estimate_one = [&](std::size_t s) {
    obs::ScopedTimer server_timer(trace, span_name);
    estimators::EpochCell& cell = cells[s];
    cell.epoch = epoch;
    if (!compact_cells.empty() && compact_cells[s] != nullptr) {
      const estimators::CompactCell& compact = *compact_cells[s];
      estimators::CompactObservation obs =
          make_compact_observation(epoch, compact);
      obs.context = shared;
      cell.estimate = estimator.estimate_with_interval(obs, 0.9);
      cell.matched = compact.matched();
      return;
    }
    std::vector<detect::MatchedLookup>& bucket = buckets[s];
    std::sort(bucket.begin(), bucket.end(), detect::matched_lookup_less);
    const std::uint64_t count = bucket.size();
    estimators::EpochObservation obs = make_observation(epoch, std::move(bucket));
    obs.context = shared;
    cell.estimate = estimator.estimate_with_interval(obs, 0.9);
    cell.matched = count;
  };
  if (workers != nullptr) {
    workers->parallel_for(buckets.size(), estimate_one);
  } else {
    for (std::size_t s = 0; s < buckets.size(); ++s) estimate_one(s);
  }
  return cells;
}

LandscapeReport BotMeter::analyze(std::span<const dns::ForwardedLookup> stream,
                                  std::size_t server_count) const {
  if (prepared_epochs_.empty()) {
    throw ConfigError("BotMeter::analyze: no epochs prepared");
  }
  if (server_count == 0) {
    throw ConfigError("BotMeter::analyze: server_count must be > 0");
  }

  obs::MetricsRegistry* const metrics = config_.metrics;
  obs::TraceSession* const trace = config_.trace;

  // One pool for the whole call: matcher sharding and every epoch row. With
  // analyze_threads == 1 no threads are spawned and everything below runs
  // as a plain loop. kAllow: determinism tests pin specific counts and the
  // output never depends on the count, so honoring it exactly is safe.
  WorkerPool workers(config_.analyze_threads,
                     WorkerPool::Oversubscribe::kAllow);

  obs::ScopedTimer match_timer(trace, "analyze.match");
  detect::MatchStats match_stats;  // tallied always; flushed when a registry is attached
  detect::MatchedStreams matched = matcher_->match(stream, &match_stats, &workers);
  match_timer.stop();
  if (metrics != nullptr) {
    metrics->counter("analyze.matcher.stream").add(match_stats.stream_size);
    metrics->counter("analyze.matcher.matched").add(match_stats.matched);
    metrics->counter("analyze.matcher.unmatched").add(match_stats.unmatched);
    metrics->counter("analyze.matcher.valid_domain")
        .add(match_stats.valid_domain);
    metrics->counter("analyze.matcher.nxd").add(match_stats.nxd);
    metrics->counter("analyze.servers").add(server_count);
    metrics->counter("analyze.epochs").add(prepared_epochs_.size());
  }

  const estimators::Estimator& estimator = active_estimator();
  obs::ScopedTimer estimate_timer(trace, "analyze.estimate");

  LandscapeReport report;
  report.estimator_name = std::string(estimator.name());
  report.servers.reserve(server_count);

  // Epoch-major: each epoch's row shares one EstimationContext (tables and
  // memoized inversions are per-epoch state) and shards its servers over the
  // pool. Rows land in pre-sized slots; every cell is an independent pure
  // function of its bucket, so the landscape is bit-identical to the
  // server-major serial loop for any analyze_threads.
  std::vector<std::vector<estimators::EpochCell>> rows;
  rows.reserve(prepared_epochs_.size());
  for (std::int64_t e : prepared_epochs_) {
    std::vector<std::vector<detect::MatchedLookup>> buckets(server_count);
    for (std::uint32_t s = 0; s < server_count; ++s) {
      const auto it = matched.find(detect::StreamKey{dns::ServerId{s}, e});
      if (it != matched.end()) buckets[s] = std::move(it->second);
    }
    rows.push_back(estimate_epoch_row(e, std::move(buckets), &workers, trace,
                                      "analyze.estimate.server"));
    if (config_.history != nullptr) {
      // Record the same per-epoch row the streaming engine appends at its
      // watermark close for this epoch, so batch and stream emit identical
      // landscape_series.v1 documents for the same trace. Batch rows carry
      // no health annotation (there is no feed to monitor).
      const std::vector<estimators::EpochCell>& row_cells = rows.back();
      obs::LandscapeEpochRecord history_row;
      history_row.epoch = e;
      history_row.family = config_.dga.name;
      history_row.estimator = std::string(estimator.name());
      history_row.servers.reserve(row_cells.size());
      for (const estimators::EpochCell& cell : row_cells) {
        obs::LandscapeCell snapshot_cell;
        snapshot_cell.population = cell.estimate.value;
        snapshot_cell.interval90 = cell.estimate.interval;
        snapshot_cell.matched = cell.matched;
        snapshot_cell.approximate = cell.estimate.approximate;
        snapshot_cell.sketch_rse = cell.estimate.sketch_rse;
        history_row.servers.push_back(std::move(snapshot_cell));
      }
      config_.history->record(history_row);
    }
  }

  // Serial assembly and metrics flush, in server order.
  std::vector<estimators::EpochCell> cells(prepared_epochs_.size());
  for (std::uint32_t s = 0; s < server_count; ++s) {
    ServerEstimate server_estimate;
    server_estimate.server = dns::ServerId{s};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      cells[i] = rows[i][s];
      server_estimate.per_epoch.emplace_back(cells[i].epoch,
                                             cells[i].estimate.value);
    }

    const estimators::WindowAggregate aggregate =
        estimators::aggregate_cells(cells);
    server_estimate.population = aggregate.population;
    server_estimate.interval90 = aggregate.interval;
    server_estimate.matched_lookups = aggregate.matched;
    server_estimate.approximate = aggregate.approximate;
    server_estimate.sketch_rse = aggregate.sketch_rse;
    if (metrics != nullptr) {
      const std::string label = "server_" + std::to_string(s);
      metrics->counter("analyze.matched_lookups.per_server", label)
          .add(server_estimate.matched_lookups);
      metrics->gauge("analyze.population.per_server", label)
          .set(server_estimate.population);
    }
    report.servers.push_back(std::move(server_estimate));
  }
  estimate_timer.stop();
  if (metrics != nullptr) {
    metrics->gauge("analyze.population.total").set(report.total_population());
  }
  return report;
}

}  // namespace botmeter::core
