#include "core/botmeter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "estimators/observation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::core {

void BotMeterConfig::validate() const {
  dga.validate();
  ttl.validate();
  if (detection_miss_rate < 0.0 || detection_miss_rate > 1.0) {
    throw ConfigError("BotMeterConfig: detection_miss_rate must be in [0,1]");
  }
  if (assumed_miss_rate &&
      (*assumed_miss_rate < 0.0 || *assumed_miss_rate >= 1.0)) {
    throw ConfigError("BotMeterConfig: assumed_miss_rate must be in [0,1)");
  }
}

double LandscapeReport::total_population() const {
  double total = 0.0;
  for (const ServerEstimate& s : servers) total += s.population;
  return total;
}

BotMeter::BotMeter(BotMeterConfig config) : config_(std::move(config)) {
  config_.validate();
  pool_model_ = dga::make_pool_model(config_.dga);
  matcher_ = std::make_unique<detect::DomainMatcher>(config_.dga.epoch);
  if (!config_.estimator.empty()) {
    (void)library_.get(config_.estimator);  // fail fast on unknown names
  }
}

const estimators::Estimator& BotMeter::active_estimator() const {
  return config_.estimator.empty() ? library_.recommended(config_.dga)
                                   : library_.get(config_.estimator);
}

void BotMeter::prepare_epochs(std::int64_t first_epoch, std::int64_t epoch_count) {
  if (epoch_count <= 0) throw ConfigError("prepare_epochs: epoch_count must be > 0");
  Rng window_rng{mix64(config_.seed ^ static_cast<std::uint64_t>(first_epoch))};
  for (std::int64_t e = first_epoch; e < first_epoch + epoch_count; ++e) {
    if (std::binary_search(prepared_epochs_.begin(), prepared_epochs_.end(), e)) {
      continue;
    }
    const dga::EpochPool& pool = pool_model_->epoch_pool(e);
    detect::DetectionWindow window =
        detect::make_detection_window(pool, config_.detection_miss_rate, window_rng);
    matcher_->add_epoch(pool, window);
    windows_.emplace_back(e, std::move(window));
    prepared_epochs_.insert(
        std::upper_bound(prepared_epochs_.begin(), prepared_epochs_.end(), e), e);
  }
}

const detect::DetectionWindow& BotMeter::window_for_epoch(std::int64_t epoch) const {
  for (const auto& [e, window] : windows_) {
    if (e == epoch) return window;
  }
  throw ConfigError("window_for_epoch: epoch not prepared");
}

estimators::EpochObservation BotMeter::make_observation(
    std::int64_t epoch, std::vector<detect::MatchedLookup> lookups) const {
  estimators::EpochObservation obs;
  obs.lookups = std::move(lookups);
  obs.config = &config_.dga;
  obs.pool = &pool_model_->epoch_pool(epoch);
  obs.window = &window_for_epoch(epoch);
  obs.ttl = config_.ttl;
  obs.window_start = TimePoint{epoch * config_.dga.epoch.millis()};
  obs.window_length = config_.dga.epoch;
  obs.assumed_miss_rate = config_.assumed_miss_rate;
  return obs;
}

LandscapeReport BotMeter::analyze(std::span<const dns::ForwardedLookup> stream,
                                  std::size_t server_count) const {
  if (prepared_epochs_.empty()) {
    throw ConfigError("BotMeter::analyze: no epochs prepared");
  }
  if (server_count == 0) {
    throw ConfigError("BotMeter::analyze: server_count must be > 0");
  }

  obs::MetricsRegistry* const metrics = config_.metrics;
  obs::TraceSession* const trace = config_.trace;

  obs::ScopedTimer match_timer(trace, "analyze.match");
  detect::MatchStats match_stats;
  const detect::MatchedStreams matched =
      matcher_->match(stream, metrics != nullptr ? &match_stats : nullptr);
  match_timer.stop();
  if (metrics != nullptr) {
    metrics->counter("analyze.matcher.stream").add(match_stats.stream_size);
    metrics->counter("analyze.matcher.matched").add(match_stats.matched);
    metrics->counter("analyze.matcher.unmatched").add(match_stats.unmatched);
    metrics->counter("analyze.matcher.valid_domain")
        .add(match_stats.valid_domain);
    metrics->counter("analyze.matcher.nxd").add(match_stats.nxd);
    metrics->counter("analyze.servers").add(server_count);
    metrics->counter("analyze.epochs").add(prepared_epochs_.size());
  }

  const estimators::Estimator& estimator = active_estimator();
  obs::ScopedTimer estimate_timer(trace, "analyze.estimate");

  LandscapeReport report;
  report.estimator_name = std::string(estimator.name());
  report.servers.reserve(server_count);

  static const std::vector<detect::MatchedLookup> kEmpty;

  for (std::uint32_t s = 0; s < server_count; ++s) {
    ServerEstimate server_estimate;
    server_estimate.server = dns::ServerId{s};

    std::vector<estimators::EpochCell> cells;
    cells.reserve(prepared_epochs_.size());
    for (std::int64_t e : prepared_epochs_) {
      auto it = matched.find(detect::StreamKey{dns::ServerId{s}, e});
      const std::vector<detect::MatchedLookup>& lookups =
          (it != matched.end()) ? it->second : kEmpty;
      const estimators::EpochObservation obs = make_observation(e, lookups);
      estimators::EpochCell cell;
      cell.epoch = e;
      cell.estimate = estimator.estimate_with_interval(obs, 0.9);
      cell.matched = lookups.size();
      server_estimate.per_epoch.emplace_back(e, cell.estimate.value);
      cells.push_back(cell);
    }

    const estimators::WindowAggregate aggregate =
        estimators::aggregate_cells(cells);
    server_estimate.population = aggregate.population;
    server_estimate.interval90 = aggregate.interval;
    server_estimate.matched_lookups = aggregate.matched;
    if (metrics != nullptr) {
      const std::string label = "server_" + std::to_string(s);
      metrics->counter("analyze.matched_lookups.per_server", label)
          .add(server_estimate.matched_lookups);
      metrics->gauge("analyze.population.per_server", label)
          .set(server_estimate.population);
    }
    report.servers.push_back(std::move(server_estimate));
  }
  estimate_timer.stop();
  if (metrics != nullptr) {
    metrics->gauge("analyze.population.total").set(report.total_population());
  }
  return report;
}

}  // namespace botmeter::core
