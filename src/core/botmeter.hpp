// The BotMeter pipeline (Fig. 2).
//
// Tap the border vantage point (1), describe the target DGA (2), match the
// forwarded stream against the detection window (3), feed the matching
// results (4) to the analytical model selected from the library (5) under
// the analyst's parameter specification (6), and report the estimated bot
// population behind every local DNS server (7) — the botnet landscape.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "detect/detection_window.hpp"
#include "detect/matcher.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"
#include "dns/ids.hpp"
#include "dns/record.hpp"
#include "dns/vantage.hpp"
#include "estimators/estimator.hpp"
#include "estimators/library.hpp"

namespace botmeter {
class WorkerPool;
}

namespace botmeter::obs {
class LandscapeHistory;
class MetricsRegistry;
class TraceSession;
}  // namespace botmeter::obs

namespace botmeter::core {

struct BotMeterConfig {
  /// The target DGA family (step 2: algorithmic pattern / plain list source).
  dga::DgaConfig dga;

  /// Caching policy of the network's local servers (analyst knowledge).
  dns::TtlPolicy ttl;

  /// Fraction of pool NXDs the deployed D3 algorithm misses (§II-B). The
  /// matcher can only recognise detected domains.
  double detection_miss_rate = 0.0;

  /// If set, estimators correct their statistics for the miss rate
  /// (extension; leave unset for paper-faithful behaviour).
  std::optional<double> assumed_miss_rate;

  /// Estimator name from the model library; empty selects the paper's
  /// recommendation for the family's barrel model.
  std::string estimator;

  /// Seed for the detection-window sampling.
  std::uint64_t seed = 7;

  /// Total parallelism of analyze() — matcher sharding plus the
  /// per-(server, epoch) estimation loop. 1 = serial (the default), 0 =
  /// hardware concurrency. The LandscapeReport is bit-identical for every
  /// value: matched streams merge in canonical order and every estimate is
  /// an independent pure function of its cell, written to its own slot.
  std::size_t analyze_threads = 1;

  /// Share one EstimationContext per epoch across the servers of that epoch
  /// (tables built once, duplicate observations memoized). Disabling exists
  /// only for A/B verification — results are bit-identical either way, the
  /// cache just recomputes everything.
  bool share_estimation_context = true;

  /// Optional observability sinks (see src/obs/): matcher tallies,
  /// estimator inputs/outputs, and per-stage wall times of analyze().
  /// Null means no-op; attaching them never changes the LandscapeReport.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;

  /// Optional landscape time-series sink: analyze() appends one per-server
  /// snapshot row per prepared epoch (same rows the streaming engine records
  /// at its closes, so the two pipelines emit identical series documents
  /// for the same trace). Observational only — never changes the report.
  obs::LandscapeHistory* history = nullptr;

  void validate() const;
};

/// Estimated population behind one local DNS server.
struct ServerEstimate {
  dns::ServerId server;
  double population = 0.0;  // mean over the prepared epochs
  std::vector<std::pair<std::int64_t, double>> per_epoch;
  std::uint64_t matched_lookups = 0;

  /// 90% confidence band, present when the active estimator quantifies its
  /// uncertainty in every prepared epoch (Poisson: exact chi-square rate
  /// interval; Bernoulli: parametric bootstrap). Multi-epoch windows use the
  /// mean of the per-epoch bounds — conservative, since epoch estimates are
  /// close to independent.
  std::optional<std::pair<double, double>> interval90;

  /// True when any contributing epoch estimate came from saturated sketch
  /// state (compact observation path): the interval has been widened by the
  /// propagated sketch error and `sketch_rse` carries the largest per-epoch
  /// sketch relative standard error. Exact pipelines always report false.
  bool approximate = false;
  double sketch_rse = 0.0;
};

/// The charted landscape (step 7).
struct LandscapeReport {
  std::string estimator_name;
  std::vector<ServerEstimate> servers;  // sorted by server id

  [[nodiscard]] double total_population() const;
};

/// Canonical JSON form of a landscape. Serialized through the byte-stable
/// common/json writer, two reports render identically iff every field —
/// every double bit included — is equal, which is how the thread-count and
/// memo-cache determinism regressions compare runs.
[[nodiscard]] json::Value landscape_to_json(const LandscapeReport& report);

class BotMeter {
 public:
  explicit BotMeter(BotMeterConfig config);

  BotMeter(const BotMeter&) = delete;
  BotMeter& operator=(const BotMeter&) = delete;

  /// Build pools, detection windows, and the matcher index for epochs
  /// [first_epoch, first_epoch + epoch_count). Must be called before
  /// analyze(); may be called again to extend the window.
  void prepare_epochs(std::int64_t first_epoch, std::int64_t epoch_count);

  /// Chart the landscape from a vantage-point stream. `server_count` fixes
  /// the report size so that servers with zero matched lookups still appear
  /// (population 0 is a statement, not an omission).
  [[nodiscard]] LandscapeReport analyze(
      std::span<const dns::ForwardedLookup> stream,
      std::size_t server_count) const;

  /// Bundle the matched lookups of one (server, epoch) cell into the
  /// estimator input. `lookups` must already be sorted by (t, pool_position)
  /// — the order match() emits. Shared by analyze() and the streaming
  /// engine so both hand the estimator byte-identical observations.
  [[nodiscard]] estimators::EpochObservation make_observation(
      std::int64_t epoch, std::vector<detect::MatchedLookup> lookups) const;

  /// Compact counterpart of make_observation: bundle a sketch-backed cell
  /// with the same per-epoch context. `cell` must outlive the observation.
  [[nodiscard]] estimators::CompactObservation make_compact_observation(
      std::int64_t epoch, const estimators::CompactCell& cell) const;

  /// The cell shape for one epoch under this meter's configuration and the
  /// active estimator's compact support.
  [[nodiscard]] estimators::CompactCellSpec compact_spec_for_epoch(
      std::int64_t epoch,
      const estimators::CompactObservationConfig& compact) const;

  /// Estimate one epoch's row of the landscape: cell s from buckets[s], the
  /// matched lookups of server s (any order; sorted canonically here). The
  /// per-server estimations run over `workers` (caller participates; null or
  /// single-threaded pool = plain loop) and share one EstimationContext when
  /// config().share_estimation_context is set. Each cell is an independent
  /// pure function of its bucket written to its own pre-sized slot, so the
  /// row is bit-identical for any worker count. analyze() runs this for
  /// every prepared epoch; the streaming engine runs it at each epoch close
  /// — the shared path that keeps the two pipelines equivalent. Per-server
  /// wall time lands on `span_name` spans of `trace` (observability only).
  [[nodiscard]] std::vector<estimators::EpochCell> estimate_epoch_row(
      std::int64_t epoch,
      std::vector<std::vector<detect::MatchedLookup>> buckets,
      WorkerPool* workers, obs::TraceSession* trace,
      const char* span_name) const;

  /// Mixed-state variant for the compact streaming path: cell s comes from
  /// `compact_cells[s]` when non-null (a spilled sketch cell), otherwise
  /// from `buckets[s]` exactly as above. `compact_cells` must be empty or
  /// the same width as `buckets`. The exact overload forwards here with no
  /// compact cells, so both pipelines share one estimation path.
  [[nodiscard]] std::vector<estimators::EpochCell> estimate_epoch_row(
      std::int64_t epoch,
      std::vector<std::vector<detect::MatchedLookup>> buckets,
      std::vector<std::unique_ptr<estimators::CompactCell>> compact_cells,
      WorkerPool* workers, obs::TraceSession* trace,
      const char* span_name) const;

  [[nodiscard]] const dga::QueryPoolModel& pool_model() const { return *pool_model_; }
  [[nodiscard]] const estimators::ModelLibrary& library() const { return library_; }
  [[nodiscard]] const estimators::Estimator& active_estimator() const;
  [[nodiscard]] const detect::DetectionWindow& window_for_epoch(
      std::int64_t epoch) const;
  [[nodiscard]] const detect::DomainMatcher& matcher() const { return *matcher_; }
  /// Epochs prepared so far, ascending.
  [[nodiscard]] std::span<const std::int64_t> prepared_epochs() const {
    return prepared_epochs_;
  }
  [[nodiscard]] const BotMeterConfig& config() const { return config_; }

 private:
  /// Everything analyze() needs per prepared epoch, resolved once at
  /// preparation time: the (heap-stable) pool and the detection window.
  /// Keyed by epoch so the per-cell lookups the estimation loop does are
  /// O(log epochs) instead of a linear scan per (server, epoch).
  struct EpochState {
    const dga::EpochPool* pool = nullptr;
    detect::DetectionWindow window;
  };

  [[nodiscard]] const EpochState& epoch_state(std::int64_t epoch) const;

  BotMeterConfig config_;
  estimators::ModelLibrary library_;
  std::unique_ptr<dga::QueryPoolModel> pool_model_;
  std::unique_ptr<detect::DomainMatcher> matcher_;
  std::map<std::int64_t, EpochState> epoch_states_;
  std::vector<std::int64_t> prepared_epochs_;  // sorted
};

}  // namespace botmeter::core
