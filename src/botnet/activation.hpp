// Bot-activation processes (§V-A).
//
// The paper models the activations of a population of N bots within an epoch
// as a Poisson process and evaluates two variants:
//
//  - constant rate lambda_0 = N / delta_e. Conditioning a Poisson process on
//    exactly N arrivals in the window makes the arrival instants i.i.d.
//    uniform, which is how we draw them — every bot activates exactly once
//    per epoch.
//  - dynamic rate: the i-th activation happens after a gap drawn with rate
//    lambda_i = lambda_0 * exp(kappa_i), kappa_i ~ Normal(0, sigma^2). Bots
//    whose arrival falls past the end of the epoch simply do not activate
//    that day; the ground truth used by the harness is the *realised* active
//    count, so estimator error is never an artefact of dropped arrivals.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace botmeter::botnet {

enum class RateModel {
  kConstant,  // lambda_0 = N / delta_e throughout
  kDynamic,   // per-arrival lambda_i = lambda_0 * exp(kappa_i)
};

struct ActivationConfig {
  RateModel model = RateModel::kConstant;
  double sigma = 1.0;  // stddev of kappa_i; only used by kDynamic

  void validate() const;
};

/// Draw activation instants for up to `n` bots within [start, start + len).
/// Returned times are sorted ascending; size() <= n (strictly fewer only
/// under kDynamic when arrivals spill past the window).
[[nodiscard]] std::vector<TimePoint> draw_activations(const ActivationConfig& config,
                                                      std::size_t n, TimePoint start,
                                                      Duration len, Rng& rng);

/// Draw one bot's activation instant under the constant-rate model from the
/// bot's own private stream. Conditioning the constant-rate Poisson process
/// on n in-window arrivals makes the instants i.i.d. uniform, so every bot
/// can draw its own with no shared state — which is what lets the simulation
/// engine shard the constant-model activation draws per bot. The dynamic
/// model is a sequential gap process and keeps using draw_activations.
[[nodiscard]] TimePoint draw_activation(TimePoint start, Duration len,
                                        Rng& bot_rng);

}  // namespace botmeter::botnet
