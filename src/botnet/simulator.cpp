#include "botnet/simulator.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "botnet/bot.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "dns/replay.hpp"
#include "dns/tiered.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::botnet {

namespace {

/// A not-yet-cache-filtered lookup, tagged with the issuing bot.
struct PendingQuery {
  TimePoint t;
  std::uint32_t bot = 0;
  std::uint32_t pool_position = 0;
};

/// Canonical replay order: the global time-ordered interleave the caches
/// would see, with the bot id as tie-break. A bot activates at most once per
/// epoch, so (t, bot) ties occur only *within* one bot's train — stable
/// merging keeps those in issue order, giving a total order that is
/// independent of how the queries were generated or partitioned.
struct QueryOrder {
  bool operator()(const PendingQuery& a, const PendingQuery& b) const {
    if (a.t != b.t) return a.t < b.t;
    return a.bot < b.bot;
  }
};

/// One query routed to its domain shard, remembering its rank in the
/// canonical stream so misses (and raw records) can be put back in order.
struct ShardQuery {
  TimePoint t;
  std::uint32_t bot = 0;
  std::uint32_t pool_position = 0;
  std::uint32_t index = 0;
};

/// Substream lane for the shared per-epoch draws (dynamic-model arrivals and
/// their assignment shuffle). Bot lanes use the bot id, which as a
/// std::uint32_t can never collide with this.
constexpr std::uint64_t kEpochLane = 1ULL << 32;

/// Partition n items into a chunk count that depends only on n — never on
/// the thread count — so the chunk-local merge runs (and therefore
/// everything downstream) are identical however many workers pick them up.
std::size_t chunk_count_for(std::size_t n) {
  constexpr std::size_t kMinPerChunk = 16;
  constexpr std::size_t kMaxChunks = 1024;
  if (n == 0) return 1;
  return std::clamp<std::size_t>(n / kMinPerChunk, 1, kMaxChunks);
}

std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                 std::size_t chunks,
                                                 std::size_t c) {
  return {n * c / chunks, n * (c + 1) / chunks};
}

/// Bottom-up stable merge of a chunk's per-train runs (each train is
/// time-nondecreasing, hence already sorted under QueryOrder) into one
/// sorted run, ping-ponging between the chunk buffer and a scratch buffer.
/// `bounds` holds every run start plus the end offset.
void merge_chunk_runs(std::vector<PendingQuery>& queries,
                      std::vector<std::size_t> bounds) {
  std::vector<PendingQuery> scratch(queries.size());
  std::vector<PendingQuery>* src = &queries;
  std::vector<PendingQuery>* dst = &scratch;
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    std::size_t i = 0;
    for (; i + 2 < bounds.size(); i += 2) {
      const auto lo = static_cast<std::ptrdiff_t>(bounds[i]);
      const auto mid = static_cast<std::ptrdiff_t>(bounds[i + 1]);
      const auto hi = static_cast<std::ptrdiff_t>(bounds[i + 2]);
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, QueryOrder{});
      next.push_back(bounds[i]);
    }
    if (i + 1 < bounds.size()) {  // odd run out: carry it over unmerged
      std::copy(src->begin() + static_cast<std::ptrdiff_t>(bounds[i]),
                src->begin() + static_cast<std::ptrdiff_t>(bounds[i + 1]),
                dst->begin() + static_cast<std::ptrdiff_t>(bounds[i]));
      next.push_back(bounds[i]);
    }
    next.push_back(bounds.back());
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != &queries) queries.swap(scratch);
}

/// Reduce the chunk-sorted runs with a fixed pairwise merge tree until at
/// most `target` remain. The pairing depends only on the run count, so the
/// surviving runs are canonical; each round's merges are independent and run
/// on the pool.
void reduce_runs(std::vector<std::vector<PendingQuery>>& runs,
                 std::size_t target, WorkerPool& workers) {
  while (runs.size() > target) {
    std::vector<std::vector<PendingQuery>> next((runs.size() + 1) / 2);
    workers.parallel_for(runs.size() / 2, [&](std::size_t p) {
      const auto& a = runs[2 * p];
      const auto& b = runs[2 * p + 1];
      next[p].reserve(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(next[p]), QueryOrder{});
    });
    if (runs.size() % 2 == 1) next.back() = std::move(runs.back());
    runs = std::move(next);
  }
}

/// Final fused stage: k-way merge of the surviving runs (k small) straight
/// into the shard-bucketed layout, assigning each query its rank in the
/// canonical stream as it is emitted. `next_slot` holds each shard's write
/// cursor (initialised to the shard's start offset).
void merge_into_buckets(const std::vector<std::vector<PendingQuery>>& runs,
                        const std::vector<std::uint8_t>& shard_of_pos,
                        std::array<std::size_t, dns::DnsCache::kShardCount>&
                            next_slot,
                        std::vector<ShardQuery>& bucketed) {
  struct Cursor {
    const PendingQuery* it;
    const PendingQuery* end;
  };
  std::vector<Cursor> heads;
  heads.reserve(runs.size());
  for (const auto& run : runs) {
    if (!run.empty()) heads.push_back({run.data(), run.data() + run.size()});
  }
  std::uint32_t index = 0;
  while (!heads.empty()) {
    std::size_t best = 0;
    for (std::size_t h = 1; h < heads.size(); ++h) {
      if (QueryOrder{}(*heads[h].it, *heads[best].it)) best = h;
    }
    const PendingQuery& q = *heads[best].it;
    bucketed[next_slot[shard_of_pos[q.pool_position]]++] =
        ShardQuery{q.t, q.bot, q.pool_position, index++};
    if (++heads[best].it == heads[best].end) {
      heads.erase(heads.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }
}

/// Per-tier cache accounting, uniform across the two topologies so the
/// shared epoch loop can chart both. Tier names become metric name segments
/// ("sim.cache.local.hits", "sim.cache.regional.hits").
struct TierStats {
  const char* tier;
  dns::CacheStats stats;
};

std::vector<TierStats> cache_tier_stats(const dns::Network& network) {
  return {TierStats{"local", network.cache_stats()}};
}

std::vector<TierStats> cache_tier_stats(const dns::TieredNetwork& network) {
  return {TierStats{"local", network.local_cache_stats()},
          TierStats{"regional", network.regional_cache_stats()}};
}

template <typename NetworkT>
std::size_t register_epoch_domains(const SimulationConfig& config,
                                   dga::QueryPoolModel& pool_model,
                                   NetworkT& network, bool takedown,
                                   Duration live_span) {
  const Duration epoch_len = config.dga.epoch;
  // Keep registrations alive slightly past the epoch so activation trains
  // spilling over the boundary still resolve consistently (the botmaster
  // does not tear servers down at midnight sharp).
  const Duration registration_slack = hours(1);
  std::size_t registered = 0;
  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint start{e * epoch_len.millis()};
    const TimePoint until =
        takedown ? start + live_span : start + epoch_len + registration_slack;
    for (std::uint32_t pos : pool.valid_positions) {
      network.authority().register_domain(pool.domains[pos], start, until);
      ++registered;
    }
  }
  return registered;
}

/// The epoch-loop core shared by the flat and tiered topologies. Per epoch:
/// draw activations, expand every active bot's lookup train from its private
/// (epoch, bot) stream, merge the trains into one canonical time-ordered
/// stream, and push it through the caching network — generation and merging
/// sharded over bot chunks, the cache/vantage replay sharded over domain
/// shards, with misses merged back into the vantage point in stream order.
template <typename NetworkT>
SimulationResult run_simulation(const SimulationConfig& config,
                                dga::QueryPoolModel& pool_model,
                                NetworkT& network,
                                std::size_t truth_server_count) {
  const Duration epoch_len = config.dga.epoch;
  const bool takedown = config.takedown_after_fraction < 1.0;
  // With a takedown fraction below 1, registrations lapse mid-epoch
  // (sinkholing), so bots querying a C2 domain afterwards receive NXDOMAIN.
  const Duration live_span{static_cast<std::int64_t>(
      static_cast<double>(epoch_len.millis()) * config.takedown_after_fraction)};

  obs::MetricsRegistry* const metrics = config.metrics;
  obs::TraceSession* const trace = config.trace;

  std::size_t registered = 0;
  {
    // Covers pool construction for every epoch (lazy in epoch_pool) plus
    // the authoritative registrations.
    obs::ScopedTimer timer(trace, "sim.register_domains");
    registered =
        register_epoch_domains(config, pool_model, network, takedown, live_span);
  }
  if (metrics != nullptr) {
    metrics->counter("sim.authority.registered_domains").add(registered);
  }

  WorkerPool workers(config.worker_threads);
  const bool per_bot_arrivals = config.activation.model == RateModel::kConstant;

  // Client placement is a pure function of the bot id — resolve each bot's
  // route (the resolver whose cache serves it) and truth attribution bucket
  // once for the whole run instead of once per query.
  std::vector<dns::ServerId> route_of_bot(config.bot_count, dns::ServerId{0});
  std::vector<std::uint32_t> truth_server_of_bot(config.bot_count, 0);
  {
    const std::size_t n_chunks = chunk_count_for(config.bot_count);
    workers.parallel_for(n_chunks, [&](std::size_t c) {
      const auto [lo, hi] = chunk_bounds(config.bot_count, n_chunks, c);
      for (std::size_t b = lo; b < hi; ++b) {
        const dns::ClientId client{static_cast<std::uint32_t>(b)};
        route_of_bot[b] = network.route_for_client(client);
        const dns::ServerId truth_server = network.server_for_client(client);
        if (truth_server.value() >= truth_server_count) {
          throw ConfigError("simulate: client assigned to unknown server");
        }
        truth_server_of_bot[b] =
            static_cast<std::uint32_t>(truth_server.value());
      }
    });
  }

  SimulationResult result;
  result.truth.reserve(static_cast<std::size_t>(config.epoch_count));

  // Per-tier cumulative cache stats at the previous epoch boundary, so each
  // epoch's metrics are deltas rather than running totals.
  std::vector<TierStats> prev_tiers;
  if (metrics != nullptr) prev_tiers = cache_tier_stats(network);

  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    obs::ScopedTimer epoch_timer(trace, "sim.epoch");
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint epoch_start{e * epoch_len.millis()};
    std::optional<TimePoint> c2_down_after;
    if (takedown) c2_down_after = epoch_start + live_span;

    // Which bots activate this epoch. Under the constant-rate model every
    // bot activates and draws its own instant from its private stream (no
    // shared state at all); the dynamic model is a sequential gap process,
    // so its arrivals come from the epoch's shared lane and are handed to a
    // shuffled subset of the population, exactly as before.
    std::vector<TimePoint> arrivals;
    std::vector<std::uint32_t> bot_order;
    std::size_t active_count = config.bot_count;
    if (!per_bot_arrivals) {
      Rng epoch_stream =
          Rng::stream(config.seed, static_cast<std::uint64_t>(e), kEpochLane);
      arrivals = draw_activations(config.activation, config.bot_count,
                                  epoch_start, epoch_len, epoch_stream);
      bot_order.resize(config.bot_count);
      for (std::uint32_t i = 0; i < config.bot_count; ++i) bot_order[i] = i;
      epoch_stream.shuffle(std::span<std::uint32_t>{bot_order});
      active_count = arrivals.size();
    }

    // The domain shard owning each position's cache state — a pure function
    // of the domain, so the replay partition is thread-count independent.
    constexpr std::size_t kShards = dns::DnsCache::kShardCount;
    std::vector<std::uint8_t> shard_of_pos(pool.size());
    for (std::size_t p = 0; p < shard_of_pos.size(); ++p) {
      shard_of_pos[p] =
          static_cast<std::uint8_t>(dns::DnsCache::shard_of(pool.domains[p]));
    }

    // Sharded query generation: each chunk of bots expands its lookup trains
    // into a private buffer (a concatenation of time-sorted trains) and
    // stably merges them into one sorted run. Per-server activity and the
    // per-shard query histogram are tallied per chunk and summed afterwards.
    struct ChunkOutput {
      std::vector<PendingQuery> queries;
      std::vector<std::uint32_t> active_per_server;
      std::array<std::uint32_t, kShards> shard_counts{};
    };
    const std::size_t n_chunks = chunk_count_for(active_count);
    std::vector<ChunkOutput> chunk_out(n_chunks);
    obs::ScopedTimer generate_timer(trace, "sim.generate");
    workers.parallel_for(n_chunks, [&](std::size_t c) {
      // Per-chunk span on the worker that actually ran it, so the Perfetto
      // export shows the generate fan-out across worker tracks. Wall time
      // only — results are untouched.
      obs::ScopedTimer chunk_timer(trace, "sim.generate.chunk");
      const auto [lo, hi] = chunk_bounds(active_count, n_chunks, c);
      ChunkOutput& out = chunk_out[c];
      out.active_per_server.assign(truth_server_count, 0);
      std::vector<std::size_t> bounds;
      bounds.reserve(hi - lo + 1);
      bounds.push_back(0);
      for (std::size_t k = lo; k < hi; ++k) {
        const std::uint32_t bot =
            per_bot_arrivals ? static_cast<std::uint32_t>(k) : bot_order[k];
        // Per-(epoch, bot) private stream: independent of every other bot,
        // of the shared epoch draws, and of the worker that runs it.
        Rng bot_rng =
            Rng::stream(config.seed, static_cast<std::uint64_t>(e), bot);
        const TimePoint arrival =
            per_bot_arrivals ? draw_activation(epoch_start, epoch_len, bot_rng)
                             : arrivals[k];
        for_each_activation_query(
            config.dga, pool, arrival, bot_rng, c2_down_after,
            [&](TimePoint t, std::uint32_t pos) {
              out.queries.push_back(PendingQuery{t, bot, pos});
              ++out.shard_counts[shard_of_pos[pos]];
            });
        bounds.push_back(out.queries.size());
        ++out.active_per_server[truth_server_of_bot[bot]];
      }
      merge_chunk_runs(out.queries, std::move(bounds));
    });
    generate_timer.stop();

    obs::ScopedTimer merge_timer(trace, "sim.merge");
    EpochTruth truth;
    truth.epoch = e;
    truth.total_active = static_cast<std::uint32_t>(active_count);
    truth.active_per_server.assign(truth_server_count, 0);
    std::array<std::size_t, kShards + 1> shard_start{};
    std::vector<std::vector<PendingQuery>> runs;
    runs.reserve(n_chunks);
    {
      std::array<std::size_t, kShards> counts{};
      for (ChunkOutput& out : chunk_out) {
        for (std::size_t s = 0; s < truth_server_count; ++s) {
          truth.active_per_server[s] += out.active_per_server[s];
        }
        for (std::size_t s = 0; s < kShards; ++s) {
          counts[s] += out.shard_counts[s];
        }
        runs.push_back(std::move(out.queries));
      }
      std::size_t acc = 0;
      for (std::size_t s = 0; s < kShards; ++s) {
        shard_start[s] = acc;
        acc += counts[s];
      }
      shard_start[kShards] = acc;
    }
    const std::size_t n_queries = shard_start[kShards];
    if (n_queries > std::numeric_limits<std::uint32_t>::max()) {
      throw ConfigError("simulate: epoch query stream exceeds 2^32 lookups");
    }

    // Reduce the runs with parallel merge rounds, then fuse the last k-way
    // merge with the shard scatter: queries land bucketed by shard, each
    // stamped with its rank in the canonical global stream. Buckets hold
    // contiguous copies so each shard's replay is a sequential scan.
    reduce_runs(runs, 4, workers);
    std::vector<ShardQuery> bucketed(n_queries);
    {
      std::array<std::size_t, kShards> next_slot{};
      std::copy(shard_start.begin(), shard_start.end() - 1, next_slot.begin());
      merge_into_buckets(runs, shard_of_pos, next_slot, bucketed);
    }
    runs.clear();
    merge_timer.stop();

    // Sharded cache/vantage replay: each worker replays one shard's
    // subsequence in stream order — every piece of cache state it touches,
    // across every tier, is private to that shard — then the border misses
    // are merged back into the vantage point in canonical stream order.
    const bool record_raw = config.record_raw;
    const std::size_t raw_base = result.raw.size();
    if (record_raw) result.raw.resize(raw_base + n_queries);
    std::vector<std::vector<dns::ReplayMiss>> miss_sinks(kShards);
    obs::ScopedTimer replay_timer(trace, "sim.replay");
    {
      typename NetworkT::Replay replay(network, pool.domains);
      workers.parallel_for(kShards, [&](std::size_t s) {
        obs::ScopedTimer shard_timer(trace, "sim.replay.shard");
        for (std::size_t i = shard_start[s]; i < shard_start[s + 1]; ++i) {
          const ShardQuery& q = bucketed[i];
          const dns::Rcode rcode =
              replay.resolve(q.t, route_of_bot[q.bot], q.pool_position, s,
                             q.index, miss_sinks[s]);
          if (record_raw) {
            // Shards own disjoint index sets, so these writes never race.
            result.raw[raw_base + q.index] =
                RawRecord{q.t, dns::ClientId{q.bot},
                          pool.domains[q.pool_position], rcode};
          }
        }
      });
    }
    replay_timer.stop();

    // Per-server forwarded-lookup tally, summed over the shard sinks in
    // fixed shard order — thread-count independent. Must happen before
    // merge_misses drains the sinks.
    std::vector<std::uint64_t> forwarded_per_server;
    if (metrics != nullptr) {
      forwarded_per_server.assign(truth_server_count, 0);
      for (const std::vector<dns::ReplayMiss>& sink : miss_sinks) {
        for (const dns::ReplayMiss& miss : sink) {
          ++forwarded_per_server[miss.forwarder.value()];
        }
      }
    }
    {
      obs::ScopedTimer timer(trace, "sim.vantage_merge");
      dns::merge_misses(network.vantage(), pool.domains, miss_sinks);
    }

    result.truth.push_back(std::move(truth));
    network.evict_expired(epoch_start + epoch_len);

    // Bulk metrics flush for the epoch, from the serial section: every value
    // below is a deterministic function of the simulation state, so counter
    // totals are bit-identical across worker_threads and metrics on/off
    // never perturbs the results.
    if (metrics != nullptr) {
      const std::string epoch_label = "epoch_" + std::to_string(e);
      metrics->counter("sim.epochs").add(1);
      metrics->counter("sim.queries").add(n_queries);
      metrics->counter("sim.queries.per_epoch", epoch_label).add(n_queries);
      metrics->counter("sim.active_bots").add(active_count);
      metrics->counter("sim.active_bots.per_epoch", epoch_label)
          .add(active_count);
      static constexpr double kEpochQueryBounds[] = {1e2, 1e3, 1e4, 1e5, 1e6};
      metrics->histogram("sim.epoch_queries", kEpochQueryBounds)
          .observe(static_cast<double>(n_queries));

      std::uint64_t forwarded_total = 0;
      for (std::size_t s = 0; s < forwarded_per_server.size(); ++s) {
        forwarded_total += forwarded_per_server[s];
        metrics->counter("sim.vantage.forwarded.per_server",
                         "server_" + std::to_string(s))
            .add(forwarded_per_server[s]);
      }
      metrics->counter("sim.vantage.forwarded").add(forwarded_total);
      metrics->counter("sim.vantage.forwarded.per_epoch", epoch_label)
          .add(forwarded_total);

      const std::vector<TierStats> tiers = cache_tier_stats(network);
      for (std::size_t i = 0; i < tiers.size(); ++i) {
        const dns::CacheStats delta = tiers[i].stats.since(prev_tiers[i].stats);
        const std::string base = std::string("sim.cache.") + tiers[i].tier;
        metrics->counter(base + ".hits").add(delta.hits);
        metrics->counter(base + ".hits.per_epoch", epoch_label)
            .add(delta.hits);
        metrics->counter(base + ".misses").add(delta.misses);
        metrics->counter(base + ".misses.per_epoch", epoch_label)
            .add(delta.misses);
        metrics->counter(base + ".evictions").add(delta.evictions);
        metrics->counter(base + ".evictions.per_epoch", epoch_label)
            .add(delta.evictions);
        metrics->gauge(base + ".entries.per_epoch", epoch_label)
            .set(static_cast<double>(delta.entries));
      }
      prev_tiers = tiers;
    }
  }

  result.observable = network.vantage().take();
  return result;
}

}  // namespace

void SimulationConfig::validate() const {
  dga.validate();
  if (bot_count == 0) {
    throw ConfigError("SimulationConfig: bot_count must be > 0");
  }
  if (server_count == 0) {
    throw ConfigError("SimulationConfig: server_count must be > 0");
  }
  if (epoch_count <= 0) {
    throw ConfigError("SimulationConfig: epoch_count must be > 0");
  }
  if (takedown_after_fraction <= 0.0 || takedown_after_fraction > 1.0) {
    throw ConfigError(
        "SimulationConfig: takedown_after_fraction must be in (0,1]");
  }
  ttl.validate();
  activation.validate();
}

SimulationResult simulate(const SimulationConfig& config,
                          dga::QueryPoolModel& pool_model) {
  config.validate();
  dns::Network network(config.server_count, config.ttl,
                       config.timestamp_granularity);
  if (config.client_assignment) {
    network.set_client_assignment(config.client_assignment);
  }
  if (config.observable_sink) {
    network.vantage().set_sink(config.observable_sink);
  }
  return run_simulation(config, pool_model, network, config.server_count);
}

SimulationResult simulate(const SimulationConfig& config) {
  auto pool_model = dga::make_pool_model(config.dga);
  return simulate(config, *pool_model);
}

SimulationResult simulate_tiered(const TieredSimulationConfig& tiered,
                                 dga::QueryPoolModel& pool_model) {
  const SimulationConfig& config = tiered.base;
  config.validate();
  tiered.regional_ttl.validate();
  dns::TieredNetwork network(config.server_count, tiered.regional_count,
                             config.ttl, tiered.regional_ttl,
                             config.timestamp_granularity);
  if (config.observable_sink) {
    network.vantage().set_sink(config.observable_sink);
  }
  return run_simulation(config, pool_model, network, tiered.regional_count);
}

}  // namespace botmeter::botnet
