#include "botnet/simulator.hpp"

#include <algorithm>

#include "botnet/bot.hpp"
#include "dns/tiered.hpp"
#include "common/error.hpp"

namespace botmeter::botnet {

namespace {

/// A not-yet-cache-filtered lookup, tagged with the issuing bot.
struct PendingQuery {
  TimePoint t;
  std::uint32_t bot = 0;
  std::uint32_t pool_position = 0;
  std::int64_t epoch = 0;
};

}  // namespace

void SimulationConfig::validate() const {
  dga.validate();
  if (bot_count == 0) throw ConfigError("SimulationConfig: bot_count must be > 0");
  if (server_count == 0) throw ConfigError("SimulationConfig: server_count must be > 0");
  if (epoch_count <= 0) throw ConfigError("SimulationConfig: epoch_count must be > 0");
  if (takedown_after_fraction <= 0.0 || takedown_after_fraction > 1.0) {
    throw ConfigError("SimulationConfig: takedown_after_fraction must be in (0,1]");
  }
  ttl.validate();
  activation.validate();
}

SimulationResult simulate(const SimulationConfig& config,
                          dga::QueryPoolModel& pool_model) {
  config.validate();

  dns::Network network(config.server_count, config.ttl,
                       config.timestamp_granularity);
  if (config.client_assignment) {
    network.set_client_assignment(config.client_assignment);
  }
  Rng master(config.seed);

  const Duration epoch_len = config.dga.epoch;
  // Keep registrations alive slightly past the epoch so activation trains
  // spilling over the boundary still resolve consistently (the botmaster
  // does not tear servers down at midnight sharp).
  const Duration registration_slack = hours(1);

  // Register every epoch's valid domains up front. With a takedown fraction
  // below 1, registrations lapse mid-epoch (sinkholing), so bots querying a
  // C2 domain afterwards receive NXDOMAIN.
  const bool takedown = config.takedown_after_fraction < 1.0;
  const Duration live_span{static_cast<std::int64_t>(
      static_cast<double>(epoch_len.millis()) * config.takedown_after_fraction)};
  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint start{e * epoch_len.millis()};
    const TimePoint until =
        takedown ? start + live_span : start + epoch_len + registration_slack;
    for (std::uint32_t pos : pool.valid_positions) {
      network.authority().register_domain(pool.domains[pos], start, until);
    }
  }

  SimulationResult result;
  result.truth.reserve(static_cast<std::size_t>(config.epoch_count));

  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint epoch_start{e * epoch_len.millis()};

    Rng epoch_stream = master.fork();

    // Which bot activates at which instant this epoch: draw the arrival
    // instants, then hand them to a random subset/order of the population.
    std::vector<TimePoint> arrivals = draw_activations(
        config.activation, config.bot_count, epoch_start, epoch_len, epoch_stream);
    std::vector<std::uint32_t> bot_order(config.bot_count);
    for (std::uint32_t i = 0; i < config.bot_count; ++i) bot_order[i] = i;
    epoch_stream.shuffle(std::span<std::uint32_t>{bot_order});

    std::vector<PendingQuery> queries;
    EpochTruth truth;
    truth.epoch = e;
    truth.active_per_server.assign(config.server_count, 0);

    for (std::size_t k = 0; k < arrivals.size(); ++k) {
      const std::uint32_t bot = bot_order[k];
      // Per-(bot, epoch) private stream: independent of every other bot and
      // of how many draws the activation model consumed.
      Rng bot_rng{mix64(config.seed ^ mix64(static_cast<std::uint64_t>(e) << 20 |
                                            bot))};
      std::optional<TimePoint> c2_down_after;
      if (takedown) c2_down_after = epoch_start + live_span;
      const auto events = activation_queries(config.dga, pool, arrivals[k],
                                             bot_rng, c2_down_after);
      for (const QueryEvent& ev : events) {
        queries.push_back(PendingQuery{ev.t, bot, ev.pool_position, e});
      }
      ++truth.total_active;
      const dns::ServerId server =
          network.server_for_client(dns::ClientId{bot});
      ++truth.active_per_server[server.value()];
    }

    // Global time order is what the caches see.
    std::sort(queries.begin(), queries.end(), [](const PendingQuery& a,
                                                 const PendingQuery& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.bot != b.bot) return a.bot < b.bot;
      return a.pool_position < b.pool_position;
    });

    for (const PendingQuery& q : queries) {
      const std::string& domain = pool.domains[q.pool_position];
      const dns::ClientId client{q.bot};
      const dns::Rcode rcode = network.resolve(q.t, client, domain);
      if (config.record_raw) {
        result.raw.push_back(RawRecord{q.t, client, domain, rcode});
      }
    }

    result.truth.push_back(std::move(truth));
    network.evict_expired(epoch_start + epoch_len);
  }

  result.observable = network.vantage().take();
  return result;
}

SimulationResult simulate(const SimulationConfig& config) {
  auto pool_model = dga::make_pool_model(config.dga);
  return simulate(config, *pool_model);
}

SimulationResult simulate_tiered(const TieredSimulationConfig& tiered,
                                 dga::QueryPoolModel& pool_model) {
  const SimulationConfig& config = tiered.base;
  config.validate();
  tiered.regional_ttl.validate();

  dns::TieredNetwork network(config.server_count, tiered.regional_count,
                             config.ttl, tiered.regional_ttl,
                             config.timestamp_granularity);
  Rng master(config.seed);

  const Duration epoch_len = config.dga.epoch;
  const Duration registration_slack = hours(1);
  const bool takedown = config.takedown_after_fraction < 1.0;
  const Duration live_span{static_cast<std::int64_t>(
      static_cast<double>(epoch_len.millis()) * config.takedown_after_fraction)};

  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint start{e * epoch_len.millis()};
    const TimePoint until =
        takedown ? start + live_span : start + epoch_len + registration_slack;
    for (std::uint32_t pos : pool.valid_positions) {
      network.authority().register_domain(pool.domains[pos], start, until);
    }
  }

  SimulationResult result;
  result.truth.reserve(static_cast<std::size_t>(config.epoch_count));

  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model.epoch_pool(e);
    const TimePoint epoch_start{e * epoch_len.millis()};

    Rng epoch_stream = master.fork();
    std::vector<TimePoint> arrivals = draw_activations(
        config.activation, config.bot_count, epoch_start, epoch_len, epoch_stream);
    std::vector<std::uint32_t> bot_order(config.bot_count);
    for (std::uint32_t i = 0; i < config.bot_count; ++i) bot_order[i] = i;
    epoch_stream.shuffle(std::span<std::uint32_t>{bot_order});

    std::vector<PendingQuery> queries;
    EpochTruth truth;
    truth.epoch = e;
    truth.active_per_server.assign(tiered.regional_count, 0);

    for (std::size_t k = 0; k < arrivals.size(); ++k) {
      const std::uint32_t bot = bot_order[k];
      Rng bot_rng{mix64(config.seed ^ mix64(static_cast<std::uint64_t>(e) << 20 |
                                            bot))};
      std::optional<TimePoint> c2_down_after;
      if (takedown) c2_down_after = epoch_start + live_span;
      const auto events = activation_queries(config.dga, pool, arrivals[k],
                                             bot_rng, c2_down_after);
      for (const QueryEvent& ev : events) {
        queries.push_back(PendingQuery{ev.t, bot, ev.pool_position, e});
      }
      ++truth.total_active;
      const dns::ServerId region = network.regional_for_local(
          network.local_for_client(dns::ClientId{bot}));
      ++truth.active_per_server[region.value()];
    }

    std::sort(queries.begin(), queries.end(), [](const PendingQuery& a,
                                                 const PendingQuery& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.bot != b.bot) return a.bot < b.bot;
      return a.pool_position < b.pool_position;
    });

    for (const PendingQuery& q : queries) {
      const std::string& domain = pool.domains[q.pool_position];
      const dns::ClientId client{q.bot};
      const dns::Rcode rcode = network.resolve(q.t, client, domain);
      if (config.record_raw) {
        result.raw.push_back(RawRecord{q.t, client, domain, rcode});
      }
    }

    result.truth.push_back(std::move(truth));
    network.evict_expired(epoch_start + epoch_len);
  }

  result.observable = network.vantage().take();
  return result;
}

}  // namespace botmeter::botnet
