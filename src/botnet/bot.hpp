// A single bot's behaviour during one activation (§III).
//
// On activation the bot draws its barrel, then issues lookups sequentially —
// separated by the family's fixed query interval delta_i, or by jittered
// gaps for interval-free families — until a lookup resolves (stop-on-hit) or
// the barrel is exhausted.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dga/barrel.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"

namespace botmeter::botnet {

/// One DGA-triggered lookup this bot intends to issue.
struct QueryEvent {
  TimePoint t;
  std::uint32_t pool_position = 0;

  friend bool operator==(const QueryEvent&, const QueryEvent&) = default;
};

/// The timed lookup train of one activation starting at `activation`.
/// `bot_rng` drives barrel randomness and jitter; outcomes (valid vs NXD)
/// are determined by `pool.valid_positions`. If `c2_down_after` is set, the
/// C2 servers are dead from that instant (mid-epoch takedown): a bot
/// querying them later keeps walking its barrel — §I's success condition is
/// "the domain resolves AND the corresponding server provides a valid
/// response", so even a stale positively-cached DNS answer does not stop it.
[[nodiscard]] std::vector<QueryEvent> activation_queries(
    const dga::DgaConfig& config, const dga::EpochPool& pool,
    TimePoint activation, Rng& bot_rng,
    std::optional<TimePoint> c2_down_after = {});

/// Streaming form of activation_queries: invoke sink(t, pool_position) for
/// every lookup of the train, in issue order, without materialising an event
/// vector — and, for the cut-style barrels whose i-th position is computable
/// directly (dga::lazy_barrel_start), without materialising the barrel
/// either. This is the simulation engine's hot path: one call per
/// (bot, epoch), writing straight into the worker's chunk buffer.
template <typename Sink>
void for_each_activation_query(const dga::DgaConfig& config,
                               const dga::EpochPool& pool, TimePoint activation,
                               Rng& bot_rng,
                               std::optional<TimePoint> c2_down_after,
                               Sink&& sink) {
  const std::uint32_t pool_size = pool.size();
  const std::optional<std::uint32_t> cut_start =
      dga::lazy_barrel_start(config, pool, bot_rng);
  std::vector<std::uint32_t> barrel;
  if (!cut_start) barrel = dga::make_barrel(config, pool, bot_rng);
  const std::uint32_t k =
      cut_start ? std::min(config.barrel_size, pool_size)
                : static_cast<std::uint32_t>(barrel.size());
  TimePoint t = activation;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t pos =
        cut_start ? (*cut_start + i) % pool_size : barrel[i];
    sink(t, pos);
    const bool resolves = pool.is_valid_position(pos) &&
                          (!c2_down_after || t < *c2_down_after);
    if (config.stop_on_hit && resolves) break;
    if (config.query_interval.millis() > 0) {
      t += config.query_interval;
    } else {
      t += milliseconds(bot_rng.uniform_range(config.jitter_min.millis(),
                                              config.jitter_max.millis()));
    }
  }
}

/// Upper bound on an activation's duration: theta_q * delta_i (used by the
/// Timing estimator's heuristic #2). For interval-free families the maximum
/// jitter stands in for delta_i.
[[nodiscard]] Duration max_activation_duration(const dga::DgaConfig& config);

}  // namespace botmeter::botnet
