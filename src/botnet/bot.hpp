// A single bot's behaviour during one activation (§III).
//
// On activation the bot draws its barrel, then issues lookups sequentially —
// separated by the family's fixed query interval delta_i, or by jittered
// gaps for interval-free families — until a lookup resolves (stop-on-hit) or
// the barrel is exhausted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"

namespace botmeter::botnet {

/// One DGA-triggered lookup this bot intends to issue.
struct QueryEvent {
  TimePoint t;
  std::uint32_t pool_position = 0;

  friend bool operator==(const QueryEvent&, const QueryEvent&) = default;
};

/// The timed lookup train of one activation starting at `activation`.
/// `bot_rng` drives barrel randomness and jitter; outcomes (valid vs NXD)
/// are determined by `pool.valid_positions`. If `c2_down_after` is set, the
/// C2 servers are dead from that instant (mid-epoch takedown): a bot
/// querying them later keeps walking its barrel — §I's success condition is
/// "the domain resolves AND the corresponding server provides a valid
/// response", so even a stale positively-cached DNS answer does not stop it.
[[nodiscard]] std::vector<QueryEvent> activation_queries(
    const dga::DgaConfig& config, const dga::EpochPool& pool,
    TimePoint activation, Rng& bot_rng,
    std::optional<TimePoint> c2_down_after = {});

/// Upper bound on an activation's duration: theta_q * delta_i (used by the
/// Timing estimator's heuristic #2). For interval-free families the maximum
/// jitter stands in for delta_i.
[[nodiscard]] Duration max_activation_duration(const dga::DgaConfig& config);

}  // namespace botmeter::botnet
