#include "botnet/activation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace botmeter::botnet {

void ActivationConfig::validate() const {
  if (model == RateModel::kDynamic && !(sigma > 0.0)) {
    throw ConfigError("ActivationConfig: sigma must be > 0 for the dynamic model");
  }
}

TimePoint draw_activation(TimePoint start, Duration len, Rng& bot_rng) {
  if (len.millis() <= 0) {
    throw ConfigError("draw_activation: window must be positive");
  }
  return start + milliseconds(static_cast<std::int64_t>(
                     bot_rng.uniform(static_cast<std::uint64_t>(len.millis()))));
}

std::vector<TimePoint> draw_activations(const ActivationConfig& config,
                                        std::size_t n, TimePoint start,
                                        Duration len, Rng& rng) {
  config.validate();
  if (len.millis() <= 0) throw ConfigError("draw_activations: window must be positive");
  std::vector<TimePoint> times;
  times.reserve(n);
  if (n == 0) return times;

  const double window_ms = static_cast<double>(len.millis());
  const double lambda0 = static_cast<double>(n) / window_ms;  // arrivals per ms

  if (config.model == RateModel::kConstant) {
    // Poisson arrivals conditioned on n in-window events: i.i.d. uniform.
    for (std::size_t i = 0; i < n; ++i) {
      const double u = rng.uniform01() * window_ms;
      times.push_back(start + milliseconds(static_cast<std::int64_t>(u)));
    }
    std::sort(times.begin(), times.end());
    return times;
  }

  // Dynamic rate: sequential gaps, each with its own modulated rate.
  double t_ms = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double kappa = rng.normal(0.0, config.sigma);
    const double lambda_i = lambda0 * std::exp(kappa);
    t_ms += rng.exponential(lambda_i);
    if (t_ms >= window_ms) break;  // this bot (and all later ones) stay dormant
    times.push_back(start + milliseconds(static_cast<std::int64_t>(t_ms)));
  }
  return times;
}

}  // namespace botmeter::botnet
