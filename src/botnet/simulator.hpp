// Epoch-level botnet + DNS simulation (§V-A "we first implement a set of
// simulators generating realistic DNS traffic according to different DGA
// models").
//
// For each epoch the simulator: builds the pool, registers the botmaster's
// valid domains with the authoritative registry, draws the activation
// instants of the bot population, expands every activation into its timed
// lookup train, merges all trains into one global time-ordered stream, and
// pushes it through the hierarchical caching network. Two artefacts come
// out:
//   - the *raw* trace (timestamp, client, domain, rcode) — ground truth,
//     visible only to the evaluation harness;
//   - the *observable* stream at the vantage point (timestamp, forwarding
//     server, domain) — the only thing BotMeter ever sees.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "botnet/activation.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "dga/config.hpp"
#include "dga/pool.hpp"
#include "dns/ids.hpp"
#include "dns/record.hpp"
#include "dns/topology.hpp"
#include "dns/vantage.hpp"

namespace botmeter::obs {
class MetricsRegistry;
class TraceSession;
}  // namespace botmeter::obs

namespace botmeter::botnet {

/// One line of the raw dataset (§V-B): client identity is visible here.
struct RawRecord {
  TimePoint t;
  dns::ClientId client;
  std::string domain;
  dns::Rcode rcode = dns::Rcode::kNxDomain;

  friend bool operator==(const RawRecord&, const RawRecord&) = default;
};

/// Per-epoch ground truth: how many distinct bots were active (issued at
/// least one DGA lookup), overall and behind each local server.
struct EpochTruth {
  std::int64_t epoch = 0;
  std::uint32_t total_active = 0;
  std::vector<std::uint32_t> active_per_server;

  friend bool operator==(const EpochTruth&, const EpochTruth&) = default;
};

struct SimulationConfig {
  dga::DgaConfig dga;
  std::uint32_t bot_count = 0;        // N
  std::size_t server_count = 1;       // local DNS servers behind the border
  dns::TtlPolicy ttl;                 // positive 1 d / negative 2 h defaults
  Duration timestamp_granularity = milliseconds(100);
  std::int64_t first_epoch = 0;
  std::int64_t epoch_count = 1;       // observation window in epochs
  ActivationConfig activation;
  bool record_raw = true;             // keep the ground-truth trace
  std::uint64_t seed = 1;

  /// Worker threads for the per-epoch pipeline (query generation, sorting,
  /// and the domain-sharded cache replay). 0 = one per hardware thread.
  /// Results are bit-identical for every value: each (epoch, bot) pair owns
  /// a private collision-free RNG stream, work partitions never depend on
  /// the thread count, and all merges happen in a canonical order.
  std::size_t worker_threads = 1;

  /// Optional client placement override (default: round-robin). Lets
  /// scenarios skew the infection landscape across local servers.
  std::function<dns::ServerId(dns::ClientId)> client_assignment;

  /// Streaming tap on the vantage point: when set, every observable tuple is
  /// handed to this callback in canonical stream order (the same order the
  /// batch vector would have) and SimulationResult::observable stays empty —
  /// the bounded-memory path that feeds stream::StreamEngine on long
  /// horizons. The raw trace and truth are unaffected.
  std::function<void(const dns::ForwardedLookup&)> observable_sink;

  /// Optional observability sinks (see src/obs/). With both null the run
  /// pays nothing — not even a clock read. Attaching them never changes the
  /// SimulationResult: every recorded quantity is derived from values the
  /// simulation computes anyway, flushed in bulk from the serial section of
  /// each epoch, so counter totals are also bit-identical across
  /// worker_threads values. Wall times in `trace` are the one
  /// nondeterministic output, and they feed the run report only.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;

  /// Fraction of each epoch after which the botmaster's registered domains
  /// are taken down (sinkholed). 1.0 = live all epoch; e.g. 0.5 takes every
  /// C2 domain down mid-epoch, after which bots receive NXDOMAIN from them
  /// and keep rolling through their barrels (§I takedown dynamics).
  double takedown_after_fraction = 1.0;

  void validate() const;
};

struct SimulationResult {
  std::vector<RawRecord> raw;                    // empty if !record_raw
  std::vector<dns::ForwardedLookup> observable;  // the vantage-point stream
  std::vector<EpochTruth> truth;                 // one entry per epoch
};

/// Run the configured scenario. Deterministic given config.seed — including
/// across worker_threads values: the same seed yields the same
/// SimulationResult whether the epochs run on one thread or many.
/// `pool_model` must match config.dga (same object the matcher/estimators
/// will consult, so everyone agrees on pool contents).
[[nodiscard]] SimulationResult simulate(const SimulationConfig& config,
                                        dga::QueryPoolModel& pool_model);

/// Convenience overload constructing the pool model internally.
[[nodiscard]] SimulationResult simulate(const SimulationConfig& config);

/// Two-tier variant (see dns/tiered.hpp): `base.server_count` local
/// resolvers behind `regional_count` regional caches; the vantage stream
/// carries *regional* forwarder ids and the per-server truth is reported at
/// regional granularity. `base.ttl` is the local-tier policy;
/// `base.client_assignment` is ignored (round-robin placement at both
/// tiers).
struct TieredSimulationConfig {
  SimulationConfig base;
  std::size_t regional_count = 1;
  dns::TtlPolicy regional_ttl;  // the TTLs the vantage point "sees"
};

[[nodiscard]] SimulationResult simulate_tiered(
    const TieredSimulationConfig& config, dga::QueryPoolModel& pool_model);

}  // namespace botmeter::botnet
