#include "botnet/bot.hpp"

#include "dga/barrel.hpp"

namespace botmeter::botnet {

std::vector<QueryEvent> activation_queries(const dga::DgaConfig& config,
                                           const dga::EpochPool& pool,
                                           TimePoint activation, Rng& bot_rng,
                                           std::optional<TimePoint> c2_down_after) {
  std::vector<QueryEvent> events;
  for_each_activation_query(config, pool, activation, bot_rng, c2_down_after,
                            [&](TimePoint t, std::uint32_t pos) {
                              events.push_back(QueryEvent{t, pos});
                            });
  return events;
}

Duration max_activation_duration(const dga::DgaConfig& config) {
  const Duration step = config.query_interval.millis() > 0 ? config.query_interval
                                                           : config.jitter_max;
  return step * static_cast<std::int64_t>(config.barrel_size);
}

}  // namespace botmeter::botnet
