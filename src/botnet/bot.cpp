#include "botnet/bot.hpp"

#include "dga/barrel.hpp"

namespace botmeter::botnet {

std::vector<QueryEvent> activation_queries(const dga::DgaConfig& config,
                                           const dga::EpochPool& pool,
                                           TimePoint activation, Rng& bot_rng,
                                           std::optional<TimePoint> c2_down_after) {
  const std::vector<std::uint32_t> barrel =
      dga::make_barrel(config, pool, bot_rng);

  std::vector<QueryEvent> events;
  events.reserve(barrel.size());
  TimePoint t = activation;
  for (std::uint32_t pos : barrel) {
    events.push_back(QueryEvent{t, pos});
    const bool resolves = pool.is_valid_position(pos) &&
                          (!c2_down_after || t < *c2_down_after);
    if (config.stop_on_hit && resolves) break;
    if (config.query_interval.millis() > 0) {
      t += config.query_interval;
    } else {
      t += milliseconds(bot_rng.uniform_range(config.jitter_min.millis(),
                                              config.jitter_max.millis()));
    }
  }
  return events;
}

Duration max_activation_duration(const dga::DgaConfig& config) {
  const Duration step = config.query_interval.millis() > 0 ? config.query_interval
                                                           : config.jitter_max;
  return step * static_cast<std::int64_t>(config.barrel_size);
}

}  // namespace botmeter::botnet
