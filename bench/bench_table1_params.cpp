// Table I: DGA-specific parameter settings of the four synthetic-evaluation
// prototypes, regenerated from the family registry (plus the remaining
// registered families for reference).
#include <cstdio>

#include "dga/families.hpp"

int main() {
  using namespace botmeter;
  using namespace botmeter::dga;

  std::printf("# Table I: DGA-specific parameter setting\n");
  std::printf("%-8s %-12s %8s %8s %8s %10s\n", "model", "prototype", "theta_0",
              "theta_E", "theta_q", "delta_i");
  for (const char* name : {"Murofet", "Conficker.C", "newGoZ", "Necurs"}) {
    const DgaConfig c = family_config(name);
    std::printf("%-8s %-12s %8u %8u %8u %10s\n",
                std::string(short_label(c.taxonomy.barrel)).c_str(),
                c.name.c_str(), c.nxd_count, c.valid_count, c.barrel_size,
                c.query_interval.millis() > 0
                    ? to_string(c.query_interval).c_str()
                    : "none");
  }

  std::printf("\n# Other registered families (beyond Table I)\n");
  std::printf("%-22s %-12s %10s %8s %8s %10s\n", "pool-model", "family",
              "pool-size", "theta_E", "theta_q", "delta_i");
  for (std::string_view name :
       {"Ranbyus", "PushDo", "Pykspa", "Ramnit", "Qakbot", "Srizbi", "Torpig"}) {
    const DgaConfig c = family_config(name);
    std::printf("%-22s %-12s %10u %8u %8u %10s\n",
                std::string(to_string(c.taxonomy.pool)).c_str(), c.name.c_str(),
                c.pool_size() + c.noise_pool_size, c.valid_count, c.barrel_size,
                c.query_interval.millis() > 0
                    ? to_string(c.query_interval).c_str()
                    : "none");
  }
  return 0;
}
