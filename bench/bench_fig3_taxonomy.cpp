// Figure 3: the DGA taxonomy grid — query-pool models (horizontal) x
// query-barrel models (vertical) with the representative family per cell
// ("?" marks cells not spotted in the wild).
#include <cstdio>
#include <string>

#include "dga/taxonomy.hpp"

int main() {
  using namespace botmeter::dga;

  std::printf("# Figure 3: a taxonomy of DGAs and representative families\n");
  std::printf("%-14s", "barrel\\pool");
  for (PoolModel pool : kAllPoolModels) {
    std::printf(" %-22s", std::string(to_string(pool)).c_str());
  }
  std::printf("\n");

  for (BarrelModel barrel : kAllBarrelModels) {
    std::printf("%-14s", std::string(to_string(barrel)).c_str());
    for (PoolModel pool : kAllPoolModels) {
      const std::string_view family = representative_family({pool, barrel});
      std::printf(" %-22s", family.empty() ? "?" : std::string(family).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(randomness increases downward along the barrel axis: "
              "uniform -> permutation -> randomcut -> sampling)\n");
  return 0;
}
