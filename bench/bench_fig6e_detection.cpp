// Figure 6(e): estimation accuracy as a function of the D3 algorithm's miss
// rate x in {10, 20, 30, 40, 50} percent, N = 128.
//
// Expected shapes (§V-A): M_B degrades considerably as the detection window
// shrinks (it relies on NXD statistics and runs uncorrected); M_T and M_P
// are largely unaffected, since partial temporal evidence suffices for them.
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 15);
  const std::vector<double> miss_rates{0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<std::string> xs;
  for (double m : miss_rates) {
    xs.push_back(std::to_string(static_cast<int>(m * 100)) + "%");
  }

  run_fig6_sweep(
      "Figure 6(e): ARE vs D3 miss rate, N=128 (uncorrected estimators)", xs,
      trials,
      [&](const dga::DgaConfig& config, std::size_t xi, std::uint64_t seed) {
        Scenario scenario;
        scenario.sim.dga = config;
        scenario.sim.bot_count = kDefaultPopulation;
        scenario.detection_miss_rate = miss_rates[xi];
        scenario.sim.seed = seed * 911 + static_cast<std::uint64_t>(xi);
        scenario.window_seed = 5000 + seed;  // vary the missed subset too
        scenario.sim.record_raw = false;
        return scenario;
      });
  return 0;
}
