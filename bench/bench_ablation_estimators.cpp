// Ablation: design choices inside the estimator library (beyond the paper's
// figures; DESIGN.md experiment index, "ablation" rows).
//
//  1. Bernoulli variants on A_R — adaptive (default) vs pure coverage
//     inversion vs per-segment expectation — across populations. Shows why
//     the adaptive saturation refinement is needed: pure coverage loses
//     resolution once the newGoZ pool saturates (~N >= 64).
//  2. D3 miss-rate correction (extension): Bernoulli and sampling-coverage
//     estimators with and without the calibrated miss rate.
//  3. Hybrid semantic/temporal blend on A_R: weight sweep (paper
//     future-work #1).
//  4. Sampling-coverage (extension) vs Timing on A_S.
#include <memory>

#include "estimators/bernoulli.hpp"
#include "estimators/hybrid.hpp"
#include "estimators/timing.hpp"
#include "support/experiment.hpp"
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 11);
  const estimators::ModelLibrary library;

  // ---- 1. Bernoulli variants across N ------------------------------------
  print_header("Ablation 1: Bernoulli methods on A_R (newGoZ) across N");
  for (std::uint32_t n : {16u, 64u, 256u}) {
    std::vector<std::vector<double>> errors(3);
    const std::vector<std::string> names{"bernoulli", "bernoulli-coverage",
                                         "bernoulli-segment"};
    for (int trial = 0; trial < trials; ++trial) {
      Scenario scenario;
      scenario.sim.dga = dga::newgoz_config();
      scenario.sim.bot_count = n;
      scenario.sim.seed = 100 + static_cast<std::uint64_t>(trial) * 13 + n;
      scenario.sim.record_raw = false;
      const ScenarioRun run(scenario);
      for (std::size_t ei = 0; ei < names.size(); ++ei) {
        errors[ei].push_back(scenario_are(library.get(names[ei]), run));
      }
    }
    for (std::size_t ei = 0; ei < names.size(); ++ei) {
      print_row("A_R", names[ei], "N=" + std::to_string(n),
                summarize_quartiles(errors[ei]));
    }
  }

  // ---- 2. Miss-rate correction -------------------------------------------
  std::printf("\n");
  print_header(
      "Ablation 2: D3 miss-rate correction (x=40%), N=128 (extension)");
  struct CorrectionCase {
    const char* label;
    dga::DgaConfig config;
    const char* estimator;
  };
  dga::DgaConfig thin_conficker = dga::conficker_c_config();
  thin_conficker.nxd_count = 9995;
  thin_conficker.barrel_size = 300;
  const std::vector<CorrectionCase> cases{
      {"A_R", dga::newgoz_config(), "bernoulli"},
      {"A_S", thin_conficker, "sampling-coverage"},
  };
  for (const CorrectionCase& c : cases) {
    for (bool corrected : {false, true}) {
      std::vector<double> errors;
      for (int trial = 0; trial < trials; ++trial) {
        Scenario scenario;
        scenario.sim.dga = c.config;
        scenario.sim.bot_count = kDefaultPopulation;
        scenario.sim.seed = 300 + static_cast<std::uint64_t>(trial) * 17;
        scenario.sim.record_raw = false;
        scenario.detection_miss_rate = 0.4;
        scenario.window_seed = 7000 + static_cast<std::uint64_t>(trial);
        if (corrected) scenario.assumed_miss_rate = 0.4;
        const ScenarioRun run(scenario);
        errors.push_back(scenario_are(library.get(c.estimator), run));
      }
      print_row(c.label, c.estimator, corrected ? "corrected" : "uncorrected",
                summarize_quartiles(errors));
    }
  }

  // ---- 3. Hybrid weight sweep on A_R --------------------------------------
  std::printf("\n");
  print_header("Ablation 3: hybrid semantic weight on A_R (newGoZ), N=128");
  for (double weight : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const estimators::HybridEstimator hybrid(
        std::make_unique<estimators::BernoulliEstimator>(),
        std::make_unique<estimators::TimingEstimator>(), weight);
    std::vector<double> errors;
    for (int trial = 0; trial < trials; ++trial) {
      Scenario scenario;
      scenario.sim.dga = dga::newgoz_config();
      scenario.sim.bot_count = kDefaultPopulation;
      scenario.sim.seed = 500 + static_cast<std::uint64_t>(trial) * 19;
      scenario.sim.record_raw = false;
      const ScenarioRun run(scenario);
      errors.push_back(scenario_are(hybrid, run));
    }
    char label[16];
    std::snprintf(label, sizeof(label), "w=%.2f", weight);
    print_row("A_R", "hybrid", label, summarize_quartiles(errors));
  }

  // ---- 4. Sampling-coverage vs timing on A_S ------------------------------
  std::printf("\n");
  print_header(
      "Ablation 4: sampling-coverage (extension) vs timing on A_S, full "
      "Conficker.C pool");
  for (std::uint32_t n : {32u, 128u}) {
    std::vector<std::vector<double>> errors(2);
    const std::vector<std::string> names{"timing", "sampling-coverage"};
    for (int trial = 0; trial < trials; ++trial) {
      Scenario scenario;
      scenario.sim.dga = dga::conficker_c_config();
      scenario.sim.bot_count = n;
      scenario.sim.seed = 700 + static_cast<std::uint64_t>(trial) * 23 + n;
      scenario.sim.record_raw = false;
      const ScenarioRun run(scenario);
      for (std::size_t ei = 0; ei < names.size(); ++ei) {
        errors[ei].push_back(scenario_are(library.get(names[ei]), run));
      }
    }
    for (std::size_t ei = 0; ei < names.size(); ++ei) {
      print_row("A_S", names[ei], "N=" + std::to_string(n),
                summarize_quartiles(errors[ei]));
    }
  }
  return 0;
}
