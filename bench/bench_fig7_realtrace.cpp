// Figure 7 + Table II: the enterprise-trace evaluation (§V-B).
//
// The paper's proprietary one-year trace is replaced by the synthetic
// enterprise simulator (see DESIGN.md "Substitutions"): one local DNS
// server, benign background clients, and three infected sub-populations —
// newGoZ (A_R), Ramnit (A_U, no fixed query interval), Qakbot (A_U, no fixed
// query interval) — with 1-second collection timestamps. Per day, BotMeter
// estimates each family's active population from the forwarded stream; the
// recommended estimator (M_B for newGoZ, M_P for Ramnit/Qakbot) and M_T are
// both reported against the raw-trace ground truth.
//
// Output: Figure 7 rows (day, family, truth, recommended estimate, timing
// estimate) followed by the Table II mean +/- std ARE summary.
//
// argv[1] (optional): number of simulated days (default 120; the paper's
// horizon is 365).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "trace/dataset.hpp"
#include "trace/enterprise.hpp"

namespace {

struct FamilyEval {
  std::string recommended_name;
  botmeter::RunningStats recommended_are;
  botmeter::RunningStats timing_are;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;

  const std::int64_t total_days = (argc > 1 && std::atoi(argv[1]) > 0)
                                      ? std::atoi(argv[1])
                                      : 120;

  trace::EnterpriseConfig config;
  {
    // Daily active populations sized to Fig. 7's log-scale series (newGoZ
    // up to a few tens; Ramnit and Qakbot mostly in the single digits).
    trace::InfectedPopulation newgoz;
    newgoz.dga = dga::newgoz_config();
    newgoz.infected_devices = 40;
    newgoz.mean_activity = 0.4;
    newgoz.activity_volatility = 0.6;
    trace::InfectedPopulation ramnit;
    ramnit.dga = dga::ramnit_config();
    ramnit.infected_devices = 24;
    ramnit.mean_activity = 0.5;
    ramnit.activity_volatility = 0.6;
    trace::InfectedPopulation qakbot;
    qakbot.dga = dga::qakbot_config();
    qakbot.infected_devices = 14;
    qakbot.mean_activity = 0.45;
    qakbot.activity_volatility = 0.6;
    config.populations = {newgoz, ramnit, qakbot};
  }
  config.benign_clients = 300;
  config.benign_queries_per_client_per_day = 20;
  config.timestamp_granularity = seconds(1);  // §V-B granularity
  // Enterprise resolvers commonly cap negative TTLs at minutes (§II-B:
  // "negative TTLs varies from minutes to hours"; RFC 2308 SOA minimum).
  config.ttl.negative = minutes(15);
  // Real-trace artifacts (see trace/enterprise.hpp): raced duplicate
  // forwards and benign collision lookups — the noise that makes M_T "
  // arbitrarily bad" on the enterprise data (§V-B) while the collective
  // statistics of M_P / M_B shrug it off.
  config.duplicate_query_rate = 0.01;
  config.collision_rate_per_pool_domain = 2e-4;
  config.seed = 20140501;

  trace::EnterpriseSimulator sim(config);
  std::vector<FamilyEval> evals(config.populations.size());

  std::printf(
      "# Figure 7: daily actual vs estimated bot populations "
      "(synthetic enterprise trace, %lld days, 1s timestamps)\n",
      static_cast<long long>(total_days));
  std::printf("%-6s %-10s %8s %14s %14s\n", "day", "family", "actual",
              "recommended", "timing");

  for (std::int64_t d = 0; d < total_days; ++d) {
    const trace::EnterpriseDay day = sim.step();
    for (std::size_t pi = 0; pi < config.populations.size(); ++pi) {
      const dga::DgaConfig& family = config.populations[pi].dga;

      core::BotMeterConfig recommended_config;
      recommended_config.dga = family;
      core::BotMeter recommended(recommended_config);
      recommended.prepare_epochs(day.day, 1);
      const double rec_estimate =
          recommended.analyze(day.observable, 1).total_population();
      if (evals[pi].recommended_name.empty()) {
        evals[pi].recommended_name =
            std::string(recommended.active_estimator().name());
      }

      core::BotMeterConfig timing_config;
      timing_config.dga = family;
      timing_config.estimator = "timing";
      core::BotMeter timing(timing_config);
      timing.prepare_epochs(day.day, 1);
      const double timing_estimate =
          timing.analyze(day.observable, 1).total_population();

      const double truth = day.active_bots[pi];
      if (truth > 0.0) {
        evals[pi].recommended_are.add(
            absolute_relative_error(rec_estimate, truth));
        evals[pi].timing_are.add(
            absolute_relative_error(timing_estimate, truth));
      }
      // Print a thinned series so the output stays readable (every 4th day),
      // mirroring the sparse date axis of Fig. 7.
      if (d % 4 == 0) {
        std::printf("%-6lld %-10s %8.0f %14.1f %14.1f\n",
                    static_cast<long long>(day.day), family.name.c_str(), truth,
                    rec_estimate, timing_estimate);
      }
    }
  }

  std::printf("\n# Table II: average estimation errors (ARE, mean +/- std)\n");
  std::printf("%-10s %-10s %-22s %-22s\n", "family", "delta_i",
              "M_B / M_P (recommended)", "M_T (timing)");
  for (std::size_t pi = 0; pi < config.populations.size(); ++pi) {
    const dga::DgaConfig& family = config.populations[pi].dga;
    std::printf("%-10s %-10s %-22s %-22s\n", family.name.c_str(),
                family.query_interval.millis() > 0
                    ? to_string(family.query_interval).c_str()
                    : "none",
                format_mean_std(evals[pi].recommended_are.mean(),
                                evals[pi].recommended_are.stddev())
                    .c_str(),
                format_mean_std(evals[pi].timing_are.mean(),
                                evals[pi].timing_are.stddev())
                    .c_str());
  }
  std::printf("\n(recommended estimator per family: ");
  for (std::size_t pi = 0; pi < evals.size(); ++pi) {
    std::printf("%s=%s%s", config.populations[pi].dga.name.c_str(),
                evals[pi].recommended_name.c_str(),
                pi + 1 < evals.size() ? ", " : ")\n");
  }
  return 0;
}
