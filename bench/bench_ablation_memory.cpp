// bench_ablation_memory — accuracy vs memory for the compact observation
// path (DESIGN.md §13).
//
// For each (family, fleet size, KMV size) row, the same simulated border
// feed runs through two StreamEngines — exact buffering and --compact-state
// with the row's sketch budget — with allowed lateness stretched past the
// horizon so every epoch's state is resident at once (the worst case the
// compact path bounds). Each row records:
//   - the open-epoch byte high-water mark of both arms and their ratio;
//   - the mean absolute relative error (ARE) of per-server populations,
//     compact vs exact — the accuracy the saved bytes cost;
//   - how many servers the compact landscape flags approximate, and the
//     largest propagated sketch RSE.
//
// Rows span both estimator regimes of the adaptive Bernoulli family: small
// fleets resolve through distinct-NXD coverage (the KMV statistic — real
// sketch error, shrinking as kmv_k grows) and large fleets through the
// forwarded-count renewal statistic (exact in compact cells — ARE 0 at a
// tiny fraction of the memory). Murofet and Torpig cover the Poisson
// time-slot path over sliding-window pools — always flagged approximate,
// with the slot-width bound as the propagated RSE — where the kmv_k column
// is inert (Poisson cells carry no KMV). Every row's ARE must stay inside
// its limit — 2 x the KMV's
// saturated relative standard error 1/sqrt(k - 2), floored at 5% — or the
// bench exits non-zero.
//
// Results go to stdout as a table and to BENCH_memory.json (schema
// botmeter.bench_memory.v1); pass an output path as argv[1] to redirect.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/json.hpp"
#include "dga/families.hpp"
#include "stream/stream_engine.hpp"
#include "support/rss.hpp"

namespace {

using namespace botmeter;

struct Row {
  std::string family;
  std::uint32_t bots;
  std::size_t servers;
  std::int64_t epochs;
  std::uint32_t kmv_k;
};

struct Result {
  Row row;
  std::size_t tuples = 0;
  std::size_t exact_peak_bytes = 0;
  std::size_t compact_peak_bytes = 0;
  double reduction = 0.0;
  std::uint64_t compact_spills = 0;
  std::size_t approximate_servers = 0;
  double max_sketch_rse = 0.0;
  double are = 0.0;
  double are_limit = 0.0;
  bool pass = false;
};

constexpr std::size_t kSpillThreshold = 512;

/// The ARE budget for a row: the population inversion can amplify the
/// distinct-count error, so the budget is twice the KMV's saturated RSE,
/// floored at 5% for large-k rows whose active statistic is exact anyway.
double are_limit_for(std::uint32_t kmv_k) {
  const double rse = 1.0 / std::sqrt(static_cast<double>(kmv_k) - 2.0);
  return std::max(0.05, 2.0 * rse);
}

Result run_row(const Row& row) {
  const dga::DgaConfig family = dga::family_config(row.family);
  const std::int64_t first_epoch =
      family.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0;

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = row.bots;
  sim.server_count = row.servers;
  sim.first_epoch = first_epoch;
  sim.epoch_count = row.epochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  stream::StreamEngineConfig config;
  config.meter.dga = family;
  config.first_epoch = first_epoch;
  config.epoch_count = row.epochs;
  config.server_count = row.servers;
  // Hold every epoch open until finish(): the byte high-water mark then
  // measures the whole horizon's state.
  config.allowed_lateness = Duration{family.epoch.millis() * (row.epochs + 2)};

  Result r;
  r.row = row;
  r.tuples = result.observable.size();
  r.are_limit = are_limit_for(row.kmv_k);

  stream::StreamEngine exact(config);
  for (const dns::ForwardedLookup& lookup : result.observable) {
    exact.ingest(lookup);
  }
  const core::LandscapeReport exact_report = exact.finish();
  r.exact_peak_bytes = exact.peak_open_buffer_bytes();

  stream::StreamEngineConfig compact_config = config;
  compact_config.compact_state = true;
  compact_config.compact_spill_threshold = kSpillThreshold;
  compact_config.compact.kmv_k = row.kmv_k;
  stream::StreamEngine compact(compact_config);
  for (const dns::ForwardedLookup& lookup : result.observable) {
    compact.ingest(lookup);
  }
  const core::LandscapeReport compact_report = compact.finish();
  r.compact_peak_bytes = compact.peak_open_buffer_bytes();
  r.compact_spills = compact.compact_spills();
  r.reduction = r.compact_peak_bytes > 0
                    ? static_cast<double>(r.exact_peak_bytes) /
                          static_cast<double>(r.compact_peak_bytes)
                    : 0.0;

  std::size_t compared = 0;
  for (std::size_t i = 0; i < exact_report.servers.size(); ++i) {
    const double e = exact_report.servers[i].population;
    const double c = compact_report.servers[i].population;
    if (e > 0.0) {
      r.are += std::abs(c - e) / e;
      ++compared;
    }
    if (compact_report.servers[i].approximate) ++r.approximate_servers;
    r.max_sketch_rse =
        std::max(r.max_sketch_rse, compact_report.servers[i].sketch_rse);
  }
  if (compared > 0) r.are /= static_cast<double>(compared);

  r.pass = r.are <= r.are_limit;
  return r;
}

json::Value to_json(const Result& r) {
  using json::Value;
  json::Object o;
  o.emplace("family", Value(r.row.family));
  o.emplace("bots", Value(static_cast<double>(r.row.bots)));
  o.emplace("servers", Value(static_cast<double>(r.row.servers)));
  o.emplace("epochs", Value(static_cast<double>(r.row.epochs)));
  o.emplace("kmv_k", Value(static_cast<double>(r.row.kmv_k)));
  o.emplace("tuples", Value(static_cast<double>(r.tuples)));
  o.emplace("exact_peak_open_buffer_bytes",
            Value(static_cast<double>(r.exact_peak_bytes)));
  o.emplace("compact_peak_open_buffer_bytes",
            Value(static_cast<double>(r.compact_peak_bytes)));
  o.emplace("reduction", Value(r.reduction));
  o.emplace("compact_spills", Value(static_cast<double>(r.compact_spills)));
  o.emplace("approximate_servers",
            Value(static_cast<double>(r.approximate_servers)));
  o.emplace("max_sketch_rse", Value(r.max_sketch_rse));
  o.emplace("are", Value(r.are));
  o.emplace("are_limit", Value(r.are_limit));
  o.emplace("pass", Value(r.pass));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_memory.json";

  // Coverage regime (small fleet, KMV sweep), forward regime (large fleet),
  // and the sliding-window pool model.
  const std::vector<Row> rows = {
      {"newGoZ", 48, 2, 6, 32},    {"newGoZ", 48, 2, 6, 64},
      {"newGoZ", 48, 2, 6, 128},   {"newGoZ", 48, 2, 6, 256},
      {"newGoZ", 1024, 2, 6, 256}, {"Murofet", 256, 8, 4, 256},
      {"Torpig", 256, 8, 4, 256},
  };

  std::printf("%-10s %5s %4s %5s %9s %12s %12s %8s %7s %7s %8s %7s %5s\n",
              "family", "bots", "srv", "kmv", "tuples", "exact_B", "compact_B",
              "ratio", "spills", "approx", "max_rse", "are", "pass");
  json::Array results;
  bool all_pass = true;
  for (const Row& row : rows) {
    const Result r = run_row(row);
    all_pass = all_pass && r.pass;
    std::printf(
        "%-10s %5u %4zu %5u %9zu %12zu %12zu %7.1fx %7llu %4zu/%-2zu %8.4f "
        "%7.4f %5s\n",
        r.row.family.c_str(), r.row.bots, r.row.servers, r.row.kmv_k, r.tuples,
        r.exact_peak_bytes, r.compact_peak_bytes, r.reduction,
        static_cast<unsigned long long>(r.compact_spills),
        r.approximate_servers, r.row.servers, r.max_sketch_rse, r.are,
        r.pass ? "yes" : "NO");
    results.push_back(to_json(r));
  }

  json::Object root;
  root.emplace("schema", json::Value(std::string("botmeter.bench_memory.v1")));
  root.emplace("spill_threshold",
               json::Value(static_cast<double>(kSpillThreshold)));
  root.emplace("results", json::Value(std::move(results)));
  root.emplace("peak_rss_bytes",
               json::Value(static_cast<double>(bench::peak_rss_bytes())));
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json::write_pretty(json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_pass) {
    std::fprintf(stderr,
                 "FAIL: at least one row's compact-state ARE exceeded its "
                 "limit\n");
    return 1;
  }
  return 0;
}
