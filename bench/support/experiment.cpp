#include "support/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "detect/matcher.hpp"

namespace botmeter::bench {

namespace {

/// Prints the accumulated phase table to stderr when the process exits —
/// registered lazily so benches that never run a scenario stay silent.
struct PhaseTablePrinter {
  ~PhaseTablePrinter() {
    const std::string table = obs::format_phase_table(bench_trace());
    if (!table.empty()) {
      std::fprintf(stderr, "# stage timing (wall ms)\n%s", table.c_str());
    }
  }
};

}  // namespace

obs::MetricsRegistry& bench_metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

obs::TraceSession& bench_trace() {
  static obs::TraceSession session;
  static PhaseTablePrinter printer;
  return session;
}

ScenarioRun::ScenarioRun(Scenario scenario) : scenario_(std::move(scenario)) {
  if (scenario_.sim.metrics == nullptr) scenario_.sim.metrics = &bench_metrics();
  if (scenario_.sim.trace == nullptr) scenario_.sim.trace = &bench_trace();
  pool_model_ = dga::make_pool_model(scenario_.sim.dga);
  result_ = botnet::simulate(scenario_.sim, *pool_model_);

  detect::DomainMatcher matcher(scenario_.sim.dga.epoch);
  Rng window_rng{scenario_.window_seed};
  const std::int64_t first = scenario_.sim.first_epoch;
  const std::int64_t count = scenario_.sim.epoch_count;
  windows_.reserve(static_cast<std::size_t>(count));
  for (std::int64_t e = first; e < first + count; ++e) {
    const dga::EpochPool& pool = pool_model_->epoch_pool(e);
    windows_.push_back(detect::make_detection_window(
        pool, scenario_.detection_miss_rate, window_rng));
    matcher.add_epoch(pool, windows_.back());
  }

  obs::ScopedTimer match_timer(scenario_.sim.trace, "bench.match");
  detect::MatchStats match_stats;
  const detect::MatchedStreams matched =
      matcher.match(result_.observable, &match_stats);
  match_timer.stop();
  if (scenario_.sim.metrics != nullptr) {
    scenario_.sim.metrics->counter("bench.matcher.stream")
        .add(match_stats.stream_size);
    scenario_.sim.metrics->counter("bench.matcher.matched")
        .add(match_stats.matched);
    scenario_.sim.metrics->counter("bench.matcher.unmatched")
        .add(match_stats.unmatched);
  }
  static const std::vector<detect::MatchedLookup> kEmpty;
  for (std::int64_t e = first; e < first + count; ++e) {
    estimators::EpochObservation obs;
    auto it = matched.find(detect::StreamKey{dns::ServerId{0}, e});
    obs.lookups = (it != matched.end()) ? it->second : kEmpty;
    obs.config = &scenario_.sim.dga;
    obs.pool = &pool_model_->epoch_pool(e);
    obs.window = &windows_[static_cast<std::size_t>(e - first)];
    obs.ttl = scenario_.sim.ttl;
    obs.window_start = TimePoint{e * scenario_.sim.dga.epoch.millis()};
    obs.window_length = scenario_.sim.dga.epoch;
    obs.assumed_miss_rate = scenario_.assumed_miss_rate;
    observations_.push_back(std::move(obs));
  }
}

double ScenarioRun::mean_truth() const {
  double sum = 0.0;
  for (const botnet::EpochTruth& t : result_.truth) sum += t.total_active;
  return sum / static_cast<double>(result_.truth.size());
}

double scenario_are(const estimators::Estimator& estimator,
                    const ScenarioRun& run) {
  obs::ScopedTimer timer(&bench_trace(), "bench.estimate");
  const double estimate = estimators::estimate_window(
      estimator, run.observations(), &bench_metrics());
  return absolute_relative_error(estimate, run.mean_truth());
}

int trials_from_args(int argc, char** argv, int default_trials) {
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed > 0) return parsed;
  }
  return default_trials;
}

void print_header(const std::string& title) {
  std::printf("# %s\n", title.c_str());
  std::printf("%-6s %-20s %-12s %8s %8s %8s %8s %8s\n", "model", "estimator",
              "x", "p25", "median", "p75", "mean", "max");
}

void print_row(const std::string& model, const std::string& estimator,
               const std::string& x, const QuartileSummary& summary) {
  std::printf("%-6s %-20s %-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n", model.c_str(),
              estimator.c_str(), x.c_str(), summary.p25, summary.median,
              summary.p75, summary.mean, summary.max);
}

}  // namespace botmeter::bench
