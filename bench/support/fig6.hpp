// Shared sweep driver for the five panels of Fig. 6.
//
// Each Fig. 6 bench varies exactly one knob of the default synthetic setup
// (§V-A: epoch 1 d, window 1 d, negative TTL 2 h, positive TTL 1 d,
// timestamp granularity 100 ms, Table I family parameters) and reports the
// ARE quartiles per (DGA model, estimator). The estimator assignment follows
// the paper: the Timing estimator runs on every model, the Poisson estimator
// additionally on A_U, the Bernoulli estimator additionally on A_R.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dga/families.hpp"
#include "estimators/library.hpp"
#include "support/experiment.hpp"

namespace botmeter::bench {

struct Fig6Model {
  std::string label;                    // A_U, A_S, A_R, A_P
  dga::DgaConfig config;                // Table I prototype
  std::vector<std::string> estimators;  // model-library names to evaluate
};

/// The four Table I rows with their paper-assigned estimators.
[[nodiscard]] inline std::vector<Fig6Model> fig6_models() {
  return {
      {"A_U", dga::murofet_config(), {"timing", "poisson"}},
      {"A_S", dga::conficker_c_config(), {"timing"}},
      {"A_R", dga::newgoz_config(), {"timing", "bernoulli"}},
      {"A_P", dga::necurs_config(), {"timing"}},
  };
}

/// Default population for the panels that do not sweep N.
inline constexpr std::uint32_t kDefaultPopulation = 128;

/// Run one Fig. 6 panel: for every model and every swept value, execute
/// `trials` scenarios built by `make_scenario(model_config, x, trial_seed)`
/// and print ARE quartiles per estimator.
inline void run_fig6_sweep(
    const std::string& title, const std::vector<std::string>& xs, int trials,
    const std::function<Scenario(const dga::DgaConfig&, std::size_t x_index,
                                 std::uint64_t seed)>& make_scenario) {
  const estimators::ModelLibrary library;
  print_header(title);
  for (const Fig6Model& model : fig6_models()) {
    for (std::size_t xi = 0; xi < xs.size(); ++xi) {
      std::vector<std::vector<double>> errors(model.estimators.size());
      // Under extreme rate dynamics a trial can realise zero active bots
      // (the first heavy-tailed gap overshoots the epoch); ARE is undefined
      // there, so such trials are skipped and replaced, up to a cap.
      int collected = 0;
      for (std::uint64_t salt = 0;
           collected < trials && salt < 4 * static_cast<std::uint64_t>(trials);
           ++salt) {
        const ScenarioRun run(make_scenario(model.config, xi, 1000 + salt));
        if (run.mean_truth() <= 0.0) continue;
        for (std::size_t ei = 0; ei < model.estimators.size(); ++ei) {
          errors[ei].push_back(
              scenario_are(library.get(model.estimators[ei]), run));
        }
        ++collected;
      }
      for (std::size_t ei = 0; ei < model.estimators.size(); ++ei) {
        print_row(model.label, model.estimators[ei], xs[xi],
                  summarize_quartiles(errors[ei]));
      }
    }
  }
}

}  // namespace botmeter::bench
