// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: it sweeps
// one parameter, runs repeated simulation trials per point, feeds the
// cache-filtered vantage stream through the matcher, applies the estimators
// under test, and prints the ARE quartiles (the error bars of Fig. 6) in a
// plain column format.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/stats.hpp"
#include "detect/detection_window.hpp"
#include "dga/pool.hpp"
#include "estimators/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::bench {

/// Process-wide observability sinks shared by every bench binary: each
/// ScenarioRun attaches them (unless the scenario already carries its own),
/// so every regenerated figure gets per-stage wall times for free. The
/// harness prints the phase table to stderr at process exit when any span
/// was recorded.
[[nodiscard]] obs::MetricsRegistry& bench_metrics();
[[nodiscard]] obs::TraceSession& bench_trace();

struct Scenario {
  botnet::SimulationConfig sim;
  double detection_miss_rate = 0.0;
  std::optional<double> assumed_miss_rate;
  std::uint64_t window_seed = 4242;
};

/// One executed scenario: runs the simulation at construction and owns the
/// pools/windows the per-epoch observations point into.
class ScenarioRun {
 public:
  explicit ScenarioRun(Scenario scenario);

  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  [[nodiscard]] std::span<const estimators::EpochObservation> observations()
      const {
    return observations_;
  }

  /// Realised active population, averaged over the scenario's epochs.
  [[nodiscard]] double mean_truth() const;

 private:
  Scenario scenario_;
  std::unique_ptr<dga::QueryPoolModel> pool_model_;
  std::vector<detect::DetectionWindow> windows_;
  botnet::SimulationResult result_;
  std::vector<estimators::EpochObservation> observations_;
};

/// ARE of `estimator` over a whole scenario (multi-epoch estimates averaged,
/// compared against the realised mean truth).
[[nodiscard]] double scenario_are(const estimators::Estimator& estimator,
                                  const ScenarioRun& run);

/// Number of trials per sweep point: argv[1] if given, otherwise
/// `default_trials`.
[[nodiscard]] int trials_from_args(int argc, char** argv, int default_trials);

/// Emit the bench preamble (title + column header).
void print_header(const std::string& title);

/// One output row: model label (A_U...), estimator name, swept x value, and
/// the ARE quartiles over the trials.
void print_row(const std::string& model, const std::string& estimator,
               const std::string& x, const QuartileSummary& summary);

}  // namespace botmeter::bench
