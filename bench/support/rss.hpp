// Peak-RSS probe for the bench harness: the process-wide memory high-water
// mark, recorded into every BENCH_*.json so the memory trajectory is tracked
// alongside throughput across commits.
#pragma once

#include <sys/resource.h>

#include <cstddef>

namespace botmeter::bench {

/// Peak resident-set size of this process, in bytes (0 if the kernel refuses
/// to say). ru_maxrss is kilobytes on Linux and bytes on Darwin.
inline std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
}

}  // namespace botmeter::bench
