// Figure 6(d): estimation accuracy as a function of the bot activation-rate
// dynamics sigma in {0.5, 1, 1.5, 2, 2.5}, N = 128 (dynamic-rate Poisson
// model: lambda_i = lambda_0 * exp(kappa_i), kappa_i ~ N(0, sigma^2)).
//
// Expected shapes (§V-A): M_B is largely immune (its statistics are not
// temporal); M_P outperforms M_T throughout but degrades as sigma grows,
// because its stable-rate assumption weakens.
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 15);
  const std::vector<double> sigmas{0.5, 1.0, 1.5, 2.0, 2.5};
  std::vector<std::string> xs;
  for (double s : sigmas) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "s=%.1f", s);
    xs.emplace_back(buffer);
  }

  run_fig6_sweep(
      "Figure 6(d): ARE vs activation-rate dynamics sigma, N=128", xs, trials,
      [&](const dga::DgaConfig& config, std::size_t xi, std::uint64_t seed) {
        Scenario scenario;
        scenario.sim.dga = config;
        scenario.sim.bot_count = kDefaultPopulation;
        scenario.sim.activation.model = botnet::RateModel::kDynamic;
        scenario.sim.activation.sigma = sigmas[xi];
        scenario.sim.seed = seed * 1697 + static_cast<std::uint64_t>(xi);
        scenario.sim.record_raw = false;
        return scenario;
      });
  return 0;
}
