// bench_stream_throughput — streaming-engine performance characterisation.
//
// For a set of scenarios (family x bots x servers x epochs), simulates the
// observable border feed once, then measures:
//   - per-tuple ingest throughput of stream::StreamEngine (tuples/sec,
//     including the epoch closes the watermark triggers along the way);
//   - the epoch-close (flush) latency distribution: p50 / p99 / max wall ms;
//   - peak resident state (matched lookups buffered at once);
//   - batch core::BotMeter::analyze wall time on the same stream, as the
//     reference point, plus a bit-equivalence check of the two totals;
//   - the two codec lanes: the same stream serialised once per codec, then
//     replayed through a fresh engine — text via for_each_observable +
//     per-tuple ingest, binary via for_each_block + zero-copy ingest_block.
//     Best-of-3 per lane; the final landscape_to_json documents must be
//     byte-identical across lanes, and the binary lane must sustain at
//     least kCodecSpeedupFloor x the text lane's tuples/s (both enforced).
//
// A final scrape-under-load guard re-runs one scenario with the metrics
// registry attached and the HTTP exporter being scraped every 10 ms, and
// asserts the live telemetry costs < 2% of ingest throughput; the numbers
// land in the JSON under "scrape_guard". A second guard re-runs the same
// scenario with a LandscapeHistory attached and asserts recording per-epoch
// snapshots also stays under the 2% budget — and that the final landscape is
// byte-identical with and without the history ("history_guard").
//
// A memory guard ("memory_guard") runs the frozen large-fleet workload with
// lateness stretched past the horizon — every epoch's state resident at
// once, the worst case the compact observation path exists for — in an exact
// and a --compact-state arm, and enforces that sketch-backed state cuts the
// open-epoch byte high-water mark by at least kMemoryReductionFloor x while
// the per-server absolute relative error stays under kMemoryAreLimit. The
// process-wide peak RSS lands at the JSON root as "peak_rss_bytes".
//
// Results go to stdout as a table and to BENCH_stream.json
// (schema botmeter.bench_stream.v1) for CI artifact upload; pass an output
// path as argv[1] to redirect the JSON.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/json.hpp"
#include "support/rss.hpp"
#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/expose.hpp"
#include "obs/http_exporter.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "stream/health_monitor.hpp"
#include "stream/stream_engine.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"

namespace {

using namespace botmeter;

struct Scenario {
  std::string family;
  std::uint32_t bots;
  std::size_t servers;
  std::int64_t epochs;
  std::size_t threads;
};

struct Measurement {
  Scenario scenario;
  std::size_t tuples = 0;
  double ingest_ms = 0.0;
  double tuples_per_sec = 0.0;
  double close_p50_ms = 0.0;
  double close_p99_ms = 0.0;
  double close_max_ms = 0.0;
  std::size_t peak_resident = 0;
  std::size_t peak_open_bytes = 0;
  double batch_ms = 0.0;
  bool totals_match = false;
  double text_lane_tuples_per_sec = 0.0;
  double binary_lane_tuples_per_sec = 0.0;
  double codec_speedup = 0.0;
  bool codec_reports_identical = false;
};

/// The binary lane must beat the text lane by at least this factor, per
/// scenario — the whole point of the columnar codec.
constexpr double kCodecSpeedupFloor = 5.0;
constexpr int kCodecLaneReps = 3;

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Measurement run_scenario(const Scenario& scenario) {
  const dga::DgaConfig family = dga::family_config(scenario.family);
  const std::int64_t first_epoch =
      family.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0;

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = scenario.bots;
  sim.server_count = scenario.servers;
  sim.first_epoch = first_epoch;
  sim.epoch_count = scenario.epochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  stream::StreamEngineConfig config;
  config.meter.dga = family;
  config.first_epoch = first_epoch;
  config.epoch_count = scenario.epochs;
  config.server_count = scenario.servers;
  config.worker_threads = scenario.threads;
  stream::StreamEngine engine(config);

  Measurement m;
  m.scenario = scenario;
  m.tuples = result.observable.size();

  const auto ingest_start = std::chrono::steady_clock::now();
  for (const dns::ForwardedLookup& lookup : result.observable) {
    engine.ingest(lookup);
  }
  const core::LandscapeReport streamed = engine.finish();
  m.ingest_ms = wall_ms_since(ingest_start);
  m.tuples_per_sec = m.ingest_ms > 0.0
                         ? static_cast<double>(m.tuples) / (m.ingest_ms / 1e3)
                         : 0.0;
  const std::span<const double> closes = engine.close_latencies_ms();
  m.close_p50_ms = percentile(closes, 50.0);
  m.close_p99_ms = percentile(closes, 99.0);
  m.close_max_ms = percentile(closes, 100.0);
  m.peak_resident = engine.peak_resident_lookups();
  m.peak_open_bytes = engine.peak_open_buffer_bytes();

  core::BotMeter meter(config.meter);
  meter.prepare_epochs(first_epoch, scenario.epochs);
  const auto batch_start = std::chrono::steady_clock::now();
  const core::LandscapeReport batch =
      meter.analyze(result.observable, scenario.servers);
  m.batch_ms = wall_ms_since(batch_start);
  m.totals_match = streamed.total_population() == batch.total_population();

  // --- codec lanes: same stream, serialised once per codec ------------------
  std::ostringstream text_os;
  trace::write_observable(text_os, result.observable);
  const std::string text_bytes = text_os.str();
  std::ostringstream binary_os;
  trace::write_blocks(binary_os, result.observable);
  const std::string binary_bytes = binary_os.str();

  // Each lane times decode + ingest only: lateness is stretched past the
  // horizon so every epoch close (estimator work, codec-independent) runs
  // inside the untimed finish(). Reports are still produced and compared —
  // closing at finish() instead of at the watermark changes nothing about
  // the landscape, only when the estimator runs.
  stream::StreamEngineConfig lane_config = config;
  lane_config.allowed_lateness =
      Duration{family.epoch.millis() * (scenario.epochs + 2)};
  double text_best_ms = std::numeric_limits<double>::infinity();
  double binary_best_ms = std::numeric_limits<double>::infinity();
  std::string text_report;
  std::string binary_report;
  for (int rep = 0; rep < kCodecLaneReps; ++rep) {
    {
      stream::StreamEngine lane(lane_config);
      std::istringstream is(text_bytes);
      const auto start = std::chrono::steady_clock::now();
      trace::for_each_observable(
          is, [&lane](const dns::ForwardedLookup& l) { lane.ingest(l); });
      text_best_ms = std::min(text_best_ms, wall_ms_since(start));
      text_report = json::write(core::landscape_to_json(lane.finish()));
    }
    {
      stream::StreamEngine lane(lane_config);
      std::istringstream is(binary_bytes);
      const auto start = std::chrono::steady_clock::now();
      trace::for_each_block(
          is, [&lane](const dns::LookupColumns& block,
                      std::span<const std::string_view> table) {
            lane.ingest_block(block, table);
          });
      binary_best_ms = std::min(binary_best_ms, wall_ms_since(start));
      binary_report = json::write(core::landscape_to_json(lane.finish()));
    }
  }
  m.text_lane_tuples_per_sec =
      text_best_ms > 0.0 ? static_cast<double>(m.tuples) / (text_best_ms / 1e3)
                         : 0.0;
  m.binary_lane_tuples_per_sec =
      binary_best_ms > 0.0
          ? static_cast<double>(m.tuples) / (binary_best_ms / 1e3)
          : 0.0;
  m.codec_speedup = m.text_lane_tuples_per_sec > 0.0
                        ? m.binary_lane_tuples_per_sec /
                              m.text_lane_tuples_per_sec
                        : 0.0;
  m.codec_reports_identical =
      !text_report.empty() && text_report == binary_report;
  return m;
}

/// One blocking GET against the local exporter, response discarded — the
/// scrape pattern a Prometheus agent applies.
bool http_get(std::uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  bool ok = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0;
  if (ok) {
    const std::string request =
        std::string("GET ") + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ok = ::send(fd, request.data(), request.size(), 0) ==
         static_cast<ssize_t>(request.size());
    char buf[4096];
    while (ok && ::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
  }
  ::close(fd);
  return ok;
}

struct ScrapeGuard {
  double baseline_tuples_per_sec = 0.0;
  double scraped_tuples_per_sec = 0.0;
  double regression = 0.0;
  std::uint64_t scrapes = 0;
  bool pass = false;
  /// The limit is only enforced with a spare core for the exporter: on a
  /// single-CPU host the scraper *must* time-share with ingest, so the
  /// measured regression is context-switch cost, not telemetry cost.
  bool enforced = false;
};

constexpr double kScrapeRegressionLimit = 0.02;
constexpr int kScrapeIntervalMs = 10;
constexpr int kGuardReps = 3;

/// Instrumented ingest throughput for one scenario, with and without a live
/// scraper. Both arms attach the metrics registry and sample the health
/// monitor every 4096 tuples (exactly what botmeter_stream --listen does),
/// so the measured delta is the cost of *being scraped*, not of being
/// instrumented. Best-of-N per arm to shrink scheduler noise.
ScrapeGuard run_scrape_guard() {
  const Scenario scenario{"Murofet", 256, 8, 4, 1};
  const dga::DgaConfig family = dga::family_config(scenario.family);

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = scenario.bots;
  sim.server_count = scenario.servers;
  sim.first_epoch = 0;
  sim.epoch_count = scenario.epochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  obs::MetricsRegistry metrics;
  stream::StreamHealthMonitor monitor(stream::StreamHealthConfig{}, &metrics);
  const auto wall_ms = [origin = std::chrono::steady_clock::now()] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - origin)
        .count();
  };

  // One rep ingests the stream through several fresh engines back-to-back:
  // a single pass lasts only ~10 ms here, shorter than the scrape interval,
  // so a lone scrape colliding with it would read as a huge regression.
  // Stretching the measured phase lets the 10 ms cadence amortize the way
  // it does against a long-running monitor.
  constexpr int kPassesPerRep = 8;
  const auto instrumented_tps = [&] {
    stream::StreamEngineConfig config;
    config.meter.dga = family;
    config.meter.metrics = &metrics;
    config.first_epoch = 0;
    config.epoch_count = scenario.epochs;
    config.server_count = scenario.servers;
    config.worker_threads = scenario.threads;

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t tick = 0;
    for (int pass = 0; pass < kPassesPerRep; ++pass) {
      stream::StreamEngine engine(config);
      for (const dns::ForwardedLookup& lookup : result.observable) {
        engine.ingest(lookup);
        if ((++tick & 0xFFF) == 0) monitor.sample(engine, wall_ms());
      }
      (void)engine.finish();
    }
    const double ms = wall_ms_since(start);
    return ms > 0.0 ? static_cast<double>(result.observable.size()) *
                          kPassesPerRep / (ms / 1e3)
                    : 0.0;
  };

  ScrapeGuard guard;
  for (int rep = 0; rep < kGuardReps; ++rep) {
    guard.baseline_tuples_per_sec =
        std::max(guard.baseline_tuples_per_sec, instrumented_tps());
  }

  obs::HttpExporter exporter(
      obs::HttpExporterConfig{},
      {{"/metrics", [&metrics](const obs::HttpRequest&) {
          return obs::HttpResponse{200, obs::kPrometheusContentType,
                                   obs::expose_prometheus(metrics.snapshot())};
        }}});
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (http_get(exporter.port(), "/metrics")) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(kScrapeIntervalMs));
    }
  });
  for (int rep = 0; rep < kGuardReps; ++rep) {
    guard.scraped_tuples_per_sec =
        std::max(guard.scraped_tuples_per_sec, instrumented_tps());
  }
  done.store(true);
  scraper.join();
  exporter.stop();

  guard.scrapes = scrapes.load();
  guard.regression =
      guard.baseline_tuples_per_sec > 0.0
          ? (guard.baseline_tuples_per_sec - guard.scraped_tuples_per_sec) /
                guard.baseline_tuples_per_sec
          : 0.0;
  guard.enforced = std::thread::hardware_concurrency() >= 2;
  guard.pass = guard.regression < kScrapeRegressionLimit;
  return guard;
}

/// Landscape-history lane: ingest throughput with the per-epoch snapshot
/// store attached vs detached. Recording happens inline on the ingest thread
/// at every epoch close, so the whole cost shows up here; the guard enforces
/// the <2% budget and that attaching a history never changes the landscape.
struct HistoryGuard {
  double baseline_tuples_per_sec = 0.0;
  double history_tuples_per_sec = 0.0;
  double regression = 0.0;
  std::uint64_t epochs_recorded = 0;
  bool landscapes_identical = false;
  bool pass = false;
};

constexpr double kHistoryRegressionLimit = 0.02;

HistoryGuard run_history_guard() {
  const Scenario scenario{"Murofet", 256, 8, 4, 1};
  const dga::DgaConfig family = dga::family_config(scenario.family);

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = scenario.bots;
  sim.server_count = scenario.servers;
  sim.first_epoch = 0;
  sim.epoch_count = scenario.epochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  stream::StreamEngineConfig config;
  config.meter.dga = family;
  config.first_epoch = 0;
  config.epoch_count = scenario.epochs;
  config.server_count = scenario.servers;
  config.worker_threads = scenario.threads;

  // Same multi-pass stretch as the scrape guard: a single ~10 ms pass is too
  // short for a stable delta. Each pass gets a fresh history — every replay
  // restarts at the first epoch, and a series' epochs must only increase.
  constexpr int kPassesPerRep = 8;
  HistoryGuard guard;
  const auto lane_tps = [&](bool with_history, std::string* report_out) {
    const auto start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < kPassesPerRep; ++pass) {
      std::optional<obs::LandscapeHistory> history;
      stream::StreamEngineConfig lane = config;
      if (with_history) {
        history.emplace();
        lane.history = &*history;
      }
      stream::StreamEngine engine(lane);
      for (const dns::ForwardedLookup& lookup : result.observable) {
        engine.ingest(lookup);
      }
      const core::LandscapeReport report = engine.finish();
      if (report_out != nullptr && pass == 0) {
        *report_out = json::write(core::landscape_to_json(report));
      }
      if (history.has_value()) {
        guard.epochs_recorded = history->epochs_recorded();
      }
    }
    const double ms = wall_ms_since(start);
    return ms > 0.0 ? static_cast<double>(result.observable.size()) *
                          kPassesPerRep / (ms / 1e3)
                    : 0.0;
  };

  // Interleave the arms (instead of all-baseline-then-all-history) so CPU
  // warm-up and frequency drift hit both equally; best-of-N per arm on top.
  constexpr int kHistoryGuardReps = 5;
  std::string bare_report;
  std::string observed_report;
  for (int rep = 0; rep < kHistoryGuardReps; ++rep) {
    guard.baseline_tuples_per_sec = std::max(
        guard.baseline_tuples_per_sec,
        lane_tps(false, rep == 0 ? &bare_report : nullptr));
    guard.history_tuples_per_sec = std::max(
        guard.history_tuples_per_sec,
        lane_tps(true, rep == 0 ? &observed_report : nullptr));
  }

  guard.landscapes_identical =
      !bare_report.empty() && bare_report == observed_report;
  guard.regression =
      guard.baseline_tuples_per_sec > 0.0
          ? (guard.baseline_tuples_per_sec - guard.history_tuples_per_sec) /
                guard.baseline_tuples_per_sec
          : 0.0;
  guard.pass =
      guard.landscapes_identical && guard.regression < kHistoryRegressionLimit;
  return guard;
}

/// Memory lane: the frozen large-fleet workload, run once exact and once
/// with --compact-state, lateness stretched past the horizon so every
/// epoch's open state is resident simultaneously — the unbounded-memory
/// failure mode the sketch path bounds. Enforces the headline win (open-epoch
/// byte high-water mark cut by >= kMemoryReductionFloor x), that the compact
/// arm actually spilled (a guard that never leaves the exact regime proves
/// nothing), and that the accuracy cost stays inside kMemoryAreLimit mean
/// absolute relative error across per-server populations.
struct MemoryGuard {
  std::size_t tuples = 0;
  std::size_t exact_peak_bytes = 0;
  std::size_t compact_peak_bytes = 0;
  double reduction = 0.0;
  std::uint64_t compact_spills = 0;
  std::size_t servers = 0;
  std::size_t approximate_servers = 0;
  double max_sketch_rse = 0.0;
  double are = 0.0;
  bool pass = false;
};

constexpr double kMemoryReductionFloor = 10.0;
constexpr double kMemoryAreLimit = 0.25;
constexpr std::size_t kMemorySpillThreshold = 512;
constexpr std::uint32_t kMemoryKmvK = 256;

MemoryGuard run_memory_guard() {
  // Frozen: newGoZ at 1024 bots is the largest fleet in the bench suite, and
  // its static pool keeps every epoch's geometry identical — byte counts are
  // reproducible run to run (simulation seed 7, single ingest thread).
  const Scenario scenario{"newGoZ", 1024, 2, 6, 1};
  const dga::DgaConfig family = dga::family_config(scenario.family);

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = scenario.bots;
  sim.server_count = scenario.servers;
  sim.first_epoch = 0;
  sim.epoch_count = scenario.epochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  stream::StreamEngineConfig config;
  config.meter.dga = family;
  config.first_epoch = 0;
  config.epoch_count = scenario.epochs;
  config.server_count = scenario.servers;
  config.worker_threads = scenario.threads;
  // Hold every epoch open until finish(): peak open bytes then measure the
  // whole horizon's state, not whichever single epoch happened to be open.
  config.allowed_lateness =
      Duration{family.epoch.millis() * (scenario.epochs + 2)};

  MemoryGuard guard;
  guard.tuples = result.observable.size();

  stream::StreamEngine exact(config);
  for (const dns::ForwardedLookup& lookup : result.observable) {
    exact.ingest(lookup);
  }
  const core::LandscapeReport exact_report = exact.finish();
  guard.exact_peak_bytes = exact.peak_open_buffer_bytes();

  stream::StreamEngineConfig compact_config = config;
  compact_config.compact_state = true;
  compact_config.compact_spill_threshold = kMemorySpillThreshold;
  compact_config.compact.kmv_k = kMemoryKmvK;
  stream::StreamEngine compact(compact_config);
  for (const dns::ForwardedLookup& lookup : result.observable) {
    compact.ingest(lookup);
  }
  const core::LandscapeReport compact_report = compact.finish();
  guard.compact_peak_bytes = compact.peak_open_buffer_bytes();
  guard.compact_spills = compact.compact_spills();

  guard.reduction = guard.compact_peak_bytes > 0
                        ? static_cast<double>(guard.exact_peak_bytes) /
                              static_cast<double>(guard.compact_peak_bytes)
                        : 0.0;
  std::size_t compared = 0;
  guard.servers = exact_report.servers.size();
  for (std::size_t i = 0; i < exact_report.servers.size(); ++i) {
    const double e = exact_report.servers[i].population;
    const double c = compact_report.servers[i].population;
    if (e > 0.0) {
      guard.are += std::abs(c - e) / e;
      ++compared;
    }
    if (compact_report.servers[i].approximate) ++guard.approximate_servers;
    guard.max_sketch_rse =
        std::max(guard.max_sketch_rse, compact_report.servers[i].sketch_rse);
  }
  if (compared > 0) guard.are /= static_cast<double>(compared);

  guard.pass = guard.reduction >= kMemoryReductionFloor &&
               guard.compact_spills > 0 && guard.are <= kMemoryAreLimit;
  return guard;
}

json::Value to_json(const MemoryGuard& g) {
  using json::Value;
  json::Object o;
  o.emplace("tuples", Value(static_cast<double>(g.tuples)));
  o.emplace("exact_peak_open_buffer_bytes",
            Value(static_cast<double>(g.exact_peak_bytes)));
  o.emplace("compact_peak_open_buffer_bytes",
            Value(static_cast<double>(g.compact_peak_bytes)));
  o.emplace("reduction", Value(g.reduction));
  o.emplace("reduction_floor", Value(kMemoryReductionFloor));
  o.emplace("compact_spills", Value(static_cast<double>(g.compact_spills)));
  o.emplace("compact_spill_threshold",
            Value(static_cast<double>(kMemorySpillThreshold)));
  o.emplace("kmv_k", Value(static_cast<double>(kMemoryKmvK)));
  o.emplace("approximate_servers",
            Value(static_cast<double>(g.approximate_servers)));
  o.emplace("max_sketch_rse", Value(g.max_sketch_rse));
  o.emplace("are", Value(g.are));
  o.emplace("are_limit", Value(kMemoryAreLimit));
  o.emplace("pass", Value(g.pass));
  return Value(std::move(o));
}

json::Value to_json(const HistoryGuard& g) {
  using json::Value;
  json::Object o;
  o.emplace("baseline_tuples_per_sec", Value(g.baseline_tuples_per_sec));
  o.emplace("history_tuples_per_sec", Value(g.history_tuples_per_sec));
  o.emplace("regression", Value(g.regression));
  o.emplace("regression_limit", Value(kHistoryRegressionLimit));
  o.emplace("epochs_recorded", Value(static_cast<double>(g.epochs_recorded)));
  o.emplace("landscapes_identical", Value(g.landscapes_identical));
  o.emplace("pass", Value(g.pass));
  return Value(std::move(o));
}

json::Value to_json(const ScrapeGuard& g) {
  using json::Value;
  json::Object o;
  o.emplace("baseline_tuples_per_sec", Value(g.baseline_tuples_per_sec));
  o.emplace("scraped_tuples_per_sec", Value(g.scraped_tuples_per_sec));
  o.emplace("regression", Value(g.regression));
  o.emplace("scrapes", Value(static_cast<double>(g.scrapes)));
  o.emplace("scrape_interval_ms", Value(static_cast<double>(kScrapeIntervalMs)));
  o.emplace("regression_limit", Value(kScrapeRegressionLimit));
  o.emplace("pass", Value(g.pass));
  o.emplace("enforced", Value(g.enforced));
  return Value(std::move(o));
}

json::Value to_json(const Measurement& m) {
  using json::Value;
  json::Object o;
  o.emplace("family", Value(m.scenario.family));
  o.emplace("bots", Value(static_cast<double>(m.scenario.bots)));
  o.emplace("servers", Value(static_cast<double>(m.scenario.servers)));
  o.emplace("epochs", Value(static_cast<double>(m.scenario.epochs)));
  o.emplace("threads", Value(static_cast<double>(m.scenario.threads)));
  o.emplace("tuples", Value(static_cast<double>(m.tuples)));
  o.emplace("ingest_ms", Value(m.ingest_ms));
  o.emplace("tuples_per_sec", Value(m.tuples_per_sec));
  o.emplace("epoch_close_p50_ms", Value(m.close_p50_ms));
  o.emplace("epoch_close_p99_ms", Value(m.close_p99_ms));
  o.emplace("epoch_close_max_ms", Value(m.close_max_ms));
  o.emplace("peak_resident_lookups",
            Value(static_cast<double>(m.peak_resident)));
  o.emplace("peak_open_buffer_bytes",
            Value(static_cast<double>(m.peak_open_bytes)));
  o.emplace("batch_analyze_ms", Value(m.batch_ms));
  o.emplace("totals_match_batch", Value(m.totals_match));
  o.emplace("text_lane_tuples_per_sec", Value(m.text_lane_tuples_per_sec));
  o.emplace("binary_lane_tuples_per_sec", Value(m.binary_lane_tuples_per_sec));
  o.emplace("codec_speedup", Value(m.codec_speedup));
  o.emplace("codec_reports_identical", Value(m.codec_reports_identical));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_stream.json";
  const std::vector<Scenario> scenarios = {
      {"newGoZ", 64, 4, 6, 1},
      {"newGoZ", 64, 4, 6, 8},
      {"Murofet", 256, 8, 4, 1},
      {"Murofet", 256, 8, 4, 8},
  };

  std::printf("%-10s %5s %4s %3s %3s %9s %12s %9s %9s %9s %5s %11s %11s %6s %5s\n",
              "family", "bots", "srv", "ep", "thr", "tuples", "tuples/s",
              "p50ms", "p99ms", "batchms", "equal", "txt t/s", "bin t/s",
              "x", "codec");
  json::Array results;
  bool all_match = true;
  bool codec_identical = true;
  double min_speedup = std::numeric_limits<double>::infinity();
  for (const Scenario& scenario : scenarios) {
    const Measurement m = run_scenario(scenario);
    all_match = all_match && m.totals_match;
    codec_identical = codec_identical && m.codec_reports_identical;
    min_speedup = std::min(min_speedup, m.codec_speedup);
    std::printf(
        "%-10s %5u %4zu %3lld %3zu %9zu %12.0f %9.2f %9.2f %9.1f %5s "
        "%11.0f %11.0f %6.1f %5s\n",
        m.scenario.family.c_str(), m.scenario.bots, m.scenario.servers,
        static_cast<long long>(m.scenario.epochs), m.scenario.threads,
        m.tuples, m.tuples_per_sec, m.close_p50_ms, m.close_p99_ms,
        m.batch_ms, m.totals_match ? "yes" : "NO",
        m.text_lane_tuples_per_sec, m.binary_lane_tuples_per_sec,
        m.codec_speedup, m.codec_reports_identical ? "same" : "DIFF");
    results.push_back(to_json(m));
  }

  const ScrapeGuard guard = run_scrape_guard();
  std::printf(
      "scrape guard: baseline %.0f t/s, scraped %.0f t/s (%llu scrapes "
      "@ %d ms) -> regression %.2f%% (limit %.0f%%): %s\n",
      guard.baseline_tuples_per_sec, guard.scraped_tuples_per_sec,
      static_cast<unsigned long long>(guard.scrapes), kScrapeIntervalMs,
      guard.regression * 100.0, kScrapeRegressionLimit * 100.0,
      guard.pass       ? "pass"
      : guard.enforced ? "FAIL"
                       : "over limit (not enforced: no spare core for the "
                         "exporter)");

  const HistoryGuard history_guard = run_history_guard();
  std::printf(
      "history guard: baseline %.0f t/s, with history %.0f t/s "
      "(%llu epochs recorded) -> regression %.2f%% (limit %.0f%%), "
      "landscapes %s: %s\n",
      history_guard.baseline_tuples_per_sec,
      history_guard.history_tuples_per_sec,
      static_cast<unsigned long long>(history_guard.epochs_recorded),
      history_guard.regression * 100.0, kHistoryRegressionLimit * 100.0,
      history_guard.landscapes_identical ? "identical" : "DIFFERENT",
      history_guard.pass ? "pass" : "FAIL");

  const MemoryGuard memory_guard = run_memory_guard();
  std::printf(
      "memory guard: exact peak %zu B, compact peak %zu B -> %.1fx reduction "
      "(floor %.0fx), %llu spills, ARE %.4f (limit %.2f), %zu/%zu servers "
      "sketch-flagged: %s\n",
      memory_guard.exact_peak_bytes, memory_guard.compact_peak_bytes,
      memory_guard.reduction, kMemoryReductionFloor,
      static_cast<unsigned long long>(memory_guard.compact_spills),
      memory_guard.are, kMemoryAreLimit, memory_guard.approximate_servers,
      memory_guard.servers, memory_guard.pass ? "pass" : "FAIL");

  json::Object root;
  root.emplace("schema", json::Value(std::string("botmeter.bench_stream.v1")));
  root.emplace("results", json::Value(std::move(results)));
  root.emplace("scrape_guard", to_json(guard));
  root.emplace("history_guard", to_json(history_guard));
  root.emplace("memory_guard", to_json(memory_guard));
  root.emplace("peak_rss_bytes",
               json::Value(static_cast<double>(bench::peak_rss_bytes())));
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json::write_pretty(json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: streaming and batch totals diverged in at least one "
                 "scenario\n");
    return 1;
  }
  if (!codec_identical) {
    std::fprintf(stderr,
                 "FAIL: text and binary codec lanes produced different "
                 "landscape reports\n");
    return 1;
  }
  if (min_speedup < kCodecSpeedupFloor) {
    std::fprintf(stderr,
                 "FAIL: binary codec lane is only %.1fx the text lane "
                 "(floor %.0fx)\n",
                 min_speedup, kCodecSpeedupFloor);
    return 1;
  }
  if (!guard.pass && guard.enforced) {
    std::fprintf(stderr,
                 "FAIL: scraping /metrics every %d ms cost %.2f%% ingest "
                 "throughput (limit %.0f%%)\n",
                 kScrapeIntervalMs, guard.regression * 100.0,
                 kScrapeRegressionLimit * 100.0);
    return 1;
  }
  if (!history_guard.landscapes_identical) {
    std::fprintf(stderr,
                 "FAIL: attaching the landscape history changed the final "
                 "landscape\n");
    return 1;
  }
  if (!history_guard.pass) {
    std::fprintf(stderr,
                 "FAIL: recording landscape history cost %.2f%% ingest "
                 "throughput (limit %.0f%%)\n",
                 history_guard.regression * 100.0,
                 kHistoryRegressionLimit * 100.0);
    return 1;
  }
  if (!memory_guard.pass) {
    std::fprintf(stderr,
                 "FAIL: compact state cut open-epoch bytes only %.1fx "
                 "(floor %.0fx) with ARE %.4f (limit %.2f) and %llu spills\n",
                 memory_guard.reduction, kMemoryReductionFloor,
                 memory_guard.are, kMemoryAreLimit,
                 static_cast<unsigned long long>(memory_guard.compact_spills));
    return 1;
  }
  return 0;
}
