// Analysis-pipeline throughput (google-benchmark): core::BotMeter::analyze
// on a frozen 1024-server landscape workload, across thread counts and with
// the shared EstimationContext disabled, plus the sharded matcher alone.
//
// Doubles as the determinism guard for CI: every threaded (and memo-off)
// configuration renders its landscape to canonical JSON once during setup
// and the process exits non-zero if any run diverges from the serial
// reference by a single byte.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/botmeter.hpp"
#include "detect/matcher.hpp"
#include "dga/domain_gen.hpp"
#include "dga/families.hpp"
#include "dga/pool.hpp"

namespace {

using namespace botmeter;

bool g_diverged = false;

struct AnalyzeWorkload {
  core::BotMeterConfig config;
  std::vector<dns::ForwardedLookup> stream;
  std::size_t servers = 0;
  std::int64_t epochs = 0;
};

/// Frozen synthetic landscape: 1024 local servers behind one border vantage,
/// two newGoZ epochs. Per (epoch, server) a fixed substream draws a matched
/// count from a sparse, quantised distribution (most servers small or empty —
/// the regime the memo cache targets) and pads each matched lookup with two
/// benign ones for the matcher to reject. Fully deterministic: every run and
/// every machine sees byte-identical input.
AnalyzeWorkload make_analyze_workload(std::size_t servers, std::int64_t epochs) {
  AnalyzeWorkload w;
  w.servers = servers;
  w.epochs = epochs;
  w.config.dga = dga::newgoz_config();
  auto pool_model = dga::make_pool_model(w.config.dga);
  const std::int64_t epoch_ms = w.config.dga.epoch.millis();
  static constexpr std::uint32_t kCounts[] = {0, 0, 0, 4, 8, 8, 16, 32};
  std::uint32_t benign = 0;
  for (std::int64_t e = 0; e < epochs; ++e) {
    const dga::EpochPool& pool = pool_model->epoch_pool(e);
    for (std::size_t s = 0; s < servers; ++s) {
      Rng rng = Rng::stream(0xA7A1, static_cast<std::uint64_t>(e), s);
      const std::uint32_t count =
          kCounts[rng.uniform(sizeof(kCounts) / sizeof(kCounts[0]))];
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto pos = static_cast<std::uint32_t>(rng.uniform(pool.size()));
        const TimePoint t{e * epoch_ms +
                          static_cast<std::int64_t>(rng.uniform(
                              static_cast<std::uint64_t>(epoch_ms)))};
        const dns::ServerId server{static_cast<std::uint32_t>(s)};
        w.stream.push_back({t, server, pool.domains[pos]});
        w.stream.push_back({t, server, dga::benign_domain(benign++)});
        w.stream.push_back({t, server, dga::benign_domain(benign++)});
      }
    }
  }
  std::sort(w.stream.begin(), w.stream.end(),
            [](const dns::ForwardedLookup& a, const dns::ForwardedLookup& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.forwarder != b.forwarder) return a.forwarder < b.forwarder;
              return a.domain < b.domain;
            });
  return w;
}

const AnalyzeWorkload& workload() {
  static const AnalyzeWorkload w = make_analyze_workload(1024, 2);
  return w;
}

std::unique_ptr<core::BotMeter> make_meter(std::size_t threads,
                                           bool share_context) {
  core::BotMeterConfig config = workload().config;
  config.analyze_threads = threads;
  config.share_estimation_context = share_context;
  auto meter = std::make_unique<core::BotMeter>(config);
  meter->prepare_epochs(0, workload().epochs);
  return meter;
}

std::string landscape_bytes(const core::LandscapeReport& report) {
  return json::write(core::landscape_to_json(report));
}

/// Canonical serial landscape (threads = 1, memo on) — the reference every
/// other configuration must reproduce byte-for-byte.
const std::string& serial_reference() {
  static const std::string bytes = [] {
    const auto meter = make_meter(1, true);
    return landscape_bytes(
        meter->analyze(workload().stream, workload().servers));
  }();
  return bytes;
}

void check_divergence(benchmark::State& state,
                      const core::LandscapeReport& report,
                      const char* what) {
  if (landscape_bytes(report) != serial_reference()) {
    g_diverged = true;
    state.SkipWithError(what);
  }
}

void BM_AnalyzeThreaded(benchmark::State& state) {
  const auto meter = make_meter(static_cast<std::size_t>(state.range(0)), true);
  check_divergence(state,
                   meter->analyze(workload().stream, workload().servers),
                   "threaded landscape diverged from serial reference");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        meter->analyze(workload().stream, workload().servers));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().stream.size()));
}
BENCHMARK(BM_AnalyzeThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The serial pipeline with the shared EstimationContext disabled — the
// pre-memoization cost, for computing the serial speedup from the same
// BENCH_analyze.json artifact.
void BM_AnalyzeMemoOff(benchmark::State& state) {
  const auto meter = make_meter(1, false);
  check_divergence(state,
                   meter->analyze(workload().stream, workload().servers),
                   "memo-off landscape diverged from serial reference");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        meter->analyze(workload().stream, workload().servers));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().stream.size()));
}
BENCHMARK(BM_AnalyzeMemoOff)->Unit(benchmark::kMillisecond);

// Matcher sharding alone, on the same stream the analyze benchmarks see.
void BM_MatcherSharded(benchmark::State& state) {
  const auto meter = make_meter(1, true);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  WorkerPool workers(threads, WorkerPool::Oversubscribe::kAllow);
  WorkerPool* pool = threads > 1 ? &workers : nullptr;
  for (auto _ : state) {
    detect::MatchStats stats;
    benchmark::DoNotOptimize(
        meter->matcher().match(workload().stream, &stats, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().stream.size()));
}
BENCHMARK(BM_MatcherSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->UseRealTime();

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to writing the results as JSON to
// BENCH_analyze.json (for CI artifact upload) unless the caller passed their
// own --benchmark_out, and exits non-zero if any configuration's landscape
// diverged from the serial reference.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_analyze.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (g_diverged) {
    std::fputs("FAIL: a threaded or memo-off landscape diverged from the "
               "serial reference\n",
               stderr);
    return 1;
  }
  return 0;
}
