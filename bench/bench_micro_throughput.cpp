// Microbenchmarks (google-benchmark): throughput of the components on
// BotMeter's hot path — domain generation, the DNS cache, the matcher, the
// analytical inversions, and the full per-epoch simulation.
#include <benchmark/benchmark.h>

#include "botnet/simulator.hpp"
#include "detect/matcher.hpp"
#include "dga/domain_gen.hpp"
#include "dga/families.hpp"
#include "dns/cache.hpp"
#include "estimators/bernoulli.hpp"

namespace {

using namespace botmeter;

void BM_DomainGeneration(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dga::domain_name(0xABCD, 7, i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DomainGeneration);

void BM_CacheLookupHit(benchmark::State& state) {
  dns::DnsCache cache;
  std::vector<std::string> domains;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    domains.push_back(dga::domain_name(1, 1, i));
    cache.insert(domains.back(), dns::Rcode::kNxDomain, TimePoint{0}, days(1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(domains[i++ % domains.size()],
                                          TimePoint{1000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsertExpireCycle(benchmark::State& state) {
  dns::DnsCache cache;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const std::string domain = dga::domain_name(2, 2, i % 4096);
    cache.insert(domain, dns::Rcode::kNxDomain,
                 TimePoint{static_cast<std::int64_t>(i) * 10}, seconds(1));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertExpireCycle);

void BM_MatcherThroughput(benchmark::State& state) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto pool_model = dga::make_pool_model(config);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  detect::DomainMatcher matcher(days(1));
  matcher.add_epoch(pool, detect::perfect_detection(pool));

  // Half matching, half benign lookups.
  std::vector<dns::ForwardedLookup> stream;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    stream.push_back(dns::ForwardedLookup{
        TimePoint{static_cast<std::int64_t>(i) * 100}, dns::ServerId{0},
        (i % 2 == 0) ? pool.domains[i % pool.size()]
                     : dga::benign_domain(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(stream));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MatcherThroughput);

void BM_BernoulliCoverageInversion(benchmark::State& state) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto pool_model = dga::make_pool_model(config);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimators::BernoulliEstimator::invert_coverage(
        pool, config, 5000.0, {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BernoulliCoverageInversion);

void BM_EpochSimulation(benchmark::State& state) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = static_cast<std::uint32_t>(state.range(0));
  config.record_raw = false;
  auto pool_model = dga::make_pool_model(config.dga);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(botnet::simulate(config, *pool_model));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochSimulation)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
