// Microbenchmarks (google-benchmark): throughput of the components on
// BotMeter's hot path — domain generation, the DNS cache, the matcher, the
// analytical inversions, and the full per-epoch simulation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "botnet/simulator.hpp"
#include "detect/matcher.hpp"
#include "dga/domain_gen.hpp"
#include "dga/families.hpp"
#include "dns/cache.hpp"
#include "estimators/bernoulli.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace botmeter;

void BM_DomainGeneration(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dga::domain_name(0xABCD, 7, i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DomainGeneration);

void BM_CacheLookupHit(benchmark::State& state) {
  dns::DnsCache cache;
  std::vector<std::string> domains;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    domains.push_back(dga::domain_name(1, 1, i));
    cache.insert(domains.back(), dns::Rcode::kNxDomain, TimePoint{0}, days(1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(domains[i++ % domains.size()],
                                          TimePoint{1000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsertExpireCycle(benchmark::State& state) {
  // Exercise the full entry lifecycle: insert, a hit while fresh, and a
  // lookup after the TTL lapsed (which takes the expiry/erase path). At
  // 10 ms per step and a 1 s TTL, the entry inserted 50 steps ago is still
  // fresh while the one from 200 steps ago has expired.
  dns::DnsCache cache;
  std::vector<std::string> domains;
  domains.reserve(4096);
  for (std::uint32_t d = 0; d < 4096; ++d) {
    domains.push_back(dga::domain_name(2, 2, d));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    const TimePoint now{static_cast<std::int64_t>(i) * 10};
    cache.insert(domains[i % domains.size()], dns::Rcode::kNxDomain, now,
                 seconds(1));
    if (i >= 50) {
      benchmark::DoNotOptimize(
          cache.lookup(domains[(i - 50) % domains.size()], now));
    }
    if (i >= 200) {
      benchmark::DoNotOptimize(
          cache.lookup(domains[(i - 200) % domains.size()], now));
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertExpireCycle);

void BM_MatcherThroughput(benchmark::State& state) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto pool_model = dga::make_pool_model(config);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  detect::DomainMatcher matcher(days(1));
  matcher.add_epoch(pool, detect::perfect_detection(pool));

  // Half matching, half benign lookups.
  std::vector<dns::ForwardedLookup> stream;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    stream.push_back(dns::ForwardedLookup{
        TimePoint{static_cast<std::int64_t>(i) * 100}, dns::ServerId{0},
        (i % 2 == 0) ? pool.domains[i % pool.size()]
                     : dga::benign_domain(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(stream));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MatcherThroughput);

void BM_BernoulliCoverageInversion(benchmark::State& state) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto pool_model = dga::make_pool_model(config);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimators::BernoulliEstimator::invert_coverage(
        pool, config, 5000.0, {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BernoulliCoverageInversion);

void BM_EpochSimulation(benchmark::State& state) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = static_cast<std::uint32_t>(state.range(0));
  config.record_raw = false;
  auto pool_model = dga::make_pool_model(config.dga);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(botnet::simulate(config, *pool_model));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochSimulation)->Arg(16)->Arg(64)->Arg(256);

// BM_EpochSimulation with a live metrics registry and trace session
// attached — the observability overhead guard. The instrumented run must
// stay within a few percent of the plain one (the per-epoch bulk flush is
// the only added work on the hot path).
void BM_EpochSimulationInstrumented(benchmark::State& state) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = static_cast<std::uint32_t>(state.range(0));
  config.record_raw = false;
  obs::MetricsRegistry metrics;
  obs::TraceSession trace;
  config.metrics = &metrics;
  config.trace = &trace;
  auto pool_model = dga::make_pool_model(config.dga);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(botnet::simulate(config, *pool_model));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochSimulationInstrumented)->Arg(16)->Arg(64)->Arg(256);

// Cost of one ScopedTimer span by session mode: 0 = null session (tracing
// compiled in but disabled), 1 = live session, 2 = ended session (sealed
// mid-run, e.g. after the run report was written). The live path is two
// clock reads plus one mutex-guarded vector append; null and ended must be
// near-free — neither even reads the clock.
void BM_SpanTracingOverhead(benchmark::State& state) {
  obs::TraceSession session;
  obs::TraceSession* target = state.range(0) >= 1 ? &session : nullptr;
  if (state.range(0) == 2) session.end();
  std::uint64_t i = 0;
  for (auto _ : state) {
    obs::ScopedTimer timer(target, "bench.span");
    benchmark::DoNotOptimize(&timer);
    // Keep the live session's span buffer bounded; the amortized clear is
    // part of what a long-running instrumented loop pays.
    if ((++i & 0xFFF) == 0 && state.range(0) == 1) session.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanTracingOverhead)
    ->DenseRange(0, 2)
    ->ArgName("mode");

void BM_EpochSimulationThreaded(benchmark::State& state) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = static_cast<std::uint32_t>(state.range(0));
  config.record_raw = false;
  config.worker_threads = static_cast<std::size_t>(state.range(1));
  auto pool_model = dga::make_pool_model(config.dga);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(botnet::simulate(config, *pool_model));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochSimulationThreaded)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->ArgNames({"bots", "threads"})
    ->UseRealTime();

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to also writing the results as JSON to
// BENCH_micro.json (for CI artifact upload) unless the caller passed their
// own --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
