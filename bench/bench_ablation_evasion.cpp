// Ablation: the coordinated-cut evasion model (paper future-work #3,
// "designing advanced DGA models that evade effective population
// estimation").
//
// The evasive variant keeps newGoZ's pool and parameters but lets every bot
// derive a shared epoch cut from the DGA seed, so the population's
// collective footprint mimics a couple of bots. The analyst — unaware of
// the evasion — applies the A_R models as usual. Expected outcome: on the
// honest family both M_B and M_T track N; on the evasive variant their
// estimates stay nearly flat as N grows (ARE -> 1 from below), demonstrating
// the attack. The forwarded-lookup volume (also printed) shows the residual
// signal a defender could still exploit.
#include <cstdio>

#include "dga/families.hpp"
#include "estimators/library.hpp"
#include "support/experiment.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 9);
  const estimators::ModelLibrary library;

  // What the analyst believes (the honest A_R model drives matching and
  // estimation in both arms).
  const dga::DgaConfig believed = dga::newgoz_config();

  print_header(
      "Evasion ablation: honest newGoZ vs coordinated-cut evasive variant "
      "(estimators configured for A_R)");
  for (const bool evasive : {false, true}) {
    const dga::DgaConfig actual =
        evasive ? dga::evasive_variant(dga::newgoz_config()) : believed;
    for (std::uint32_t n : {16u, 64u, 256u}) {
      std::vector<double> bernoulli_err, timing_err;
      RunningStats forwarded;
      for (int trial = 0; trial < trials; ++trial) {
        Scenario scenario;
        scenario.sim.dga = actual;
        scenario.sim.bot_count = n;
        scenario.sim.seed = 1100 + static_cast<std::uint64_t>(trial) * 37 + n;
        scenario.sim.record_raw = false;
        ScenarioRun run(scenario);
        // The analyst models the traffic as honest A_R: swap in the believed
        // config for estimation (pool contents are identical — the barrel
        // model does not affect the pool).
        std::vector<estimators::EpochObservation> observations(
            run.observations().begin(), run.observations().end());
        for (auto& obs : observations) obs.config = &believed;
        double f = 0.0;
        for (const auto& lookup : observations[0].lookups) {
          if (!lookup.is_valid_domain) f += 1.0;
        }
        forwarded.add(f);
        bernoulli_err.push_back(absolute_relative_error(
            estimators::estimate_window(library.get("bernoulli"), observations),
            run.mean_truth()));
        timing_err.push_back(absolute_relative_error(
            estimators::estimate_window(library.get("timing"), observations),
            run.mean_truth()));
      }
      const std::string label = evasive ? "evasiv" : "honest";
      print_row(label, "bernoulli", "N=" + std::to_string(n),
                summarize_quartiles(bernoulli_err));
      print_row(label, "timing", "N=" + std::to_string(n),
                summarize_quartiles(timing_err));
      std::printf("%-6s %-20s %-12s mean forwarded NXD lookups: %.0f\n",
                  label.c_str(), "(volume)", ("N=" + std::to_string(n)).c_str(),
                  forwarded.mean());
    }
  }
  return 0;
}
