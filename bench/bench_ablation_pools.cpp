// Ablation: pool models beyond the drain-and-replenish focus of §IV-V.
//
// The paper's analytical models are developed under the drain-and-replenish
// pool; this bench checks how the taxonomy's other pool models behave in the
// same pipeline with the Timing estimator (the only model applicable across
// the whole grid): sliding-window families (Ranbyus, PushDo) and the
// multiple-mixture family (Pykspa, decoy pool trimmed for runtime).
#include "support/experiment.hpp"
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 11);
  const estimators::ModelLibrary library;

  dga::DgaConfig pykspa = dga::pykspa_config();
  pykspa.noise_pool_size = 4000;  // trimmed decoy pool (16K in the wild)
  pykspa.barrel_size = 4200;

  struct Case {
    const char* label;
    dga::DgaConfig config;
    std::int64_t first_epoch;  // sliding windows need room to reach back
  };
  const std::vector<Case> cases{
      {"SW", dga::ranbyus_config(), 40},
      {"SW", dga::pushdo_config(), 40},
      {"MM", pykspa, 0},
  };

  print_header(
      "Pool-model ablation: Timing and Poisson estimators across pool "
      "models (all three families use the uniform barrel), varying N");
  for (const Case& c : cases) {
    for (std::uint32_t n : {16u, 64u}) {
      std::vector<double> timing_errors, poisson_errors;
      for (int trial = 0; trial < trials; ++trial) {
        Scenario scenario;
        scenario.sim.dga = c.config;
        scenario.sim.bot_count = n;
        scenario.sim.first_epoch = c.first_epoch;
        scenario.sim.seed = 900 + static_cast<std::uint64_t>(trial) * 29 + n;
        scenario.sim.record_raw = false;
        const ScenarioRun run(scenario);
        timing_errors.push_back(scenario_are(library.get("timing"), run));
        poisson_errors.push_back(scenario_are(library.get("poisson"), run));
      }
      print_row(c.label, std::string("timing/") + c.config.name,
                "N=" + std::to_string(n), summarize_quartiles(timing_errors));
      print_row(c.label, std::string("poisson/") + c.config.name,
                "N=" + std::to_string(n), summarize_quartiles(poisson_errors));
    }
  }
  return 0;
}
