// Figure 6(b): estimation accuracy as a function of the observation-window
// length in {1, 2, 4, 8, 16} epochs (per-epoch estimates averaged over the
// window), N = 128.
//
// Expected shape (§V-A): all estimators improve with longer windows; the
// improvement is most pronounced for A_S and A_R, whose higher per-epoch
// variance leaves more room for averaging to help.
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 7);
  const std::vector<std::int64_t> windows{1, 2, 4, 8, 16};
  std::vector<std::string> xs;
  for (auto w : windows) xs.push_back(std::to_string(w) + "ep");

  run_fig6_sweep(
      "Figure 6(b): ARE vs observation-window length (epochs), N=128", xs,
      trials,
      [&](const dga::DgaConfig& config, std::size_t xi, std::uint64_t seed) {
        Scenario scenario;
        scenario.sim.dga = config;
        scenario.sim.bot_count = kDefaultPopulation;
        scenario.sim.epoch_count = windows[xi];
        scenario.sim.seed = seed * 6173 + static_cast<std::uint64_t>(windows[xi]);
        scenario.sim.record_raw = false;
        return scenario;
      });
  return 0;
}
