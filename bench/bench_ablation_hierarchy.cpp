// Ablation: estimation through a two-tier caching hierarchy.
//
// The paper assumes one caching layer below the vantage point (Fig. 1);
// enterprise deployments often stack regional concentrators above the site
// resolvers. This bench measures, at regional granularity, how accurate the
// recommended estimators stay when (a) the analyst models the regional TTL
// correctly and (b) the analyst naively plugs in the *local* TTL — the
// misconfiguration penalty.
#include "dga/families.hpp"
#include "support/experiment.hpp"
#include "support/fig6.hpp"

#include "core/botmeter.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 9);

  struct Case {
    const char* label;
    dga::DgaConfig config;
  };
  const std::vector<Case> cases{
      {"A_R", dga::newgoz_config()},
      {"A_U", dga::murofet_config()},
  };

  print_header(
      "Hierarchy ablation: ARE at regional granularity (6 locals / 2 "
      "regions, local TTL 10min, regional TTL 2h), N=96");
  for (const Case& c : cases) {
    for (const bool correct_ttl : {true, false}) {
      std::vector<double> errors;
      for (int trial = 0; trial < trials; ++trial) {
        botnet::TieredSimulationConfig sim;
        sim.base.dga = c.config;
        sim.base.bot_count = 96;
        sim.base.server_count = 6;
        sim.base.seed = 1500 + static_cast<std::uint64_t>(trial) * 43;
        sim.base.record_raw = false;
        sim.base.ttl.negative = minutes(10);
        sim.regional_count = 2;
        sim.regional_ttl.negative = hours(2);
        auto pool_model = dga::make_pool_model(sim.base.dga);
        const auto result = botnet::simulate_tiered(sim, *pool_model);

        core::BotMeterConfig meter_config;
        meter_config.dga = c.config;
        meter_config.ttl.negative =
            correct_ttl ? sim.regional_ttl.negative : sim.base.ttl.negative;
        core::BotMeter meter(meter_config);
        meter.prepare_epochs(0, 1);
        const auto report = meter.analyze(result.observable, 2);
        for (std::size_t r = 0; r < 2; ++r) {
          errors.push_back(absolute_relative_error(
              report.servers[r].population,
              result.truth[0].active_per_server[r]));
        }
      }
      print_row(c.label,
                std::string(correct_ttl ? "regional-ttl" : "local-ttl"),
                "N=96", summarize_quartiles(errors));
    }
  }
  return 0;
}
