// Figure 6(c): estimation accuracy as a function of the negative-cache TTL
// in {20, 40, 80, 160, 320} minutes, N = 128.
//
// Expected shapes (§V-A): M_T suffers as the TTL grows (more lookups
// masked); M_P is less sensitive because it models the masking explicitly;
// M_B's accuracy is essentially flat — its coverage statistic ignores
// caching, and its saturation refinement models the TTL exactly.
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 15);
  const std::vector<int> ttl_minutes{20, 40, 80, 160, 320};
  std::vector<std::string> xs;
  for (int m : ttl_minutes) xs.push_back(std::to_string(m) + "min");

  run_fig6_sweep(
      "Figure 6(c): ARE vs negative-cache TTL, N=128", xs, trials,
      [&](const dga::DgaConfig& config, std::size_t xi, std::uint64_t seed) {
        Scenario scenario;
        scenario.sim.dga = config;
        scenario.sim.bot_count = kDefaultPopulation;
        scenario.sim.ttl.negative = minutes(ttl_minutes[xi]);
        scenario.sim.seed = seed * 3271 + static_cast<std::uint64_t>(xi);
        scenario.sim.record_raw = false;
        return scenario;
      });
  return 0;
}
