// Ablation: estimation under mid-epoch C2 takedown (§I dynamics).
//
// When the registered domains are sinkholed partway through the epoch, bots
// querying them afterwards receive NXDOMAIN and keep rolling through their
// barrels. That stretches runs past arc boundaries (inflating the Bernoulli
// model's coverage picture for A_R) and lengthens the visible trains of A_U.
// This bench quantifies how gracefully each recommended estimator degrades
// as the takedown happens earlier and earlier in the day.
#include "support/experiment.hpp"
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 9);
  const estimators::ModelLibrary library;

  struct Case {
    const char* label;
    dga::DgaConfig config;
    const char* estimator;
  };
  const std::vector<Case> cases{
      {"A_R", dga::newgoz_config(), "bernoulli"},
      {"A_R", dga::newgoz_config(), "timing"},
      {"A_U", dga::murofet_config(), "poisson"},
  };

  print_header(
      "Takedown ablation: ARE vs C2-takedown point (fraction of epoch), "
      "N=64");
  for (const Case& c : cases) {
    for (double fraction : {1.0, 0.75, 0.5, 0.25}) {
      std::vector<double> errors;
      for (int trial = 0; trial < trials; ++trial) {
        Scenario scenario;
        scenario.sim.dga = c.config;
        scenario.sim.bot_count = 64;
        scenario.sim.takedown_after_fraction = fraction;
        scenario.sim.seed = 1300 + static_cast<std::uint64_t>(trial) * 41;
        scenario.sim.record_raw = false;
        const ScenarioRun run(scenario);
        errors.push_back(scenario_are(library.get(c.estimator), run));
      }
      char label[24];
      std::snprintf(label, sizeof(label), "down@%.2f", fraction);
      print_row(c.label, c.estimator, label, summarize_quartiles(errors));
    }
  }
  return 0;
}
