// Figure 6(a): estimation accuracy as a function of the DGA-bot population
// N in {16, 32, 64, 128, 256}, default parameters otherwise.
//
// Expected shapes (§V-A): error bars shrink with N for A_S/A_R; M_T loses
// accuracy on A_U as N grows (cache collisions mask whole activations);
// M_P and M_B outperform M_T on their models.
#include "support/fig6.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;
  using namespace botmeter::bench;

  const int trials = trials_from_args(argc, argv, 15);
  const std::vector<std::uint32_t> populations{16, 32, 64, 128, 256};
  std::vector<std::string> xs;
  for (auto n : populations) xs.push_back("N=" + std::to_string(n));

  run_fig6_sweep(
      "Figure 6(a): ARE vs DGA-bot population N", xs, trials,
      [&](const dga::DgaConfig& config, std::size_t xi, std::uint64_t seed) {
        Scenario scenario;
        scenario.sim.dga = config;
        scenario.sim.bot_count = populations[xi];
        scenario.sim.seed = seed * 7919 + populations[xi];
        scenario.sim.record_raw = false;
        return scenario;
      });
  return 0;
}
