// bench_cluster_throughput — multi-border cluster scaling characterisation.
//
// Simulates one union border feed, serialises it once in the binary columnar
// codec, pre-splits it into per-vantage sub-streams with trace::split_blocks
// (the multi-border deployment shape: one capture per border), then measures
// ingest throughput of cluster::ClusterRuntime at 1 / 2 / 4 / 8 shards with
// one producer thread per shard driving its ShardFeed through the zero-copy
// block path. Best-of-3 per shard count.
//
// Three guards:
//   - byte identity (always enforced): every shard count's final
//     landscape_to_json document must equal the single StreamEngine's over
//     the union feed — sharding is a throughput knob, never a result knob;
//   - scaling floor (enforced only with >= 8 hardware threads): 8 shards
//     must sustain at least kScalingFloor x the 1-shard throughput. On
//     smaller hosts the producers and shard threads time-share cores, so the
//     measured ratio is scheduler behaviour, not cluster behaviour — the
//     numbers are still reported;
//   - instrumentation overhead (enforced only with >= 8 hardware threads):
//     a 4-shard run with the full observability layer attached (LagTracker
//     + EventJournal + TraceSession) must sustain at least kOverheadFloor x
//     the plain 4-shard throughput, and its report must still be
//     byte-identical — "provably free" as a regression gate, not a slogan.
//
// The timed window covers decode + scatter + queue + shard-engine ingest:
// producers join, then the clock stops when every shard's applied-tuple
// mirror reaches the expected total (the queues are drained). Lateness is
// stretched past the horizon so epoch closes (estimator work, identical at
// every shard count) run inside the untimed finish(), exactly as
// bench_stream_throughput times its codec lanes.
//
// A memory lane mirrors bench_stream_throughput's memory guard at cluster
// scale: the frozen large-fleet workload through 4 shards, exact vs
// --compact-state, lateness stretched past the horizon. The summed per-shard
// open-epoch byte high-water marks must drop by >= kMemoryReductionFloor x
// with the per-server absolute relative error inside kMemoryAreLimit; the
// process peak RSS lands at the JSON root as "peak_rss_bytes".
//
// Results go to stdout as a table and to BENCH_cluster.json (schema
// botmeter.bench_cluster.v1); pass an output path as argv[1] to redirect.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/event_journal.hpp"
#include "obs/lag_tracker.hpp"
#include "obs/trace.hpp"
#include "stream/stream_engine.hpp"
#include "support/rss.hpp"
#include "trace/block.hpp"
#include "trace/split.hpp"

namespace {

using namespace botmeter;

constexpr const char* kFamily = "Murofet";
constexpr std::uint32_t kBots = 256;
constexpr std::size_t kServers = 8;
constexpr std::int64_t kEpochs = 4;
constexpr int kReps = 3;
/// 8 shards must beat 1 shard by at least this factor — enforced only when
/// the host has >= 8 hardware threads (see header comment).
constexpr double kScalingFloor = 3.0;
/// The fully instrumented 4-shard lane must keep at least this fraction of
/// the plain 4-shard throughput (< 2% overhead) — same enforcement gate.
constexpr double kOverheadFloor = 0.98;
/// Shard count for the instrumentation-overhead lane.
constexpr std::size_t kOverheadShards = 4;

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  std::size_t shards = 0;
  std::size_t tuples = 0;
  double best_ms = std::numeric_limits<double>::infinity();
  double tuples_per_sec = 0.0;
  double speedup_vs_one = 0.0;
  std::size_t peak_open_bytes = 0;  // summed shard high-water marks
  bool report_identical = false;
};

/// Cluster memory lane (see header comment): frozen large-fleet workload,
/// exact vs compact, open-epoch byte high-water marks summed across shards.
struct MemoryGuard {
  std::size_t tuples = 0;
  std::size_t shards = 0;
  std::size_t exact_peak_bytes = 0;
  std::size_t compact_peak_bytes = 0;
  double reduction = 0.0;
  std::uint64_t compact_spills = 0;
  std::size_t servers = 0;
  std::size_t approximate_servers = 0;
  double are = 0.0;
  bool pass = false;
};

constexpr double kMemoryReductionFloor = 10.0;
constexpr double kMemoryAreLimit = 0.25;
constexpr std::size_t kMemoryShards = 4;
constexpr std::uint32_t kMemoryBots = 1024;
constexpr std::size_t kMemoryServers = 8;
constexpr std::int64_t kMemoryEpochs = 6;
constexpr std::size_t kMemorySpillThreshold = 512;
constexpr std::uint32_t kMemoryKmvK = 256;

MemoryGuard run_memory_guard() {
  // Same frozen workload as bench_stream_throughput's memory guard, spread
  // over 8 servers so the 4-shard router has work for every shard.
  const dga::DgaConfig family = dga::family_config("newGoZ");
  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = kMemoryBots;
  sim.server_count = kMemoryServers;
  sim.first_epoch = 0;
  sim.epoch_count = kMemoryEpochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);

  struct Arm {
    core::LandscapeReport report;
    std::size_t peak_bytes = 0;
    std::uint64_t spills = 0;
  };
  const auto run_arm = [&](bool compact) {
    cluster::ClusterConfig config;
    config.meter.dga = family;
    config.first_epoch = 0;
    config.epoch_count = kMemoryEpochs;
    config.router = cluster::ShardRouter::by_range(kMemoryServers, kMemoryShards);
    // Hold every epoch open until finish() — the peak then covers the whole
    // horizon's state, the case the compact path exists for.
    config.allowed_lateness =
        Duration{family.epoch.millis() * (kMemoryEpochs + 2)};
    if (compact) {
      config.compact_state = true;
      config.compact_spill_threshold = kMemorySpillThreshold;
      config.compact.kmv_k = kMemoryKmvK;
    }
    cluster::ClusterRuntime runtime(std::move(config));
    runtime.ingest(result.observable);
    Arm arm;
    arm.report = runtime.finish();
    for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
      const cluster::ShardStats stats = runtime.shard_stats(i);
      arm.peak_bytes += stats.peak_open_buffer_bytes;
      arm.spills += stats.compact_spills;
    }
    return arm;
  };

  const Arm exact = run_arm(false);
  const Arm compact = run_arm(true);

  MemoryGuard guard;
  guard.tuples = result.observable.size();
  guard.shards = kMemoryShards;
  guard.exact_peak_bytes = exact.peak_bytes;
  guard.compact_peak_bytes = compact.peak_bytes;
  guard.compact_spills = compact.spills;
  guard.reduction = compact.peak_bytes > 0
                        ? static_cast<double>(exact.peak_bytes) /
                              static_cast<double>(compact.peak_bytes)
                        : 0.0;
  guard.servers = exact.report.servers.size();
  std::size_t compared = 0;
  for (std::size_t i = 0; i < exact.report.servers.size(); ++i) {
    const double e = exact.report.servers[i].population;
    const double c = compact.report.servers[i].population;
    if (e > 0.0) {
      guard.are += std::abs(c - e) / e;
      ++compared;
    }
    if (compact.report.servers[i].approximate) ++guard.approximate_servers;
  }
  if (compared > 0) guard.are /= static_cast<double>(compared);
  guard.pass = guard.reduction >= kMemoryReductionFloor &&
               guard.compact_spills > 0 && guard.are <= kMemoryAreLimit;
  return guard;
}

json::Value to_json(const MemoryGuard& g) {
  using json::Value;
  json::Object o;
  o.emplace("tuples", Value(static_cast<double>(g.tuples)));
  o.emplace("shards", Value(static_cast<double>(g.shards)));
  o.emplace("exact_peak_open_buffer_bytes",
            Value(static_cast<double>(g.exact_peak_bytes)));
  o.emplace("compact_peak_open_buffer_bytes",
            Value(static_cast<double>(g.compact_peak_bytes)));
  o.emplace("reduction", Value(g.reduction));
  o.emplace("reduction_floor", Value(kMemoryReductionFloor));
  o.emplace("compact_spills", Value(static_cast<double>(g.compact_spills)));
  o.emplace("compact_spill_threshold",
            Value(static_cast<double>(kMemorySpillThreshold)));
  o.emplace("kmv_k", Value(static_cast<double>(kMemoryKmvK)));
  o.emplace("approximate_servers",
            Value(static_cast<double>(g.approximate_servers)));
  o.emplace("are", Value(g.are));
  o.emplace("are_limit", Value(kMemoryAreLimit));
  o.emplace("pass", Value(g.pass));
  return Value(std::move(o));
}

json::Value to_json(const Measurement& m) {
  using json::Value;
  json::Object o;
  o.emplace("shards", Value(static_cast<double>(m.shards)));
  o.emplace("tuples", Value(static_cast<double>(m.tuples)));
  o.emplace("ingest_ms", Value(m.best_ms));
  o.emplace("tuples_per_sec", Value(m.tuples_per_sec));
  o.emplace("speedup_vs_one_shard", Value(m.speedup_vs_one));
  o.emplace("peak_open_buffer_bytes",
            Value(static_cast<double>(m.peak_open_bytes)));
  o.emplace("report_identical", Value(m.report_identical));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_cluster.json";
  const dga::DgaConfig family = dga::family_config(kFamily);

  botnet::SimulationConfig sim;
  sim.dga = family;
  sim.bot_count = kBots;
  sim.server_count = kServers;
  sim.first_epoch = 0;
  sim.epoch_count = kEpochs;
  sim.seed = 7;
  sim.record_raw = false;
  const botnet::SimulationResult result = botnet::simulate(sim);
  const std::size_t tuples = result.observable.size();

  // Epoch closes run inside the untimed finish() at every shard count.
  const Duration lateness{family.epoch.millis() * (kEpochs + 2)};

  // Single-engine reference over the union feed: the byte-identity anchor.
  std::string reference_report;
  {
    stream::StreamEngineConfig config;
    config.meter.dga = family;
    config.first_epoch = 0;
    config.epoch_count = kEpochs;
    config.server_count = kServers;
    config.allowed_lateness = lateness;
    stream::StreamEngine engine(config);
    engine.ingest(result.observable);
    reference_report = json::write(core::landscape_to_json(engine.finish()));
  }

  std::ostringstream union_os;
  trace::write_blocks(union_os, result.observable);
  const std::string union_bytes = union_os.str();

  std::printf("cluster scaling: %s, %u bots, %zu servers, %lld epochs, "
              "%zu tuples (%u hardware threads)\n",
              kFamily, kBots, kServers, static_cast<long long>(kEpochs),
              tuples, std::thread::hardware_concurrency());
  std::printf("%-7s %9s %10s %12s %8s %6s\n", "shards", "tuples", "best_ms",
              "tuples/s", "speedup", "bytes");

  // One lane: best-of-kReps ingest of the pre-split feed at `shard_count`
  // shards, optionally with the full observability layer attached. The timed
  // window is identical either way — instrumentation must pay for itself
  // inside it.
  const auto measure = [&](std::size_t shard_count, bool instrumented) {
    const cluster::ShardRouter router =
        cluster::ShardRouter::by_range(kServers, shard_count);

    // Pre-split the union feed into per-vantage binary sub-streams — the
    // deployment shape (one collector per border), and what lets each
    // producer decode its own stream without a fan-out bottleneck.
    std::vector<std::ostringstream> sub_os(shard_count);
    std::vector<std::ostream*> outs;
    for (std::ostringstream& os : sub_os) outs.push_back(&os);
    {
      std::istringstream is(union_bytes);
      (void)trace::split_blocks(
          is, outs, [&router](std::uint32_t s) { return router.shard_of(s); });
    }
    std::vector<std::string> sub_bytes;
    sub_bytes.reserve(shard_count);
    for (std::ostringstream& os : sub_os) sub_bytes.push_back(os.str());

    Measurement m;
    m.shards = shard_count;
    m.tuples = tuples;
    for (int rep = 0; rep < kReps; ++rep) {
      std::optional<obs::LagTracker> lag;
      std::optional<obs::EventJournal> journal;
      std::optional<obs::TraceSession> trace_session;
      cluster::ClusterConfig config;
      config.meter.dga = family;
      config.first_epoch = 0;
      config.epoch_count = kEpochs;
      config.router = router;
      config.allowed_lateness = lateness;
      if (instrumented) {
        lag.emplace(shard_count);
        journal.emplace();
        trace_session.emplace();
        config.lag = &*lag;
        config.journal = &*journal;
        config.meter.trace = &*trace_session;
      }
      cluster::ClusterRuntime runtime(std::move(config));

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> producers;
      producers.reserve(shard_count);
      for (std::size_t i = 0; i < shard_count; ++i) {
        producers.emplace_back([&runtime, &sub_bytes, i] {
          cluster::ShardFeed feed = runtime.shard_feed(i);
          std::istringstream is(sub_bytes[i]);
          (void)trace::for_each_block(
              is, [&feed](const dns::LookupColumns& block,
                          std::span<const std::string_view> table) {
                feed.ingest_block(block, table);
              });
          feed.flush();
        });
      }
      for (std::thread& producer : producers) producer.join();
      // Clock stops when the queues are drained: every shard's applied-tuple
      // mirror has reached the sub-stream totals.
      const auto drained = [&runtime, tuples] {
        std::uint64_t applied = 0;
        for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
          applied += runtime.shard_stats(i).ingested;
        }
        return applied == tuples;
      };
      while (!drained()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      m.best_ms = std::min(m.best_ms, wall_ms_since(start));

      const std::string report =
          json::write(core::landscape_to_json(runtime.finish()));
      std::size_t peak_sum = 0;
      for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
        peak_sum += runtime.shard_stats(i).peak_open_buffer_bytes;
      }
      m.peak_open_bytes = std::max(m.peak_open_bytes, peak_sum);
      m.report_identical = report == reference_report;
      if (!m.report_identical) break;
    }
    m.tuples_per_sec =
        m.best_ms > 0.0 ? static_cast<double>(tuples) / (m.best_ms / 1e3) : 0.0;
    return m;
  };

  json::Array results;
  double one_shard_tps = 0.0;
  double four_shard_tps = 0.0;
  double eight_shard_tps = 0.0;
  bool all_identical = true;
  for (const std::size_t shard_count : {1u, 2u, 4u, 8u}) {
    Measurement m = measure(shard_count, /*instrumented=*/false);
    all_identical = all_identical && m.report_identical;
    if (shard_count == 1) one_shard_tps = m.tuples_per_sec;
    if (shard_count == 4) four_shard_tps = m.tuples_per_sec;
    if (shard_count == 8) eight_shard_tps = m.tuples_per_sec;
    m.speedup_vs_one =
        one_shard_tps > 0.0 ? m.tuples_per_sec / one_shard_tps : 0.0;
    std::printf("%-7zu %9zu %10.1f %12.0f %7.2fx %6s\n", m.shards, m.tuples,
                m.best_ms, m.tuples_per_sec, m.speedup_vs_one,
                m.report_identical ? "same" : "DIFF");
    results.push_back(to_json(m));
  }

  // Instrumentation-overhead lane: the same 4-shard configuration with the
  // full observability layer live (lag histograms + flight recorder + flow
  // tracing), against the plain 4-shard best above.
  const Measurement instr = measure(kOverheadShards, /*instrumented=*/true);
  all_identical = all_identical && instr.report_identical;
  const double overhead_ratio =
      four_shard_tps > 0.0 ? instr.tuples_per_sec / four_shard_tps : 0.0;
  std::printf("%-7s %9zu %10.1f %12.0f %7s %6s\n", "4+obs", instr.tuples,
              instr.best_ms, instr.tuples_per_sec, "-",
              instr.report_identical ? "same" : "DIFF");

  const double scaling =
      one_shard_tps > 0.0 ? eight_shard_tps / one_shard_tps : 0.0;
  const bool enforced = std::thread::hardware_concurrency() >= 8;
  const bool scaling_pass = scaling >= kScalingFloor;
  std::printf(
      "scaling: 8 shards at %.2fx the 1-shard throughput (floor %.1fx): %s\n",
      scaling, kScalingFloor,
      scaling_pass ? "pass"
      : enforced   ? "FAIL"
                   : "below floor (not enforced: fewer than 8 hardware "
                     "threads — producers and shards time-share cores)");
  const bool overhead_pass = overhead_ratio >= kOverheadFloor;
  std::printf(
      "instrumentation: lag+journal+trace at %.3fx the plain %zu-shard "
      "throughput (floor %.2fx): %s\n",
      overhead_ratio, kOverheadShards, kOverheadFloor,
      overhead_pass ? "pass"
      : enforced    ? "FAIL"
                    : "below floor (not enforced: fewer than 8 hardware "
                      "threads — timing noise dominates on shared cores)");

  const MemoryGuard memory_guard = run_memory_guard();
  std::printf(
      "memory lane: %zu shards, exact peak %zu B, compact peak %zu B -> "
      "%.1fx reduction (floor %.0fx), %llu spills, ARE %.4f (limit %.2f), "
      "%zu/%zu servers sketch-flagged: %s\n",
      memory_guard.shards, memory_guard.exact_peak_bytes,
      memory_guard.compact_peak_bytes, memory_guard.reduction,
      kMemoryReductionFloor,
      static_cast<unsigned long long>(memory_guard.compact_spills),
      memory_guard.are, kMemoryAreLimit, memory_guard.approximate_servers,
      memory_guard.servers, memory_guard.pass ? "pass" : "FAIL");

  json::Object root;
  root.emplace("schema", json::Value(std::string("botmeter.bench_cluster.v1")));
  root.emplace("family", json::Value(std::string(kFamily)));
  root.emplace("tuples", json::Value(static_cast<double>(tuples)));
  root.emplace("hardware_threads",
               json::Value(static_cast<double>(
                   std::thread::hardware_concurrency())));
  root.emplace("results", json::Value(std::move(results)));
  root.emplace("scaling_8_vs_1", json::Value(scaling));
  root.emplace("scaling_floor", json::Value(kScalingFloor));
  root.emplace("scaling_enforced", json::Value(enforced));
  root.emplace("scaling_pass", json::Value(scaling_pass));
  root.emplace("reports_identical", json::Value(all_identical));
  {
    json::Object o;
    o.emplace("shards", json::Value(static_cast<double>(kOverheadShards)));
    o.emplace("plain_tuples_per_sec", json::Value(four_shard_tps));
    o.emplace("instrumented_tuples_per_sec", json::Value(instr.tuples_per_sec));
    o.emplace("instrumented_ingest_ms", json::Value(instr.best_ms));
    o.emplace("ratio", json::Value(overhead_ratio));
    o.emplace("floor", json::Value(kOverheadFloor));
    o.emplace("enforced", json::Value(enforced));
    o.emplace("pass", json::Value(overhead_pass));
    o.emplace("report_identical", json::Value(instr.report_identical));
    root.emplace("instrumentation", json::Value(std::move(o)));
  }
  root.emplace("memory_guard", to_json(memory_guard));
  root.emplace("peak_rss_bytes",
               json::Value(static_cast<double>(bench::peak_rss_bytes())));
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json::write_pretty(json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a sharded run produced a different landscape than the "
                 "single engine on the union feed\n");
    return 1;
  }
  if (enforced && !scaling_pass) {
    std::fprintf(stderr,
                 "FAIL: 8 shards sustained only %.2fx the 1-shard throughput "
                 "(floor %.1fx)\n",
                 scaling, kScalingFloor);
    return 1;
  }
  if (enforced && !overhead_pass) {
    std::fprintf(stderr,
                 "FAIL: instrumentation kept only %.3fx the plain %zu-shard "
                 "throughput (floor %.2fx — the observability layer must "
                 "stay under 2%% overhead)\n",
                 overhead_ratio, kOverheadShards, kOverheadFloor);
    return 1;
  }
  if (!memory_guard.pass) {
    std::fprintf(stderr,
                 "FAIL: compact state cut summed open-epoch bytes only %.1fx "
                 "(floor %.0fx) with ARE %.4f (limit %.2f) and %llu spills\n",
                 memory_guard.reduction, kMemoryReductionFloor,
                 memory_guard.are, kMemoryAreLimit,
                 static_cast<unsigned long long>(memory_guard.compact_spills));
    return 1;
  }
  return 0;
}
