// End-to-end integration: simulator -> hierarchical DNS -> vantage stream ->
// BotMeter pipeline, across the taxonomy's barrel models and the enterprise
// trace generator.
#include <gtest/gtest.h>

#include "botnet/simulator.hpp"
#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "trace/dataset.hpp"
#include "trace/enterprise.hpp"
#include "trace/io.hpp"

#include <sstream>

namespace botmeter {
namespace {

botnet::SimulationConfig sim_for(const dga::DgaConfig& dga_config,
                                 std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = dga_config;
  config.bot_count = bots;
  config.seed = seed;
  config.record_raw = false;
  return config;
}

TEST(EndToEndTest, RecommendedEstimatorsRecoverPopulations) {
  struct Case {
    dga::DgaConfig config;
    double tolerance;
  };
  // Thin the Conficker pool so the integration suite stays fast; the barrel
  // statistics are unchanged in kind.
  dga::DgaConfig thin_conficker = dga::conficker_c_config();
  thin_conficker.nxd_count = 9995;
  thin_conficker.barrel_size = 300;

  const std::vector<Case> cases{
      {dga::murofet_config(), 0.45},  // A_U via M_P
      {thin_conficker, 0.35},         // A_S via M_T
      {dga::newgoz_config(), 0.30},   // A_R via M_B
      {dga::necurs_config(), 0.45},   // A_P via M_T
  };
  for (const Case& c : cases) {
    RunningStats errors;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto result = botnet::simulate(sim_for(c.config, 64, seed));
      core::BotMeterConfig meter_config;
      meter_config.dga = c.config;
      core::BotMeter meter(meter_config);
      meter.prepare_epochs(0, 1);
      const auto report = meter.analyze(result.observable, 1);
      errors.add(absolute_relative_error(report.total_population(), 64.0));
    }
    EXPECT_LT(errors.mean(), c.tolerance) << c.config.name;
  }
}

TEST(EndToEndTest, SerializedTraceReanalyzesIdentically) {
  const auto result = botnet::simulate(sim_for(dga::newgoz_config(), 32, 9));

  core::BotMeterConfig meter_config;
  meter_config.dga = dga::newgoz_config();
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(0, 1);
  const double direct = meter.analyze(result.observable, 1).total_population();

  // Round-trip the observable dataset through the text format.
  std::stringstream ss;
  trace::write_observable(ss, result.observable);
  const auto reloaded = trace::read_observable(ss);
  const double replayed = meter.analyze(reloaded, 1).total_population();
  EXPECT_DOUBLE_EQ(direct, replayed);
}

TEST(EndToEndTest, SlidingWindowFamilyThroughPipeline) {
  // Ranbyus: sliding-window pool, uniform barrel; the matcher must attribute
  // window-shared domains to the right epoch and M_T must run.
  botnet::SimulationConfig sim = sim_for(dga::ranbyus_config(), 24, 10);
  sim.first_epoch = 40;  // away from day zero so the window reaches back
  const auto result = botnet::simulate(sim);

  core::BotMeterConfig meter_config;
  meter_config.dga = dga::ranbyus_config();
  meter_config.estimator = "timing";
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(40, 1);
  const auto report = meter.analyze(result.observable, 1);
  EXPECT_GT(report.servers[0].matched_lookups, 0u);
  EXPECT_GT(report.total_population(), 0.0);
}

TEST(EndToEndTest, MultipleMixtureFamilyThroughPipeline) {
  dga::DgaConfig pykspa = dga::pykspa_config();
  // Trim the decoy pool so the test runs quickly; keep the structure.
  pykspa.noise_pool_size = 2000;
  pykspa.barrel_size = 2200;
  const auto result = botnet::simulate(sim_for(pykspa, 12, 11));

  core::BotMeterConfig meter_config;
  meter_config.dga = pykspa;
  meter_config.estimator = "timing";
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(0, 1);
  const auto report = meter.analyze(result.observable, 1);
  EXPECT_GT(report.servers[0].matched_lookups, 0u);
  EXPECT_GT(report.total_population(), 0.0);
}

TEST(EndToEndTest, EnterpriseDayAnalyzedPerFamily) {
  trace::EnterpriseConfig config;
  trace::InfectedPopulation newgoz;
  newgoz.dga = dga::newgoz_config();
  newgoz.infected_devices = 30;
  newgoz.mean_activity = 0.6;
  config.populations = {newgoz};
  config.benign_clients = 50;
  config.seed = 2015;

  trace::EnterpriseSimulator sim(config);
  core::BotMeterConfig meter_config;
  meter_config.dga = dga::newgoz_config();
  core::BotMeter meter(meter_config);

  RunningStats errors;
  for (int d = 0; d < 4; ++d) {
    const auto day = sim.step();
    meter.prepare_epochs(day.day, 1);
    const auto report = meter.analyze(day.observable, 1);
    const double truth = day.active_bots[0];
    if (truth > 0) {
      errors.add(absolute_relative_error(
          report.servers[0].per_epoch.back().second, truth));
    }
  }
  EXPECT_LT(errors.mean(), 0.35);
}

TEST(EndToEndTest, DynamicActivationStillRecoverable) {
  botnet::SimulationConfig sim = sim_for(dga::newgoz_config(), 64, 12);
  sim.activation.model = botnet::RateModel::kDynamic;
  sim.activation.sigma = 1.5;
  auto pool_model = dga::make_pool_model(sim.dga);
  const auto result = botnet::simulate(sim, *pool_model);

  core::BotMeterConfig meter_config;
  meter_config.dga = sim.dga;
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(0, 1);
  const auto report = meter.analyze(result.observable, 1);
  // Ground truth is the realised active count, not the configured 64.
  const double truth = result.truth[0].total_active;
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(absolute_relative_error(report.total_population(), truth), 0.35);
}

}  // namespace
}  // namespace botmeter
