// Parameterized full-pipeline sweep over every registered DGA family:
// simulate -> hierarchical caching -> vantage stream -> BotMeter with the
// recommended estimator. Catches regressions where a family's pool/barrel
// combination breaks any stage of the pipeline.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "botnet/simulator.hpp"
#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"

namespace botmeter {
namespace {

class FamilyPipelineSweep : public ::testing::TestWithParam<std::string> {
 protected:
  /// Trim the heaviest pools so the sweep stays fast without changing the
  /// family's structural character.
  static dga::DgaConfig trimmed_config(const std::string& name) {
    dga::DgaConfig config = dga::family_config(name);
    if (config.name == "Conficker.C") {
      config.nxd_count = 4995;
      config.barrel_size = 250;
    } else if (config.name == "Pykspa") {
      config.noise_pool_size = 2000;
      config.barrel_size = 2200;
    }
    return config;
  }
};

TEST_P(FamilyPipelineSweep, RecommendedEstimatorProducesSaneLandscape) {
  const dga::DgaConfig config = trimmed_config(GetParam());

  botnet::SimulationConfig sim;
  sim.dga = config;
  sim.bot_count = 24;
  sim.seed = 1234;
  sim.record_raw = false;
  sim.first_epoch =
      config.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0;
  const auto result = botnet::simulate(sim);
  ASSERT_FALSE(result.observable.empty()) << config.name;

  core::BotMeterConfig meter_config;
  meter_config.dga = config;
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(sim.first_epoch, 1);
  const auto report = meter.analyze(result.observable, 1);

  EXPECT_GT(report.servers[0].matched_lookups, 0u) << config.name;
  const double estimate = report.total_population();
  EXPECT_GT(estimate, 0.0) << config.name;
  // Loose envelope: every family's recommended model must land within a
  // factor of ~2.5 of the truth on clean traffic.
  EXPECT_LT(absolute_relative_error(estimate, 24.0), 1.5) << config.name;
}

TEST_P(FamilyPipelineSweep, TrafficDeterministicPerFamily) {
  const dga::DgaConfig config = trimmed_config(GetParam());
  botnet::SimulationConfig sim;
  sim.dga = config;
  sim.bot_count = 6;
  sim.seed = 99;
  sim.record_raw = false;
  sim.first_epoch =
      config.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0;
  const auto a = botnet::simulate(sim);
  const auto b = botnet::simulate(sim);
  EXPECT_EQ(a.observable, b.observable) << config.name;
}

std::string family_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyPipelineSweep,
                         ::testing::Values("Murofet", "Conficker.C", "newGoZ",
                                           "Necurs", "Ranbyus", "PushDo",
                                           "Pykspa", "Ramnit", "Qakbot",
                                           "Srizbi", "Torpig"),
                         family_name);

}  // namespace
}  // namespace botmeter
