// Bounded-memory streaming (DESIGN.md §13): the compact-state spill path of
// stream::StreamEngine. Unspilled cells must stay byte-identical to the
// exact engine, spilled state must checkpoint/restore bit-identically, and
// the byte accounting must show the bound the sketches buy.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::stream {
namespace {

constexpr std::size_t kSmallThreshold = 64;

StreamEngineConfig base_config(std::int64_t epochs, std::size_t servers) {
  StreamEngineConfig config;
  config.meter.dga = dga::newgoz_config();
  config.first_epoch = 0;
  config.epoch_count = epochs;
  config.server_count = servers;
  return config;
}

StreamEngineConfig compact_config(std::int64_t epochs, std::size_t servers,
                                  std::size_t threshold = kSmallThreshold,
                                  std::uint32_t kmv_k = 64) {
  StreamEngineConfig config = base_config(epochs, servers);
  config.compact_state = true;
  config.compact_spill_threshold = threshold;
  config.compact.kmv_k = kmv_k;
  return config;
}

std::vector<dns::ForwardedLookup> simulate_stream(std::uint32_t bots,
                                                  std::int64_t epochs,
                                                  std::size_t servers,
                                                  std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = bots;
  sim.server_count = servers;
  sim.epoch_count = epochs;
  sim.seed = seed;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

TEST(CompactStateTest, UnspilledCellsAreByteIdenticalToExactEngine) {
  // A threshold no bucket reaches keeps every cell exact: the compact
  // engine's landscape must serialize to the same bytes as the exact one,
  // with nothing flagged approximate and zero spills.
  const auto stream = simulate_stream(16, 2, 2, 61);
  StreamEngine exact(base_config(2, 2));
  exact.ingest(stream);
  const std::string exact_json = json::write(
      core::landscape_to_json(exact.finish()));

  StreamEngine compact(compact_config(2, 2, /*threshold=*/1u << 30));
  compact.ingest(stream);
  const core::LandscapeReport report = compact.finish();
  EXPECT_EQ(json::write(core::landscape_to_json(report)), exact_json);
  EXPECT_EQ(compact.compact_spills(), 0u);
  for (const core::ServerEstimate& s : report.servers) {
    EXPECT_FALSE(s.approximate);
  }
}

TEST(CompactStateTest, SpilledRunBoundsBytesAndFlagsEstimates) {
  const auto stream = simulate_stream(64, 2, 2, 63);

  StreamEngine exact(base_config(2, 2));
  exact.ingest(stream);
  (void)exact.finish();

  StreamEngine compact(compact_config(2, 2));
  compact.ingest(stream);
  const core::LandscapeReport report = compact.finish();

  EXPECT_GT(compact.compact_spills(), 0u);
  EXPECT_LT(compact.peak_open_buffer_bytes(), exact.peak_open_buffer_bytes());
  EXPECT_EQ(compact.open_buffer_bytes(), 0u);  // everything closed
  EXPECT_GE(compact.peak_open_buffer_bytes(), 1u);

  // Spilled cells saturate the small KMV, so their statistics are flagged
  // with a propagated error bound.
  bool any_flagged = false;
  for (const core::ServerEstimate& s : report.servers) {
    if (s.approximate) {
      any_flagged = true;
      EXPECT_GT(s.sketch_rse, 0.0);
    }
  }
  EXPECT_TRUE(any_flagged);
}

TEST(CompactStateTest, SpilledCheckpointRoundTripContinuesBitIdentically) {
  const auto stream = simulate_stream(64, 3, 2, 65);
  ASSERT_GT(stream.size(), 100u);

  StreamEngine reference(compact_config(3, 2));
  reference.ingest(stream);
  const core::LandscapeReport want = reference.finish();
  ASSERT_GT(reference.compact_spills(), 0u);

  // Checkpoint after 60% — far past the spill threshold, so serialized
  // sketch state (not just exact buffers) crosses the restart.
  const std::size_t split = (stream.size() * 3) / 5;
  std::string checkpoint_text;
  {
    StreamEngine first(compact_config(3, 2));
    first.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
    EXPECT_GT(first.compact_spills(), 0u);
    checkpoint_text = json::write(first.checkpoint());
    // Byte-stable through a parse/write cycle.
    EXPECT_EQ(json::write(json::parse(checkpoint_text)), checkpoint_text);
  }
  StreamEngine resumed(compact_config(3, 2));
  resumed.restore(json::parse(checkpoint_text));
  resumed.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  const core::LandscapeReport got = resumed.finish();

  EXPECT_EQ(json::write(core::landscape_to_json(got)),
            json::write(core::landscape_to_json(want)));
  EXPECT_EQ(resumed.ingested(), reference.ingested());
  EXPECT_EQ(resumed.compact_spills(), reference.compact_spills());
}

TEST(CompactStateTest, ExactCheckpointRestoresIntoCompactEngineAndSpills) {
  // Upgrading a monitor to bounded memory mid-horizon: an exact checkpoint
  // restores into a compact engine, whose over-threshold buffers spill on
  // load; the continued run equals a compact run over the whole stream.
  const auto stream = simulate_stream(64, 2, 2, 67);
  const std::size_t split = stream.size() / 2;

  StreamEngine whole(compact_config(2, 2));
  whole.ingest(stream);
  const core::LandscapeReport want = whole.finish();

  std::string checkpoint_text;
  {
    StreamEngine exact(base_config(2, 2));
    exact.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
    checkpoint_text = json::write(exact.checkpoint());
  }
  StreamEngine upgraded(compact_config(2, 2));
  upgraded.restore(json::parse(checkpoint_text));
  EXPECT_GT(upgraded.compact_spills(), 0u);  // spilled on load
  upgraded.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  EXPECT_EQ(json::write(core::landscape_to_json(upgraded.finish())),
            json::write(core::landscape_to_json(want)));
}

TEST(CompactStateTest, CompactCheckpointRejectedByExactEngine) {
  const auto stream = simulate_stream(64, 2, 2, 69);
  StreamEngine compact(compact_config(2, 2));
  compact.ingest(
      std::span<const dns::ForwardedLookup>(stream).first(stream.size() / 2));
  ASSERT_GT(compact.compact_spills(), 0u);
  const json::Value checkpoint = compact.checkpoint();

  StreamEngine exact(base_config(2, 2));
  EXPECT_THROW(exact.restore(checkpoint), DataError);
}

TEST(CompactStateTest, ConstructorRejectsEstimatorsWithoutCompactPath) {
  StreamEngineConfig config = compact_config(2, 2);
  config.meter.estimator = "timing";
  EXPECT_THROW(StreamEngine{config}, ConfigError);
}

TEST(CompactStateTest, OpenByteAccountingTracksSpills) {
  const auto stream = simulate_stream(64, 1, 1, 71);
  StreamEngine engine(compact_config(1, 1));
  std::size_t last_peak = 0;
  for (const dns::ForwardedLookup& lookup : stream) {
    engine.ingest(lookup);
    EXPECT_LE(engine.open_buffer_bytes(), engine.peak_open_buffer_bytes());
    EXPECT_GE(engine.peak_open_buffer_bytes(), last_peak);
    last_peak = engine.peak_open_buffer_bytes();
  }
  ASSERT_GT(engine.compact_spills(), 0u);
  // One spilled cell per (server, epoch): resident state is the constant
  // cell footprint, far below the spill threshold's worth of raw lookups.
  EXPECT_LT(engine.open_buffer_bytes(),
            kSmallThreshold * sizeof(detect::MatchedLookup) * 4);
  (void)engine.finish();
  EXPECT_EQ(engine.open_buffer_bytes(), 0u);
}

}  // namespace
}  // namespace botmeter::stream
