// Streaming-vs-batch equivalence and the online semantics of
// stream::StreamEngine: the end-of-horizon landscape must be bit-identical
// to core::BotMeter::analyze on the same stream — per family, per estimator,
// and for 1 or 8 worker threads — while memory stays bounded by the active
// epoch window.
#include "stream/stream_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "botnet/simulator.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"

namespace botmeter::stream {
namespace {

struct Scenario {
  dga::DgaConfig dga;
  std::uint32_t bots = 16;
  std::size_t servers = 2;
  std::int64_t first_epoch = 0;
  std::int64_t epochs = 2;
  std::uint64_t seed = 5;
  double miss_rate = 0.0;
  Duration granularity = milliseconds(100);
};

std::vector<dns::ForwardedLookup> simulate_stream(const Scenario& s) {
  botnet::SimulationConfig sim;
  sim.dga = s.dga;
  sim.bot_count = s.bots;
  sim.server_count = s.servers;
  sim.first_epoch = s.first_epoch;
  sim.epoch_count = s.epochs;
  sim.seed = s.seed;
  sim.timestamp_granularity = s.granularity;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

core::BotMeterConfig meter_config(const Scenario& s,
                                  const std::string& estimator) {
  core::BotMeterConfig config;
  config.dga = s.dga;
  config.estimator = estimator;
  config.detection_miss_rate = s.miss_rate;
  return config;
}

core::LandscapeReport batch_report(
    const Scenario& s, const std::string& estimator,
    std::span<const dns::ForwardedLookup> stream) {
  core::BotMeter meter(meter_config(s, estimator));
  meter.prepare_epochs(s.first_epoch, s.epochs);
  return meter.analyze(stream, s.servers);
}

StreamEngineConfig engine_config(const Scenario& s,
                                 const std::string& estimator,
                                 std::size_t threads) {
  StreamEngineConfig config;
  config.meter = meter_config(s, estimator);
  config.first_epoch = s.first_epoch;
  config.epoch_count = s.epochs;
  config.server_count = s.servers;
  config.worker_threads = threads;
  return config;
}

/// Bit-exact LandscapeReport comparison: every double compared with ==, not
/// a tolerance — the streaming path must produce the identical result.
void expect_bit_identical(const core::LandscapeReport& streamed,
                          const core::LandscapeReport& batch,
                          const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(streamed.estimator_name, batch.estimator_name);
  ASSERT_EQ(streamed.servers.size(), batch.servers.size());
  for (std::size_t i = 0; i < batch.servers.size(); ++i) {
    const core::ServerEstimate& a = streamed.servers[i];
    const core::ServerEstimate& b = batch.servers[i];
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.population, b.population);
    EXPECT_EQ(a.matched_lookups, b.matched_lookups);
    EXPECT_EQ(a.per_epoch, b.per_epoch);
    ASSERT_EQ(a.interval90.has_value(), b.interval90.has_value());
    if (a.interval90) {
      EXPECT_EQ(a.interval90->first, b.interval90->first);
      EXPECT_EQ(a.interval90->second, b.interval90->second);
    }
  }
}

dga::DgaConfig thin_conficker() {
  dga::DgaConfig config = dga::conficker_c_config();
  config.nxd_count = 9995;
  config.barrel_size = 300;
  return config;
}

TEST(StreamEquivalenceTest, FamiliesMatchBatchAcrossThreadCounts) {
  std::vector<Scenario> scenarios;
  scenarios.push_back({dga::newgoz_config(), 16, 3, 0, 2, 5});
  scenarios.push_back({dga::murofet_config(), 24, 2, 0, 2, 6});
  scenarios.push_back({thin_conficker(), 16, 2, 0, 2, 7});
  scenarios.push_back({dga::ranbyus_config(), 12, 2, 40, 2, 8});
  // Imperfect detection exercises window-sampling equality too.
  scenarios.push_back({dga::newgoz_config(), 16, 2, 0, 2, 9, 0.3});

  for (const Scenario& s : scenarios) {
    const auto stream = simulate_stream(s);
    ASSERT_FALSE(stream.empty()) << s.dga.name;
    const core::LandscapeReport batch = batch_report(s, "", stream);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      StreamEngine engine(engine_config(s, "", threads));
      engine.ingest(stream);
      const core::LandscapeReport streamed = engine.finish();
      EXPECT_EQ(engine.late_dropped(), 0u) << s.dga.name;
      expect_bit_identical(
          streamed, batch,
          s.dga.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(StreamEquivalenceTest, EveryApplicableEstimatorMatchesBatch) {
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 2, 11};
  const auto stream = simulate_stream(s);
  const estimators::ModelLibrary library;
  for (const estimators::Estimator* estimator : library.applicable(s.dga)) {
    const std::string name(estimator->name());
    const core::LandscapeReport batch = batch_report(s, name, stream);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      StreamEngine engine(engine_config(s, name, threads));
      engine.ingest(stream);
      expect_bit_identical(engine.finish(), batch,
                           name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(StreamEquivalenceTest, TupleAtATimeEqualsBatchIngest) {
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 2, 13};
  const auto stream = simulate_stream(s);
  StreamEngine batch_ingest(engine_config(s, "", 1));
  batch_ingest.ingest(stream);
  StreamEngine single(engine_config(s, "", 1));
  for (const dns::ForwardedLookup& lookup : stream) single.ingest(lookup);
  expect_bit_identical(single.finish(), batch_ingest.finish(),
                       "single-tuple vs span ingest");
}

TEST(StreamEquivalenceTest, OutOfOrderWithinGranularityTiesMatches) {
  // Quantised collectors deliver same-timestamp tuples in arbitrary order;
  // shuffling within each run of equal timestamps must not change anything.
  // A coarse 10-minute granularity guarantees plenty of ties.
  const Scenario s{dga::newgoz_config(), 24,          3, 0, 2, 17, 0.0,
                   minutes(10)};
  const auto stream = simulate_stream(s);
  const core::LandscapeReport batch = batch_report(s, "", stream);

  std::vector<dns::ForwardedLookup> shuffled = stream;
  std::mt19937 rng(42);
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= shuffled.size(); ++i) {
    if (i == shuffled.size() ||
        shuffled[i].timestamp != shuffled[run_start].timestamp) {
      std::shuffle(shuffled.begin() + static_cast<std::ptrdiff_t>(run_start),
                   shuffled.begin() + static_cast<std::ptrdiff_t>(i), rng);
      run_start = i;
    }
  }
  ASSERT_NE(shuffled, stream);  // the quantised trace does have ties

  StreamEngine engine(engine_config(s, "", 1));
  engine.ingest(shuffled);
  const core::LandscapeReport streamed = engine.finish();
  EXPECT_EQ(engine.late_dropped(), 0u);
  expect_bit_identical(streamed, batch, "shuffled within timestamp ties");
}

TEST(StreamEquivalenceTest, DuplicateTuplesHandledLikeBatch) {
  // Raced duplicate forwards (a real-trace artifact): the engine must treat
  // a duplicated stream exactly as the batch pipeline treats it.
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 2, 19};
  const auto stream = simulate_stream(s);
  std::vector<dns::ForwardedLookup> duplicated;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    duplicated.push_back(stream[i]);
    if (i % 5 == 0) duplicated.push_back(stream[i]);
  }
  const core::LandscapeReport batch = batch_report(s, "", duplicated);
  StreamEngine engine(engine_config(s, "", 1));
  engine.ingest(duplicated);
  expect_bit_identical(engine.finish(), batch, "duplicated stream");
}

TEST(StreamEquivalenceTest, ChunkedCloseThroughMatchesBatch) {
  // A per-day producer: ingest each epoch's chunk, then close it explicitly.
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 3, 23};
  const auto stream = simulate_stream(s);
  const core::LandscapeReport batch = batch_report(s, "", stream);

  StreamEngine engine(engine_config(s, "", 1));
  const std::int64_t epoch_ms = s.dga.epoch.millis();
  for (std::int64_t e = 0; e < s.epochs; ++e) {
    for (const dns::ForwardedLookup& lookup : stream) {
      const std::int64_t t = lookup.timestamp.millis();
      if (t >= e * epoch_ms && t < (e + 1) * epoch_ms) engine.ingest(lookup);
    }
    engine.close_through(e);
    EXPECT_EQ(engine.next_epoch_to_close(), e + 1);
  }
  const core::LandscapeReport streamed = engine.finish();
  EXPECT_EQ(engine.late_dropped(), 0u);
  expect_bit_identical(streamed, batch, "chunked close_through");
}

TEST(StreamEngineTest, EpochCallbacksFireAscendingWithBatchValues) {
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 3, 29};
  const auto stream = simulate_stream(s);
  const core::LandscapeReport batch = batch_report(s, "", stream);

  StreamEngine engine(engine_config(s, "", 1));
  std::vector<EpochReport> reports;
  engine.on_epoch_close(
      [&reports](const EpochReport& report) { reports.push_back(report); });
  engine.ingest(stream);
  (void)engine.finish();

  ASSERT_EQ(reports.size(), static_cast<std::size_t>(s.epochs));
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].epoch, static_cast<std::int64_t>(i));
    ASSERT_EQ(reports[i].servers.size(), s.servers);
    for (std::size_t srv = 0; srv < s.servers; ++srv) {
      // The per-epoch value published at close equals the batch pipeline's
      // per_epoch entry for the same (server, epoch) cell.
      EXPECT_EQ(reports[i].servers[srv].population,
                batch.servers[srv].per_epoch[i].second);
    }
  }
  EXPECT_EQ(engine.close_latencies_ms().size(),
            static_cast<std::size_t>(s.epochs));
}

TEST(StreamEngineTest, MemoryBoundedByActiveWindow) {
  const Scenario s{dga::newgoz_config(), 24, 2, 0, 4, 31};
  const auto stream = simulate_stream(s);
  StreamEngine engine(engine_config(s, "", 1));
  engine.ingest(stream);
  (void)engine.finish();
  EXPECT_GT(engine.matched(), 0u);
  // Buckets are freed at close: the peak resident state is strictly smaller
  // than the total matched volume on a multi-epoch horizon...
  EXPECT_LT(engine.peak_resident_lookups(), engine.matched());
  // ...and nothing stays buffered once the horizon is closed.
  EXPECT_EQ(engine.resident_lookups(), 0u);
  EXPECT_EQ(engine.ingested(), stream.size());
  EXPECT_EQ(engine.matched() + engine.unmatched() + engine.late_dropped(),
            engine.ingested());
}

TEST(StreamEngineTest, WatermarkAutoClosesAndAdvanceClosesQuietFeed) {
  const Scenario s{dga::newgoz_config(), 16, 1, 0, 2, 37};
  StreamEngineConfig config = engine_config(s, "", 1);
  StreamEngine engine(config);
  EXPECT_EQ(engine.next_epoch_to_close(), 0);

  // A quiet feed: no tuples, only time passing. Default lateness is one
  // epoch, so epoch 0 closes once the watermark reaches the end of epoch 1.
  const std::int64_t epoch_ms = s.dga.epoch.millis();
  engine.advance(TimePoint{epoch_ms});
  EXPECT_EQ(engine.next_epoch_to_close(), 0);
  engine.advance(TimePoint{2 * epoch_ms});
  EXPECT_EQ(engine.next_epoch_to_close(), 1);
  engine.advance(TimePoint{3 * epoch_ms});
  EXPECT_EQ(engine.next_epoch_to_close(), 2);

  const core::LandscapeReport report = engine.finish();
  EXPECT_EQ(report.servers[0].matched_lookups, 0u);
  EXPECT_EQ(report.servers[0].population, 0.0);
}

TEST(StreamEngineTest, LateTuplesAreCountedNotAnalyzed) {
  const Scenario s{dga::newgoz_config(), 16, 1, 0, 2, 41};
  StreamEngineConfig config = engine_config(s, "", 1);
  config.allowed_lateness = milliseconds(0);
  StreamEngine engine(config);

  auto pool_model = dga::make_pool_model(s.dga);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  const std::int64_t epoch_ms = s.dga.epoch.millis();

  // Watermark passes epoch 0's close boundary, closing it...
  engine.ingest(dns::ForwardedLookup{TimePoint{epoch_ms + 1}, dns::ServerId{0},
                                     pool.domains[0]});
  EXPECT_EQ(engine.next_epoch_to_close(), 1);
  // ...so an epoch-0 straggler is counted as late, never analyzed.
  engine.ingest(
      dns::ForwardedLookup{TimePoint{10}, dns::ServerId{0}, pool.domains[1]});
  EXPECT_EQ(engine.late_dropped(), 1u);
  EXPECT_EQ(engine.matched(), 1u);
  (void)engine.finish();
}

TEST(StreamEngineTest, SealedAfterFinish) {
  const Scenario s{dga::newgoz_config(), 16, 1, 0, 1, 43};
  StreamEngine engine(engine_config(s, "", 1));
  (void)engine.finish();
  EXPECT_TRUE(engine.finished());
  EXPECT_THROW(engine.ingest(dns::ForwardedLookup{TimePoint{0},
                                                  dns::ServerId{0}, "x.com"}),
               ConfigError);
  EXPECT_THROW(engine.advance(TimePoint{1}), ConfigError);
  EXPECT_THROW(engine.close_through(0), ConfigError);
  EXPECT_THROW((void)engine.finish(), ConfigError);
}

TEST(StreamEngineTest, ConfigValidation) {
  Scenario s{dga::newgoz_config(), 16, 1, 0, 1, 47};
  {
    StreamEngineConfig config = engine_config(s, "", 1);
    config.epoch_count = 0;
    EXPECT_THROW(StreamEngine{config}, ConfigError);
  }
  {
    StreamEngineConfig config = engine_config(s, "", 1);
    config.server_count = 0;
    EXPECT_THROW(StreamEngine{config}, ConfigError);
  }
  {
    StreamEngineConfig config = engine_config(s, "", 1);
    config.allowed_lateness = milliseconds(-1);
    EXPECT_THROW(StreamEngine{config}, ConfigError);
  }
}

}  // namespace
}  // namespace botmeter::stream
