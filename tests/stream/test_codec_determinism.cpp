// Cross-codec determinism: the landscape must not depend on how the trace
// travelled. The same simulated border feed is run through
//   (a) batch analyze on the in-memory stream,
//   (b) a StreamEngine fed tuple-at-a-time from the parsed *text* codec,
//   (c) a StreamEngine fed block-at-a-time from the *binary* codec via the
//       zero-copy ingest_block path,
// and the serialised landscape_to_json documents are compared byte for byte
// — for every applicable estimator and for 1 and 2 worker threads. The
// engines' counters (ingested / matched / unmatched / late_dropped) must
// agree too: ingest_block is tuple-for-tuple the same machine as ingest.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"
#include "stream/stream_engine.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"

namespace botmeter::stream {
namespace {

struct Scenario {
  dga::DgaConfig dga;
  std::uint32_t bots = 16;
  std::size_t servers = 2;
  std::int64_t first_epoch = 0;
  std::int64_t epochs = 2;
  std::uint64_t seed = 5;
};

std::vector<dns::ForwardedLookup> simulate_stream(const Scenario& s) {
  botnet::SimulationConfig sim;
  sim.dga = s.dga;
  sim.bot_count = s.bots;
  sim.server_count = s.servers;
  sim.first_epoch = s.first_epoch;
  sim.epoch_count = s.epochs;
  sim.seed = s.seed;
  sim.timestamp_granularity = milliseconds(100);
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

core::BotMeterConfig meter_config(const Scenario& s,
                                  const std::string& estimator) {
  core::BotMeterConfig config;
  config.dga = s.dga;
  config.estimator = estimator;
  return config;
}

StreamEngineConfig engine_config(const Scenario& s,
                                 const std::string& estimator,
                                 std::size_t threads) {
  StreamEngineConfig config;
  config.meter = meter_config(s, estimator);
  config.first_epoch = s.first_epoch;
  config.epoch_count = s.epochs;
  config.server_count = s.servers;
  config.worker_threads = threads;
  return config;
}

std::string landscape_bytes(const core::LandscapeReport& report) {
  return json::write(core::landscape_to_json(report));
}

/// "" (the recommended model) plus every applicable model by name.
std::vector<std::string> estimator_names(const dga::DgaConfig& dga) {
  std::vector<std::string> names{""};
  estimators::ModelLibrary library;
  for (const estimators::Estimator* e : library.applicable(dga)) {
    names.emplace_back(e->name());
  }
  return names;
}

TEST(CodecDeterminismTest, TextAndBinaryLanesProduceIdenticalLandscapes) {
  std::vector<Scenario> scenarios;
  scenarios.push_back({dga::newgoz_config(), 16, 3, 0, 2, 5});
  scenarios.push_back({dga::murofet_config(), 24, 2, 0, 2, 6});

  for (const Scenario& s : scenarios) {
    const auto stream = simulate_stream(s);
    ASSERT_FALSE(stream.empty()) << s.dga.name;

    // Serialise once per codec — both lanes read real encoded bytes.
    std::ostringstream text_os;
    trace::write_observable(text_os, stream);
    std::ostringstream binary_os;
    trace::write_blocks(binary_os, stream, 1 << 12);  // force several blocks

    for (const std::string& estimator : estimator_names(s.dga)) {
      // Batch reference.
      core::BotMeter meter(meter_config(s, estimator));
      meter.prepare_epochs(s.first_epoch, s.epochs);
      const std::string batch_bytes =
          landscape_bytes(meter.analyze(stream, s.servers));

      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        SCOPED_TRACE(s.dga.name + " estimator=" + estimator +
                     " threads=" + std::to_string(threads));

        StreamEngine text_engine(engine_config(s, estimator, threads));
        std::istringstream text_is(text_os.str());
        trace::for_each_observable(
            text_is,
            [&text_engine](const dns::ForwardedLookup& l) { text_engine.ingest(l); });
        const std::string text_bytes = landscape_bytes(text_engine.finish());

        StreamEngine block_engine(engine_config(s, estimator, threads));
        std::istringstream binary_is(binary_os.str());
        trace::for_each_block(
            binary_is, [&block_engine](const dns::LookupColumns& block,
                                       std::span<const std::string_view> table) {
              block_engine.ingest_block(block, table);
            });
        const std::string block_bytes = landscape_bytes(block_engine.finish());

        EXPECT_EQ(text_bytes, batch_bytes);
        EXPECT_EQ(block_bytes, text_bytes);

        EXPECT_EQ(block_engine.ingested(), text_engine.ingested());
        EXPECT_EQ(block_engine.matched(), text_engine.matched());
        EXPECT_EQ(block_engine.unmatched(), text_engine.unmatched());
        EXPECT_EQ(block_engine.late_dropped(), text_engine.late_dropped());
        EXPECT_EQ(block_engine.late_dropped(), 0u);
      }
    }
  }
}

TEST(CodecDeterminismTest, BlockIngestValidatesItsContract) {
  Scenario s{dga::newgoz_config(), 8, 2, 0, 1, 11};
  const auto stream = simulate_stream(s);
  std::ostringstream binary_os;
  trace::write_blocks(binary_os, stream);

  // A shrinking string table (two unrelated readers) is a loud ConfigError.
  {
    StreamEngine engine(engine_config(s, "", 1));
    std::istringstream is(binary_os.str());
    trace::BlockReader reader(is);
    const auto block = reader.next();
    ASSERT_TRUE(block.has_value());
    engine.ingest_block(*block, reader.domains());
    const std::vector<std::string> smaller_table;
    EXPECT_THROW(engine.ingest_block(*block, smaller_table), ConfigError);
  }

  // A domain id outside the provided table is a loud DataError.
  {
    StreamEngine engine(engine_config(s, "", 1));
    const std::int64_t t[] = {0};
    const std::uint32_t server[] = {0};
    const std::uint32_t domain[] = {5};
    const dns::LookupColumns block{t, server, domain};
    const std::vector<std::string> table{"only.example"};
    EXPECT_THROW(engine.ingest_block(block, table), DataError);
  }

  // Ragged columns are a loud DataError.
  {
    StreamEngine engine(engine_config(s, "", 1));
    const std::int64_t t[] = {0, 1};
    const std::uint32_t server[] = {0};
    const std::uint32_t domain[] = {0};
    const dns::LookupColumns block{t, server, domain};
    const std::vector<std::string> table{"only.example"};
    EXPECT_THROW(engine.ingest_block(block, table), DataError);
  }

  // Ingest after finish stays an error on the block path too.
  {
    StreamEngine engine(engine_config(s, "", 1));
    (void)engine.finish();
    std::istringstream is(binary_os.str());
    trace::BlockReader reader(is);
    const auto block = reader.next();
    ASSERT_TRUE(block.has_value());
    EXPECT_THROW(engine.ingest_block(*block, reader.domains()), ConfigError);
  }
}

}  // namespace
}  // namespace botmeter::stream
