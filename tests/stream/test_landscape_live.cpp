// Landscape history under the two pipelines and under concurrency:
//  - streaming and batch record the same rows, so their
//    botmeter.landscape_series.v1 documents are byte-equal for one trace;
//  - attaching a history never perturbs the landscape, for any thread count;
//  - the HTTP exporter thread may query the history while the ingest thread
//    records — every document parses and the final state equals a quiescent
//    read (the test stream_tests runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/landscape_history.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::stream {
namespace {

std::vector<dns::ForwardedLookup> simulate_stream(std::uint32_t bots,
                                                  std::size_t servers,
                                                  std::int64_t epochs,
                                                  std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = bots;
  sim.server_count = servers;
  sim.first_epoch = 0;
  sim.epoch_count = epochs;
  sim.seed = seed;
  sim.timestamp_granularity = milliseconds(100);
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

core::BotMeterConfig meter_config() {
  core::BotMeterConfig config;
  config.dga = dga::newgoz_config();
  return config;
}

StreamEngineConfig engine_config(std::size_t servers, std::int64_t epochs,
                                 std::size_t threads) {
  StreamEngineConfig config;
  config.meter = meter_config();
  config.first_epoch = 0;
  config.epoch_count = epochs;
  config.server_count = servers;
  config.worker_threads = threads;
  return config;
}

TEST(LandscapeLive, StreamAndBatchEmitByteEqualSeriesDocuments) {
  constexpr std::size_t kServers = 3;
  constexpr std::int64_t kEpochs = 4;
  const auto stream = simulate_stream(24, kServers, kEpochs, 11);
  ASSERT_FALSE(stream.empty());

  obs::LandscapeHistory batch_history;
  core::BotMeterConfig batch_config = meter_config();
  batch_config.history = &batch_history;
  core::BotMeter meter(batch_config);
  meter.prepare_epochs(0, kEpochs);
  (void)meter.analyze(stream, kServers);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::LandscapeHistory stream_history;
    StreamEngineConfig config = engine_config(kServers, kEpochs, threads);
    config.history = &stream_history;
    StreamEngine engine(config);
    engine.ingest(stream);
    (void)engine.finish();

    EXPECT_EQ(stream_history.epochs_recorded(), batch_history.epochs_recorded());
    EXPECT_EQ(json::write(stream_history.to_json()),
              json::write(batch_history.to_json()));
  }
}

TEST(LandscapeLive, AttachingHistoryNeverPerturbsTheLandscape) {
  constexpr std::size_t kServers = 2;
  constexpr std::int64_t kEpochs = 2;
  const auto stream = simulate_stream(16, kServers, kEpochs, 12);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StreamEngine bare(engine_config(kServers, kEpochs, threads));
    bare.ingest(stream);
    const core::LandscapeReport without = bare.finish();

    obs::LandscapeHistory history;
    StreamEngineConfig config = engine_config(kServers, kEpochs, threads);
    config.history = &history;
    StreamEngine observed(config);
    observed.ingest(stream);
    const core::LandscapeReport with = observed.finish();

    EXPECT_EQ(json::write(core::landscape_to_json(with)),
              json::write(core::landscape_to_json(without)));
    // The recorded rows are exactly the report's per-epoch cells.
    const auto latest = history.latest();
    ASSERT_TRUE(latest.has_value());
    ASSERT_EQ(latest->servers.size(), kServers);
  }
}

TEST(LandscapeLive, ConcurrentQueriesDuringRecordingStayConsistent) {
  // The copy-under-mutex contract: an exporter thread hammers every query
  // while the "ingest" thread records rows. Run under TSan in CI.
  obs::LandscapeHistoryConfig config;
  config.retain_recent = 64;
  config.coarse_stride = 4;
  obs::LandscapeHistory history(config);

  constexpr std::int64_t kRows = 400;
  constexpr std::size_t kServers = 8;
  std::atomic<bool> done{false};

  std::thread recorder([&] {
    for (std::int64_t e = 0; e < kRows; ++e) {
      obs::LandscapeEpochRecord row;
      row.epoch = e;
      row.family = "newGoZ";
      row.estimator = "bernoulli";
      row.servers.resize(kServers);
      const double fe = static_cast<double>(e);
      for (std::size_t s = 0; s < kServers; ++s) {
        row.servers[s].population = fe + static_cast<double>(s);
        row.servers[s].matched = static_cast<std::uint64_t>(e);
        row.servers[s].interval90 = {fe, fe + 2.0};
      }
      row.health = e % 2 == 0 ? std::optional<std::string>("ok") : std::nullopt;
      history.record(row);
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t observed = 0;
  while (!done.load(std::memory_order_acquire)) {
    // Every concurrently-served document must parse and be self-consistent.
    const obs::LandscapeSeries full =
        obs::parse_landscape_series(history.to_json());
    const obs::LandscapeSeries latest =
        obs::parse_landscape_series(history.latest_json());
    const obs::LandscapeSeries window =
        obs::parse_landscape_series(history.window_json(std::nullopt, 0, kRows));
    EXPECT_LE(latest.snapshots.size(), 1u);
    // The two documents are taken at different instants while the recorder
    // runs, so only per-document invariants hold: each parses (which already
    // enforces strictly increasing epochs), the retained set respects the
    // configured bounds, and — because the retained count never shrinks in
    // this configuration — the later window read sees at least as much.
    EXPECT_LE(full.snapshots.size(),
              config.retain_recent + config.retain_coarse);
    EXPECT_GE(window.snapshots.size(), full.snapshots.size());
    (void)history.summary();
    observed = full.epochs_recorded;
  }
  recorder.join();
  EXPECT_LE(observed, static_cast<std::uint64_t>(kRows));

  // Quiescent read equals a replay of what the document claims.
  const obs::LandscapeSeries final_series =
      obs::parse_landscape_series(history.to_json());
  EXPECT_EQ(final_series.epochs_recorded, static_cast<std::uint64_t>(kRows));
  const auto quiescent = history.window(0, kRows);
  ASSERT_EQ(final_series.snapshots.size(), quiescent.size());
  for (std::size_t i = 0; i < quiescent.size(); ++i) {
    EXPECT_EQ(final_series.snapshots[i], quiescent[i]) << "snapshot " << i;
  }
}

}  // namespace
}  // namespace botmeter::stream
