// StreamHealthMonitor threshold transitions under simulated time: every
// now_ms is injected, so ok -> degraded -> unhealthy -> ok (with recovery
// hysteresis) is exercised without a single sleep.
#include "stream/health_monitor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "dga/families.hpp"
#include "obs/metrics.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::stream {
namespace {

StreamHealthConfig tight_config() {
  StreamHealthConfig config;
  config.degraded_watermark_lag_ms = 100.0;
  config.unhealthy_watermark_lag_ms = 1000.0;
  config.degraded_late_rate = 0.01;
  config.unhealthy_late_rate = 0.5;
  config.degraded_buffer_bytes = 1 << 20;
  config.unhealthy_buffer_bytes = 8 << 20;
  config.recovery_hold_ms = 500.0;
  return config;
}

StreamHealthSignals ok_signals() { return {}; }

StreamHealthSignals lagging(double lag_ms) {
  StreamHealthSignals s;
  s.watermark_lag_ms = lag_ms;
  return s;
}

TEST(StreamHealthConfig, ValidatesThresholdOrdering) {
  StreamHealthConfig config = tight_config();
  config.unhealthy_watermark_lag_ms = 50.0;  // below degraded
  EXPECT_THROW(config.validate(), ConfigError);
  config = tight_config();
  config.degraded_late_rate = 0.9;  // above unhealthy
  EXPECT_THROW(config.validate(), ConfigError);
  config = tight_config();
  config.recovery_hold_ms = -1.0;
  EXPECT_THROW(config.validate(), ConfigError);
  EXPECT_NO_THROW(tight_config().validate());
}

TEST(StreamHealthMonitor, StartsOkAndDegradesImmediately) {
  StreamHealthMonitor monitor(tight_config());
  EXPECT_EQ(monitor.state(), HealthState::kOk);
  EXPECT_EQ(monitor.evaluate(ok_signals(), 0.0), HealthState::kOk);
  EXPECT_EQ(monitor.evaluate(lagging(150.0), 10.0), HealthState::kDegraded);
  EXPECT_EQ(monitor.evaluate(lagging(1500.0), 20.0), HealthState::kUnhealthy);
}

TEST(StreamHealthMonitor, EachSignalTripsItsOwnThreshold) {
  StreamHealthMonitor lag_monitor(tight_config());
  EXPECT_EQ(lag_monitor.evaluate(lagging(100.0), 0.0),
            HealthState::kDegraded);  // thresholds are inclusive

  StreamHealthMonitor late_monitor(tight_config());
  StreamHealthSignals late;
  late.late_rate = 0.6;
  EXPECT_EQ(late_monitor.evaluate(late, 0.0), HealthState::kUnhealthy);

  StreamHealthMonitor buffer_monitor(tight_config());
  StreamHealthSignals fat;
  fat.open_buffer_bytes = 2 << 20;
  EXPECT_EQ(buffer_monitor.evaluate(fat, 0.0), HealthState::kDegraded);
}

TEST(StreamHealthMonitor, RecoveryRequiresTheHoldToElapse) {
  StreamHealthMonitor monitor(tight_config());
  EXPECT_EQ(monitor.evaluate(lagging(2000.0), 0.0), HealthState::kUnhealthy);

  // Signals are healthy again, but the reported state holds until the raw
  // state has stayed better for recovery_hold_ms (500).
  EXPECT_EQ(monitor.evaluate(ok_signals(), 100.0), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.evaluate(ok_signals(), 450.0), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.evaluate(ok_signals(), 601.0), HealthState::kOk);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
}

TEST(StreamHealthMonitor, FlappingLandsOnTheSustainedLevelNotTheDip) {
  StreamHealthMonitor monitor(tight_config());
  EXPECT_EQ(monitor.evaluate(lagging(2000.0), 0.0), HealthState::kUnhealthy);

  // During the recovery streak the signals dip to ok but also revisit
  // degraded; recovery must land on degraded — the level actually
  // sustained — not strobe down to ok.
  EXPECT_EQ(monitor.evaluate(ok_signals(), 100.0), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.evaluate(lagging(200.0), 300.0), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.evaluate(lagging(200.0), 700.0), HealthState::kDegraded);

  // And a relapse to unhealthy mid-streak applies immediately.
  EXPECT_EQ(monitor.evaluate(lagging(5000.0), 800.0), HealthState::kUnhealthy);
}

TEST(StreamHealthMonitor, RendersStateAndSignals) {
  StreamHealthMonitor monitor(tight_config());
  StreamHealthSignals signals;
  signals.watermark_lag_ms = 42.5;
  signals.late_rate = 0.25;
  signals.open_buffer_bytes = 4096;
  signals.ingested = 100;
  signals.matched = 30;
  signals.late_dropped = 10;
  signals.late_rate = 0.25;
  monitor.evaluate(signals, 0.0);

  const std::string text = monitor.render();
  EXPECT_NE(text.find("status: degraded"), std::string::npos);
  EXPECT_NE(text.find("watermark_lag_ms: 42.5"), std::string::npos);
  EXPECT_NE(text.find("late_rate: 0.25"), std::string::npos);
  EXPECT_NE(text.find("open_buffer_bytes: 4096"), std::string::npos);
  EXPECT_NE(text.find("late_dropped: 10"), std::string::npos);
}

TEST(StreamHealthMonitor, RendersJsonSignalVector) {
  StreamHealthMonitor monitor(tight_config());
  StreamHealthSignals signals;
  signals.watermark_lag_ms = 42.5;
  signals.late_rate = 0.25;
  signals.open_buffer_bytes = 4096;
  signals.ingested = 100;
  signals.matched = 30;
  signals.late_dropped = 10;
  signals.epochs_closed = 3;
  signals.last_close_ms = 1.5;
  monitor.evaluate(signals, 0.0);

  const json::Value doc = json::parse(monitor.render_json());
  EXPECT_EQ(doc.at("schema").as_string(), "botmeter.healthz.v1");
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  EXPECT_DOUBLE_EQ(doc.at("watermark_lag_ms").as_double(), 42.5);
  EXPECT_DOUBLE_EQ(doc.at("late_rate").as_double(), 0.25);
  EXPECT_EQ(doc.at("open_buffer_bytes").as_int(), 4096);
  EXPECT_EQ(doc.at("ingested").as_int(), 100);
  EXPECT_EQ(doc.at("late_dropped").as_int(), 10);
  EXPECT_EQ(doc.at("epochs_closed").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("last_close_ms").as_double(), 1.5);

  // Before any epoch close, last_close_ms is explicitly null (never absent).
  StreamHealthMonitor fresh(tight_config());
  fresh.evaluate(ok_signals(), 0.0);
  EXPECT_TRUE(json::parse(fresh.render_json()).at("last_close_ms").is_null());
}

TEST(StreamHealthMonitor, PublishesGaugesIntoTheRegistry) {
  obs::MetricsRegistry metrics;
  StreamHealthMonitor monitor(tight_config(), &metrics);
  monitor.evaluate(lagging(250.0), 0.0);

  EXPECT_EQ(metrics.gauge("stream.health.state").value(), 1.0);  // degraded
  EXPECT_EQ(metrics.gauge("stream.health.watermark_lag_ms").value(), 250.0);
}

// --- sampling a real engine ------------------------------------------------

StreamEngineConfig small_engine_config() {
  StreamEngineConfig config;
  config.meter.dga = dga::family_config("newGoZ");
  config.first_epoch = 0;
  config.epoch_count = 2;
  config.server_count = 2;
  return config;
}

TEST(StreamHealthMonitor, SampleDerivesWatermarkLagFromWallTime) {
  StreamEngine engine(small_engine_config());
  StreamHealthMonitor monitor(tight_config());

  // First sample seeds the reference point: lag 0, state ok.
  EXPECT_EQ(monitor.sample(engine, 1000.0), HealthState::kOk);
  EXPECT_EQ(monitor.last_signals().watermark_lag_ms, 0.0);

  // No watermark movement while the wall clock runs: lag grows and crosses
  // both thresholds.
  EXPECT_EQ(monitor.sample(engine, 1150.0), HealthState::kDegraded);
  EXPECT_EQ(monitor.last_signals().watermark_lag_ms, 150.0);
  EXPECT_EQ(monitor.sample(engine, 2500.0), HealthState::kUnhealthy);

  // The watermark advancing resets the lag; after the recovery hold the
  // state walks back to ok.
  engine.advance(TimePoint{1});
  EXPECT_EQ(monitor.sample(engine, 2600.0), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.last_signals().watermark_lag_ms, 0.0);
  engine.advance(TimePoint{2});
  EXPECT_EQ(monitor.sample(engine, 3200.0), HealthState::kOk);
}

TEST(StreamHealthMonitor, SampleObservesCloseLatenciesExactlyOnce) {
  const StreamEngineConfig config = small_engine_config();

  botnet::SimulationConfig sim;
  sim.dga = config.meter.dga;
  sim.bot_count = 8;
  sim.server_count = config.server_count;
  sim.first_epoch = config.first_epoch;
  sim.epoch_count = config.epoch_count;
  sim.seed = 3;
  sim.record_raw = false;
  const auto observable = botnet::simulate(sim).observable;

  StreamEngine engine(config);
  obs::MetricsRegistry metrics;
  StreamHealthMonitor monitor(tight_config(), &metrics);
  engine.ingest(observable);
  (void)engine.finish();  // closes both epochs

  monitor.sample(engine, 0.0);
  monitor.sample(engine, 1.0);  // must not double-observe the same closes

  const auto snapshot = metrics.snapshot();
  bool found = false;
  for (const auto& hist : snapshot.histograms) {
    if (hist.name == "stream.epoch_close_latency_ms") {
      found = true;
      EXPECT_EQ(hist.count, 2u);  // one observation per closed epoch
    }
  }
  EXPECT_TRUE(found);

  // Late-rate signal comes straight from the engine's counters.
  EXPECT_EQ(monitor.last_signals().matched, engine.matched());
  EXPECT_EQ(monitor.last_signals().late_rate, 0.0);
  EXPECT_EQ(monitor.last_signals().epochs_closed, 2u);
  EXPECT_TRUE(monitor.last_signals().last_close_ms.has_value());
}

TEST(HealthStateName, NamesAllStates) {
  EXPECT_EQ(health_state_name(HealthState::kOk), "ok");
  EXPECT_EQ(health_state_name(HealthState::kDegraded), "degraded");
  EXPECT_EQ(health_state_name(HealthState::kUnhealthy), "unhealthy");
}

}  // namespace
}  // namespace botmeter::stream
