// Checkpoint/restore of stream::StreamEngine: a restarted monitor must
// continue bit-identically from the serialized state, and the checkpoint
// document itself must be byte-stable through the common/json writer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::stream {
namespace {

StreamEngineConfig newgoz_config(std::int64_t epochs, std::size_t servers) {
  StreamEngineConfig config;
  config.meter.dga = dga::newgoz_config();
  config.first_epoch = 0;
  config.epoch_count = epochs;
  config.server_count = servers;
  return config;
}

std::vector<dns::ForwardedLookup> simulate_stream(std::int64_t epochs,
                                                  std::size_t servers,
                                                  std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 16;
  sim.server_count = servers;
  sim.epoch_count = epochs;
  sim.seed = seed;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

void expect_reports_equal(const core::LandscapeReport& a,
                          const core::LandscapeReport& b) {
  EXPECT_EQ(a.estimator_name, b.estimator_name);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].population, b.servers[i].population);
    EXPECT_EQ(a.servers[i].per_epoch, b.servers[i].per_epoch);
    EXPECT_EQ(a.servers[i].matched_lookups, b.servers[i].matched_lookups);
    EXPECT_EQ(a.servers[i].interval90, b.servers[i].interval90);
  }
}

TEST(StreamCheckpointTest, MidStreamRoundTripContinuesBitIdentically) {
  const auto stream = simulate_stream(3, 2, 51);
  ASSERT_GT(stream.size(), 10u);

  // Reference: one engine over the whole stream, collecting epoch reports.
  StreamEngine reference(newgoz_config(3, 2));
  std::vector<EpochReport> reference_reports;
  reference.on_epoch_close([&reference_reports](const EpochReport& r) {
    reference_reports.push_back(r);
  });
  reference.ingest(stream);
  const core::LandscapeReport want = reference.finish();

  // Checkpointed run: ingest 40%, serialize, throw the engine away, restore
  // into a fresh one, ingest the rest.
  const std::size_t split = (stream.size() * 2) / 5;
  std::string checkpoint_text;
  {
    StreamEngine first(newgoz_config(3, 2));
    first.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
    checkpoint_text = json::write(first.checkpoint());
  }
  StreamEngine resumed(newgoz_config(3, 2));
  resumed.restore(json::parse(checkpoint_text));
  std::vector<EpochReport> resumed_reports;
  resumed.on_epoch_close([&resumed_reports](const EpochReport& r) {
    resumed_reports.push_back(r);
  });
  resumed.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  const core::LandscapeReport got = resumed.finish();

  expect_reports_equal(got, want);
  EXPECT_EQ(resumed.ingested(), reference.ingested());
  EXPECT_EQ(resumed.matched(), reference.matched());
  EXPECT_EQ(resumed.unmatched(), reference.unmatched());
  EXPECT_EQ(resumed.late_dropped(), 0u);

  // Every epoch the resumed engine closed reports the same values the
  // reference published for that epoch.
  ASSERT_FALSE(resumed_reports.empty());
  for (const EpochReport& report : resumed_reports) {
    const EpochReport& ref = reference_reports[static_cast<std::size_t>(
        report.epoch)];
    ASSERT_EQ(report.servers.size(), ref.servers.size());
    for (std::size_t s = 0; s < ref.servers.size(); ++s) {
      EXPECT_EQ(report.servers[s].population, ref.servers[s].population);
      EXPECT_EQ(report.servers[s].matched_lookups,
                ref.servers[s].matched_lookups);
    }
  }
}

TEST(StreamCheckpointTest, CheckpointIsByteStable) {
  const auto stream = simulate_stream(2, 2, 53);
  StreamEngine engine(newgoz_config(2, 2));
  engine.ingest(
      std::span<const dns::ForwardedLookup>(stream).first(stream.size() / 2));
  const std::string once = json::write(engine.checkpoint());
  EXPECT_EQ(json::write(json::parse(once)), once);
  // Checkpointing is read-only: taking it twice yields the same bytes.
  EXPECT_EQ(json::write(engine.checkpoint()), once);
}

TEST(StreamCheckpointTest, RestoreRejectsMismatchedConfiguration) {
  StreamEngine source(newgoz_config(2, 2));
  const json::Value checkpoint = source.checkpoint();

  {
    StreamEngine other(newgoz_config(3, 2));  // different horizon
    EXPECT_THROW(other.restore(checkpoint), DataError);
  }
  {
    StreamEngine other(newgoz_config(2, 4));  // different width
    EXPECT_THROW(other.restore(checkpoint), DataError);
  }
  {
    StreamEngineConfig config = newgoz_config(2, 2);
    config.meter.dga = dga::murofet_config();  // different family
    StreamEngine other(config);
    EXPECT_THROW(other.restore(checkpoint), DataError);
  }
  {
    StreamEngineConfig config = newgoz_config(2, 2);
    config.meter.estimator = "timing";  // different estimator
    StreamEngine other(config);
    EXPECT_THROW(other.restore(checkpoint), DataError);
  }
}

TEST(StreamCheckpointTest, RestoreRejectsUnknownSchemaAndUsedEngine) {
  StreamEngine source(newgoz_config(1, 1));
  {
    json::Value doc = source.checkpoint();
    json::Object broken = doc.as_object();
    broken["schema"] = json::Value(std::string("botmeter.other.v9"));
    StreamEngine other(newgoz_config(1, 1));
    EXPECT_THROW(other.restore(json::Value(std::move(broken))), DataError);
  }
  {
    auto pool_model = dga::make_pool_model(dga::newgoz_config());
    StreamEngine used(newgoz_config(1, 1));
    used.ingest(dns::ForwardedLookup{
        TimePoint{5}, dns::ServerId{0},
        pool_model->epoch_pool(0).domains[0]});
    EXPECT_THROW(used.restore(source.checkpoint()), ConfigError);
  }
}

// A checkpoint rejected mid-parse (here: a structurally valid document whose
// open section names a server outside the configured width — detected after
// the counters and closed rows already parsed) must leave the engine exactly
// as constructed: empty, with deterministic counters, and fully usable for
// both a fresh ingest run and a retried restore from an intact document.
TEST(StreamCheckpointTest, RejectedCheckpointLeavesEngineEmptyAndUsable) {
  const auto stream = simulate_stream(3, 2, 61);
  ASSERT_GT(stream.size(), 10u);

  StreamEngine reference(newgoz_config(3, 2));
  reference.ingest(stream);
  const std::string want =
      json::write(core::landscape_to_json(reference.finish()));

  // An otherwise-valid mid-stream checkpoint with one poisoned open bucket.
  const std::size_t split = (stream.size() * 2) / 5;
  StreamEngine source(newgoz_config(3, 2));
  source.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
  const json::Value intact = source.checkpoint();
  json::Object broken = intact.as_object();
  {
    json::Object bucket;
    bucket["server"] = json::Value(999.0);  // width is 2
    bucket["epoch"] = json::Value(2.0);
    bucket["t"] = json::Value(json::Array{});
    bucket["pos"] = json::Value(json::Array{});
    bucket["valid"] = json::Value(json::Array{});
    json::Array open = broken.at("open").as_array();
    open.emplace_back(std::move(bucket));
    broken["open"] = json::Value(std::move(open));
  }
  const json::Value corrupt{std::move(broken)};

  StreamEngine engine(newgoz_config(3, 2));
  EXPECT_THROW(engine.restore(corrupt), DataError);

  // Pinned: the failed restore left nothing behind.
  EXPECT_EQ(engine.ingested(), 0u);
  EXPECT_EQ(engine.matched(), 0u);
  EXPECT_EQ(engine.unmatched(), 0u);
  EXPECT_EQ(engine.late_dropped(), 0u);
  EXPECT_EQ(engine.resident_lookups(), 0u);
  EXPECT_EQ(engine.peak_resident_lookups(), 0u);
  EXPECT_FALSE(engine.watermark().has_value());
  EXPECT_EQ(engine.next_epoch_to_close(), 0);
  EXPECT_FALSE(engine.finished());

  // ...and the engine runs a full fresh ingest bit-identically.
  engine.ingest(stream);
  EXPECT_EQ(json::write(core::landscape_to_json(engine.finish())), want);

  // A failed restore may also be retried with the intact document.
  StreamEngine retry(newgoz_config(3, 2));
  EXPECT_THROW(retry.restore(corrupt), DataError);
  retry.restore(intact);
  retry.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  EXPECT_EQ(json::write(core::landscape_to_json(retry.finish())), want);
}

TEST(StreamCheckpointTest, FinishedEngineRoundTripsSealed) {
  const auto stream = simulate_stream(2, 1, 59);
  StreamEngine engine(newgoz_config(2, 1));
  engine.ingest(stream);
  const core::LandscapeReport report = engine.finish();

  StreamEngine restored(newgoz_config(2, 1));
  restored.restore(engine.checkpoint());
  EXPECT_TRUE(restored.finished());
  EXPECT_EQ(restored.ingested(), engine.ingested());
  EXPECT_THROW(restored.ingest(dns::ForwardedLookup{TimePoint{0},
                                                    dns::ServerId{0}, "x.com"}),
               ConfigError);
  // The closed cells round-tripped: counters and state agree with the
  // original's final landscape.
  EXPECT_EQ(restored.resident_lookups(), 0u);
  (void)report;
}

}  // namespace
}  // namespace botmeter::stream
