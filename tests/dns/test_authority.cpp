#include "dns/authority.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::dns {
namespace {

TEST(AuthorityTest, UnknownDomainIsNxd) {
  AuthoritativeRegistry registry;
  EXPECT_EQ(registry.resolve("nosuch.com", TimePoint{0}), Rcode::kNxDomain);
}

TEST(AuthorityTest, RegistrationWindowRespected) {
  AuthoritativeRegistry registry;
  registry.register_domain("c2.net", TimePoint{100}, TimePoint{200});
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{99}), Rcode::kNxDomain);
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{100}), Rcode::kAddress);
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{199}), Rcode::kAddress);
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{200}), Rcode::kNxDomain);
}

TEST(AuthorityTest, PermanentRegistration) {
  AuthoritativeRegistry registry;
  registry.register_permanent("corp.example");
  EXPECT_EQ(registry.resolve("corp.example", TimePoint{-1'000'000}),
            Rcode::kAddress);
  EXPECT_EQ(registry.resolve("corp.example", TimePoint{1'000'000'000}),
            Rcode::kAddress);
}

TEST(AuthorityTest, ReRegistrationAfterTakedown) {
  AuthoritativeRegistry registry;
  registry.register_domain("c2.net", TimePoint{0}, TimePoint{100});
  registry.register_domain("c2.net", TimePoint{500}, TimePoint{600});
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{50}), Rcode::kAddress);
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{300}), Rcode::kNxDomain);
  EXPECT_EQ(registry.resolve("c2.net", TimePoint{550}), Rcode::kAddress);
}

TEST(AuthorityTest, InvalidRegistrationsRejected) {
  AuthoritativeRegistry registry;
  EXPECT_THROW((void)registry.register_domain("", TimePoint{0}, TimePoint{1}),
               ConfigError);
  EXPECT_THROW((void)registry.register_domain("a.com", TimePoint{10}, TimePoint{10}),
               ConfigError);
  EXPECT_THROW((void)registry.register_domain("a.com", TimePoint{10}, TimePoint{5}),
               ConfigError);
}

TEST(AuthorityTest, RegisteredCountTracksIntervals) {
  AuthoritativeRegistry registry;
  EXPECT_EQ(registry.registered_count(), 0u);
  registry.register_domain("a.com", TimePoint{0}, TimePoint{10});
  registry.register_domain("b.com", TimePoint{0}, TimePoint{10});
  EXPECT_EQ(registry.registered_count(), 2u);
}

}  // namespace
}  // namespace botmeter::dns
