#include "dns/tiered.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::dns {
namespace {

TtlPolicy short_ttl() { return {.positive = hours(1), .negative = minutes(10)}; }
TtlPolicy long_ttl() { return {.positive = days(1), .negative = hours(2)}; }

TEST(TieredNetworkTest, ConstructionValidation) {
  EXPECT_THROW(TieredNetwork(0, 1, short_ttl(), long_ttl(), Duration{0}),
               ConfigError);
  EXPECT_THROW(TieredNetwork(4, 0, short_ttl(), long_ttl(), Duration{0}),
               ConfigError);
  EXPECT_THROW(TieredNetwork(2, 4, short_ttl(), long_ttl(), Duration{0}),
               ConfigError);
}

TEST(TieredNetworkTest, PlacementRoundRobin) {
  TieredNetwork net(6, 2, short_ttl(), long_ttl(), Duration{0});
  EXPECT_EQ(net.local_for_client(ClientId{0}), ServerId{0});
  EXPECT_EQ(net.local_for_client(ClientId{7}), ServerId{1});
  EXPECT_EQ(net.regional_for_local(ServerId{0}), ServerId{0});
  EXPECT_EQ(net.regional_for_local(ServerId{3}), ServerId{1});
  EXPECT_EQ(net.regional_for_local(ServerId{4}), ServerId{0});
  EXPECT_THROW((void)net.regional_for_local(ServerId{6}), ConfigError);
}

TEST(TieredNetworkTest, BorderSeesRegionalForwarder) {
  TieredNetwork net(4, 2, short_ttl(), long_ttl(), Duration{0});
  // Client 1 -> local 1 -> regional 1.
  (void)net.resolve(TimePoint{0}, ClientId{1}, "x.nx");
  ASSERT_EQ(net.vantage().size(), 1u);
  EXPECT_EQ(net.vantage().stream()[0].forwarder, ServerId{1});
}

TEST(TieredNetworkTest, RegionalCacheMasksAcrossLocals) {
  TieredNetwork net(4, 1, short_ttl(), long_ttl(), Duration{0});
  // Clients 0 and 1 sit behind different locals but the same regional.
  (void)net.resolve(TimePoint{0}, ClientId{0}, "x.nx");
  (void)net.resolve(TimePoint{1000}, ClientId{1}, "x.nx");
  EXPECT_EQ(net.vantage().size(), 1u);  // second lookup served regionally
}

TEST(TieredNetworkTest, LocalCachePopulatedOnRegionalHit) {
  TieredNetwork net(2, 1, short_ttl(), long_ttl(), Duration{0});
  (void)net.resolve(TimePoint{0}, ClientId{0}, "x.nx");   // miss everywhere
  (void)net.resolve(TimePoint{1000}, ClientId{1}, "x.nx");  // regional hit
  // Client 1's local now holds the entry: a repeat does not even reach the
  // regional tier (observable only via no new border records, still 1).
  (void)net.resolve(TimePoint{2000}, ClientId{1}, "x.nx");
  EXPECT_EQ(net.vantage().size(), 1u);
}

TEST(TieredNetworkTest, EffectiveMaskingFollowsRegionalTtl) {
  // Local negative TTL 10 min, regional 2 h: after 30 min the local entry is
  // stale but the regional one still masks the lookup from the border.
  TieredNetwork net(2, 1, short_ttl(), long_ttl(), Duration{0});
  (void)net.resolve(TimePoint{0}, ClientId{0}, "x.nx");
  (void)net.resolve(TimePoint{minutes(30).millis()}, ClientId{0}, "x.nx");
  EXPECT_EQ(net.vantage().size(), 1u);
  // Past the regional TTL it reaches the border again.
  (void)net.resolve(TimePoint{hours(3).millis()}, ClientId{0}, "x.nx");
  EXPECT_EQ(net.vantage().size(), 2u);
}

TEST(TieredNetworkTest, ValidDomainsResolveThroughTiers) {
  TieredNetwork net(2, 1, short_ttl(), long_ttl(), Duration{0});
  net.authority().register_permanent("c2.example");
  EXPECT_EQ(net.resolve(TimePoint{0}, ClientId{0}, "c2.example"),
            Rcode::kAddress);
  EXPECT_EQ(net.resolve(TimePoint{1}, ClientId{1}, "c2.example"),
            Rcode::kAddress);
  EXPECT_EQ(net.vantage().size(), 1u);
}

TEST(TieredNetworkTest, EvictExpiredKeepsCorrectness) {
  TieredNetwork net(2, 1, short_ttl(), short_ttl(), Duration{0});
  (void)net.resolve(TimePoint{0}, ClientId{0}, "x.nx");
  net.evict_expired(TimePoint{hours(1).millis()});
  (void)net.resolve(TimePoint{hours(1).millis() + 1}, ClientId{0}, "x.nx");
  EXPECT_EQ(net.vantage().size(), 2u);
}

}  // namespace
}  // namespace botmeter::dns
