#include "dns/resolver.hpp"

#include <gtest/gtest.h>

#include "dns/authority.hpp"
#include "dns/vantage.hpp"

namespace botmeter::dns {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : resolver_(ServerId{3}, ttl_, authority_, vantage_) {
    authority_.register_permanent("valid.com");
  }

  TtlPolicy ttl_{.positive = days(1), .negative = hours(2)};
  AuthoritativeRegistry authority_;
  VantagePoint vantage_;
  LocalResolver resolver_;
};

TEST_F(ResolverTest, MissForwardsAndRecordsAtVantage) {
  EXPECT_EQ(resolver_.resolve(TimePoint{0}, "valid.com"), Rcode::kAddress);
  ASSERT_EQ(vantage_.size(), 1u);
  EXPECT_EQ(vantage_.stream()[0].domain, "valid.com");
  EXPECT_EQ(vantage_.stream()[0].forwarder, ServerId{3});
  EXPECT_EQ(vantage_.stream()[0].timestamp, TimePoint{0});
}

TEST_F(ResolverTest, HitIsInvisibleUpstream) {
  (void)resolver_.resolve(TimePoint{0}, "valid.com");
  (void)resolver_.resolve(TimePoint{1000}, "valid.com");
  EXPECT_EQ(vantage_.size(), 1u);  // second lookup answered from cache
  EXPECT_EQ(resolver_.cache().hits(), 1u);
}

TEST_F(ResolverTest, NegativeCachingMasksRepeatedNxds) {
  EXPECT_EQ(resolver_.resolve(TimePoint{0}, "nxd.com"), Rcode::kNxDomain);
  EXPECT_EQ(resolver_.resolve(TimePoint{hours(1).millis()}, "nxd.com"),
            Rcode::kNxDomain);
  EXPECT_EQ(vantage_.size(), 1u);
  // After the negative TTL the lookup is forwarded again.
  EXPECT_EQ(resolver_.resolve(TimePoint{hours(3).millis()}, "nxd.com"),
            Rcode::kNxDomain);
  EXPECT_EQ(vantage_.size(), 2u);
}

TEST_F(ResolverTest, PositiveTtlOutlivesNegativeTtl) {
  (void)resolver_.resolve(TimePoint{0}, "valid.com");
  // 3 hours later (past the negative TTL) the positive entry still holds.
  (void)resolver_.resolve(TimePoint{hours(3).millis()}, "valid.com");
  EXPECT_EQ(vantage_.size(), 1u);
  // Past the positive TTL it is forwarded again.
  (void)resolver_.resolve(TimePoint{days(1).millis() + 1}, "valid.com");
  EXPECT_EQ(vantage_.size(), 2u);
}

TEST_F(ResolverTest, RegistrationChangeVisibleAfterExpiry) {
  authority_.register_domain("late.com", TimePoint{hours(4).millis()},
                             TimePoint{days(2).millis()});
  EXPECT_EQ(resolver_.resolve(TimePoint{0}, "late.com"), Rcode::kNxDomain);
  // While the NXD is cached the (now registered) domain still answers NXD —
  // that is precisely what negative caching does.
  EXPECT_EQ(resolver_.resolve(TimePoint{hours(5).millis()}, "late.com"),
            Rcode::kAddress);
}

TEST(ResolverQuantizationTest, VantageTimestampsQuantized) {
  TtlPolicy ttl;
  AuthoritativeRegistry authority;
  VantagePoint vantage{milliseconds(100)};
  LocalResolver resolver(ServerId{0}, ttl, authority, vantage);
  (void)resolver.resolve(TimePoint{1234}, "x.com");
  ASSERT_EQ(vantage.size(), 1u);
  EXPECT_EQ(vantage.stream()[0].timestamp.millis(), 1200);
}

TEST(ResolverConfigTest, InvalidTtlRejected) {
  AuthoritativeRegistry authority;
  VantagePoint vantage;
  TtlPolicy bad{.positive = Duration{0}, .negative = hours(1)};
  EXPECT_THROW(LocalResolver(ServerId{0}, bad, authority, vantage),
               ConfigError);
}

}  // namespace
}  // namespace botmeter::dns
