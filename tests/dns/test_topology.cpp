#include "dns/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::dns {
namespace {

TEST(NetworkTest, RequiresAtLeastOneServer) {
  EXPECT_THROW(Network(0, TtlPolicy{}, Duration{0}), ConfigError);
}

TEST(NetworkTest, RoundRobinClientPlacement) {
  Network net(3, TtlPolicy{}, Duration{0});
  EXPECT_EQ(net.server_for_client(ClientId{0}), ServerId{0});
  EXPECT_EQ(net.server_for_client(ClientId{1}), ServerId{1});
  EXPECT_EQ(net.server_for_client(ClientId{2}), ServerId{2});
  EXPECT_EQ(net.server_for_client(ClientId{3}), ServerId{0});
  EXPECT_EQ(net.server_for_client(ClientId{7}), ServerId{1});
}

TEST(NetworkTest, ResolverLookupBoundsChecked) {
  Network net(2, TtlPolicy{}, Duration{0});
  EXPECT_EQ(net.resolver(ServerId{1}).id(), ServerId{1});
  EXPECT_THROW((void)net.resolver(ServerId{2}), ConfigError);
}

TEST(NetworkTest, PerServerCachesAreIndependent) {
  Network net(2, TtlPolicy{}, Duration{0});
  net.authority().register_permanent("valid.com");
  // Client 0 -> server 0; client 1 -> server 1. Both lookups miss their own
  // cache and are forwarded: the vantage sees two records with different
  // forwarders.
  (void)net.resolve(TimePoint{0}, ClientId{0}, "valid.com");
  (void)net.resolve(TimePoint{10}, ClientId{1}, "valid.com");
  ASSERT_EQ(net.vantage().size(), 2u);
  EXPECT_EQ(net.vantage().stream()[0].forwarder, ServerId{0});
  EXPECT_EQ(net.vantage().stream()[1].forwarder, ServerId{1});
  // Same-server repeat is masked.
  (void)net.resolve(TimePoint{20}, ClientId{2}, "valid.com");
  EXPECT_EQ(net.vantage().size(), 2u);
}

TEST(NetworkTest, EvictExpiredSweepsAllServers) {
  TtlPolicy ttl{.positive = seconds(10), .negative = seconds(5)};
  Network net(2, ttl, Duration{0});
  (void)net.resolve(TimePoint{0}, ClientId{0}, "a.nx");
  (void)net.resolve(TimePoint{0}, ClientId{1}, "b.nx");
  EXPECT_EQ(net.resolver(ServerId{0}).cache().size(), 1u);
  EXPECT_EQ(net.resolver(ServerId{1}).cache().size(), 1u);
  net.evict_expired(TimePoint{seconds(30).millis()});
  EXPECT_EQ(net.resolver(ServerId{0}).cache().size(), 0u);
  EXPECT_EQ(net.resolver(ServerId{1}).cache().size(), 0u);
}

TEST(NetworkTest, VantageTakeDrains) {
  Network net(1, TtlPolicy{}, Duration{0});
  (void)net.resolve(TimePoint{0}, ClientId{0}, "x.nx");
  auto stream = net.vantage().take();
  EXPECT_EQ(stream.size(), 1u);
  EXPECT_EQ(net.vantage().size(), 0u);
}

}  // namespace
}  // namespace botmeter::dns
