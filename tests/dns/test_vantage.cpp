#include "dns/vantage.hpp"

#include <gtest/gtest.h>

namespace botmeter::dns {
namespace {

TEST(VantagePointTest, RecordsTuplesInArrivalOrder) {
  VantagePoint vantage;
  vantage.record(TimePoint{100}, ServerId{1}, "a.com");
  vantage.record(TimePoint{50}, ServerId{2}, "b.com");
  ASSERT_EQ(vantage.size(), 2u);
  EXPECT_EQ(vantage.stream()[0],
            (ForwardedLookup{TimePoint{100}, ServerId{1}, "a.com"}));
  EXPECT_EQ(vantage.stream()[1],
            (ForwardedLookup{TimePoint{50}, ServerId{2}, "b.com"}));
}

TEST(VantagePointTest, ExactTimestampsByDefault) {
  VantagePoint vantage;
  vantage.record(TimePoint{1234}, ServerId{0}, "a.com");
  EXPECT_EQ(vantage.stream()[0].timestamp.millis(), 1234);
}

TEST(VantagePointTest, GranularityQuantizesDown) {
  VantagePoint vantage{seconds(1)};
  vantage.record(TimePoint{1999}, ServerId{0}, "a.com");
  vantage.record(TimePoint{2000}, ServerId{0}, "b.com");
  EXPECT_EQ(vantage.stream()[0].timestamp.millis(), 1000);
  EXPECT_EQ(vantage.stream()[1].timestamp.millis(), 2000);
}

TEST(VantagePointTest, TakeDrainsAndResets) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  auto stream = vantage.take();
  EXPECT_EQ(stream.size(), 1u);
  EXPECT_EQ(vantage.size(), 0u);
  // Recording continues to work after a drain.
  vantage.record(TimePoint{2}, ServerId{0}, "b.com");
  EXPECT_EQ(vantage.size(), 1u);
}

TEST(VantagePointTest, ClearDiscards) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  vantage.clear();
  EXPECT_EQ(vantage.size(), 0u);
}

TEST(VantagePointTest, SinkReceivesQuantizedTuplesInOrderWithoutBuffering) {
  VantagePoint vantage{seconds(1)};
  std::vector<ForwardedLookup> tapped;
  vantage.set_sink([&tapped](const ForwardedLookup& l) { tapped.push_back(l); });
  EXPECT_TRUE(vantage.has_sink());

  vantage.record(TimePoint{1999}, ServerId{1}, "a.com");
  vantage.record(TimePoint{2000}, ServerId{2}, "b.com");

  // The tap sees exactly the stream a batch caller would: quantised
  // timestamps, arrival order — and nothing accumulates internally.
  ASSERT_EQ(tapped.size(), 2u);
  EXPECT_EQ(tapped[0], (ForwardedLookup{TimePoint{1000}, ServerId{1}, "a.com"}));
  EXPECT_EQ(tapped[1], (ForwardedLookup{TimePoint{2000}, ServerId{2}, "b.com"}));
  EXPECT_EQ(vantage.size(), 0u);

  // Removing the sink returns to batch buffering.
  vantage.set_sink(nullptr);
  EXPECT_FALSE(vantage.has_sink());
  vantage.record(TimePoint{3000}, ServerId{0}, "c.com");
  EXPECT_EQ(vantage.size(), 1u);
  EXPECT_EQ(tapped.size(), 2u);
}

TEST(VantagePointTest, DrainHandsSpanThenClears) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  vantage.record(TimePoint{2}, ServerId{1}, "b.com");

  std::vector<ForwardedLookup> received;
  const std::size_t n = vantage.drain(
      [&received](std::span<const ForwardedLookup> batch) {
        received.assign(batch.begin(), batch.end());
      });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].domain, "a.com");
  EXPECT_EQ(received[1].domain, "b.com");
  EXPECT_EQ(vantage.size(), 0u);

  // Draining an empty vantage point never invokes the consumer.
  bool called = false;
  EXPECT_EQ(vantage.drain([&called](auto) { called = true; }), 0u);
  EXPECT_FALSE(called);
}

TEST(VantagePointTest, DrainBlockMatchesDrainAndClears) {
  VantagePoint vantage;
  vantage.record(TimePoint{100}, ServerId{1}, "a.com");
  vantage.record(TimePoint{50}, ServerId{2}, "b.com");
  vantage.record(TimePoint{75}, ServerId{1}, "a.com");

  std::vector<ForwardedLookup> rebuilt;
  const std::size_t n = vantage.drain_block(
      [&rebuilt](const LookupColumns& block, std::span<const std::string> table) {
        for (std::size_t i = 0; i < block.size(); ++i) {
          rebuilt.push_back(ForwardedLookup{TimePoint{block.t_ms[i]},
                                            ServerId{block.server[i]},
                                            table[block.domain[i]]});
        }
      });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(rebuilt.size(), 3u);
  // Same tuples, same arrival order as drain() — only the representation
  // changed. The repeated domain shares one table entry.
  EXPECT_EQ(rebuilt[0], (ForwardedLookup{TimePoint{100}, ServerId{1}, "a.com"}));
  EXPECT_EQ(rebuilt[1], (ForwardedLookup{TimePoint{50}, ServerId{2}, "b.com"}));
  EXPECT_EQ(rebuilt[2], (ForwardedLookup{TimePoint{75}, ServerId{1}, "a.com"}));
  EXPECT_EQ(vantage.interned_domain_count(), 2u);
  EXPECT_EQ(vantage.size(), 0u);
}

TEST(VantagePointTest, DrainBlockIdsStableAcrossDrains) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  vantage.record(TimePoint{2}, ServerId{0}, "b.com");
  std::uint32_t a_id = 0;
  vantage.drain_block([&a_id](const LookupColumns& block,
                              std::span<const std::string>) {
    a_id = block.domain[0];
  });

  // A later drain reuses the table: "a.com" keeps its id, "c.com" extends.
  vantage.record(TimePoint{3}, ServerId{0}, "c.com");
  vantage.record(TimePoint{4}, ServerId{0}, "a.com");
  vantage.drain_block([a_id](const LookupColumns& block,
                             std::span<const std::string> table) {
    EXPECT_EQ(table[block.domain[0]], "c.com");
    EXPECT_EQ(block.domain[1], a_id);
    EXPECT_EQ(table.size(), 3u);
  });
  EXPECT_EQ(vantage.interned_domain_count(), 3u);
}

TEST(VantagePointTest, DrainBlockAppliesQuantisation) {
  VantagePoint vantage{seconds(1)};
  vantage.record(TimePoint{1999}, ServerId{0}, "a.com");
  vantage.drain_block([](const LookupColumns& block,
                         std::span<const std::string>) {
    EXPECT_EQ(block.t_ms[0], 1000);
  });
}

TEST(VantagePointTest, DrainBlockOnEmptyIsANoOp) {
  VantagePoint vantage;
  bool called = false;
  EXPECT_EQ(vantage.drain_block([&called](auto&&, auto&&) { called = true; }),
            0u);
  EXPECT_FALSE(called);
}

TEST(ForwardedLookupTest, EqualityIsFieldwise) {
  const ForwardedLookup a{TimePoint{1}, ServerId{2}, "x.com"};
  EXPECT_EQ(a, (ForwardedLookup{TimePoint{1}, ServerId{2}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{2}, ServerId{2}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{1}, ServerId{3}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{1}, ServerId{2}, "y.com"}));
}

}  // namespace
}  // namespace botmeter::dns
