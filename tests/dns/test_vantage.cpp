#include "dns/vantage.hpp"

#include <gtest/gtest.h>

namespace botmeter::dns {
namespace {

TEST(VantagePointTest, RecordsTuplesInArrivalOrder) {
  VantagePoint vantage;
  vantage.record(TimePoint{100}, ServerId{1}, "a.com");
  vantage.record(TimePoint{50}, ServerId{2}, "b.com");
  ASSERT_EQ(vantage.size(), 2u);
  EXPECT_EQ(vantage.stream()[0],
            (ForwardedLookup{TimePoint{100}, ServerId{1}, "a.com"}));
  EXPECT_EQ(vantage.stream()[1],
            (ForwardedLookup{TimePoint{50}, ServerId{2}, "b.com"}));
}

TEST(VantagePointTest, ExactTimestampsByDefault) {
  VantagePoint vantage;
  vantage.record(TimePoint{1234}, ServerId{0}, "a.com");
  EXPECT_EQ(vantage.stream()[0].timestamp.millis(), 1234);
}

TEST(VantagePointTest, GranularityQuantizesDown) {
  VantagePoint vantage{seconds(1)};
  vantage.record(TimePoint{1999}, ServerId{0}, "a.com");
  vantage.record(TimePoint{2000}, ServerId{0}, "b.com");
  EXPECT_EQ(vantage.stream()[0].timestamp.millis(), 1000);
  EXPECT_EQ(vantage.stream()[1].timestamp.millis(), 2000);
}

TEST(VantagePointTest, TakeDrainsAndResets) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  auto stream = vantage.take();
  EXPECT_EQ(stream.size(), 1u);
  EXPECT_EQ(vantage.size(), 0u);
  // Recording continues to work after a drain.
  vantage.record(TimePoint{2}, ServerId{0}, "b.com");
  EXPECT_EQ(vantage.size(), 1u);
}

TEST(VantagePointTest, ClearDiscards) {
  VantagePoint vantage;
  vantage.record(TimePoint{1}, ServerId{0}, "a.com");
  vantage.clear();
  EXPECT_EQ(vantage.size(), 0u);
}

TEST(ForwardedLookupTest, EqualityIsFieldwise) {
  const ForwardedLookup a{TimePoint{1}, ServerId{2}, "x.com"};
  EXPECT_EQ(a, (ForwardedLookup{TimePoint{1}, ServerId{2}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{2}, ServerId{2}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{1}, ServerId{3}, "x.com"}));
  EXPECT_NE(a, (ForwardedLookup{TimePoint{1}, ServerId{2}, "y.com"}));
}

}  // namespace
}  // namespace botmeter::dns
