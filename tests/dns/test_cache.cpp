#include "dns/cache.hpp"

#include <gtest/gtest.h>

namespace botmeter::dns {
namespace {

TEST(DnsCacheTest, MissOnEmptyCache) {
  DnsCache cache;
  EXPECT_FALSE(cache.lookup("example.com", TimePoint{0}).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(DnsCacheTest, HitWithinTtl) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, hours(2));
  const auto hit = cache.lookup("a.com", TimePoint{hours(1).millis()});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Rcode::kAddress);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DnsCacheTest, NegativeEntriesAreCachedToo) {
  DnsCache cache;
  cache.insert("nx.com", Rcode::kNxDomain, TimePoint{0}, minutes(30));
  const auto hit = cache.lookup("nx.com", TimePoint{minutes(29).millis()});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Rcode::kNxDomain);
}

TEST(DnsCacheTest, ExpiryBoundaryIsExclusive) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(10));
  // t == expiry is stale.
  EXPECT_FALSE(cache.lookup("a.com", TimePoint{seconds(10).millis()}).has_value());
}

TEST(DnsCacheTest, StaleEntryEvictedOnLookup) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup("a.com", TimePoint{seconds(2).millis()}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCacheTest, ReinsertOverwrites) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kNxDomain, TimePoint{0}, seconds(1));
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(100));
  const auto hit = cache.lookup("a.com", TimePoint{seconds(50).millis()});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Rcode::kAddress);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCacheTest, EvictExpiredSweeps) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(1));
  cache.insert("b.com", Rcode::kNxDomain, TimePoint{0}, seconds(100));
  cache.insert("c.com", Rcode::kNxDomain, TimePoint{0}, seconds(2));
  cache.evict_expired(TimePoint{seconds(10).millis()});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup("b.com", TimePoint{seconds(10).millis()}).has_value());
}

TEST(DnsCacheTest, ClearEmpties) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(10));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("a.com", TimePoint{1}).has_value());
}

TEST(DnsCacheTest, DistinctDomainsIndependent) {
  DnsCache cache;
  cache.insert("a.com", Rcode::kAddress, TimePoint{0}, seconds(10));
  cache.insert("b.com", Rcode::kNxDomain, TimePoint{0}, seconds(10));
  EXPECT_EQ(*cache.lookup("a.com", TimePoint{5}), Rcode::kAddress);
  EXPECT_EQ(*cache.lookup("b.com", TimePoint{5}), Rcode::kNxDomain);
}

}  // namespace
}  // namespace botmeter::dns
