#include "support/observation_factory.hpp"

#include "common/rng.hpp"

namespace botmeter::testing {

ObservationFactory::ObservationFactory(botnet::SimulationConfig config,
                                       double detection_miss_rate,
                                       std::optional<double> assumed_miss_rate,
                                       std::uint64_t window_seed)
    : config_(std::move(config)) {
  pool_model_ = dga::make_pool_model(config_.dga);
  result_ = botnet::simulate(config_, *pool_model_);

  detect::DomainMatcher matcher(config_.dga.epoch);
  Rng window_rng{window_seed};
  windows_.reserve(static_cast<std::size_t>(config_.epoch_count));
  for (std::int64_t e = config_.first_epoch;
       e < config_.first_epoch + config_.epoch_count; ++e) {
    const dga::EpochPool& pool = pool_model_->epoch_pool(e);
    windows_.push_back(
        detect::make_detection_window(pool, detection_miss_rate, window_rng));
    matcher.add_epoch(pool, windows_.back());
  }

  const detect::MatchedStreams matched = matcher.match(result_.observable);

  static const std::vector<detect::MatchedLookup> kEmpty;
  for (std::int64_t e = config_.first_epoch;
       e < config_.first_epoch + config_.epoch_count; ++e) {
    estimators::EpochObservation obs;
    auto it = matched.find(detect::StreamKey{dns::ServerId{0}, e});
    obs.lookups = (it != matched.end()) ? it->second : kEmpty;
    obs.config = &config_.dga;
    obs.pool = &pool_model_->epoch_pool(e);
    obs.window = &windows_[static_cast<std::size_t>(e - config_.first_epoch)];
    obs.ttl = config_.ttl;
    obs.window_start = TimePoint{e * config_.dga.epoch.millis()};
    obs.window_length = config_.dga.epoch;
    obs.assumed_miss_rate = assumed_miss_rate;
    observations_.push_back(std::move(obs));
  }
}

double ObservationFactory::mean_truth() const {
  double sum = 0.0;
  for (const botnet::EpochTruth& t : result_.truth) sum += t.total_active;
  return sum / static_cast<double>(result_.truth.size());
}

}  // namespace botmeter::testing
