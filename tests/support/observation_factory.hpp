// Test support: run a full simulation and package per-epoch observations
// for estimator-level tests, with the ownership of pools, windows and
// matched streams kept alive inside the factory.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "botnet/simulator.hpp"
#include "detect/detection_window.hpp"
#include "detect/matcher.hpp"
#include "dga/pool.hpp"
#include "estimators/observation.hpp"

namespace botmeter::testing {

class ObservationFactory {
 public:
  /// Simulates `config`, applies a D3 window with `detection_miss_rate`,
  /// matches the observable stream, and builds one observation per epoch
  /// for local server 0.
  explicit ObservationFactory(botnet::SimulationConfig config,
                              double detection_miss_rate = 0.0,
                              std::optional<double> assumed_miss_rate = {},
                              std::uint64_t window_seed = 99);

  [[nodiscard]] const std::vector<estimators::EpochObservation>& observations()
      const {
    return observations_;
  }
  [[nodiscard]] const botnet::SimulationResult& result() const { return result_; }
  [[nodiscard]] const botnet::SimulationConfig& config() const { return config_; }

  /// Ground-truth active population averaged over the epochs (constant-rate
  /// activation keeps it equal to bot_count each epoch).
  [[nodiscard]] double mean_truth() const;

 private:
  botnet::SimulationConfig config_;
  std::unique_ptr<dga::QueryPoolModel> pool_model_;
  std::vector<detect::DetectionWindow> windows_;
  botnet::SimulationResult result_;
  std::vector<estimators::EpochObservation> observations_;
};

}  // namespace botmeter::testing
