#include "common/time.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter {
namespace {

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(milliseconds(1500).millis(), 1500);
  EXPECT_EQ(seconds(2).millis(), 2000);
  EXPECT_EQ(minutes(3).millis(), 180'000);
  EXPECT_EQ(hours(2).millis(), 7'200'000);
  EXPECT_EQ(days(1).millis(), 86'400'000);
  EXPECT_DOUBLE_EQ(milliseconds(2500).seconds(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((seconds(3) + seconds(2)).millis(), 5000);
  EXPECT_EQ((seconds(3) - seconds(5)).millis(), -2000);
  EXPECT_EQ((seconds(3) * 4).millis(), 12'000);
  EXPECT_EQ((seconds(10) / 4).millis(), 2500);
  EXPECT_EQ(-seconds(1), milliseconds(-1000));
  Duration d = seconds(1);
  d += seconds(2);
  EXPECT_EQ(d, seconds(3));
  d -= seconds(1);
  EXPECT_EQ(d, seconds(2));
}

TEST(DurationTest, DivAndMod) {
  EXPECT_EQ(hours(5).div(hours(2)), 2);
  EXPECT_EQ(hours(5).mod(hours(2)), hours(1));
  EXPECT_EQ(seconds(10).mod(seconds(5)).millis(), 0);
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(seconds(1), seconds(2));
  EXPECT_GT(minutes(1), seconds(59));
  EXPECT_EQ(minutes(1), seconds(60));
}

TEST(TimePointTest, AffineArithmetic) {
  const TimePoint t{1000};
  EXPECT_EQ((t + seconds(2)).millis(), 3000);
  EXPECT_EQ((t - milliseconds(500)).millis(), 500);
  EXPECT_EQ((TimePoint{5000} - t), seconds(4));
  TimePoint u = t;
  u += seconds(1);
  EXPECT_EQ(u.millis(), 2000);
}

TEST(QuantizeTest, TruncatesDownward) {
  EXPECT_EQ(quantize(TimePoint{1234}, milliseconds(100)).millis(), 1200);
  EXPECT_EQ(quantize(TimePoint{999}, seconds(1)).millis(), 0);
  EXPECT_EQ(quantize(TimePoint{1000}, seconds(1)).millis(), 1000);
  EXPECT_EQ(quantize(TimePoint{0}, seconds(1)).millis(), 0);
}

TEST(QuantizeTest, NegativeInstantsTruncateDownward) {
  EXPECT_EQ(quantize(TimePoint{-1}, seconds(1)).millis(), -1000);
  EXPECT_EQ(quantize(TimePoint{-1000}, seconds(1)).millis(), -1000);
  EXPECT_EQ(quantize(TimePoint{-1500}, seconds(1)).millis(), -2000);
}

TEST(QuantizeTest, RejectsNonPositiveGranularity) {
  EXPECT_THROW((void)quantize(TimePoint{10}, Duration{0}), ConfigError);
  EXPECT_THROW((void)quantize(TimePoint{10}, milliseconds(-5)), ConfigError);
}

TEST(FormatTest, TimePointRendering) {
  EXPECT_EQ(to_string(TimePoint{0}), "0d00:00:00.000");
  const TimePoint t{days(2).millis() + hours(3).millis() +
                    minutes(4).millis() + seconds(5).millis() + 6};
  EXPECT_EQ(to_string(t), "2d03:04:05.006");
}

TEST(FormatTest, DurationRendering) {
  EXPECT_EQ(to_string(Duration{0}), "0ms");
  EXPECT_EQ(to_string(hours(2)), "2h");
  EXPECT_EQ(to_string(days(1) + hours(4)), "1d4h");
  EXPECT_EQ(to_string(milliseconds(1500)), "1s500ms");
  EXPECT_EQ(to_string(-seconds(90)), "-1m30s");
}

}  // namespace
}  // namespace botmeter
