#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace botmeter {
namespace {

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(WorkerPoolTest, ZeroThreadsAutoDetects) {
  WorkerPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkerPoolTest, EmptyRangeIsANoop) {
  WorkerPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPoolTest, ReusableAcrossCalls) {
  WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    const int total = std::accumulate(
        hits.begin(), hits.end(), 0,
        [](int acc, const std::atomic<int>& h) { return acc + h.load(); });
    EXPECT_EQ(total, 64);
  }
}

TEST(WorkerPoolTest, PropagatesFirstException) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace botmeter
