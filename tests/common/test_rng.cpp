#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace botmeter {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformRejectsZeroBound) {
  Rng rng{7};
  EXPECT_THROW((void)rng.uniform(0), ConfigError);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng{11};
  std::vector<int> counts(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng{3};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)rng.uniform_range(3, 2), ConfigError);
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng{5};
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng{13};
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
  EXPECT_THROW((void)rng.exponential(0.0), ConfigError);
  EXPECT_THROW((void)rng.exponential(-1.0), ConfigError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng{17};
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCasesAndFrequency) {
  Rng rng{19};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonSmallAndLargeMeans) {
  Rng rng{23};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW((void)rng.poisson(-1.0), ConfigError);
  for (double mean : {2.0, 80.0}) {
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.03 + 0.05);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng{29};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>{v});
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng{31};
  std::vector<int> v(52);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  const auto original = v;
  rng.shuffle(std::span<int>{v});
  EXPECT_NE(v, original);  // probability 1/52! of flaking
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng{37};
  const auto sample = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 100u);
  for (auto s : sample) EXPECT_LT(s, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng{41};
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), ConfigError);
}

TEST(RngTest, SampleWithoutReplacementUniformMarginals) {
  Rng rng{43};
  std::vector<int> counts(20, 0);
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    for (auto s : rng.sample_without_replacement(20, 5)) {
      ++counts[s];
    }
  }
  // Each index appears with probability 5/20 = 0.25.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent{47};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(StreamSeedTest, DistinctAcrossEpochAndBotGrid) {
  // The old packing (epoch << 20 | bot) aliased whenever bot >= 2^20 and
  // sign-extended negative epochs. The chained-mix split must give every
  // (epoch, bot) pair its own stream, including bot ids above 2^20 and
  // negative epochs.
  const std::uint64_t root = 99;
  const std::int64_t epochs[] = {-3, -1, 0, 1, 2, 1000};
  const std::uint64_t bots[] = {0,        1,         2,         (1u << 20) - 1,
                                1u << 20, 1u << 21,  (1u << 22) | 5,
                                0xFFFFFFFFull};
  std::set<std::uint64_t> seeds;
  for (std::int64_t e : epochs) {
    for (std::uint64_t b : bots) {
      seeds.insert(stream_seed(root, static_cast<std::uint64_t>(e), b));
    }
  }
  EXPECT_EQ(seeds.size(), std::size(epochs) * std::size(bots));
}

TEST(StreamSeedTest, OldPackingAliasesAreNowDistinct) {
  // (epoch=1, bot=0) and (epoch=0, bot=2^20) collided under the old scheme.
  EXPECT_NE(stream_seed(7, 1, 0), stream_seed(7, 0, 1u << 20));
  // Stream splitting is sensitive to the root seed and argument order.
  EXPECT_NE(stream_seed(7, 1, 2), stream_seed(8, 1, 2));
  EXPECT_NE(stream_seed(7, 1, 2), stream_seed(7, 2, 1));
}

TEST(StreamSeedTest, RngStreamMatchesStreamSeed) {
  Rng direct{stream_seed(5, 10, 20)};
  Rng named = Rng::stream(5, 10, 20);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(direct.next(), named.next());
}

TEST(StreamSeedTest, StreamsAreDecorrelated) {
  Rng a = Rng::stream(5, 0, 0);
  Rng b = Rng::stream(5, 0, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Mix64Test, DeterministicAndSpreading) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
  // Low-bit changes flip roughly half the output bits.
  const std::uint64_t diff = mix64(0) ^ mix64(1);
  EXPECT_GT(__builtin_popcountll(diff), 16);
}

}  // namespace
}  // namespace botmeter
