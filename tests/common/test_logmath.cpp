#include "common/logmath.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace botmeter {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3'628'800.0), 1e-10);
  EXPECT_THROW((void)log_factorial(-1), ConfigError);
}

TEST(LogBinomialTest, MatchesSmallCoefficients) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(52, 5)), 2'598'960.0, 1e-3);
  EXPECT_DOUBLE_EQ(log_binomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(5, 5), 0.0);
}

TEST(LogBinomialTest, OutOfSupportIsNegInf) {
  EXPECT_EQ(log_binomial(5, 6), kNegInf);
  EXPECT_EQ(log_binomial(5, -1), kNegInf);
}

TEST(LogBinomialTest, LargeArgumentsFinite) {
  const double v = log_binomial(50'000, 500);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
  // Symmetry C(n,k) == C(n,n-k).
  EXPECT_NEAR(log_binomial(50'000, 500), log_binomial(50'000, 49'500), 1e-6);
}

TEST(LogSumExpTest, PairwiseBasics) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_sum_exp(kNegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_sum_exp(1.5, kNegInf), 1.5);
  EXPECT_EQ(log_sum_exp(kNegInf, kNegInf), kNegInf);
}

TEST(LogSumExpTest, NoOverflowForLargeInputs) {
  const double v = log_sum_exp(1000.0, 1000.0);
  EXPECT_NEAR(v, 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, SpanVersion) {
  const std::vector<double> v{std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(log_sum_exp(v), std::log(6.0), 1e-12);
  EXPECT_EQ(log_sum_exp(std::vector<double>{}), kNegInf);
  EXPECT_EQ(log_sum_exp(std::vector<double>{kNegInf, kNegInf}), kNegInf);
}

TEST(Log1mExpTest, MatchesDirectComputation) {
  for (double x : {-0.001, -0.1, -0.5, -1.0, -5.0, -50.0}) {
    EXPECT_NEAR(log1m_exp(x), std::log(1.0 - std::exp(x)), 1e-12) << x;
  }
  EXPECT_EQ(log1m_exp(0.0), kNegInf);
  EXPECT_THROW((void)log1m_exp(0.1), ConfigError);
}

TEST(LogStirling2Test, SmallTableExact) {
  const LogStirling2 s(6);
  // Known values: S(4,2)=7, S(5,3)=25, S(6,3)=90.
  EXPECT_DOUBLE_EQ(s(0, 0), 0.0);
  EXPECT_NEAR(std::exp(s(4, 2)), 7.0, 1e-9);
  EXPECT_NEAR(std::exp(s(5, 3)), 25.0, 1e-9);
  EXPECT_NEAR(std::exp(s(6, 3)), 90.0, 1e-9);
  EXPECT_NEAR(std::exp(s(6, 1)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(s(6, 6)), 1.0, 1e-9);
}

TEST(LogStirling2Test, ZeroCases) {
  const LogStirling2 s(5);
  EXPECT_EQ(s(3, 4), kNegInf);   // m > n
  EXPECT_EQ(s(3, 0), kNegInf);   // m == 0, n > 0
  EXPECT_EQ(s(5, -1), kNegInf);  // negative m
  EXPECT_THROW((void)s(6, 2), ConfigError);
  EXPECT_THROW(LogStirling2(-1), ConfigError);
}

TEST(LogStirling2Test, RowSumsEqualBellNumbers) {
  const LogStirling2 s(8);
  // Bell numbers: B(8) = 4140.
  double total = 0.0;
  for (int m = 0; m <= 8; ++m) {
    const double lv = s(8, m);
    if (lv != kNegInf) total += std::exp(lv);
  }
  EXPECT_NEAR(total, 4140.0, 1e-6);
}

TEST(LogStirling2Test, LargeTableFinite) {
  const LogStirling2 s(600);
  EXPECT_TRUE(std::isfinite(s(600, 100)));
  EXPECT_GT(s(600, 100), 0.0);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-6);
}

TEST(NormalQuantileTest, SymmetryAndTails) {
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-8) << p;
  }
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-4);
  EXPECT_LT(normal_quantile(1e-9), -5.0);
}

TEST(NormalQuantileTest, InvalidArguments) {
  EXPECT_THROW((void)normal_quantile(0.0), ConfigError);
  EXPECT_THROW((void)normal_quantile(1.0), ConfigError);
  EXPECT_THROW((void)normal_quantile(-0.1), ConfigError);
}

TEST(ChiSquareQuantileTest, MatchesTables) {
  // Wilson-Hilferty is accurate to well under 1% at moderate dof.
  EXPECT_NEAR(chi_square_quantile(0.95, 10.0), 18.307, 0.15);
  EXPECT_NEAR(chi_square_quantile(0.05, 10.0), 3.940, 0.10);
  EXPECT_NEAR(chi_square_quantile(0.95, 2.0), 5.991, 0.25);
  EXPECT_NEAR(chi_square_quantile(0.5, 20.0), 19.337, 0.10);
}

TEST(ChiSquareQuantileTest, MonotoneAndValid) {
  double prev = 0.0;
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double q = chi_square_quantile(p, 12.0);
    EXPECT_GT(q, prev);
    prev = q;
  }
  EXPECT_GE(chi_square_quantile(0.0001, 0.5), 0.0);
  EXPECT_THROW((void)chi_square_quantile(0.5, 0.0), ConfigError);
  EXPECT_THROW((void)chi_square_quantile(0.5, -2.0), ConfigError);
}

TEST(PoissonTailTest, KnownValues) {
  // P(Poisson(1) >= 1) = 1 - e^-1.
  EXPECT_NEAR(poisson_tail(1.0, 1), 1.0 - std::exp(-1.0), 1e-12);
  // P(Poisson(2) >= 2) = 1 - e^-2 (1 + 2).
  EXPECT_NEAR(poisson_tail(2.0, 2), 1.0 - std::exp(-2.0) * 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(poisson_tail(5.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_tail(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_tail(0.0, 3), 0.0);
}

TEST(PoissonTailTest, MonotoneInMeanAndK) {
  EXPECT_LT(poisson_tail(1.0, 3), poisson_tail(2.0, 3));
  EXPECT_GT(poisson_tail(2.0, 1), poisson_tail(2.0, 2));
}

TEST(PoissonTailTest, ExtremeMeansStable) {
  EXPECT_DOUBLE_EQ(poisson_tail(1e6, 3), 1.0);  // underflow limit -> tail 1
  // 1 - exp(-m) for tiny m cancels near 1.0, so the error floor is one ULP
  // of 1.0 (~2.2e-16); the value itself remains the right order of magnitude.
  EXPECT_NEAR(poisson_tail(1e-12, 1), 1e-12, 1e-15);
  EXPECT_GE(poisson_tail(700.0, 650), 0.0);
  EXPECT_LE(poisson_tail(700.0, 650), 1.0);
}

TEST(PoissonTailTest, InvalidArguments) {
  EXPECT_THROW((void)poisson_tail(-1.0, 1), ConfigError);
  EXPECT_THROW((void)poisson_tail(1.0, -1), ConfigError);
}

TEST(OccupancyTest, DistributionSumsToOne) {
  const LogStirling2 s(20);
  for (std::int64_t n : {1, 3, 7, 20}) {
    for (std::int64_t l : {1, 4, 9}) {
      double total = 0.0;
      for (std::int64_t m = 0; m <= std::min<std::int64_t>(n, l); ++m) {
        total += occupancy_probability(n, l, m, s);
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n << " l=" << l;
    }
  }
}

TEST(OccupancyTest, KnownValues) {
  const LogStirling2 s(10);
  // 2 balls in 2 boxes: P(1 box) = 1/2, P(2 boxes) = 1/2.
  EXPECT_NEAR(occupancy_probability(2, 2, 1, s), 0.5, 1e-12);
  EXPECT_NEAR(occupancy_probability(2, 2, 2, s), 0.5, 1e-12);
  // 3 balls in 3 boxes: P(all distinct) = 3!/27 = 2/9.
  EXPECT_NEAR(occupancy_probability(3, 3, 3, s), 2.0 / 9.0, 1e-12);
  // Zero balls occupy zero boxes.
  EXPECT_DOUBLE_EQ(occupancy_probability(0, 5, 0, s), 1.0);
  EXPECT_DOUBLE_EQ(occupancy_probability(0, 5, 1, s), 0.0);
}

TEST(OccupancyTest, OutOfSupportAndErrors) {
  const LogStirling2 s(10);
  EXPECT_DOUBLE_EQ(occupancy_probability(2, 5, 3, s), 0.0);   // m > n
  EXPECT_DOUBLE_EQ(occupancy_probability(5, 2, 3, s), 0.0);   // m > l
  EXPECT_DOUBLE_EQ(occupancy_probability(5, 2, -1, s), 0.0);  // m < 0
  EXPECT_THROW((void)occupancy_probability(2, 0, 1, s), ConfigError);
  EXPECT_THROW((void)occupancy_probability(-1, 5, 1, s), ConfigError);
}

}  // namespace
}  // namespace botmeter
