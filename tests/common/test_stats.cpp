#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace botmeter {
namespace {

TEST(AreTest, MatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(absolute_relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(absolute_relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(absolute_relative_error(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(absolute_relative_error(0.0, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(absolute_relative_error(529.4, 100.0), 4.294);
}

TEST(AreTest, ZeroActualThrows) {
  EXPECT_THROW((void)absolute_relative_error(5.0, 0.0), DataError);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), DataError);
  EXPECT_THROW((void)s.variance(), DataError);
  EXPECT_THROW((void)s.min(), DataError);
  EXPECT_THROW((void)s.max(), DataError);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  for (double x : {-3.0, -1.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(PercentileTest, SingleElementAndErrors) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 10.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 90.0), 7.0);
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50.0), DataError);
  EXPECT_THROW((void)percentile(one, -1.0), ConfigError);
  EXPECT_THROW((void)percentile(one, 101.0), ConfigError);
}

TEST(PercentileTest, NanPercentileRejected) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW((void)percentile(v, std::numeric_limits<double>::quiet_NaN()),
               ConfigError);
}

TEST(PercentileTest, ExtremesAreExactNotInterpolated) {
  // p0 / p100 must return the exact min / max sample, with no floating-point
  // interpolation residue, even on unsorted input.
  const std::vector<double> v{0.3, 0.1, 0.2};
  EXPECT_EQ(percentile(v, 0.0), 0.1);
  EXPECT_EQ(percentile(v, 100.0), 0.3);
  // A rank that lands a hair past the last index must clamp, not read
  // out of bounds or interpolate against a missing element.
  EXPECT_EQ(percentile(v, std::nextafter(100.0, 0.0)),
            percentile(v, std::nextafter(100.0, 0.0)));
  EXPECT_LE(percentile(v, std::nextafter(100.0, 0.0)), 0.3);
}

TEST(PercentileTest, SingleElementAllPercentiles) {
  const std::vector<double> one{42.0};
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(one, p), 42.0) << "p=" << p;
  }
}

TEST(PercentileTest, TwoElements) {
  const std::vector<double> v{10.0, 20.0};
  EXPECT_EQ(percentile(v, 0.0), 10.0);
  EXPECT_EQ(percentile(v, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 15.0);
}

TEST(QuartileSummaryTest, MatchesPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const QuartileSummary s = summarize_quartiles(v);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(FormatMeanStdTest, TableIIFormatting) {
  EXPECT_EQ(format_mean_std(0.116, 0.177), "0.116 +/- 0.177");
  EXPECT_EQ(format_mean_std(4.294, 5.118), "4.294 +/- 5.118");
}

}  // namespace
}  // namespace botmeter
