#include "common/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>

namespace botmeter::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-0.25").as_double(), -0.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParseTest, IntegralRangeChecked) {
  EXPECT_THROW((void)parse("3.5").as_int(), DataError);
  EXPECT_EQ(parse("-7").as_int(), -7);
}

TEST(JsonParseTest, StringsWithEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse(R"("line\nbreak\ttab")").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(JsonParseTest, Arrays) {
  const Value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_int(), 3);
  EXPECT_TRUE(parse("[]").as_array().empty());
  const Value nested = parse("[[1],[2,[3]]]");
  EXPECT_EQ(nested.as_array()[1].as_array()[1].as_array()[0].as_int(), 3);
}

TEST(JsonParseTest, Objects) {
  const Value v = parse(R"({"a": 1, "b": {"c": "x"}, "d": [true]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("c").as_string(), "x");
  EXPECT_TRUE(v.at("d").as_array()[0].as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), DataError);
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"a\" :\r\n [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParseTest, TypeMismatchesThrow) {
  EXPECT_THROW((void)parse("1").as_string(), DataError);
  EXPECT_THROW((void)parse("\"x\"").as_double(), DataError);
  EXPECT_THROW((void)parse("[1]").as_object(), DataError);
  EXPECT_THROW((void)parse("{}").as_array(), DataError);
  EXPECT_THROW((void)parse("null").as_bool(), DataError);
}

TEST(JsonParseTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "nul", "01x", "\"unterminated",
        "{\"a\":1,}", "[1 2]", "{\"a\" 1}", "\"bad\\escape\"", "\"\\u12g4\"",
        "1 2", "{} extra"}) {
    EXPECT_THROW((void)parse(bad), DataError) << bad;
  }
}

TEST(JsonParseTest, DuplicateKeysRejected) {
  EXPECT_THROW((void)parse(R"({"a":1,"a":2})"), DataError);
}

TEST(JsonParseTest, ErrorsCarryPosition) {
  try {
    (void)parse("{\n  \"a\": bad\n}");
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParseTest, ControlCharactersRejected) {
  EXPECT_THROW((void)parse("\"a\nb\""), DataError);
}

TEST(JsonParseTest, SurrogateEscapesRejected) {
  EXPECT_THROW((void)parse(R"("\ud800")"), DataError);
}

TEST(JsonWriteTest, ScalarsCompact) {
  EXPECT_EQ(write(parse("null")), "null");
  EXPECT_EQ(write(parse("true")), "true");
  EXPECT_EQ(write(parse("false")), "false");
  EXPECT_EQ(write(parse("\"hi\"")), "\"hi\"");
}

TEST(JsonWriteTest, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(write(Value{42.0}), "42");
  EXPECT_EQ(write(Value{-7.0}), "-7");
  EXPECT_EQ(write(Value{0.0}), "0");
  EXPECT_EQ(write(Value{9007199254740991.0}), "9007199254740991");  // 2^53 - 1
  EXPECT_EQ(write(Value{0.5}), "0.5");
  EXPECT_EQ(write(Value{0.1}), "0.1");  // shortest round-trip form
}

TEST(JsonWriteTest, NonFiniteNumbersRejected) {
  EXPECT_THROW((void)write(Value{std::numeric_limits<double>::infinity()}),
               DataError);
  EXPECT_THROW((void)write(Value{std::numeric_limits<double>::quiet_NaN()}),
               DataError);
}

TEST(JsonWriteTest, StringEscapes) {
  EXPECT_EQ(write(Value{std::string("a\"b\\c\n\t")}),
            R"("a\"b\\c\n\t")");
  EXPECT_EQ(write(Value{std::string("\x01")}), "\"\\u0001\"");
}

TEST(JsonWriteTest, ObjectKeysSerializeSorted) {
  Object o;
  o.emplace("zeta", Value{1.0});
  o.emplace("alpha", Value{2.0});
  EXPECT_EQ(write(Value{std::move(o)}), R"({"alpha":2,"zeta":1})");
}

TEST(JsonWriteTest, PrettyPrinting) {
  Object inner;
  inner.emplace("x", Value{1.0});
  Object o;
  o.emplace("a", Value{std::move(inner)});
  o.emplace("b", Value{Array{Value{1.0}, Value{2.0}}});
  EXPECT_EQ(write_pretty(Value{std::move(o)}, 2),
            "{\n  \"a\": {\n    \"x\": 1\n  },\n  \"b\": [\n    1,\n    2\n  ]\n}\n");
  EXPECT_EQ(write_pretty(Value{Object{}}, 2), "{}\n");
  EXPECT_EQ(write_pretty(Value{Array{}}, 2), "[]\n");
}

// The byte-stability contract: write(parse(write(v))) == write(v) for every
// value the writer emits, compact and pretty.
TEST(JsonWriteTest, RoundTripIsByteStable) {
  const char* documents[] = {
      "null",
      R"({"a":1,"b":[1,2.5,"x",null,true],"c":{"d":0.1}})",
      R"([1e-300,1e300,123456789.123456789,-0.0078125])",
      R"({"unicode":"\u0001\u001f","quote":"\"","backslash":"\\"})",
  };
  for (const char* doc : documents) {
    const Value v = parse(doc);
    const std::string once = write(v);
    EXPECT_EQ(write(parse(once)), once) << doc;
    const std::string pretty = write_pretty(v, 2);
    EXPECT_EQ(write_pretty(parse(pretty), 2), pretty) << doc;
    // Compact and pretty agree on content.
    EXPECT_EQ(write(parse(pretty)), once) << doc;
  }
}

}  // namespace
}  // namespace botmeter::json
