#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace botmeter::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-0.25").as_double(), -0.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParseTest, IntegralRangeChecked) {
  EXPECT_THROW((void)parse("3.5").as_int(), DataError);
  EXPECT_EQ(parse("-7").as_int(), -7);
}

TEST(JsonParseTest, StringsWithEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse(R"("line\nbreak\ttab")").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(JsonParseTest, Arrays) {
  const Value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_int(), 3);
  EXPECT_TRUE(parse("[]").as_array().empty());
  const Value nested = parse("[[1],[2,[3]]]");
  EXPECT_EQ(nested.as_array()[1].as_array()[1].as_array()[0].as_int(), 3);
}

TEST(JsonParseTest, Objects) {
  const Value v = parse(R"({"a": 1, "b": {"c": "x"}, "d": [true]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("c").as_string(), "x");
  EXPECT_TRUE(v.at("d").as_array()[0].as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), DataError);
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"a\" :\r\n [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParseTest, TypeMismatchesThrow) {
  EXPECT_THROW((void)parse("1").as_string(), DataError);
  EXPECT_THROW((void)parse("\"x\"").as_double(), DataError);
  EXPECT_THROW((void)parse("[1]").as_object(), DataError);
  EXPECT_THROW((void)parse("{}").as_array(), DataError);
  EXPECT_THROW((void)parse("null").as_bool(), DataError);
}

TEST(JsonParseTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "nul", "01x", "\"unterminated",
        "{\"a\":1,}", "[1 2]", "{\"a\" 1}", "\"bad\\escape\"", "\"\\u12g4\"",
        "1 2", "{} extra"}) {
    EXPECT_THROW((void)parse(bad), DataError) << bad;
  }
}

TEST(JsonParseTest, DuplicateKeysRejected) {
  EXPECT_THROW((void)parse(R"({"a":1,"a":2})"), DataError);
}

TEST(JsonParseTest, ErrorsCarryPosition) {
  try {
    (void)parse("{\n  \"a\": bad\n}");
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParseTest, ControlCharactersRejected) {
  EXPECT_THROW((void)parse("\"a\nb\""), DataError);
}

TEST(JsonParseTest, SurrogateEscapesRejected) {
  EXPECT_THROW((void)parse(R"("\ud800")"), DataError);
}

}  // namespace
}  // namespace botmeter::json
