// Tests for the enterprise trace's real-world artifacts: raced duplicate
// forwards and benign collision lookups (§II-B collision cases) — and their
// differential effect on the estimators, which is what the Fig. 7 / Table II
// reproduction relies on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/error.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "trace/enterprise.hpp"

namespace botmeter::trace {
namespace {

EnterpriseConfig base_config() {
  EnterpriseConfig config;
  InfectedPopulation newgoz;
  newgoz.dga = dga::newgoz_config();
  newgoz.infected_devices = 20;
  newgoz.mean_activity = 0.6;
  config.populations = {newgoz};
  config.benign_clients = 50;
  config.seed = 4242;
  return config;
}

TEST(DuplicateForwardTest, DuplicatesAppearAtBorder) {
  EnterpriseConfig with = base_config();
  with.duplicate_query_rate = 0.05;
  EnterpriseConfig without = base_config();

  const auto day_with = EnterpriseSimulator(with).step();
  const auto day_without = EnterpriseSimulator(without).step();

  // Same-domain same-ish-time duplicates inflate the observable stream.
  EXPECT_GT(day_with.observable.size(), day_without.observable.size());
  // Distinct domains observed are unchanged (duplicates repeat old names).
  std::map<std::string, int> with_counts, without_counts;
  for (const auto& l : day_with.observable) ++with_counts[l.domain];
  for (const auto& l : day_without.observable) ++without_counts[l.domain];
  EXPECT_EQ(with_counts.size(), without_counts.size());
}

TEST(DuplicateForwardTest, DuplicatesRecordedInRawTraceToo) {
  EnterpriseConfig with = base_config();
  with.duplicate_query_rate = 0.10;
  const auto day_with = EnterpriseSimulator(with).step();
  const auto day_without = EnterpriseSimulator(base_config()).step();
  // The duplicate is a real client retransmission, so it shows up in the raw
  // dataset as well. (Identical seeds: the underlying traffic matches.)
  EXPECT_GT(day_with.raw.size(), day_without.raw.size());
}

TEST(CollisionTest, BenignClientsHitPoolDomains) {
  EnterpriseConfig config = base_config();
  config.collision_rate_per_pool_domain = 5e-3;  // ~50 domains of 10K
  EnterpriseSimulator sim(config);
  const auto day = sim.step();

  // Some raw records for pool domains must come from benign clients (ids at
  // or above the infected block).
  const auto& pool = sim.pool_model(0).epoch_pool(0);
  std::set<std::string> pool_domains(pool.domains.begin(), pool.domains.end());
  bool benign_collision = false;
  for (const auto& r : day.raw) {
    if (r.client.value() >= 20 && pool_domains.contains(r.domain)) {
      benign_collision = true;
      break;
    }
  }
  EXPECT_TRUE(benign_collision);
  // Ground truth still counts only infected devices.
  EXPECT_LE(day.active_bots[0], 20u);
}

TEST(CollisionTest, ArtifactsSplitTimingButNotBernoulli) {
  // The Table II mechanism: with duplicates + collisions, M_T balloons while
  // M_B barely moves.
  auto estimates = [](double dup_rate, double collision_rate) {
    EnterpriseConfig config = base_config();
    config.duplicate_query_rate = dup_rate;
    config.collision_rate_per_pool_domain = collision_rate;
    EnterpriseSimulator sim(config);
    const auto day = sim.step();

    auto run = [&](const std::string& estimator) {
      core::BotMeterConfig meter_config;
      meter_config.dga = dga::newgoz_config();
      meter_config.estimator = estimator;
      core::BotMeter meter(meter_config);
      meter.prepare_epochs(0, 1);
      return meter.analyze(day.observable, 1).total_population();
    };
    return std::pair<double, double>{run("timing"), run("bernoulli")};
  };

  const auto [mt_clean, mb_clean] = estimates(0.0, 0.0);
  const auto [mt_noisy, mb_noisy] = estimates(0.02, 1e-3);
  EXPECT_GT(mt_noisy, mt_clean * 1.5);  // M_T splits on repeats
  EXPECT_LT(std::abs(mb_noisy - mb_clean),
            0.25 * std::max(mb_clean, 1.0));  // M_B barely moves
}

TEST(ArtifactConfigTest, Validation) {
  EnterpriseConfig config = base_config();
  config.duplicate_query_rate = -0.1;
  EXPECT_THROW(EnterpriseSimulator{config}, ConfigError);
  config = base_config();
  config.collision_rate_per_pool_domain = 1.5;
  EXPECT_THROW(EnterpriseSimulator{config}, ConfigError);
}

}  // namespace
}  // namespace botmeter::trace
