// Tests for the coordinated-cut evasion extension (paper future-work #3).
#include <gtest/gtest.h>

#include <set>

#include "botnet/simulator.hpp"
#include "common/stats.hpp"
#include "dga/barrel.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/library.hpp"
#include "support/observation_factory.hpp"

namespace botmeter {
namespace {

TEST(EvasiveVariantTest, ConfigDerivation) {
  const dga::DgaConfig evasive = dga::evasive_variant(dga::newgoz_config());
  EXPECT_EQ(evasive.name, "newGoZ-evasive");
  EXPECT_EQ(evasive.taxonomy.barrel, dga::BarrelModel::kCoordinatedCut);
  EXPECT_EQ(evasive.nxd_count, dga::newgoz_config().nxd_count);
  EXPECT_NO_THROW(evasive.validate());
}

TEST(EvasiveVariantTest, TaxonomyLabels) {
  EXPECT_EQ(dga::to_string(dga::BarrelModel::kCoordinatedCut), "coordinatedcut");
  EXPECT_EQ(dga::short_label(dga::BarrelModel::kCoordinatedCut), "A_C");
  // The Fig. 3 grid stays the paper's twelve cells.
  EXPECT_EQ(dga::kAllBarrelModels.size(), 4u);
}

TEST(EvasiveBarrelTest, BotsShareTheEpochCut) {
  const dga::DgaConfig config = dga::evasive_variant(dga::newgoz_config());
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  // Many bots: their barrels differ only by a jitter below theta_q / 16.
  std::set<std::uint32_t> starts;
  for (std::uint64_t b = 0; b < 32; ++b) {
    Rng bot{b};
    const auto barrel = dga::make_barrel(config, pool, bot);
    ASSERT_FALSE(barrel.empty());
    // Consecutive modulo pool size, like randomcut.
    for (std::size_t i = 1; i < barrel.size(); ++i) {
      ASSERT_EQ(barrel[i], (barrel[i - 1] + 1) % pool.size());
    }
    starts.insert(barrel.front());
  }
  // Starts span at most the jitter window.
  const std::uint32_t lo = *starts.begin();
  const std::uint32_t hi = *starts.rbegin();
  EXPECT_LE(hi - lo, config.barrel_size / 16);
  EXPECT_GT(starts.size(), 1u);  // some per-bot variation remains
}

TEST(EvasiveBarrelTest, CutMovesAcrossEpochs) {
  const dga::DgaConfig config = dga::evasive_variant(dga::newgoz_config());
  auto model = dga::make_pool_model(config);
  Rng bot{1};
  const auto day0 = dga::make_barrel(config, model->epoch_pool(0), bot);
  Rng bot_again{1};
  const auto day1 = dga::make_barrel(config, model->epoch_pool(1), bot_again);
  EXPECT_NE(day0.front(), day1.front());
}

TEST(EvasionEffectTest, CoverageFootprintIndependentOfPopulation) {
  // The collective footprint of 8 and 128 evasive bots is nearly the same —
  // that is the attack.
  auto footprint = [](std::uint32_t bots) {
    botnet::SimulationConfig sim;
    sim.dga = dga::evasive_variant(dga::newgoz_config());
    sim.bot_count = bots;
    sim.seed = 99;
    sim.record_raw = false;
    testing::ObservationFactory factory(sim);
    std::set<std::uint32_t> distinct;
    for (const auto& lookup : factory.observations()[0].lookups) {
      if (!lookup.is_valid_domain) distinct.insert(lookup.pool_position);
    }
    return distinct.size();
  };
  const std::size_t small = footprint(8);
  const std::size_t large = footprint(128);
  EXPECT_LT(static_cast<double>(large),
            1.3 * static_cast<double>(small));
}

TEST(EvasionEffectTest, BernoulliCollapsesOnEvasiveTraffic) {
  // The analyst believes the traffic is honest A_R; the estimate barely
  // moves with the true population.
  const dga::DgaConfig believed = dga::newgoz_config();
  auto estimate_for = [&](std::uint32_t bots) {
    botnet::SimulationConfig sim;
    sim.dga = dga::evasive_variant(dga::newgoz_config());
    sim.bot_count = bots;
    sim.seed = 7;
    sim.record_raw = false;
    testing::ObservationFactory factory(sim);
    estimators::EpochObservation obs = factory.observations()[0];
    obs.config = &believed;
    const estimators::BernoulliEstimator estimator;
    return estimator.estimate(obs);
  };
  const double at_16 = estimate_for(16);
  const double at_256 = estimate_for(256);
  EXPECT_LT(at_256, 16.0);          // wildly below the truth of 256
  EXPECT_LT(at_256, 4.0 * at_16);   // and nearly flat in N
}

TEST(EvasionEffectTest, RecommendedFallbackIsTiming) {
  const estimators::ModelLibrary library;
  EXPECT_EQ(
      library.recommended(dga::evasive_variant(dga::newgoz_config())).name(),
      "timing");
}

}  // namespace
}  // namespace botmeter
