// Observability regression tests: attaching the metrics registry and phase
// tracer must never perturb the simulation, and metric totals must be
// bit-identical across worker-thread counts (they are integer sums flushed
// from the serial section of each epoch).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace botmeter {
namespace {

botnet::SimulationConfig small_config() {
  botnet::SimulationConfig config;
  config.dga = dga::newgoz_config();
  config.bot_count = 24;
  config.server_count = 3;
  config.epoch_count = 2;
  config.seed = 99;
  return config;
}

TEST(Observability, MetricsOnOffDoesNotChangeTheSimulation) {
  const botnet::SimulationResult baseline = botnet::simulate(small_config());

  botnet::SimulationConfig instrumented = small_config();
  obs::MetricsRegistry metrics;
  obs::TraceSession trace;
  instrumented.metrics = &metrics;
  instrumented.trace = &trace;
  const botnet::SimulationResult observed = botnet::simulate(instrumented);

  EXPECT_EQ(baseline.raw, observed.raw);
  EXPECT_EQ(baseline.observable, observed.observable);
  EXPECT_EQ(baseline.truth, observed.truth);
  EXPECT_GT(metrics.snapshot().counters.size(), 0u);
  EXPECT_GT(trace.span_count(), 0u);
}

TEST(Observability, ResultsAndCountersIdenticalAcrossThreadCounts) {
  botnet::SimulationConfig reference_config = small_config();
  obs::MetricsRegistry reference_metrics;
  reference_config.metrics = &reference_metrics;
  reference_config.worker_threads = 1;
  const botnet::SimulationResult reference =
      botnet::simulate(reference_config);
  const auto reference_snap = reference_metrics.snapshot();

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    botnet::SimulationConfig config = small_config();
    obs::MetricsRegistry metrics;
    config.metrics = &metrics;
    config.worker_threads = threads;
    const botnet::SimulationResult result = botnet::simulate(config);

    EXPECT_EQ(reference.raw, result.raw) << threads << " threads";
    EXPECT_EQ(reference.observable, result.observable) << threads << " threads";
    EXPECT_EQ(reference.truth, result.truth) << threads << " threads";

    const auto snap = metrics.snapshot();
    EXPECT_EQ(reference_snap.counters, snap.counters) << threads << " threads";
    EXPECT_EQ(reference_snap.histograms, snap.histograms)
        << threads << " threads";
  }
}

TEST(Observability, TieredSimulationRecordsBothCacheTiers) {
  botnet::TieredSimulationConfig config;
  config.base = small_config();
  config.regional_count = 2;
  obs::MetricsRegistry metrics;
  config.base.metrics = &metrics;

  auto pool_model = dga::make_pool_model(config.base.dga);
  const botnet::SimulationResult with =
      botnet::simulate_tiered(config, *pool_model);

  config.base.metrics = nullptr;
  auto pool_model2 = dga::make_pool_model(config.base.dga);
  const botnet::SimulationResult without =
      botnet::simulate_tiered(config, *pool_model2);

  EXPECT_EQ(with.observable, without.observable);
  EXPECT_EQ(with.truth, without.truth);

  EXPECT_GT(metrics.counter("sim.cache.local.misses").value(), 0u);
  EXPECT_GT(metrics.counter("sim.cache.regional.misses").value(), 0u);
}

TEST(Observability, SimulatorAccountingMatchesTheResult) {
  botnet::SimulationConfig config = small_config();
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const botnet::SimulationResult result = botnet::simulate(config);

  EXPECT_EQ(metrics.counter("sim.epochs").value(),
            static_cast<std::uint64_t>(config.epoch_count));
  EXPECT_EQ(metrics.counter("sim.vantage.forwarded").value(),
            result.observable.size());
  std::uint64_t active = 0;
  for (const botnet::EpochTruth& t : result.truth) active += t.total_active;
  EXPECT_EQ(metrics.counter("sim.active_bots").value(), active);

  // Per-server forwarded counts must partition the vantage stream.
  std::uint64_t per_server_sum = 0;
  for (std::size_t s = 0; s < config.server_count; ++s) {
    per_server_sum += metrics
                          .counter("sim.vantage.forwarded.per_server",
                                   "server_" + std::to_string(s))
                          .value();
  }
  EXPECT_EQ(per_server_sum, result.observable.size());
}

TEST(Observability, AnalyzeRecordsConsistentMatcherTallies) {
  botnet::SimulationConfig sim_config = small_config();
  auto pool_model = dga::make_pool_model(sim_config.dga);
  const botnet::SimulationResult sim =
      botnet::simulate(sim_config, *pool_model);

  core::BotMeterConfig config;
  config.dga = sim_config.dga;
  obs::MetricsRegistry metrics;
  obs::TraceSession trace;
  config.metrics = &metrics;
  config.trace = &trace;

  core::BotMeter meter(config);
  meter.prepare_epochs(0, sim_config.epoch_count);
  const core::LandscapeReport report =
      meter.analyze(sim.observable, sim_config.server_count);

  EXPECT_EQ(metrics.counter("analyze.matcher.stream").value(),
            sim.observable.size());
  EXPECT_EQ(metrics.counter("analyze.matcher.stream").value(),
            metrics.counter("analyze.matcher.matched").value() +
                metrics.counter("analyze.matcher.unmatched").value());
  EXPECT_EQ(metrics.counter("analyze.matcher.matched").value(),
            metrics.counter("analyze.matcher.valid_domain").value() +
                metrics.counter("analyze.matcher.nxd").value());

  // Attaching observers must not change the report itself.
  core::BotMeterConfig plain_config;
  plain_config.dga = sim_config.dga;
  core::BotMeter plain_meter(plain_config);
  plain_meter.prepare_epochs(0, sim_config.epoch_count);
  const core::LandscapeReport plain =
      plain_meter.analyze(sim.observable, sim_config.server_count);
  ASSERT_EQ(plain.servers.size(), report.servers.size());
  for (std::size_t i = 0; i < plain.servers.size(); ++i) {
    EXPECT_EQ(plain.servers[i].population, report.servers[i].population);
    EXPECT_EQ(plain.servers[i].matched_lookups,
              report.servers[i].matched_lookups);
  }

  // Per-phase wall times were recorded for both stages.
  bool saw_match = false, saw_estimate = false;
  for (const auto& row : trace.summary()) {
    saw_match |= row.phase == "analyze.match";
    saw_estimate |= row.phase == "analyze.estimate";
  }
  EXPECT_TRUE(saw_match);
  EXPECT_TRUE(saw_estimate);
}

TEST(Observability, EndToEndRunReportParsesBack) {
  botnet::SimulationConfig config = small_config();
  obs::MetricsRegistry metrics;
  obs::TraceSession trace;
  config.metrics = &metrics;
  config.trace = &trace;
  (void)botnet::simulate(config);

  obs::RunReport report;
  report.tool = "test";
  report.metrics = &metrics;
  report.trace = &trace;
  const std::string text = obs::export_json(report);
  const json::Value parsed = json::parse(text);

  EXPECT_EQ(parsed.at("schema").as_string(), "botmeter.run_report.v1");
  EXPECT_GT(parsed.at("counters").at("sim.queries").as_int(), 0);
  EXPECT_NE(parsed.at("counters").find("sim.cache.local.hits"), nullptr);
  EXPECT_NE(parsed.at("counters").at("sim.cache.local.hits.per_epoch")
                .find("epoch_0"),
            nullptr);
  EXPECT_GT(parsed.at("trace").at("phases").as_array().size(), 0u);
  EXPECT_EQ(json::write_pretty(parsed, 2), text);
}

}  // namespace
}  // namespace botmeter
