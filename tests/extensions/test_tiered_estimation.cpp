// Estimation through the two-tier hierarchy: BotMeter stays unbiased at
// regional granularity when configured with the regional TTL (the guidance
// dns/tiered.hpp documents).
#include <gtest/gtest.h>

#include "botnet/simulator.hpp"
#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"

namespace botmeter {
namespace {

botnet::TieredSimulationConfig tiered_config(std::uint32_t bots,
                                             std::uint64_t seed) {
  botnet::TieredSimulationConfig config;
  config.base.dga = dga::newgoz_config();
  config.base.bot_count = bots;
  config.base.server_count = 6;  // local resolvers
  config.base.seed = seed;
  config.base.record_raw = false;
  config.base.ttl.negative = minutes(10);  // local tier
  config.regional_count = 2;
  config.regional_ttl.negative = hours(2);
  return config;
}

TEST(TieredEstimationTest, RegionalLandscapeRecovered) {
  const botnet::TieredSimulationConfig config = tiered_config(96, 3);
  auto pool_model = dga::make_pool_model(config.base.dga);
  const auto result = botnet::simulate_tiered(config, *pool_model);

  // Truth is reported per region (2 regions, 48 bots each by round-robin).
  ASSERT_EQ(result.truth[0].active_per_server.size(), 2u);
  EXPECT_EQ(result.truth[0].active_per_server[0], 48u);

  core::BotMeterConfig meter_config;
  meter_config.dga = config.base.dga;
  // The analyst must model the masking the *border* sees: the regional TTL.
  meter_config.ttl = config.regional_ttl;
  core::BotMeter meter(meter_config);
  meter.prepare_epochs(0, 1);
  const auto report = meter.analyze(result.observable, 2);
  ASSERT_EQ(report.servers.size(), 2u);
  for (const auto& server : report.servers) {
    EXPECT_LT(absolute_relative_error(server.population, 48.0), 0.35)
        << "region " << server.server;
  }
}

TEST(TieredEstimationTest, MoreMaskingThanSingleTier) {
  const botnet::TieredSimulationConfig tiered = tiered_config(64, 5);
  auto pool_model = dga::make_pool_model(tiered.base.dga);
  const auto two_tier = botnet::simulate_tiered(tiered, *pool_model);

  botnet::SimulationConfig flat = tiered.base;
  flat.ttl = tiered.base.ttl;  // 10-minute local tier only
  auto pool_model_flat = dga::make_pool_model(flat.dga);
  const auto one_tier = botnet::simulate(flat, *pool_model_flat);

  // The regional tier (2 h negative TTL) can only hide lookups the flat
  // 10-minute deployment would forward.
  EXPECT_LT(two_tier.observable.size(), one_tier.observable.size());
}

TEST(TieredEstimationTest, DistinctCoverageSurvivesBothTiers) {
  // The first query of every domain still reaches the border exactly as in
  // the flat topology, so the Bernoulli coverage statistic is untouched.
  const botnet::TieredSimulationConfig config = tiered_config(32, 7);
  auto pool_model = dga::make_pool_model(config.base.dga);
  const auto result = botnet::simulate_tiered(config, *pool_model);

  std::set<std::string> distinct;
  for (const auto& lookup : result.observable) distinct.insert(lookup.domain);
  // Re-simulate flat with the same traffic seed to compare coverage.
  botnet::SimulationConfig flat = config.base;
  auto pool_model_flat = dga::make_pool_model(flat.dga);
  const auto flat_result = botnet::simulate(flat, *pool_model_flat);
  std::set<std::string> flat_distinct;
  for (const auto& lookup : flat_result.observable) {
    flat_distinct.insert(lookup.domain);
  }
  EXPECT_EQ(distinct, flat_distinct);
}

}  // namespace
}  // namespace botmeter
